// Microbenchmarks (google-benchmark): kernel throughput of the six
// workloads on the emulated device, the fault-model application cost, the
// flip-engine selection cost, and the mitigation primitives. These are the
// knobs that determine campaign throughput (trials/second), which is what
// made the paper's >90,000-injection study practical.
#include <benchmark/benchmark.h>

#include "core/fault_model.hpp"
#include "core/flip_engine.hpp"
#include "core/progress.hpp"
#include "mitigation/abft.hpp"
#include "mitigation/residue.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace phifi;

void run_workload(fi::Workload& workload) {
  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(workload.total_steps());
  workload.run(device, progress);
  progress.finish();
}

void BM_Workload(benchmark::State& state, const work::WorkloadInfo* info) {
  auto workload = info->factory();
  workload->setup(42);
  for (auto _ : state) {
    run_workload(*workload);
  }
  state.counters["output_bytes"] =
      static_cast<double>(workload->output_bytes().size());
}

void BM_WorkloadSetup(benchmark::State& state,
                      const work::WorkloadInfo* info) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto workload = info->factory();
    workload->setup(seed++);
    benchmark::DoNotOptimize(workload.get());
  }
}

void BM_FaultModelApply(benchmark::State& state) {
  const auto model = static_cast<fi::FaultModel>(state.range(0));
  util::Rng rng(7);
  std::array<std::byte, 8> element{};
  for (auto _ : state) {
    apply_fault(model, element, rng);
    benchmark::DoNotOptimize(element.data());
  }
}

void BM_FlipEngineSelect(benchmark::State& state) {
  // A DGEMM-like registry: 3 matrices + constants + 228 x 9 control slots.
  auto workload = work::find_workload("DGEMM")();
  workload->setup(42);
  fi::SiteRegistry registry;
  workload->register_sites(registry);
  fi::FlipEngine engine(
      registry, static_cast<fi::SelectionPolicy>(state.range(0)));
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.inject(fi::FaultModel::kSingle, rng, 0.5));
  }
  state.counters["sites"] = static_cast<double>(registry.size());
}

void BM_AbftCapture(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    mitigation::AbftGemm abft(a, b, n);
    benchmark::DoNotOptimize(abft.expected_row_sums().data());
  }
}

void BM_AbftVerify(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> a(n * n, 0.5);
  std::vector<double> b(n * n, 0.25);
  std::vector<double> c(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * n + j] = 0.5 * 0.25 * static_cast<double>(n);
    }
  }
  mitigation::AbftGemm abft(a, b, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abft.check_and_correct(c));
  }
}

void BM_ResidueAccumulate(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::int64_t> values(1024);
  for (auto& v : values) v = rng.range(-100000, 100000);
  for (auto _ : state) {
    mitigation::ResidueMod15 acc(0);
    for (std::int64_t v : values) acc += mitigation::ResidueMod15(v);
    benchmark::DoNotOptimize(acc.verify());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& info : work::all_workloads()) {
    benchmark::RegisterBenchmark(
        ("BM_Workload/" + std::string(info.name)).c_str(), BM_Workload,
        &info)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_WorkloadSetup/" + std::string(info.name)).c_str(),
        BM_WorkloadSetup, &info)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("BM_FaultModelApply", BM_FaultModelApply)
      ->DenseRange(0, 3);
  benchmark::RegisterBenchmark("BM_FlipEngineSelect", BM_FlipEngineSelect)
      ->DenseRange(0, 3);
  benchmark::RegisterBenchmark("BM_AbftCapture", BM_AbftCapture)
      ->Arg(64)
      ->Arg(128);
  benchmark::RegisterBenchmark("BM_AbftVerify", BM_AbftVerify)
      ->Arg(64)
      ->Arg(128);
  benchmark::RegisterBenchmark("BM_ResidueAccumulate", BM_ResidueAccumulate);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

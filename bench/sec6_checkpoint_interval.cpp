// Sec. 6 (discussion) — "by reducing the DUE rate caused by faults in Sort
// and Tree, HPC systems can allow lowering the frequency of checkpointing
// techniques." This bench quantifies that: the beam-measured DUE FIT of
// each benchmark is scaled to a Trinity-size machine and fed through the
// Young/Daly model to get the optimal checkpoint interval and the machine
// time lost to checkpoint+rework, for several checkpoint costs. A second
// table shows the leverage of halving / quartering the DUE rate (the
// magnitude the Sec. 7 hardening variants achieve for CLAMR's crashes).
#include "analysis/checkpoint_model.hpp"
#include "bench/bench_common.hpp"
#include "radiation/beam_campaign.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);
  constexpr double kBoards = 19000.0;
  const double checkpoint_costs[] = {30.0, 120.0, 600.0};

  util::Table table(
      "Sec. 6 - Young/Daly checkpoint intervals at Trinity scale (19k "
      "boards)");
  table.set_header({"benchmark", "due_fit", "machine MTBF [h]",
                    "opt interval @30s cost", "waste", "@120s", "waste",
                    "@600s", "waste"});

  std::vector<std::pair<std::string, double>> due_fits;
  for (const auto& info : work::all_workloads()) {
    if (!info.beam_tested) continue;
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();
    radiation::BeamConfig config;
    config.seed = 0xc4ec + static_cast<std::uint64_t>(info.name[0]);
    config.min_sdc = 0;
    config.min_due = bench::beam_min_due();
    radiation::BeamCampaign campaign(supervisor, sensitivity, config);
    const radiation::BeamResult result = campaign.run();
    due_fits.emplace_back(std::string(info.name), result.due_fit.fit);

    const double mtbf =
        analysis::machine_mtbf_seconds(result.due_fit.fit, kBoards);
    std::vector<std::string> row = {std::string(info.name),
                                    util::fmt(result.due_fit.fit, 1),
                                    util::fmt(mtbf / 3600.0, 1)};
    for (double cost : checkpoint_costs) {
      const analysis::CheckpointPlan plan =
          analysis::optimal_checkpoint(mtbf, cost);
      row.push_back(util::fmt(plan.interval_seconds / 60.0, 1) + " min");
      row.push_back(util::fmt_percent(plan.waste_fraction));
    }
    table.add_row(row);
  }
  bench::print_table(table);

  util::Table leverage(
      "Sec. 6 - Checkpoint leverage of DUE-rate hardening (120 s cost)");
  leverage.set_header({"benchmark", "due_fit x1", "waste", "due_fit x1/2",
                       "waste", "due_fit x1/4", "waste"});
  for (const auto& [name, fit] : due_fits) {
    std::vector<std::string> row = {name};
    for (double scale : {1.0, 0.5, 0.25}) {
      const double mtbf =
          analysis::machine_mtbf_seconds(fit * scale, kBoards);
      const analysis::CheckpointPlan plan =
          analysis::optimal_checkpoint(mtbf, 120.0);
      row.push_back(util::fmt(fit * scale, 1));
      row.push_back(util::fmt_percent(plan.waste_fraction));
    }
    leverage.add_row(row);
  }
  bench::print_table(leverage);
  return 0;
}

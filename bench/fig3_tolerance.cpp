// Fig. 3 — SDC FIT reduction as a function of the tolerated relative error
// (0.1% .. 15%), from the same beam-campaign machinery as Fig. 2.
//
// Paper reference points: every benchmark loses at least 25% of its SDC FIT
// already at 0.1% tolerance; HotSpot collapses to ~5% of its original FIT
// at 2% tolerance (85% reduction at 0.5%); CLAMR and DGEMM show the
// flattest curves; the curves saturate after the initial drop.
#include "bench/bench_common.hpp"
#include "radiation/beam_campaign.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);
  const std::vector<double> tolerances =
      analysis::ToleranceAnalysis::default_tolerances();

  util::Table table(
      "Fig. 3 - SDC FIT reduction [%] vs tolerated relative error");
  std::vector<std::string> header = {"benchmark"};
  for (double t : tolerances) header.push_back(util::fmt(t * 100, 1) + "%");
  table.set_header(header);

  for (const auto& info : work::all_workloads()) {
    if (!info.beam_tested) continue;
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();

    radiation::BeamConfig config;
    config.seed = 0xf163 + static_cast<std::uint64_t>(info.name[0]);
    config.min_sdc = bench::beam_min_sdc();
    config.min_due = 0;  // this figure only needs SDCs
    radiation::BeamCampaign campaign(supervisor, sensitivity, config);
    const radiation::BeamResult result = campaign.run();

    std::vector<std::string> row = {std::string(info.name)};
    for (double t : tolerances) {
      row.push_back(util::fmt(result.tolerance.reduction_percent(t), 1));
    }
    table.add_row(row);
  }
  bench::print_table(table);
  return 0;
}

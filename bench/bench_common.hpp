// Shared plumbing for the figure/table reproduction benches.
//
// Every bench is a standalone binary that regenerates one artifact of the
// paper (a figure's series or a section's table) and prints it as an
// aligned text table plus CSV. Campaign sizes default to values that keep
// a full `for b in bench/*; do $b; done` run in minutes; set PHIFI_TRIALS
// (fault-injection campaigns) or PHIFI_BEAM_SDC (beam campaigns) to scale
// up toward the paper's 10k-injection / >100-error campaigns.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/campaign.hpp"
#include "core/supervisor.hpp"
#include "telemetry/history.hpp"  // git_describe
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace phifi::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed <= 0 ? fallback : static_cast<std::size_t>(parsed);
}

/// Injection trials per benchmark for the CAROL-FI campaigns (paper: 10k+).
inline std::size_t campaign_trials() {
  return env_size("PHIFI_TRIALS", 600);
}

/// SDC/DUE targets for the beam campaigns (paper: >=100 each).
inline std::size_t beam_min_sdc() { return env_size("PHIFI_BEAM_SDC", 100); }
inline std::size_t beam_min_due() { return env_size("PHIFI_BEAM_DUE", 40); }

inline fi::SupervisorConfig bench_supervisor_config() {
  fi::SupervisorConfig config;
  config.device_os_threads = 1;  // trial children are single-threaded hosts
  config.min_timeout_seconds = 1.0;
  config.timeout_factor = 30.0;
  return config;
}

inline fi::CampaignConfig bench_campaign_config(std::uint64_t seed) {
  fi::CampaignConfig config;
  config.trials = campaign_trials();
  config.seed = seed;
  return config;
}

/// Runs one CAROL-FI campaign for a workload with bench defaults.
inline fi::CampaignResult run_campaign(const work::WorkloadInfo& info,
                                       std::uint64_t seed,
                                       const fi::TrialObserver& observer =
                                           nullptr) {
  fi::TrialSupervisor supervisor(info.factory, bench_supervisor_config());
  supervisor.prepare_golden();
  fi::Campaign campaign(supervisor, bench_campaign_config(seed));
  return campaign.run(observer);
}

inline void print_table(const util::Table& table) {
  table.print_text(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

/// Version of the BENCH_*.json document layout. Bump when a bench renames
/// its point keys; tools/bench_diff.py refuses to compare across versions.
inline constexpr std::uint64_t kBenchSchemaVersion = 1;

/// Starts a BENCH_*.json document with the provenance stamp every emitter
/// shares: bench name, schema version, and the `git describe` of the tree
/// the binary was run from — so a committed baseline records what it
/// measured and bench_diff.py can reject cross-schema comparisons.
inline util::json::Value bench_doc(const std::string& name) {
  util::json::Value doc = util::json::Value::object();
  doc["bench"] = name;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["git_describe"] = telemetry::git_describe();
  return doc;
}

/// Writes a bench document as one JSON line and announces it on stdout.
inline void write_bench_doc(const util::json::Value& doc,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << doc.dump() << "\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace phifi::bench

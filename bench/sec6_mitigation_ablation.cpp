// Sec. 4.3 / 6.1 — Mitigation ablation: what the recommended hardening
// techniques actually buy on this substrate.
//
//  (a) ABFT on DGEMM: the paper argues most observed DGEMM SDCs (single,
//      line, and pairable random patterns) are ABFT-correctable in O(1),
//      while block ("square") corruption is detected but not correctable.
//      We inject faults into a live matrix multiply, classify the damage,
//      and let the Huang-Abraham checksums repair it.
//  (b) Overheads: checksum capture/verify cost vs. the kernel itself, and
//      redundant execution (the fallback for LavaMD-like codes) at 2x.
#include <chrono>
#include <cstring>

#include "analysis/compare.hpp"
#include "analysis/spatial.hpp"
#include "bench/bench_common.hpp"
#include "core/flip_engine.hpp"
#include "core/progress.hpp"
#include "mitigation/abft.hpp"
#include "mitigation/rmt.hpp"
#include "workloads/dgemm.hpp"

int main() {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;
  util::init_log_from_env();

  constexpr std::size_t kN = 64;
  constexpr std::uint64_t kInputSeed = 77;

  // Golden copy.
  work::Dgemm golden(kN, 32);
  {
    golden.setup(kInputSeed);
    phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
    fi::ProgressTracker progress;
    progress.reset(golden.total_steps());
    golden.run(device, progress);
    progress.finish();
  }

  const std::size_t trials = bench::campaign_trials();
  std::size_t sdc = 0;
  std::size_t significant = 0;  // worst element error > 1e-6 relative
  std::size_t detected = 0;
  std::size_t fully_corrected = 0;
  std::size_t detected_uncorrectable = 0;
  analysis::PatternTally injected_patterns;
  analysis::PatternTally corrected_patterns;

  util::Rng seeds(0xabf7);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    work::Dgemm dgemm(kN, 32);
    dgemm.setup(kInputSeed);
    const mitigation::AbftGemm abft(dgemm.a(), dgemm.b(), kN);

    fi::SiteRegistry registry;
    dgemm.register_sites(registry);
    fi::FlipEngine engine(registry, fi::SelectionPolicy::kGlobalBytesWeighted);
    util::Rng rng(seeds.next());

    phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
    fi::ProgressTracker progress;
    progress.reset(dgemm.total_steps());
    const fi::FaultModel model =
        fi::kAllFaultModels[trial % fi::kAllFaultModels.size()];
    progress.arm(rng.uniform(0.02, 0.98), [&](double at) {
      engine.inject(model, rng, at);
    });
    dgemm.run(device, progress);
    progress.finish();

    const analysis::Comparison before = analysis::compare_outputs(
        golden.output_bytes(), dgemm.output_bytes(), fi::ElementType::kF64);
    if (before.matches()) continue;
    ++sdc;
    // Sub-tolerance corruption (e.g. a low mantissa bit) is below ABFT's
    // checksum slack by construction; only significant SDCs are the
    // correction targets.
    if (!before.is_sdc_at(1e-6)) continue;
    ++significant;
    injected_patterns.add(analysis::classify_pattern(
        before.mismatch_indices, golden.output_shape()));

    const mitigation::AbftReport report = abft.check_and_correct(dgemm.c());
    detected += report.detected();
    detected_uncorrectable += report.uncorrectable;
    const analysis::Comparison after = analysis::compare_outputs(
        golden.output_bytes(), dgemm.output_bytes(), fi::ElementType::kF64);
    // "Corrected" = the repaired output is within checksum tolerance of the
    // golden copy everywhere (bitwise equality is not achievable when the
    // repair subtracts a float-rounded delta).
    if (!after.is_sdc_at(1e-6)) {
      ++fully_corrected;
      corrected_patterns.add(analysis::classify_pattern(
          before.mismatch_indices, golden.output_shape()));
    }
  }

  util::Table table("Sec. 6.1 - ABFT on DGEMM under fault injection");
  table.set_header({"metric", "value"});
  table.add_row({"trials", std::to_string(trials)});
  table.add_row({"SDCs produced (bitwise)", std::to_string(sdc)});
  table.add_row({"significant SDCs (>1e-6 rel)", std::to_string(significant)});
  table.add_row(
      {"detected by ABFT",
       std::to_string(detected) + " (" +
           util::fmt_percent(significant ? double(detected) / significant
                                         : 0.0) +
           ")"});
  table.add_row(
      {"fully corrected",
       std::to_string(fully_corrected) + " (" +
           util::fmt_percent(
               significant ? double(fully_corrected) / significant : 0.0) +
           ")"});
  table.add_row({"detected but uncorrectable",
                 std::to_string(detected_uncorrectable)});
  for (int p = 1; p < analysis::kPatternCount; ++p) {
    const auto pattern = static_cast<analysis::ErrorPattern>(p);
    table.add_row({"pattern " + std::string(analysis::to_string(pattern)) +
                       " injected/corrected",
                   std::to_string(injected_patterns.count(pattern)) + " / " +
                       std::to_string(corrected_patterns.count(pattern))});
  }
  bench::print_table(table);

  // ---- Overheads ----
  util::Table overhead("Sec. 6.1 - Mitigation overheads (DGEMM n=64)");
  overhead.set_header({"configuration", "time [ms]", "overhead"});
  auto run_gemm = [&](work::Dgemm& gemm) {
    phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
    fi::ProgressTracker progress;
    progress.reset(gemm.total_steps());
    gemm.run(device, progress);
    progress.finish();
  };
  const auto t0 = Clock::now();
  constexpr int kReps = 10;
  for (int rep = 0; rep < kReps; ++rep) {
    work::Dgemm gemm(kN, 32);
    gemm.setup(kInputSeed);
    run_gemm(gemm);
  }
  const double base_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
      kReps;

  const auto t1 = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    work::Dgemm gemm(kN, 32);
    gemm.setup(kInputSeed);
    const mitigation::AbftGemm abft(gemm.a(), gemm.b(), kN);
    run_gemm(gemm);
    (void)abft.check_and_correct(gemm.c());
  }
  const double abft_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t1).count() /
      kReps;

  const auto t2 = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    work::Dgemm gemm(kN, 32);
    gemm.setup(kInputSeed);
    run_gemm(gemm);
    work::Dgemm gemm2(kN, 32);  // redundant execution + compare
    gemm2.setup(kInputSeed);
    run_gemm(gemm2);
    (void)std::memcmp(gemm.output_bytes().data(),
                      gemm2.output_bytes().data(),
                      gemm.output_bytes().size());
  }
  const double rmt_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t2).count() /
      kReps;

  overhead.add_row({"plain DGEMM", util::fmt(base_ms, 2), "1.00x"});
  overhead.add_row({"DGEMM + ABFT checksums", util::fmt(abft_ms, 2),
                    util::fmt(abft_ms / base_ms, 2) + "x"});
  overhead.add_row({"DGEMM duplicated (RMT-style)", util::fmt(rmt_ms, 2),
                    util::fmt(rmt_ms / base_ms, 2) + "x"});
  bench::print_table(overhead);
  return 0;
}

// Fig. 4 — Outcomes of fault injections: the percentage of injected faults
// that are Masked, cause an SDC, or cause a DUE, for each of the six
// benchmarks. Paper reference points: masked ~75% for CLAMR and HotSpot,
// DGEMM the least masked (~40%, i.e. ~60% of injections cause an error),
// LavaMD ~85% masked, and DUE >= SDC for most benchmarks except DGEMM.
#include <chrono>

#include "analysis/pvf.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  util::Table table(
      "Fig. 4 - Fault injection outcomes (% of injected faults)");
  table.set_header({"benchmark", "trials", "masked", "sdc", "due",
                    "not_injected_retries", "seconds"});

  for (const auto& info : work::all_workloads()) {
    const auto start = std::chrono::steady_clock::now();
    const fi::CampaignResult result = bench::run_campaign(info, 0xf160415);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    table.add_row({std::string(info.name),
                   std::to_string(result.overall.total()),
                   util::fmt_percent(result.overall.masked_rate()),
                   util::fmt_percent(result.overall.sdc_rate()),
                   util::fmt_percent(result.overall.due_rate()),
                   std::to_string(result.not_injected),
                   util::fmt(seconds, 1)});
  }
  bench::print_table(table);
  return 0;
}

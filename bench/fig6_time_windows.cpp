// Fig. 6a/6b — Program Vulnerability Factor per execution-time window:
// the benchmark's run is split into equal windows (CLAMR 9, DGEMM/HotSpot
// 5, LUD/NW 4) and the PVF of faults injected within each window is
// reported separately for SDC and DUE.
//
// Paper reference points: CLAMR peaks at window 3 (when the number of
// active cells peaks) and declines after; DGEMM's SDC PVF is flat across
// windows while its DUE PVF is lower at the start; LUD is most critical in
// the middle of its execution; NW starts low and stabilizes; HotSpot is
// roughly flat. LavaMD is not part of this figure in the paper.
#include <vector>

#include "analysis/pvf.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  std::vector<fi::CampaignResult> results;
  for (const auto& info : work::all_workloads()) {
    if (info.name == "LavaMD") continue;  // not in the paper's Fig. 6
    results.push_back(bench::run_campaign(info, 0xf166));
  }

  for (const bool sdc : {true, false}) {
    util::Table table(std::string("Fig. 6") + (sdc ? "a - SDC" : "b - DUE") +
                      " PVF [%] per execution-time window");
    std::vector<std::string> header = {"benchmark"};
    for (int w = 1; w <= 9; ++w) header.push_back("w" + std::to_string(w));
    table.set_header(header);

    for (const fi::CampaignResult& result : results) {
      std::vector<std::string> row = {result.workload};
      for (std::size_t w = 0; w < 9; ++w) {
        if (w >= result.by_window.size()) {
          row.push_back("-");
          continue;
        }
        const auto& tally = result.by_window[w];
        const double pvf = sdc ? analysis::sdc_pvf(tally).point
                               : analysis::due_pvf(tally).point;
        row.push_back(util::fmt(pvf, 1) + " (" +
                      std::to_string(tally.total()) + ")");
      }
      table.add_row(row);
    }
    bench::print_table(table);
  }
  return 0;
}

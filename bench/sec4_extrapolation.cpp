// Sec. 4.2 (text) — Machine-scale extrapolation of the measured FIT rates:
// for a Trinity-size machine (19,000 Xeon Phi boards at sea level) the
// paper expects an LUD SDC or a HotSpot DUE roughly every 11-12 days; a
// hypothetical exascale machine with 10x the boards sees almost daily
// events.
#include "analysis/fit.hpp"
#include "bench/bench_common.hpp"
#include "radiation/beam_campaign.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);

  util::Table table(
      "Sec. 4.2 - Machine-scale MTBF extrapolation (days between events)");
  table.set_header({"benchmark", "sdc_fit", "due_fit", "board MTBF [yr]",
                    "Trinity 19k SDC [d]", "Trinity 19k DUE [d]",
                    "exascale 190k SDC [d]", "exascale 190k DUE [d]"});

  for (const auto& info : work::all_workloads()) {
    if (!info.beam_tested) continue;
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();
    radiation::BeamConfig config;
    config.seed = 0x5ec4 + static_cast<std::uint64_t>(info.name[0]);
    config.min_sdc = bench::beam_min_sdc();
    config.min_due = bench::beam_min_due();
    radiation::BeamCampaign campaign(supervisor, sensitivity, config);
    const radiation::BeamResult result = campaign.run();

    const double total_fit = result.sdc_fit.fit + result.due_fit.fit;
    table.add_row(
        {std::string(info.name), util::fmt(result.sdc_fit.fit, 1),
         util::fmt(result.due_fit.fit, 1),
         util::fmt(total_fit > 0 ? 1e9 / total_fit / 24.0 / 365.0 : 0.0, 1),
         util::fmt(analysis::machine_mtbf_days(result.sdc_fit.fit, 19000), 1),
         util::fmt(analysis::machine_mtbf_days(result.due_fit.fit, 19000), 1),
         util::fmt(analysis::machine_mtbf_days(result.sdc_fit.fit, 190000),
                   2),
         util::fmt(analysis::machine_mtbf_days(result.due_fit.fit, 190000),
                   2)});
  }
  bench::print_table(table);
  return 0;
}

// Sec. 3.2 / 4.2 — Benchmark characterization: the paper classifies its
// workloads by computation/communication pattern (DGEMM compute-bound,
// HotSpot memory-bound with low arithmetic intensity, CLAMR iterative with
// evolving mesh) and uses that to interpret the FIT differences. This bench
// prints the measured characteristics on the emulated device: arithmetic
// intensity from the device counters, kernel launches, output geometry,
// and the injection-surface breakdown (how many bytes of each category a
// fault can land in).
#include <map>

#include "bench/bench_common.hpp"
#include "core/injection_site.hpp"
#include "core/progress.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  util::Table table("Sec. 3.2 - Workload characterization");
  table.set_header({"benchmark", "flops", "bytes", "arith intensity",
                    "launches", "output", "windows", "sites",
                    "data bytes", "control bytes"});

  for (const auto& info : work::all_workloads()) {
    auto workload = info.factory();
    workload->setup(42);
    phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
    fi::ProgressTracker progress;
    progress.reset(workload->total_steps());
    workload->run(device, progress);
    progress.finish();
    const phi::CounterSnapshot counters = device.counters().snapshot();

    fi::SiteRegistry registry;
    workload->register_sites(registry);
    std::size_t control_bytes = 0;
    std::size_t data_bytes = 0;
    for (const auto& site : registry.sites()) {
      if (site.frame == fi::FrameKind::kWorker ||
          site.category == "control" || site.category == "pointer" ||
          site.category == "constant") {
        control_bytes += site.bytes;
      } else {
        data_bytes += site.bytes;
      }
    }

    const util::Shape shape = workload->output_shape();
    const std::string geometry =
        std::to_string(shape.width) +
        (shape.height > 1 ? "x" + std::to_string(shape.height) : "") +
        (shape.depth > 1 ? "x" + std::to_string(shape.depth) : "") + " " +
        std::string(to_string(workload->output_type()));

    table.add_row({std::string(info.name), std::to_string(counters.flops),
                   std::to_string(counters.bytes_read +
                                  counters.bytes_written),
                   util::fmt(counters.arithmetic_intensity(), 2),
                   std::to_string(counters.kernel_launches), geometry,
                   std::to_string(workload->time_windows()),
                   std::to_string(registry.size()),
                   std::to_string(data_bytes),
                   std::to_string(control_bytes)});
  }
  bench::print_table(table);
  return 0;
}

// Ablation — victim-selection policy (DESIGN.md decision #1).
//
// CAROL-FI picks thread -> frame -> variable, which massively over-weights
// small replicated control state relative to a raw memory-strike model. The
// choice drives the headline criticality results (DGEMM's nine loop
// variables, Sec. 6), so this bench re-runs the DGEMM and LavaMD campaigns
// under each selection policy and reports how the outcome split and the
// control-variable share move.
#include "bench/bench_common.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const fi::SelectionPolicy policies[] = {
      fi::SelectionPolicy::kCarolFi, fi::SelectionPolicy::kBytesWeighted,
      fi::SelectionPolicy::kGlobalBytesWeighted,
      fi::SelectionPolicy::kWorkerFrameOnly};

  for (const char* workload_name : {"DGEMM", "LavaMD"}) {
    util::Table table("Ablation: selection policy - " +
                      std::string(workload_name));
    table.set_header({"policy", "masked", "sdc", "due",
                      "control+pointer share", "control+pointer due_rate"});

    fi::TrialSupervisor supervisor(work::find_workload(workload_name),
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();

    for (fi::SelectionPolicy policy : policies) {
      fi::CampaignConfig config = bench::bench_campaign_config(0xab1a);
      config.policy = policy;
      const fi::CampaignResult result =
          fi::Campaign(supervisor, config).run();

      fi::OutcomeTally control;
      for (const auto& [category, tally] : result.by_category) {
        if (category == "control" || category == "pointer") {
          control += tally;
        }
      }
      const double share =
          result.overall.total() == 0
              ? 0.0
              : static_cast<double>(control.total()) /
                    result.overall.total();
      table.add_row({std::string(to_string(policy)),
                     util::fmt_percent(result.overall.masked_rate()),
                     util::fmt_percent(result.overall.sdc_rate()),
                     util::fmt_percent(result.overall.due_rate()),
                     util::fmt_percent(share),
                     util::fmt_percent(control.due_rate())});
    }
    bench::print_table(table);
  }
  return 0;
}

// Sec. 6 — Per-code-portion criticality for each benchmark: the conditional
// SDC/DUE rates of faults injected into each source-level category, plus
// the mitigation recommendation the profile implies (Sec. 6.1).
//
// Paper reference points: DGEMM matrices 43% SDC / 19% DUE, control 38%/38%;
// CLAMR Sort 39%/43%, Tree 20%/41%, other mesh 33%/28%; HotSpot control and
// constants ~30%/40%; LavaMD charge+distance responsible for 57% of SDCs;
// LUD matrices 54%/28%, control 24%/36%; NW matrices with SDC ~ DUE.
#include "analysis/criticality.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  for (const auto& info : work::all_workloads()) {
    const fi::CampaignResult result = bench::run_campaign(info, 0x5ec6);
    const bool algebraic = info.name == "DGEMM" || info.name == "LUD";

    util::Table table("Sec. 6 criticality - " + std::string(info.name));
    table.set_header({"category", "injections", "share", "sdc_rate",
                      "due_rate", "recommended mitigation"});
    for (const auto& row : analysis::criticality_table(result, 5)) {
      table.add_row({row.category, std::to_string(row.injections),
                     util::fmt_percent(row.injection_share),
                     util::fmt_percent(row.sdc_rate),
                     util::fmt_percent(row.due_rate),
                     analysis::recommend_mitigation(row, algebraic)});
    }
    bench::print_table(table);
  }
  return 0;
}

// Fig. 2 — Neutron-beam FIT rates for the five beam-tested benchmarks:
// SDC FIT split by spatial error pattern (cubic / square / line / single /
// random) plus DUE FIT, at sea level.
//
// Paper reference points: LUD and HotSpot have the highest SDC FIT (peak
// ~193); CLAMR the lowest SDC FIT; HotSpot the highest DUE FIT; DGEMM and
// LavaMD the lowest DUE FIT; fewer than 10% of corrupted executions have a
// single wrong element; LavaMD is the only benchmark with cubic patterns.
#include "bench/bench_common.hpp"
#include "radiation/beam_campaign.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);

  util::Table table("Fig. 2 - Beam FIT rates and spatial patterns");
  table.set_header({"benchmark", "sdc_fit", "due_fit", "cubic", "square",
                    "line", "single", "random", "single_elem_sdc%", "runs",
                    "executed"});

  for (const auto& info : work::all_workloads()) {
    if (!info.beam_tested) continue;
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();

    radiation::BeamConfig config;
    config.seed = 0xbea2 + static_cast<std::uint64_t>(info.name[0]);
    config.min_sdc = bench::beam_min_sdc();
    config.min_due = bench::beam_min_due();
    radiation::BeamCampaign campaign(supervisor, sensitivity, config);
    const radiation::BeamResult result = campaign.run();

    auto pattern_fit = [&result](analysis::ErrorPattern pattern) {
      return util::fmt(result.pattern_fit(pattern), 1);
    };
    table.add_row(
        {std::string(info.name),
         util::fmt_interval(result.sdc_fit.fit, result.sdc_fit.fit_lo,
                            result.sdc_fit.fit_hi, 1),
         util::fmt_interval(result.due_fit.fit, result.due_fit.fit_lo,
                            result.due_fit.fit_hi, 1),
         pattern_fit(analysis::ErrorPattern::kCubic),
         pattern_fit(analysis::ErrorPattern::kSquare),
         pattern_fit(analysis::ErrorPattern::kLine),
         pattern_fit(analysis::ErrorPattern::kSingle),
         pattern_fit(analysis::ErrorPattern::kRandom),
         util::fmt_percent(result.single_element_fraction),
         std::to_string(result.runs), std::to_string(result.executions)});
  }
  bench::print_table(table);
  return 0;
}

// Sec. 7 (future work, implemented here) — Validate the mitigation
// techniques derived from the criticality analysis by re-running the fault
// injection campaign against hardened variants:
//
//   DGEMM+ABFT     — checksum repair of data faults, clean abort otherwise;
//   HotSpot+DWC    — TMR'd constants + per-iteration control scrubbing;
//   CLAMR+guards   — bounds-checked Tree, audited Sort, clamped sweep.
//
// The interesting deltas: hardened SDC rate should collapse (faults become
// masked via repair, or detected/DUE via clean aborts), and the runtime
// overhead should stay near the paper's "fair overhead" claim — far below
// the 2x of blanket replication.
#include <chrono>

#include "analysis/compare.hpp"
#include "bench/bench_common.hpp"
#include "core/progress.hpp"
#include "workloads/hardened.hpp"

namespace {

using namespace phifi;

double golden_seconds(fi::WorkloadFactory factory) {
  auto workload = factory();
  workload->setup(0x900d5eedULL);
  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(workload->total_steps());
  const auto start = std::chrono::steady_clock::now();
  workload->run(device, progress);
  progress.finish();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  util::init_log_from_env();

  struct Pair {
    const char* label;
    fi::WorkloadFactory baseline;
    fi::WorkloadFactory hardened;
  };
  const Pair pairs[] = {
      {"DGEMM vs DGEMM+ABFT", work::find_workload("DGEMM"),
       &work::make_abft_dgemm},
      {"HotSpot vs HotSpot+DWC", work::find_workload("HotSpot"),
       &work::make_hardened_hotspot},
      {"CLAMR vs CLAMR+guards", work::find_workload("CLAMR"),
       &work::make_hardened_clamr},
      {"LavaMD vs LavaMD+RMT", work::find_workload("LavaMD"),
       &work::make_rmt_lavamd},
  };

  util::Table table("Sec. 7 - Hardening validation under fault injection");
  table.set_header({"configuration", "masked", "sdc (bitwise)",
                    "sdc (>1e-6 rel)", "due", "significant-sdc reduction",
                    "runtime overhead"});

  for (const Pair& pair : pairs) {
    double base_significant = 0.0;
    double base_seconds = 0.0;
    for (const bool hardened : {false, true}) {
      const fi::WorkloadFactory factory =
          hardened ? pair.hardened : pair.baseline;
      fi::TrialSupervisor supervisor(factory,
                                     bench::bench_supervisor_config());
      supervisor.prepare_golden();
      fi::Campaign campaign(supervisor,
                            bench::bench_campaign_config(0x5ec7));
      // ABFT repairs leave float rounding residue that the bitwise
      // classifier still flags; count SDCs whose worst element exceeds a
      // 1e-6 relative tolerance as the "significant" ones.
      std::size_t significant = 0;
      const fi::CampaignResult result = campaign.run(
          [&](const fi::TrialResult& trial,
              std::span<const std::byte> output) {
            if (trial.outcome != fi::Outcome::kSdc) return;
            const analysis::Comparison comparison =
                analysis::compare_outputs(supervisor.golden(), output,
                                          supervisor.output_type());
            significant += comparison.is_sdc_at(1e-6);
          });
      const double seconds = golden_seconds(factory);
      const double significant_rate =
          result.overall.total() == 0
              ? 0.0
              : static_cast<double>(significant) / result.overall.total();

      std::string reduction = "-";
      std::string overhead = "1.00x";
      if (hardened) {
        reduction = base_significant > 0.0
                        ? util::fmt_percent(
                              1.0 - significant_rate / base_significant)
                        : "n/a";
        overhead =
            util::fmt(base_seconds > 0 ? seconds / base_seconds : 0.0, 2) +
            "x";
      } else {
        base_significant = significant_rate;
        base_seconds = seconds;
      }
      table.add_row({result.workload,
                     util::fmt_percent(result.overall.masked_rate()),
                     util::fmt_percent(result.overall.sdc_rate()),
                     util::fmt_percent(significant_rate),
                     util::fmt_percent(result.overall.due_rate()), reduction,
                     overhead});
    }
  }
  bench::print_table(table);
  return 0;
}

// Sec. 5.1 (text) — CAROL-FI's runtime overhead: about 4x the native
// execution time on average, at most 8x. The overhead sources differ
// (GDB + disabled optimizations there; fork isolation, volatile control
// accesses, and progress instrumentation here) but the claim under test is
// the same: the injector keeps trials cheap enough for 10k-trial campaigns.
#include <chrono>

#include "bench/bench_common.hpp"
#include "core/progress.hpp"

int main() {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;
  util::init_log_from_env();

  util::Table table("Sec. 5.1 - Injector overhead per trial");
  table.set_header({"benchmark", "native [ms]", "supervised trial [ms]",
                    "overhead", "trials/s"});

  for (const auto& info : work::all_workloads()) {
    // Native: setup + run in-process, no supervisor, no fork.
    const auto native_start = Clock::now();
    constexpr int kNativeReps = 5;
    for (int rep = 0; rep < kNativeReps; ++rep) {
      auto workload = info.factory();
      workload->setup(1234);
      phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
      fi::ProgressTracker progress;
      progress.reset(workload->total_steps());
      workload->run(device, progress);
      progress.finish();
    }
    const double native_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  native_start)
            .count() /
        kNativeReps;

    // Supervised: full fork + flip + classify cycle.
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();
    const auto trial_start = Clock::now();
    constexpr int kTrialReps = 20;
    for (int rep = 0; rep < kTrialReps; ++rep) {
      fi::TrialConfig trial;
      trial.trial_seed = 5000 + rep;
      trial.model = fi::FaultModel::kSingle;
      (void)supervisor.run_trial(trial);
    }
    const double trial_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - trial_start)
            .count() /
        kTrialReps;

    table.add_row({std::string(info.name), util::fmt(native_ms, 2),
                   util::fmt(trial_ms, 2),
                   util::fmt(native_ms > 0 ? trial_ms / native_ms : 0.0, 2) +
                       "x",
                   util::fmt(trial_ms > 0 ? 1000.0 / trial_ms : 0.0, 0)});
  }
  bench::print_table(table);
  return 0;
}

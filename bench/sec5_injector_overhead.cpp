// Sec. 5.1 (text) — CAROL-FI's runtime overhead: about 4x the native
// execution time on average, at most 8x. The overhead sources differ
// (GDB + disabled optimizations there; fork isolation, volatile control
// accesses, and progress instrumentation here) but the claim under test is
// the same: the injector keeps trials cheap enough for 10k-trial campaigns.
//
// The second table isolates the *supervisor's* own CPU cost: the parent's
// CPU time per trial under the legacy fixed 200µs watchdog poll vs. the
// adaptive schedule (coarse sleeps far from the expected completion time,
// ~20 polls across the expected runtime near it), and the reduction the
// adaptive poll buys. Parent CPU is proportional to watchdog wakeups, so
// the saving grows with trial duration.
//
// The third table measures the telemetry subsystem's cost: campaign trial
// time with tracing + metrics disabled (the nullptr fast path, which must
// stay within noise of the pre-telemetry injector) vs. enabled (NDJSON
// trace + metrics registry + watchdog histograms), so every observability
// claim ships with its measured price.
//
// The fourth table measures the observatory's cost the same way: trials
// with the streaming estimator + an always-evaluated (never-firing)
// sequential stop rule vs. the nullptr fast path, emitted to
// BENCH_observatory.json.
//
// The fifth table prices the latency anatomy profiler (docs/PROFILING.md)
// the same way: campaign trial time with the accumulate-only profiler on
// vs. the nullptr fast path, emitted to BENCH_profiler.json — the
// profiler's "integer adds only" claim, measured.
//
// The sixth table measures multi-worker scheduler scaling: campaign
// throughput (trials/s) at --jobs 1/2/4/8 with a group-commit (kBatch)
// journal, telemetry off and on. Trial children are genuinely concurrent
// forks, so speedup tracks the host's core count — on a 4-core host jobs=4
// should reach >= 3x the jobs=1 throughput; on a 1-core container it stays
// near 1x by construction. The table also lands in BENCH_parallel.json so
// the perf trajectory is recorded run over run.
// The seventh table prices the fleet observability plane (docs/
// FLEET_OBSERVABILITY.md): one coordinator + one forked worker over a
// loopback unix socket, sweeping the worker's STATS snapshot interval
// (off / 1s / 250ms). STATS frames ride the heartbeat timer off the trial
// hot path, so throughput should be flat across the sweep; the table and
// BENCH_fabric_observability.json make that claim measurable run over run.
//
// The eighth table prices the trial fast path (docs/PARALLELISM.md):
// trials/s with the fork-server on vs. the legacy cold-start child, per
// workload at deliberately small instance sizes — setup + register_sites
// dominate short trials, which is exactly the regime the fast path
// amortizes. Emitted to BENCH_fastpath.json.
#include <sys/resource.h>
#include <sys/wait.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/campaign_journal.hpp"
#include "core/progress.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/options.hpp"
#include "fabric/worker.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"
#include "workloads/clamr_workload.hpp"
#include "workloads/dgemm.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lud.hpp"
#include "workloads/nw.hpp"

namespace {

/// Parent-process CPU seconds (user + system), excluding children.
double self_cpu_seconds() {
  rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

/// Runs reps supervised trials under the given poll mode and returns the
/// parent's CPU milliseconds per trial.
double watchdog_cpu_ms_per_trial(const phifi::work::WorkloadInfo& info,
                                 phifi::fi::WatchdogPoll poll, int reps) {
  using namespace phifi;
  fi::SupervisorConfig config = bench::bench_supervisor_config();
  config.poll = poll;
  fi::TrialSupervisor supervisor(info.factory, config);
  supervisor.prepare_golden();
  const double cpu_start = self_cpu_seconds();
  for (int rep = 0; rep < reps; ++rep) {
    fi::TrialConfig trial;
    trial.trial_seed = 9000 + rep;
    trial.model = fi::FaultModel::kSingle;
    (void)supervisor.run_trial(trial);
  }
  return (self_cpu_seconds() - cpu_start) * 1000.0 / reps;
}

/// Wall-clock milliseconds per trial of a small campaign, with telemetry
/// fully off (`telemetry=false`) or fully on: metrics registry attached to
/// both supervisor and campaign, NDJSON trace to a temp file.
double campaign_ms_per_trial(const phifi::work::WorkloadInfo& info,
                             bool telemetry, std::size_t trials,
                             std::uint64_t seed) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;

  telemetry::MetricsRegistry metrics;
  std::unique_ptr<telemetry::TraceWriter> trace;
  char trace_path[] = "/tmp/phifi_sec5_trace_XXXXXX";
  if (telemetry) {
    const int fd = ::mkstemp(trace_path);
    if (fd >= 0) ::close(fd);
    trace = std::make_unique<telemetry::TraceWriter>(trace_path);
  }

  fi::SupervisorConfig sup_config = bench::bench_supervisor_config();
  if (telemetry) sup_config.metrics = &metrics;
  fi::TrialSupervisor supervisor(info.factory, sup_config);
  supervisor.prepare_golden();

  fi::CampaignConfig config = bench::bench_campaign_config(seed);
  config.trials = trials;
  if (telemetry) {
    config.metrics = &metrics;
    config.trace = trace.get();
  }
  fi::Campaign campaign(supervisor, config);

  const auto start = Clock::now();
  (void)campaign.run();
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count() /
      static_cast<double>(trials);
  if (telemetry) ::unlink(trace_path);
  return ms;
}

/// Wall-clock milliseconds per trial with the observatory attached: the
/// streaming CampaignEstimator fed from the commit path plus a sequential
/// stop rule armed with an epsilon so small it never fires — so every
/// committed trial pays the per-commit Wilson evaluation, the worst case.
double estimator_ms_per_trial(const phifi::work::WorkloadInfo& info,
                              bool estimator_on, std::size_t trials,
                              std::uint64_t seed) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;

  telemetry::CampaignEstimator estimator;
  fi::SupervisorConfig sup_config = bench::bench_supervisor_config();
  fi::TrialSupervisor supervisor(info.factory, sup_config);
  supervisor.prepare_golden();

  fi::CampaignConfig config = bench::bench_campaign_config(seed);
  config.trials = trials;
  if (estimator_on) {
    config.estimator = &estimator;
    config.stop_ci_width = 1e-9;  // evaluated every commit, never reached
  }
  fi::Campaign campaign(supervisor, config);

  const auto start = Clock::now();
  (void)campaign.run();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
             .count() /
         static_cast<double>(trials);
}

/// Wall-clock milliseconds per trial with the latency anatomy profiler
/// attached (accumulate-only, the file-less mode the fabric workers use)
/// vs. the nullptr fast path. The profiler claims pure integer adds per
/// commit; this table is where that claim gets a measured price.
double profiler_ms_per_trial(const phifi::work::WorkloadInfo& info,
                             bool profiler_on, std::size_t trials,
                             std::uint64_t seed) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;

  telemetry::TrialProfiler profiler;
  fi::TrialSupervisor supervisor(info.factory,
                                 bench::bench_supervisor_config());
  supervisor.prepare_golden();

  fi::CampaignConfig config = bench::bench_campaign_config(seed);
  config.trials = trials;
  if (profiler_on) config.profiler = &profiler;
  fi::Campaign campaign(supervisor, config);

  const auto start = Clock::now();
  (void)campaign.run();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
             .count() /
         static_cast<double>(trials);
}

/// Campaign throughput (trials per wall-clock second) with `jobs` workers
/// in flight and a group-commit journal, telemetry off or on.
double parallel_trials_per_sec(const phifi::work::WorkloadInfo& info,
                               unsigned jobs, bool telemetry,
                               std::size_t trials, std::uint64_t seed) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;

  telemetry::MetricsRegistry metrics;
  std::unique_ptr<telemetry::TraceWriter> trace;
  char trace_path[] = "/tmp/phifi_sec5_ptrace_XXXXXX";
  if (telemetry) {
    const int fd = ::mkstemp(trace_path);
    if (fd >= 0) ::close(fd);
    trace = std::make_unique<telemetry::TraceWriter>(trace_path);
  }
  char journal_path[] = "/tmp/phifi_sec5_pjournal_XXXXXX";
  {
    const int fd = ::mkstemp(journal_path);
    if (fd >= 0) ::close(fd);
  }

  fi::SupervisorConfig sup_config = bench::bench_supervisor_config();
  if (telemetry) sup_config.metrics = &metrics;
  fi::TrialSupervisor supervisor(info.factory, sup_config);
  supervisor.prepare_golden();

  fi::CampaignConfig config = bench::bench_campaign_config(seed);
  config.trials = trials;
  config.jobs = jobs;
  config.journal_path = journal_path;
  config.journal_fsync = fi::JournalFsync::kBatch;
  if (telemetry) {
    config.metrics = &metrics;
    config.trace = trace.get();
  }
  fi::Campaign campaign(supervisor, config);

  const auto start = Clock::now();
  (void)campaign.run();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  ::unlink(journal_path);
  if (telemetry) ::unlink(trace_path);
  return seconds > 0.0 ? static_cast<double>(trials) / seconds : 0.0;
}

/// Fabric campaign throughput with one forked worker shipping STATS
/// snapshots every `stats_interval` seconds (0 = off). The coordinator
/// runs in this process; wall clock spans its whole lifetime, so any
/// snapshot cost — worker-side encode or coordinator-side fold — lands in
/// the number.
double fabric_trials_per_sec(const phifi::work::WorkloadInfo& info,
                             double stats_interval, std::size_t trials,
                             std::uint64_t seed) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;

  const std::string tag = std::to_string(::getpid()) + "_" +
                          std::to_string(static_cast<int>(
                              stats_interval * 1000.0));
  const std::string socket_path = "/tmp/phifi_sec5_fab_" + tag + ".sock";
  const std::string shard_path = "/tmp/phifi_sec5_fab_" + tag + ".jnl";
  ::unlink(socket_path.c_str());
  ::unlink(shard_path.c_str());

  fi::CampaignConfig config = bench::bench_campaign_config(seed);
  config.trials = trials;

  fi::TrialSupervisor supervisor(info.factory,
                                 bench::bench_supervisor_config());
  supervisor.prepare_golden();
  const std::uint64_t fingerprint = fi::campaign_fingerprint(
      config, supervisor.workload_name(), supervisor.time_windows());

  fabric::FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.lease_size = 8;

  const auto start = Clock::now();
  const pid_t worker = ::fork();
  if (worker == 0) {
    fabric::FabricOptions worker_options = coordinator_options;
    worker_options.shard_path = shard_path;
    worker_options.stats_interval_seconds = stats_interval;
    fi::TrialSupervisor child_supervisor(info.factory,
                                         bench::bench_supervisor_config());
    child_supervisor.prepare_golden();
    std::ostringstream sink;
    const fabric::WorkerResult result = fabric::run_worker(
        child_supervisor, config, fingerprint, worker_options, nullptr,
        nullptr, sink);
    ::_exit(result.complete ? 0 : 1);
  }

  std::ostringstream sink;
  const fabric::CoordinatorResult result = fabric::run_coordinator(
      config, fingerprint, coordinator_options, nullptr, nullptr, nullptr,
      nullptr, sink);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  int status = 0;
  ::waitpid(worker, &status, 0);
  ::unlink(socket_path.c_str());
  ::unlink(shard_path.c_str());
  if (!result.complete) return 0.0;
  return seconds > 0.0 ? static_cast<double>(trials) / seconds : 0.0;
}

// Small-instance factories for the fast-path table. Short trials are where
// the per-trial setup + register_sites cost dominates, so they bound the
// speedup the fork server can buy; the registry's default sizes would bury
// it under run time.
std::unique_ptr<phifi::fi::Workload> make_small_dgemm() {
  return std::make_unique<phifi::work::Dgemm>(32);
}
std::unique_ptr<phifi::fi::Workload> make_small_hotspot() {
  return std::make_unique<phifi::work::HotSpot>(32, 32);
}
std::unique_ptr<phifi::fi::Workload> make_small_lud() {
  return std::make_unique<phifi::work::Lud>(32);
}
std::unique_ptr<phifi::fi::Workload> make_small_nw() {
  return std::make_unique<phifi::work::Nw>(64);
}
// Deep-refinement CLAMR at one timestep: AmrMesh preallocates every array
// at fully-refined capacity ((base << refine)^2 cells) so injection-site
// pointers stay stable, and setup() serially dry-runs the step schedule to
// learn progress weights. Both costs scale with capacity while the measured
// step scales with the few hundred ACTIVE cells — the cold-start-dominated
// regime of the paper's real runs (where input loading and mesh building
// take seconds), miniaturized. This is where the fork server pays off
// hardest: the template pays allocation + dry run once, grandchildren
// inherit it all by COW.
std::unique_ptr<phifi::fi::Workload> make_clamr_refine4() {
  phifi::work::clamr::MeshParams params;
  params.max_refine = 4;
  return std::make_unique<phifi::work::Clamr>(params, 1);
}
std::unique_ptr<phifi::fi::Workload> make_clamr_refine5() {
  phifi::work::clamr::MeshParams params;
  params.max_refine = 5;
  return std::make_unique<phifi::work::Clamr>(params, 1);
}

struct FastpathWorkload {
  const char* name;
  phifi::fi::WorkloadFactory factory;
};

constexpr FastpathWorkload kFastpathWorkloads[] = {
    {"DGEMM(32)", &make_small_dgemm},
    {"HotSpot(32x32)", &make_small_hotspot},
    {"LUD(32)", &make_small_lud},
    {"NW(64)", &make_small_nw},
    {"CLAMR(16,+4,1step)", &make_clamr_refine4},
    {"CLAMR(16,+5,1step)", &make_clamr_refine5},
};

/// Trials per wall-clock second through run_trial with the fast path on or
/// off. One unmeasured warm-up trial first, so template spawn (fast) and
/// page-cache effects (legacy) stay out of the steady-state rate; `mode`
/// reports how the supervisor resolved the fork mode.
double fastpath_trials_per_sec(phifi::fi::WorkloadFactory factory, bool fast,
                               int reps, std::string* mode) {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;
  fi::SupervisorConfig config = bench::bench_supervisor_config();
  config.trial_fast_path = fast;
  fi::TrialSupervisor supervisor(factory, config);
  supervisor.prepare_golden();
  {
    fi::TrialConfig warmup;
    warmup.trial_seed = 4999;
    (void)supervisor.run_trial(warmup);
  }
  const auto start = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    fi::TrialConfig trial;
    trial.trial_seed = 5000 + rep;
    trial.model = fi::FaultModel::kSingle;
    (void)supervisor.run_trial(trial);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (mode != nullptr) {
    *mode = std::string(fi::to_string(supervisor.fork_mode()));
  }
  return seconds > 0.0 ? static_cast<double>(reps) / seconds : 0.0;
}

}  // namespace

int main() {
  using namespace phifi;
  using Clock = std::chrono::steady_clock;
  util::init_log_from_env();

  util::Table table("Sec. 5.1 - Injector overhead per trial");
  table.set_header({"benchmark", "native [ms]", "supervised trial [ms]",
                    "overhead", "trials/s"});

  for (const auto& info : work::all_workloads()) {
    // Native: setup + run in-process, no supervisor, no fork.
    const auto native_start = Clock::now();
    constexpr int kNativeReps = 5;
    for (int rep = 0; rep < kNativeReps; ++rep) {
      auto workload = info.factory();
      workload->setup(1234);
      phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
      fi::ProgressTracker progress;
      progress.reset(workload->total_steps());
      workload->run(device, progress);
      progress.finish();
    }
    const double native_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  native_start)
            .count() /
        kNativeReps;

    // Supervised: full fork + flip + classify cycle.
    fi::TrialSupervisor supervisor(info.factory,
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();
    const auto trial_start = Clock::now();
    constexpr int kTrialReps = 20;
    for (int rep = 0; rep < kTrialReps; ++rep) {
      fi::TrialConfig trial;
      trial.trial_seed = 5000 + rep;
      trial.model = fi::FaultModel::kSingle;
      (void)supervisor.run_trial(trial);
    }
    const double trial_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - trial_start)
            .count() /
        kTrialReps;

    table.add_row({std::string(info.name), util::fmt(native_ms, 2),
                   util::fmt(trial_ms, 2),
                   util::fmt(native_ms > 0 ? trial_ms / native_ms : 0.0, 2) +
                       "x",
                   util::fmt(trial_ms > 0 ? 1000.0 / trial_ms : 0.0, 0)});
  }
  bench::print_table(table);

  util::Table watchdog("Supervisor watchdog CPU per trial (parent process)");
  watchdog.set_header({"benchmark", "fixed poll [ms]", "adaptive poll [ms]",
                       "reduction"});
  constexpr int kWatchdogReps = 20;
  for (const auto& info : work::all_workloads()) {
    const double fixed_ms = watchdog_cpu_ms_per_trial(
        info, fi::WatchdogPoll::kFixed, kWatchdogReps);
    const double adaptive_ms = watchdog_cpu_ms_per_trial(
        info, fi::WatchdogPoll::kAdaptive, kWatchdogReps);
    const double reduction =
        fixed_ms > 0.0 ? 1.0 - adaptive_ms / fixed_ms : 0.0;
    watchdog.add_row({std::string(info.name), util::fmt(fixed_ms, 3),
                      util::fmt(adaptive_ms, 3),
                      util::fmt_percent(reduction)});
  }
  bench::print_table(watchdog);

  util::Table telem("Telemetry overhead per trial (trace + metrics)");
  telem.set_header({"benchmark", "telemetry off [ms]", "telemetry on [ms]",
                    "overhead"});
  constexpr std::size_t kTelemetryTrials = 40;
  for (const auto& info : work::all_workloads()) {
    const double off_ms =
        campaign_ms_per_trial(info, /*telemetry=*/false, kTelemetryTrials,
                              /*seed=*/777);
    const double on_ms =
        campaign_ms_per_trial(info, /*telemetry=*/true, kTelemetryTrials,
                              /*seed=*/777);
    const double overhead = off_ms > 0.0 ? on_ms / off_ms - 1.0 : 0.0;
    telem.add_row({std::string(info.name), util::fmt(off_ms, 2),
                   util::fmt(on_ms, 2), util::fmt_percent(overhead)});
  }
  bench::print_table(telem);

  // Observatory overhead: the streaming estimator plus a per-commit stop
  // check that never fires. Like the telemetry table, the "off" column is
  // the nullptr fast path. Lands in BENCH_observatory.json.
  util::Table observatory(
      "Observatory overhead per trial (estimator + stop rule)");
  observatory.set_header({"benchmark", "estimator off [ms]",
                          "estimator on [ms]", "overhead"});
  util::json::Value observatory_points = util::json::Value::array();
  for (const auto& info : work::all_workloads()) {
    const double off_ms = estimator_ms_per_trial(
        info, /*estimator_on=*/false, kTelemetryTrials, /*seed=*/777);
    const double on_ms = estimator_ms_per_trial(
        info, /*estimator_on=*/true, kTelemetryTrials, /*seed=*/777);
    const double overhead = off_ms > 0.0 ? on_ms / off_ms - 1.0 : 0.0;
    observatory.add_row({std::string(info.name), util::fmt(off_ms, 2),
                         util::fmt(on_ms, 2), util::fmt_percent(overhead)});

    util::json::Value point = util::json::Value::object();
    point["workload"] = info.name;
    point["ms_per_trial_estimator_off"] = off_ms;
    point["ms_per_trial_estimator_on"] = on_ms;
    point["overhead_fraction"] = overhead;
    observatory_points.push_back(std::move(point));
  }
  bench::print_table(observatory);
  {
    util::json::Value doc = bench::bench_doc("sec5_observatory_overhead");
    doc["trials"] = static_cast<std::uint64_t>(kTelemetryTrials);
    doc["points"] = std::move(observatory_points);
    bench::write_bench_doc(doc, "BENCH_observatory.json");
  }

  // Profiler overhead: the latency anatomy accumulator on vs. off. The
  // "on" column pays the commit-path clock reads and histogram adds —
  // BENCH_profiler.json records that this stays within bench noise.
  util::Table prof("Profiler overhead per trial (latency anatomy)");
  prof.set_header({"benchmark", "profiler off [ms]", "profiler on [ms]",
                   "overhead"});
  util::json::Value prof_points = util::json::Value::array();
  for (const auto& info : work::all_workloads()) {
    const double off_ms = profiler_ms_per_trial(
        info, /*profiler_on=*/false, kTelemetryTrials, /*seed=*/777);
    const double on_ms = profiler_ms_per_trial(
        info, /*profiler_on=*/true, kTelemetryTrials, /*seed=*/777);
    const double overhead = off_ms > 0.0 ? on_ms / off_ms - 1.0 : 0.0;
    prof.add_row({std::string(info.name), util::fmt(off_ms, 2),
                  util::fmt(on_ms, 2), util::fmt_percent(overhead)});

    util::json::Value point = util::json::Value::object();
    point["workload"] = info.name;
    point["ms_per_trial_profiler_off"] = off_ms;
    point["ms_per_trial_profiler_on"] = on_ms;
    point["overhead_fraction"] = overhead;
    prof_points.push_back(std::move(point));
  }
  bench::print_table(prof);
  {
    util::json::Value doc = bench::bench_doc("sec5_profiler_overhead");
    doc["trials"] = static_cast<std::uint64_t>(kTelemetryTrials);
    doc["points"] = std::move(prof_points);
    bench::write_bench_doc(doc, "BENCH_profiler.json");
  }

  // Parallel scheduler scaling: one representative workload, --jobs sweep.
  // Speedup is relative to jobs=1 within the same telemetry setting.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  util::Table scaling("Parallel scheduler scaling (kBatch journal, " +
                      std::to_string(cores) + " host cores)");
  scaling.set_header({"jobs", "trials/s (telemetry off)", "speedup",
                      "trials/s (telemetry on)", "speedup"});
  const auto& scale_info = work::all_workloads().front();
  const std::size_t kScalingTrials = bench::env_size("PHIFI_TRIALS", 48);
  constexpr unsigned kJobsSweep[] = {1, 2, 4, 8};

  util::json::Value points = util::json::Value::array();
  double base_off = 0.0;
  double base_on = 0.0;
  for (const unsigned jobs : kJobsSweep) {
    const double off = parallel_trials_per_sec(
        scale_info, jobs, /*telemetry=*/false, kScalingTrials, /*seed=*/888);
    const double on = parallel_trials_per_sec(
        scale_info, jobs, /*telemetry=*/true, kScalingTrials, /*seed=*/888);
    if (jobs == 1) {
      base_off = off;
      base_on = on;
    }
    const double speedup_off = base_off > 0.0 ? off / base_off : 0.0;
    const double speedup_on = base_on > 0.0 ? on / base_on : 0.0;
    scaling.add_row({std::to_string(jobs), util::fmt(off, 1),
                     util::fmt(speedup_off, 2) + "x", util::fmt(on, 1),
                     util::fmt(speedup_on, 2) + "x"});

    util::json::Value point = util::json::Value::object();
    point["jobs"] = jobs;
    point["trials_per_sec_telemetry_off"] = off;
    point["trials_per_sec_telemetry_on"] = on;
    point["speedup_telemetry_off"] = speedup_off;
    point["speedup_telemetry_on"] = speedup_on;
    points.push_back(std::move(point));
  }
  bench::print_table(scaling);

  util::json::Value bench_point = bench::bench_doc("sec5_parallel_scaling");
  bench_point["workload"] = scale_info.name;
  bench_point["trials"] = static_cast<std::uint64_t>(kScalingTrials);
  bench_point["host_cores"] = cores;
  bench_point["journal_fsync"] = "batch";
  bench_point["points"] = std::move(points);
  bench::write_bench_doc(bench_point, "BENCH_parallel.json");

  // Fleet observability cost: the STATS interval sweep. "off" is the
  // baseline; the delta columns are the price of live fleet visibility.
  util::Table stats_sweep(
      "Fabric STATS snapshot interval (coordinator + 1 worker)");
  stats_sweep.set_header({"stats interval", "trials/s", "vs off"});
  const double kStatsSweep[] = {0.0, 1.0, 0.25};
  util::json::Value stats_points = util::json::Value::array();
  double stats_base = 0.0;
  for (const double interval : kStatsSweep) {
    const double rate = fabric_trials_per_sec(scale_info, interval,
                                              kScalingTrials, /*seed=*/999);
    if (interval == 0.0) stats_base = rate;
    const double relative = stats_base > 0.0 ? rate / stats_base : 0.0;
    const std::string label =
        interval == 0.0 ? "off"
                        : util::fmt(interval * 1000.0, 0) + " ms";
    stats_sweep.add_row({label, util::fmt(rate, 1),
                         util::fmt(relative, 2) + "x"});

    util::json::Value point = util::json::Value::object();
    point["stats_interval_seconds"] = interval;
    point["trials_per_sec"] = rate;
    point["relative_to_off"] = relative;
    stats_points.push_back(std::move(point));
  }
  bench::print_table(stats_sweep);

  util::json::Value stats_doc = bench::bench_doc("sec5_fabric_observability");
  stats_doc["workload"] = scale_info.name;
  stats_doc["trials"] = static_cast<std::uint64_t>(kScalingTrials);
  stats_doc["points"] = std::move(stats_points);
  bench::write_bench_doc(stats_doc, "BENCH_fabric_observability.json");

  // Trial fast path: fork-server vs. legacy cold start, small instances.
  // The mode column shows what the supervisor resolved the fast path to —
  // "warm" for resettable workloads, "template" otherwise.
  util::Table fastpath("Trial fast path (fork-server) vs legacy cold start");
  fastpath.set_header({"benchmark", "mode", "legacy trials/s",
                       "fast trials/s", "speedup"});
  const int kFastpathReps =
      static_cast<int>(bench::env_size("PHIFI_TRIALS", 48));
  util::json::Value fastpath_points = util::json::Value::array();
  for (const FastpathWorkload& wl : kFastpathWorkloads) {
    const double legacy = fastpath_trials_per_sec(
        wl.factory, /*fast=*/false, kFastpathReps, nullptr);
    std::string mode;
    const double fast = fastpath_trials_per_sec(wl.factory, /*fast=*/true,
                                                kFastpathReps, &mode);
    const double speedup = legacy > 0.0 ? fast / legacy : 0.0;
    fastpath.add_row({wl.name, mode, util::fmt(legacy, 0),
                      util::fmt(fast, 0), util::fmt(speedup, 2) + "x"});

    util::json::Value point = util::json::Value::object();
    point["workload"] = wl.name;
    point["fork_mode"] = mode;
    point["trials_per_sec_legacy"] = legacy;
    point["trials_per_sec_fast"] = fast;
    point["speedup"] = speedup;
    fastpath_points.push_back(std::move(point));
  }
  bench::print_table(fastpath);

  util::json::Value fastpath_doc = bench::bench_doc("sec5_trial_fastpath");
  fastpath_doc["trials"] = static_cast<std::uint64_t>(kFastpathReps);
  fastpath_doc["points"] = std::move(fastpath_points);
  bench::write_bench_doc(fastpath_doc, "BENCH_fastpath.json");
  return 0;
}

// Fig. 5a/5b — Program Vulnerability Factor per fault model (Single,
// Double, Random, Zero), for SDCs and DUEs, per benchmark.
//
// Paper reference points: NW's Zero model causes (almost) no SDCs while its
// Double/Random models have the highest DUE rates; for DGEMM/LUD the Random
// model trades SDCs for DUEs and Zero does the opposite; Zero gives the
// lowest DUE rate broadly; LavaMD is nearly model-insensitive; HotSpot's
// Single model has the lowest SDC PVF (small flips are attenuated away).
#include "analysis/pvf.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  util::Table sdc_table("Fig. 5a - SDC PVF [%] per fault model");
  util::Table due_table("Fig. 5b - DUE PVF [%] per fault model");
  const std::vector<std::string> header = {"benchmark", "Single", "Double",
                                           "Random", "Zero"};
  sdc_table.set_header(header);
  due_table.set_header(header);

  for (const auto& info : work::all_workloads()) {
    const fi::CampaignResult result = bench::run_campaign(info, 0xf165);
    std::vector<std::string> sdc_row = {std::string(info.name)};
    std::vector<std::string> due_row = {std::string(info.name)};
    for (fi::FaultModel model : fi::kAllFaultModels) {
      const auto& tally =
          result.by_model[static_cast<std::size_t>(model)];
      sdc_row.push_back(util::fmt(analysis::sdc_pvf(tally).point, 1));
      due_row.push_back(util::fmt(analysis::due_pvf(tally).point, 1));
    }
    sdc_table.add_row(sdc_row);
    due_table.add_row(due_row);
  }
  bench::print_table(sdc_table);
  bench::print_table(due_table);
  return 0;
}

// Ablation — accelerated-flux invariance (Sec. 4.1 methodology check).
//
// LANSCE runs between 1e5 and 2.5e6 n/(cm^2 s), and the whole FIT
// methodology rests on the error rate scaling linearly with flux so that
// the cross section (errors / fluence) is flux-independent. The paper also
// tunes the beam so that fewer than 1e-4 executions see an error, keeping
// multi-fault runs negligible. This bench sweeps the simulated flux across
// the LANSCE range and reports (a) the measured SDC FIT with its CI — the
// estimates must agree — and (b) the fraction of executions whose strikes
// produced more than one program-visible fault, which must stay tiny at
// the paper's operating point.
#include <cmath>

#include "bench/bench_common.hpp"
#include "radiation/beam_campaign.hpp"

int main() {
  using namespace phifi;
  util::init_log_from_env();

  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);

  util::Table table("Ablation: SDC FIT vs accelerated flux (DGEMM)");
  table.set_header({"flux [n/cm^2 s]", "runs", "strikes/run", "sdc_fit",
                    "due_fit", "multi-fault runs"});

  for (const double flux : {1.0e5, 5.0e5, 1.0e6, 2.5e6}) {
    fi::TrialSupervisor supervisor(work::find_workload("DGEMM"),
                                   bench::bench_supervisor_config());
    supervisor.prepare_golden();
    radiation::BeamConfig config;
    config.flux = flux;
    config.seed = 0xf1fd;
    config.min_sdc = bench::beam_min_sdc() / 2;
    config.min_due = bench::beam_min_due() / 2;
    radiation::BeamCampaign campaign(supervisor, sensitivity, config);
    const radiation::BeamResult result = campaign.run();

    const double strikes_per_run =
        result.runs == 0 ? 0.0
                         : static_cast<double>(result.strikes) / result.runs;
    // Multi-fault executions: expected from Poisson statistics of the
    // *program-visible* fault rate.
    const double fault_rate =
        result.runs == 0
            ? 0.0
            : static_cast<double>(result.executions +
                                  result.due_machine_check) /
                  result.runs;
    const double multi_fault =
        1.0 - std::exp(-fault_rate) * (1.0 + fault_rate);
    table.add_row({util::fmt(flux, 0), std::to_string(result.runs),
                   util::fmt(strikes_per_run, 2),
                   util::fmt_interval(result.sdc_fit.fit,
                                      result.sdc_fit.fit_lo,
                                      result.sdc_fit.fit_hi, 1),
                   util::fmt(result.due_fit.fit, 1),
                   util::fmt_percent(multi_fault, 3)});
  }
  bench::print_table(table);
  std::cout << "FIT estimates at different fluxes must agree within their "
               "confidence intervals;\nthe multi-fault fraction bounds the "
               "probability that one execution absorbed two\nvisible "
               "faults (the paper keeps its real-beam equivalent below "
               "1e-4).\n";
  return 0;
}

// Beam experiment: a LANSCE-style accelerated-radiation campaign (Sec. 4)
// against one benchmark.
//
//   $ ./examples/beam_experiment [workload] [min_sdc]
//
// Simulates back-to-back executions under an accelerated neutron flux on
// the modeled Xeon Phi 3120A, collects SDCs/DUEs until the statistics
// target is met, and reports: FIT rates with 95% confidence intervals, the
// device MTBF, the spatial-pattern split of the SDCs, and the FIT-vs-
// tolerance curve for imprecise computing.
#include <cstdlib>
#include <iostream>

#include "radiation/beam_campaign.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  const std::string name = argc > 1 ? argv[1] : "DGEMM";
  const std::uint64_t min_sdc = argc > 2 ? std::atoll(argv[2]) : 100;

  const fi::WorkloadFactory factory = work::find_workload(name);
  if (factory == nullptr) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }

  fi::SupervisorConfig supervisor_config;
  supervisor_config.device_os_threads = 1;
  fi::TrialSupervisor supervisor(factory, supervisor_config);
  supervisor.prepare_golden();

  const phi::DeviceSpec spec = phi::DeviceSpec::knights_corner_3120a();
  const phi::ResourceMap map = phi::ResourceMap::for_spec(spec);
  const radiation::DeviceSensitivity sensitivity =
      radiation::DeviceSensitivity::knc_3120a(map);

  radiation::BeamConfig config;
  config.min_sdc = min_sdc;
  config.min_due = min_sdc / 2;
  config.seed = 0xbea3;
  radiation::BeamCampaign campaign(supervisor, sensitivity, config);
  const radiation::BeamResult result = campaign.run();

  std::cout << "Device under beam: " << spec.model << "\n"
            << "Benchmark: " << name << "\n"
            << "Executions simulated: " << result.runs << " ("
            << result.executions << " with a fault reaching the program)\n"
            << "Accumulated fluence: " << result.fluence << " n/cm^2\n"
            << "Strikes: " << result.strikes << " (" << result.absorbed
            << " absorbed by ECC / electrical masking)\n\n";

  util::Table fit("FIT at sea level (13 n/cm^2/h), 95% CI");
  fit.set_header({"metric", "value"});
  fit.add_row({"SDC FIT",
               util::fmt_interval(result.sdc_fit.fit, result.sdc_fit.fit_lo,
                                  result.sdc_fit.fit_hi, 1)});
  fit.add_row({"DUE FIT",
               util::fmt_interval(result.due_fit.fit, result.due_fit.fit_lo,
                                  result.due_fit.fit_hi, 1)});
  fit.add_row({"DUE from machine checks",
               std::to_string(result.due_machine_check)});
  fit.add_row({"DUE from program crashes/hangs",
               std::to_string(result.due_program)});
  fit.add_row({"SDC MTBF per board [h]",
               util::fmt(result.sdc_fit.mtbf_hours(), 0)});
  fit.print_text(std::cout);
  std::cout << "\n";

  util::Table patterns("Spatial distribution of the SDCs");
  patterns.set_header({"pattern", "share", "FIT contribution"});
  for (int p = 1; p < analysis::kPatternCount; ++p) {
    const auto pattern = static_cast<analysis::ErrorPattern>(p);
    patterns.add_row({std::string(analysis::to_string(pattern)),
                      util::fmt_percent(result.patterns.fraction(pattern)),
                      util::fmt(result.pattern_fit(pattern), 1)});
  }
  patterns.add_row({"single-element executions",
                    util::fmt_percent(result.single_element_fraction), "-"});
  patterns.print_text(std::cout);
  std::cout << "\n";

  util::Table tolerance("Imprecise computing: SDC FIT vs tolerated error");
  tolerance.set_header({"tolerance", "remaining SDC FIT", "reduction"});
  for (double t : analysis::ToleranceAnalysis::default_tolerances()) {
    const double remaining =
        result.sdc_fit.fit * result.tolerance.remaining_fraction(t);
    tolerance.add_row(
        {util::fmt(t * 100, 1) + "%", util::fmt(remaining, 1),
         util::fmt(result.tolerance.reduction_percent(t), 1) + "%"});
  }
  tolerance.print_text(std::cout);
  return 0;
}

// ABFT hardening: protect a matrix multiplication with Huang-Abraham
// checksums and watch it repair injected corruption (Sec. 4.3 / 6.1).
//
//   $ ./examples/abft_hardening [n]
//
// Walks through the API at element level: capture the input checksums,
// corrupt the product in the four patterns Fig. 2 distinguishes, and show
// which are corrected (single, line, scattered) and which are only
// detected (square blocks) — the exact coverage argument the paper makes
// for DGEMM on the Xeon Phi.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "mitigation/abft.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Gemm {
  std::size_t n;
  std::vector<double> a, b, c;

  explicit Gemm(std::size_t size, std::uint64_t seed) : n(size) {
    phifi::util::Rng rng(seed);
    a.resize(n * n);
    b.resize(n * n);
    c.assign(n * n, 0.0);
    for (auto& v : a) v = rng.uniform(0.05, 1.0);
    for (auto& v : b) v = rng.uniform(0.05, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
          c[i * n + j] += a[i * n + k] * b[k * n + j];
        }
      }
    }
  }
};

double max_abs_error(const std::vector<double>& x,
                     const std::vector<double>& y) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i] - y[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phifi;
  const std::size_t n = argc > 1 ? std::atoll(argv[1]) : 48;

  util::Table table("ABFT-protected GEMM (" + std::to_string(n) + "x" +
                    std::to_string(n) + ")");
  table.set_header({"injected pattern", "detected", "corrected",
                    "residual max |error|"});

  struct Scenario {
    const char* name;
    void (*corrupt)(std::vector<double>&, std::size_t);
  };
  const Scenario scenarios[] = {
      {"none", [](std::vector<double>&, std::size_t) {}},
      {"single element",
       [](std::vector<double>& c, std::size_t dim) { c[3 * dim + 7] += 42.0; }},
      {"row line",
       [](std::vector<double>& c, std::size_t dim) {
         for (std::size_t j = 0; j < dim; ++j) {
           c[5 * dim + j] += 1.0 + static_cast<double>(j);
         }
       }},
      {"column line",
       [](std::vector<double>& c, std::size_t dim) {
         for (std::size_t i = 2; i < dim - 2; ++i) c[i * dim + 9] -= 3.5;
       }},
      {"scattered (pairable)",
       [](std::vector<double>& c, std::size_t dim) {
         c[1 * dim + 2] += 1.0;
         c[4 * dim + 8] += 2.0;
         c[7 * dim + 5] -= 4.0;
       }},
      {"square block (2x2, symmetric)",
       [](std::vector<double>& c, std::size_t dim) {
         c[3 * dim + 5] += 1.0;
         c[3 * dim + 6] += 2.0;
         c[4 * dim + 5] += 2.0;
         c[4 * dim + 6] += 1.0;
       }},
  };

  for (const Scenario& scenario : scenarios) {
    Gemm gemm(n, 99);
    const std::vector<double> golden = gemm.c;
    const mitigation::AbftGemm abft(gemm.a, gemm.b, n);
    scenario.corrupt(gemm.c, n);
    const mitigation::AbftReport report = abft.check_and_correct(gemm.c);
    table.add_row({scenario.name, report.detected() ? "yes" : "no",
                   report.uncorrectable
                       ? "no (flagged for recompute)"
                       : (report.corrected > 0
                              ? "yes (" + std::to_string(report.corrected) +
                                    " cells)"
                              : "n/a"),
                   std::to_string(max_abs_error(golden, gemm.c))});
  }
  table.print_text(std::cout);

  std::cout << "\nThe paper's conclusion holds: single, line and pairable "
               "scattered errors\n(the dominant Xeon Phi DGEMM patterns of "
               "Fig. 2) are corrected in O(n^2);\nonly coherent blocks "
               "must fall back to recomputation.\n";
  return 0;
}

// Criticality report: the Sec. 6 developer workflow end to end.
//
//   $ ./examples/criticality_report [workload] [trials]
//
// Runs a fault-injection campaign against one benchmark (default: CLAMR,
// whose mesh/Sort/Tree split is the paper's showcase), then prints:
//   * the outcome split overall and per fault model,
//   * the ranked per-code-portion criticality table,
//   * the mitigation recommendation per portion (Sec. 6.1),
//   * the PVF per execution-time window (where to concentrate heavier
//     protection, as the paper proposes for LUD's mid-execution).
#include <cstdlib>
#include <iostream>

#include "analysis/criticality.hpp"
#include "analysis/pvf.hpp"
#include "core/campaign.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  const std::string name = argc > 1 ? argv[1] : "CLAMR";
  const std::size_t trials = argc > 2 ? std::atoll(argv[2]) : 400;

  const fi::WorkloadFactory factory = work::find_workload(name);
  if (factory == nullptr) {
    std::cerr << "unknown workload '" << name << "'; choose one of:";
    for (const auto& info : work::all_workloads()) {
      std::cerr << " " << info.name;
    }
    std::cerr << "\n";
    return 1;
  }

  fi::SupervisorConfig supervisor_config;
  supervisor_config.device_os_threads = 1;
  fi::TrialSupervisor supervisor(factory, supervisor_config);
  supervisor.prepare_golden();

  fi::CampaignConfig campaign_config;
  campaign_config.trials = trials;
  campaign_config.seed = 0xc417;
  const fi::CampaignResult result =
      fi::Campaign(supervisor, campaign_config).run();

  util::Table outcomes("Outcomes - " + name);
  outcomes.set_header({"slice", "injections", "masked", "sdc", "due"});
  auto add_outcome_row = [&outcomes](const std::string& label,
                                     const fi::OutcomeTally& tally) {
    outcomes.add_row({label, std::to_string(tally.total()),
                      util::fmt_percent(tally.masked_rate()),
                      util::fmt_percent(tally.sdc_rate()),
                      util::fmt_percent(tally.due_rate())});
  };
  add_outcome_row("overall", result.overall);
  for (fi::FaultModel model : fi::kAllFaultModels) {
    add_outcome_row(std::string("model ") + std::string(to_string(model)),
                    result.by_model[static_cast<std::size_t>(model)]);
  }
  outcomes.print_text(std::cout);
  std::cout << "\n";

  util::Table criticality("Code-portion criticality (ranked)");
  criticality.set_header(
      {"portion", "injections", "sdc_rate", "due_rate", "mitigation"});
  const bool algebraic = name == "DGEMM" || name == "LUD";
  for (const auto& row : analysis::criticality_table(result, 5)) {
    criticality.add_row({row.category, std::to_string(row.injections),
                         util::fmt_percent(row.sdc_rate),
                         util::fmt_percent(row.due_rate),
                         analysis::recommend_mitigation(row, algebraic)});
  }
  criticality.print_text(std::cout);
  std::cout << "\n";

  util::Table windows("PVF per execution-time window");
  windows.set_header({"window", "injections", "sdc_pvf", "due_pvf"});
  for (std::size_t w = 0; w < result.by_window.size(); ++w) {
    const auto& tally = result.by_window[w];
    windows.add_row({std::to_string(w + 1), std::to_string(tally.total()),
                     util::fmt(analysis::sdc_pvf(tally).point, 1) + "%",
                     util::fmt(analysis::due_pvf(tally).point, 1) + "%"});
  }
  windows.print_text(std::cout);
  return 0;
}

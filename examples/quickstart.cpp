// Quickstart: run a small CAROL-FI-style fault-injection campaign against
// the DGEMM benchmark and print the outcome split.
//
//   $ ./examples/quickstart [trials]
//
// This is the 30-line tour of the public API: pick a workload factory from
// the registry, let TrialSupervisor compute the golden output, and hand it
// to Campaign. Everything else (forked trials, watchdog, flip timing,
// outcome classification) is handled inside.
#include <cstdlib>
#include <iostream>

#include "core/campaign.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  const std::size_t trials = argc > 1 ? std::atoll(argv[1]) : 200;

  fi::SupervisorConfig supervisor_config;
  supervisor_config.device_os_threads = 1;
  fi::TrialSupervisor supervisor(work::find_workload("DGEMM"),
                                 supervisor_config);
  supervisor.prepare_golden();

  fi::CampaignConfig campaign_config;
  campaign_config.trials = trials;
  campaign_config.seed = 2024;
  fi::Campaign campaign(supervisor, campaign_config);
  const fi::CampaignResult result = campaign.run();

  std::cout << "Injected " << result.overall.total() << " faults into "
            << result.workload << ":\n"
            << "  Masked " << util::fmt_percent(result.overall.masked_rate())
            << "   SDC " << util::fmt_percent(result.overall.sdc_rate())
            << "   DUE " << util::fmt_percent(result.overall.due_rate())
            << "\n";
  return 0;
}

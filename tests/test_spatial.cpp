#include "analysis/spatial.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace phifi::analysis {
namespace {

const util::Shape k2d{.width = 16, .height = 16};
const util::Shape k3d{.width = 8, .height = 8, .depth = 8};

std::size_t at(const util::Shape& shape, std::size_t x, std::size_t y,
               std::size_t z = 0) {
  return util::flatten(shape, {x, y, z});
}

TEST(Spatial, EmptyIsNone) {
  EXPECT_EQ(classify_pattern({}, k2d), ErrorPattern::kNone);
}

TEST(Spatial, OneErrorIsSingle) {
  const std::vector<std::size_t> indices = {at(k2d, 3, 7)};
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kSingle);
}

TEST(Spatial, RowErrorsAreLine) {
  std::vector<std::size_t> indices;
  for (std::size_t x = 2; x < 9; ++x) indices.push_back(at(k2d, x, 5));
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kLine);
}

TEST(Spatial, ColumnErrorsAreLine) {
  std::vector<std::size_t> indices;
  for (std::size_t y = 0; y < 16; ++y) indices.push_back(at(k2d, 4, y));
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kLine);
}

TEST(Spatial, TwoErrorsInSameRowAreLine) {
  const std::vector<std::size_t> indices = {at(k2d, 1, 5), at(k2d, 14, 5)};
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kLine);
}

TEST(Spatial, DenseBlockIsSquare) {
  std::vector<std::size_t> indices;
  for (std::size_t y = 4; y < 8; ++y) {
    for (std::size_t x = 4; x < 8; ++x) indices.push_back(at(k2d, x, y));
  }
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kSquare);
}

TEST(Spatial, SparseScatterIsRandom) {
  // Two far-apart errors in different rows/cols: bounding box 14x11,
  // fill 2/154 << threshold.
  const std::vector<std::size_t> indices = {at(k2d, 1, 2), at(k2d, 14, 12)};
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kRandom);
}

TEST(Spatial, RandomScatterIsRandom) {
  util::Rng rng(5);
  std::vector<std::size_t> indices;
  for (int i = 0; i < 10; ++i) {
    indices.push_back(at(k2d, rng.below(16), rng.below(16)));
  }
  // With 10 points over a 16x16 box the fill is at most 10/~150.
  const ErrorPattern pattern = classify_pattern(indices, k2d);
  EXPECT_TRUE(pattern == ErrorPattern::kRandom ||
              pattern == ErrorPattern::kLine)
      << to_string(pattern);
}

TEST(Spatial, DenseCubeIsCubic) {
  std::vector<std::size_t> indices;
  for (std::size_t z = 2; z < 5; ++z) {
    for (std::size_t y = 2; y < 5; ++y) {
      for (std::size_t x = 2; x < 5; ++x) indices.push_back(at(k3d, x, y, z));
    }
  }
  EXPECT_EQ(classify_pattern(indices, k3d), ErrorPattern::kCubic);
}

TEST(Spatial, PlaneWithin3dIsSquare) {
  std::vector<std::size_t> indices;
  for (std::size_t y = 1; y < 5; ++y) {
    for (std::size_t x = 1; x < 5; ++x) indices.push_back(at(k3d, x, y, 3));
  }
  EXPECT_EQ(classify_pattern(indices, k3d), ErrorPattern::kSquare);
}

TEST(Spatial, PillarWithin3dIsLine) {
  std::vector<std::size_t> indices;
  for (std::size_t z = 0; z < 8; ++z) indices.push_back(at(k3d, 3, 3, z));
  EXPECT_EQ(classify_pattern(indices, k3d), ErrorPattern::kLine);
}

TEST(Spatial, SparseCornersOf3dAreRandom) {
  const std::vector<std::size_t> indices = {at(k3d, 0, 0, 0),
                                            at(k3d, 7, 7, 7)};
  EXPECT_EQ(classify_pattern(indices, k3d), ErrorPattern::kRandom);
}

TEST(Spatial, CubicImpossibleIn2d) {
  // Exhaustive-ish property: no 2D index set can classify as cubic.
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> indices;
    const std::size_t count = 1 + rng.below(20);
    for (std::size_t i = 0; i < count; ++i) {
      indices.push_back(rng.below(k2d.size()));
    }
    EXPECT_NE(classify_pattern(indices, k2d), ErrorPattern::kCubic);
  }
}

TEST(Spatial, FullOutputCorruptionIsSquare) {
  std::vector<std::size_t> indices(k2d.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  EXPECT_EQ(classify_pattern(indices, k2d), ErrorPattern::kSquare);
}

TEST(PatternTallyTest, FractionsExcludeNone) {
  PatternTally tally;
  tally.add(ErrorPattern::kSingle);
  tally.add(ErrorPattern::kSingle);
  tally.add(ErrorPattern::kLine);
  tally.add(ErrorPattern::kNone);
  EXPECT_EQ(tally.total(), 4u);
  EXPECT_DOUBLE_EQ(tally.fraction(ErrorPattern::kSingle), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(tally.fraction(ErrorPattern::kLine), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tally.fraction(ErrorPattern::kCubic), 0.0);
}

TEST(PatternTallyTest, EmptyFractionIsZero) {
  PatternTally tally;
  EXPECT_DOUBLE_EQ(tally.fraction(ErrorPattern::kSingle), 0.0);
}

}  // namespace
}  // namespace phifi::analysis

// End-to-end fabric failure drills: a worker SIGKILLed mid-lease whose
// range is reclaimed and re-executed, and a coordinator SIGKILLed
// mid-campaign that restarts from its lease ledger — in both cases the
// merged shards must be bit-identical to a --jobs 1 run.
//
// Workers and the doomed coordinator run in forked children (fabric roles
// are separate processes in production too); the surviving coordinator
// runs in the test process so its result and metrics can be asserted
// directly. Children exit via _exit() and never touch gtest.
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/merge.hpp"
#include "fabric/options.hpp"
#include "fabric/protocol.hpp"
#include "fabric/worker.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tests/toy_workload.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace phifi::fabric {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;
using WorkloadFactoryFn = std::unique_ptr<fi::Workload> (*)();

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

fi::CampaignConfig fabric_campaign(std::size_t trials) {
  fi::CampaignConfig config;
  config.trials = trials;
  config.seed = 0xfab2e2eULL;
  return config;
}

/// The --jobs 1 reference journal every fabric drill must reproduce.
fi::JournalContents reference_journal(const fi::CampaignConfig& base,
                                      WorkloadFactoryFn factory,
                                      const std::string& path) {
  fs::remove(path);
  fi::CampaignConfig config = base;
  config.journal_path = path;
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(factory, toy_supervisor_config());
  supervisor.prepare_golden();
  fi::Campaign campaign(supervisor, config);
  const fi::CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), base.trials);
  return fi::read_journal(path);
}

void expect_same_records(const std::vector<fi::JournalRecord>& a,
                         const std::vector<fi::JournalRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attempt_index, b[i].attempt_index) << i;
    EXPECT_EQ(a[i].trial.outcome, b[i].trial.outcome) << i;
    EXPECT_EQ(a[i].trial.due_kind, b[i].trial.due_kind) << i;
    EXPECT_EQ(a[i].trial.window, b[i].trial.window) << i;
    EXPECT_EQ(a[i].trial.record.model, b[i].trial.record.model) << i;
    EXPECT_EQ(a[i].trial.record.site_index, b[i].trial.record.site_index)
        << i;
    EXPECT_EQ(a[i].trial.record.element_index,
              b[i].trial.record.element_index)
        << i;
    EXPECT_EQ(a[i].trial.record.flipped_bits[0],
              b[i].trial.record.flipped_bits[0])
        << i;
  }
}

/// Child-side: run the full worker loop against its own supervisor and
/// exit 0 only if the coordinator declared the campaign complete.
[[noreturn]] void child_run_worker(const fi::CampaignConfig& config,
                                   WorkloadFactoryFn factory,
                                   std::uint64_t fingerprint,
                                   FabricOptions options,
                                   unsigned startup_delay_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(startup_delay_ms));
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(factory, toy_supervisor_config());
  supervisor.prepare_golden();
  const WorkerResult result = run_worker(supervisor, config, fingerprint,
                                         options, nullptr, nullptr, std::cerr);
  ::_exit(result.complete ? 0 : 3);
}

/// Pumps `link` until a message of type `want` arrives (other types are
/// ignored). False on timeout or a dead link with nothing buffered.
bool wait_for(Connection& link, MsgType want, Message* out, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    link.pump();
    Message message;
    while (link.next(&message)) {
      if (message.type == want) {
        *out = message;
        return true;
      }
    }
    if (!link.alive()) return false;
    ::usleep(2000);
  }
  return false;
}

/// Child-side: a worker that takes ONE lease, commits `kill_after`
/// records to its shard, then SIGKILLs itself mid-lease — the crash the
/// reclaim machinery exists for.
[[noreturn]] void child_doomed_worker(const fi::CampaignConfig& config,
                                      std::uint64_t fingerprint,
                                      const std::string& address,
                                      const std::string& shard_path,
                                      int kill_after) {
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                 toy_supervisor_config());
  supervisor.prepare_golden();

  const Address parsed = parse_address(address);
  int fd = -1;
  for (int i = 0; i < 500 && fd < 0; ++i) {
    fd = connect_to(parsed);
    if (fd < 0) ::usleep(10000);
  }
  if (fd < 0) ::_exit(4);
  Connection link(fd);

  Message hello;
  hello.type = MsgType::kHello;
  hello.fingerprint = fingerprint;
  if (!link.send(hello)) ::_exit(4);
  Message welcome;
  if (!wait_for(link, MsgType::kWelcome, &welcome, 5000)) ::_exit(4);

  Message request;
  request.type = MsgType::kLeaseRequest;
  request.worker = welcome.worker;
  if (!link.send(request)) ::_exit(4);
  Message grant;
  if (!wait_for(link, MsgType::kLeaseGrant, &grant, 5000)) ::_exit(4);

  fi::JournalHeader header;
  header.fingerprint = fingerprint;
  header.time_windows = supervisor.time_windows();
  header.workload = std::string(supervisor.workload_name());
  fi::CampaignJournalWriter shard(shard_path, header,
                                  fi::JournalFsync::kEveryRecord);

  fi::Campaign campaign(supervisor, config);
  fi::RangeHooks hooks;
  int committed = 0;
  hooks.on_commit = [&shard, &committed,
                     kill_after](const fi::JournalRecord& record) {
    shard.append(record);
    if (++committed == kill_after) {
      // Die with the lease half-done and no goodbye: the coordinator only
      // finds out when the heartbeat deadline passes.
      ::kill(::getpid(), SIGKILL);
    }
  };
  campaign.run_range(grant.begin, grant.end, hooks);
  ::_exit(5);  // unreachable if the kill fired as intended
}

TEST(FabricCampaign, WorkerKillIsReclaimedAndMatchesJobs1) {
  util::init_log_from_env();  // PHIFI_LOG=debug narrates the fabric drill
  const fi::CampaignConfig config = fabric_campaign(/*trials=*/12);
  const fi::JournalContents reference = reference_journal(
      config, &phifi::testing::make_toy_normal, temp_path("fab_kill_ref.jnl"));
  const std::uint64_t fingerprint = reference.header.fingerprint;

  const std::string socket_path = temp_path("fab_kill.sock");
  const std::string shard0 = temp_path("fab_kill_shard0.jnl");
  const std::string shard1 = temp_path("fab_kill_shard1.jnl");
  const std::string trace_path = temp_path("fab_kill_trace.ndjson");
  for (const auto& path : {socket_path, shard0, shard1, trace_path}) {
    fs::remove(path);
  }

  FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.lease_size = 3;
  coordinator_options.heartbeat_seconds = 0.05;
  coordinator_options.lease_timeout_seconds = 0.6;

  // The doomed worker connects first (no startup delay) so it owns the
  // campaign's first lease when it dies; the survivor starts 300ms later
  // and must absorb the reclaimed range.
  const pid_t doomed = ::fork();
  ASSERT_GE(doomed, 0);
  if (doomed == 0) {
    child_doomed_worker(config, fingerprint, coordinator_options.address,
                        shard1, /*kill_after=*/2);
  }
  FabricOptions survivor_options = coordinator_options;
  survivor_options.shard_path = shard0;
  survivor_options.reconnect_initial_ms = 30.0;
  const pid_t survivor = ::fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) {
    child_run_worker(config, &phifi::testing::make_toy_normal, fingerprint,
                     survivor_options, /*startup_delay_ms=*/300);
  }

  telemetry::MetricsRegistry metrics;
  std::ostringstream sink;
  CoordinatorResult result;
  {
    telemetry::TraceWriter trace(trace_path);
    result = run_coordinator(config, fingerprint, coordinator_options,
                             &metrics, &trace, nullptr, nullptr, sink);
  }
  EXPECT_TRUE(result.complete) << sink.str();
  EXPECT_GE(result.workers_seen, 2u);
  EXPECT_GE(result.leases_reclaimed, 1u);
  const telemetry::Counter* reclaimed =
      metrics.find_counter("fabric.leases_reclaimed");
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_GE(reclaimed->value(), 1u);

  int status = 0;
  ASSERT_EQ(::waitpid(doomed, &status, 0), doomed);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The coordinator's trace must show the lease lifecycle incl. reclaim.
  const telemetry::TraceContents trace_contents =
      telemetry::read_trace_file(trace_path);
  bool saw_grant = false, saw_reclaim = false;
  for (const auto& event : trace_contents.fabric) {
    const std::string& kind = event.find("kind")->as_string();
    saw_grant = saw_grant || kind == "lease_grant";
    saw_reclaim = saw_reclaim || kind == "lease_reclaim";
  }
  EXPECT_TRUE(saw_grant);
  EXPECT_TRUE(saw_reclaim);

  // Merge the survivor's shard with the dead worker's partial shard: the
  // overlap dedups and the result is bit-identical to --jobs 1.
  MergeOptions merge_options;
  merge_options.shards = {shard0, shard1};
  merge_options.out_path = temp_path("fab_kill_merged.jnl");
  merge_options.allow_torn_tail = true;
  const MergeSummary summary =
      merge_shards(config, "Toy", reference.header.time_windows,
                   merge_options);
  EXPECT_EQ(summary.duplicates, 2u);  // the doomed worker's two commits
  EXPECT_EQ(summary.injected, config.trials);
  const fi::JournalContents merged =
      fi::read_journal(merge_options.out_path);
  EXPECT_EQ(merged.header.fingerprint, fingerprint);
  expect_same_records(reference.records, merged.records);
}

// ------------------------------------------------- observability plane

/// Blocking-ish HTTP GET against the coordinator's scrape endpoint (unix
/// transport keeps the test port-collision-free). The server is serviced
/// by the coordinator's poll loop in another thread of this process; the
/// client side here is plain sockets. "" on any failure — the scraper
/// loop just retries.
std::string scrape(const std::string& socket_path,
                   const std::string& route) {
  int fd = -1;
  try {
    fd = connect_to(parse_address("unix:" + socket_path));
  } catch (const std::runtime_error&) {
    return "";
  }
  if (fd < 0) return "";
  const std::string request = "GET " + route + " HTTP/1.1\r\n\r\n";
  std::size_t sent = 0;
  std::string response;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // server closed: response complete
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;
    }
    ::usleep(1000);
  }
  ::close(fd);
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(FabricCampaign, ObservabilityPlaneServesLiveFleetState) {
  util::init_log_from_env();
  // Slow trials stretch the campaign so mid-flight scrapes are plentiful
  // and deterministic-ish: the survivor owns [0,2) (so the fleet frontier
  // advances early and publishes estimator gauges), the doomed worker owns
  // [2,4) and dies, leaving a dead row until the reclaim re-issues it.
  const fi::CampaignConfig config = fabric_campaign(/*trials=*/8);
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&phifi::testing::make_toy_slow,
                                 toy_supervisor_config());
  supervisor.prepare_golden();
  const std::uint64_t fingerprint = fi::campaign_fingerprint(
      config, supervisor.workload_name(), supervisor.time_windows());
  const unsigned time_windows = supervisor.time_windows();

  const std::string socket_path = temp_path("fab_obs.sock");
  const std::string scrape_path = temp_path("fab_obs_http.sock");
  const std::string shard_survivor = temp_path("fab_obs_shard0.jnl");
  const std::string shard_doomed = temp_path("fab_obs_shard1.jnl");
  const std::string trace_path = temp_path("fab_obs_trace.ndjson");
  for (const auto& path : {socket_path, scrape_path, shard_survivor,
                           shard_doomed, trace_path}) {
    fs::remove(path);
  }

  FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.lease_size = 2;
  coordinator_options.heartbeat_seconds = 0.05;
  coordinator_options.lease_timeout_seconds = 0.6;
  coordinator_options.serve_metrics = "unix:" + scrape_path;
  coordinator_options.run_id = 0xfee1600dULL;

  FabricOptions survivor_options = coordinator_options;
  survivor_options.shard_path = shard_survivor;
  survivor_options.reconnect_initial_ms = 30.0;
  survivor_options.stats_interval_seconds = 0.05;
  const pid_t survivor = ::fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) {
    child_run_worker(config, &phifi::testing::make_toy_slow, fingerprint,
                     survivor_options, /*startup_delay_ms=*/0);
  }
  const pid_t doomed = ::fork();
  ASSERT_GE(doomed, 0);
  if (doomed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    child_doomed_worker(config, fingerprint, coordinator_options.address,
                        shard_doomed, /*kill_after=*/1);
  }

  // Scraper thread: polls both routes while the campaign runs, keeping
  // evidence for the post-run assertions. Client-side sockets only — the
  // server side is serviced by run_coordinator's own poll loop.
  std::atomic<bool> stop_scraping{false};
  std::string est_metrics;       // /metrics once campaign.est.* appeared
  std::string dead_row_json;     // /campaign.json with a dead worker row
  std::string healthz;           // first successful /healthz body
  std::vector<std::uint64_t> scraped_sdc;  // every mid-flight fleet sdc
  std::thread scraper([&]() {
    while (!stop_scraping.load()) {
      const std::string metrics_response = scrape(scrape_path, "/metrics");
      if (est_metrics.empty() &&
          metrics_response.find("phifi_campaign_est_sdc_rate") !=
              std::string::npos) {
        est_metrics = metrics_response;
      }
      if (healthz.empty()) {
        healthz = http_body(scrape(scrape_path, "/healthz"));
      }
      const std::string body =
          http_body(scrape(scrape_path, "/campaign.json"));
      if (!body.empty()) {
        try {
          const util::json::Value doc = util::json::parse(body);
          scraped_sdc.push_back(
              static_cast<std::uint64_t>(doc.number_or("sdc", 0.0)));
          if (dead_row_json.empty() &&
              body.find(R"("status":"dead")") != std::string::npos) {
            dead_row_json = body;
          }
        } catch (const std::runtime_error&) {
          // Torn scrape (coordinator wound down mid-request): ignore.
        }
      }
      ::usleep(10000);
    }
  });

  telemetry::MetricsRegistry metrics;
  telemetry::CampaignEstimator estimator;
  std::ostringstream sink;
  CoordinatorResult result;
  {
    telemetry::TraceWriter trace(trace_path);
    result = run_coordinator(config, fingerprint, coordinator_options,
                             &metrics, &trace, &estimator, nullptr, sink);
  }
  stop_scraping.store(true);
  scraper.join();

  EXPECT_TRUE(result.complete) << sink.str();
  EXPECT_EQ(result.run_id, 0xfee1600dULL);
  EXPECT_GE(result.leases_reclaimed, 1u);

  int status = 0;
  ASSERT_EQ(::waitpid(doomed, &status, 0), doomed);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // --- scrape endpoint: OpenMetrics shape and live fleet state ---
  EXPECT_EQ(healthz, "ok\n");
  ASSERT_FALSE(est_metrics.empty())
      << "no mid-campaign scrape ever showed campaign.est.* gauges";
  EXPECT_NE(est_metrics.find("application/openmetrics-text"),
            std::string::npos);
  const std::string est_body = http_body(est_metrics);
  EXPECT_NE(est_body.find("# EOF"), std::string::npos);
  EXPECT_NE(est_body.find("phifi_campaign_completed_total"),
            std::string::npos);
  EXPECT_NE(est_body.find("phifi_fabric_worker_"), std::string::npos);
  ASSERT_FALSE(dead_row_json.empty())
      << "the SIGKILLed worker never appeared as a dead row";
  ASSERT_FALSE(scraped_sdc.empty());

  // --- exact fleet tally: bit-identical to the post-campaign merge ---
  MergeOptions merge_options;
  merge_options.shards = {shard_survivor, shard_doomed};
  merge_options.out_path = temp_path("fab_obs_merged.jnl");
  merge_options.allow_torn_tail = true;
  const MergeSummary summary = merge_shards(
      config, "Toy", time_windows, merge_options);
  EXPECT_TRUE(result.fleet_boundary);
  EXPECT_EQ(result.fleet_completed, summary.overall.total());
  EXPECT_EQ(result.fleet_masked, summary.overall.masked);
  EXPECT_EQ(result.fleet_sdc, summary.overall.sdc);
  EXPECT_EQ(result.fleet_due, summary.overall.due);
  // The estimator saw the same exact stream.
  EXPECT_EQ(estimator.counts().masked, summary.overall.masked);
  EXPECT_EQ(estimator.counts().sdc, summary.overall.sdc);
  EXPECT_EQ(estimator.counts().due, summary.overall.due);
  // Every mid-flight scrape is a fold prefix: never ahead of the final.
  for (const std::uint64_t sdc : scraped_sdc) {
    EXPECT_LE(sdc, result.fleet_sdc);
  }

  // --- correlation ids survive WELCOME → shard → merge → trace ---
  const std::string run_hex = telemetry::run_id_to_hex(result.run_id);
  EXPECT_EQ(fi::read_journal(shard_survivor).header.run_id, result.run_id);
  EXPECT_EQ(fi::read_journal(merge_options.out_path).header.run_id,
            result.run_id);
  const telemetry::TraceContents trace_contents =
      telemetry::read_trace_file(trace_path);
  ASSERT_FALSE(trace_contents.fabric.empty());
  bool saw_dead_worker_event = false;
  for (const auto& event : trace_contents.fabric) {
    EXPECT_EQ(event.string_or("run_id", ""), run_hex);
    EXPECT_NE(event.string_or("kind", ""), "");
    saw_dead_worker_event = saw_dead_worker_event ||
                            event.string_or("kind", "") == "lease_reclaim";
  }
  EXPECT_TRUE(saw_dead_worker_event);
  ASSERT_FALSE(trace_contents.end.is_null());
  EXPECT_EQ(trace_contents.end.string_or("run_id", ""), run_hex);
  // The trace end record carries the exact fleet tally too.
  EXPECT_EQ(static_cast<std::uint64_t>(
                trace_contents.end.number_or("sdc", 0.0)),
            result.fleet_sdc);
}

TEST(FabricCampaign, CoordinatorCrashResumesFromLedgerAndMatchesJobs1) {
  // The slow toy (~0.3s/trial) keeps the campaign alive long enough to
  // SIGKILL the coordinator mid-flight at a deterministic ledger point.
  const fi::CampaignConfig config = fabric_campaign(/*trials=*/6);
  const fi::JournalContents reference = reference_journal(
      config, &phifi::testing::make_toy_slow, temp_path("fab_res_ref.jnl"));
  const std::uint64_t fingerprint = reference.header.fingerprint;

  const std::string socket_path = temp_path("fab_res.sock");
  const std::string shard0 = temp_path("fab_res_shard0.jnl");
  const std::string ledger = temp_path("fab_res_ledger.bin");
  for (const auto& path : {socket_path, shard0, ledger}) {
    fs::remove(path);
  }

  FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.ledger_path = ledger;
  coordinator_options.lease_size = 2;
  coordinator_options.heartbeat_seconds = 0.1;
  coordinator_options.lease_timeout_seconds = 5.0;

  const pid_t coordinator = ::fork();
  ASSERT_GE(coordinator, 0);
  if (coordinator == 0) {
    std::ostringstream sink;
    run_coordinator(config, fingerprint, coordinator_options, nullptr,
                    nullptr, nullptr, nullptr, sink);
    ::_exit(0);  // should be SIGKILLed long before completing
  }
  FabricOptions worker_options = coordinator_options;
  worker_options.shard_path = shard0;
  worker_options.reconnect_initial_ms = 30.0;
  const pid_t worker = ::fork();
  ASSERT_GE(worker, 0);
  if (worker == 0) {
    child_run_worker(config, &phifi::testing::make_toy_slow, fingerprint,
                     worker_options, /*startup_delay_ms=*/0);
  }

  // Wait until the ledger shows real progress (>= 2 records: at least one
  // grant plus its completion or a second grant), then murder the
  // coordinator mid-campaign.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  bool progressed = false;
  while (!progressed && std::chrono::steady_clock::now() < deadline) {
    try {
      progressed = read_ledger(ledger).records.size() >= 2;
    } catch (const std::exception&) {
      // Ledger not created or header not yet durable — keep waiting.
    }
    if (!progressed) ::usleep(10000);
  }
  ASSERT_TRUE(progressed) << "coordinator never made ledger progress";
  ASSERT_EQ(::kill(coordinator, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(coordinator, &status, 0), coordinator);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Restart the coordinator in-process on the same ledger and address.
  // It must replay the ledger, re-adopt the worker's live lease when the
  // worker reconnects, and finish the campaign.
  telemetry::MetricsRegistry metrics;
  std::ostringstream sink;
  const CoordinatorResult result =
      run_coordinator(config, fingerprint, coordinator_options, &metrics,
                      nullptr, nullptr, nullptr, sink);
  EXPECT_TRUE(result.complete) << sink.str();
  EXPECT_GE(result.completed, config.trials);

  ASSERT_EQ(::waitpid(worker, &status, 0), worker);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  MergeOptions merge_options;
  merge_options.shards = {shard0};
  merge_options.out_path = temp_path("fab_res_merged.jnl");
  const MergeSummary summary =
      merge_shards(config, "Toy", reference.header.time_windows,
                   merge_options);
  EXPECT_EQ(summary.injected, config.trials);
  const fi::JournalContents merged =
      fi::read_journal(merge_options.out_path);
  expect_same_records(reference.records, merged.records);
}

}  // namespace
}  // namespace phifi::fabric

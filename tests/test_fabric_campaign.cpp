// End-to-end fabric failure drills: a worker SIGKILLed mid-lease whose
// range is reclaimed and re-executed, and a coordinator SIGKILLed
// mid-campaign that restarts from its lease ledger — in both cases the
// merged shards must be bit-identical to a --jobs 1 run.
//
// Workers and the doomed coordinator run in forked children (fabric roles
// are separate processes in production too); the surviving coordinator
// runs in the test process so its result and metrics can be asserted
// directly. Children exit via _exit() and never touch gtest.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/lease.hpp"
#include "fabric/merge.hpp"
#include "fabric/options.hpp"
#include "fabric/protocol.hpp"
#include "fabric/worker.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tests/toy_workload.hpp"
#include "util/log.hpp"

namespace phifi::fabric {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;
using WorkloadFactoryFn = std::unique_ptr<fi::Workload> (*)();

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

fi::CampaignConfig fabric_campaign(std::size_t trials) {
  fi::CampaignConfig config;
  config.trials = trials;
  config.seed = 0xfab2e2eULL;
  return config;
}

/// The --jobs 1 reference journal every fabric drill must reproduce.
fi::JournalContents reference_journal(const fi::CampaignConfig& base,
                                      WorkloadFactoryFn factory,
                                      const std::string& path) {
  fs::remove(path);
  fi::CampaignConfig config = base;
  config.journal_path = path;
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(factory, toy_supervisor_config());
  supervisor.prepare_golden();
  fi::Campaign campaign(supervisor, config);
  const fi::CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), base.trials);
  return fi::read_journal(path);
}

void expect_same_records(const std::vector<fi::JournalRecord>& a,
                         const std::vector<fi::JournalRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attempt_index, b[i].attempt_index) << i;
    EXPECT_EQ(a[i].trial.outcome, b[i].trial.outcome) << i;
    EXPECT_EQ(a[i].trial.due_kind, b[i].trial.due_kind) << i;
    EXPECT_EQ(a[i].trial.window, b[i].trial.window) << i;
    EXPECT_EQ(a[i].trial.record.model, b[i].trial.record.model) << i;
    EXPECT_EQ(a[i].trial.record.site_index, b[i].trial.record.site_index)
        << i;
    EXPECT_EQ(a[i].trial.record.element_index,
              b[i].trial.record.element_index)
        << i;
    EXPECT_EQ(a[i].trial.record.flipped_bits[0],
              b[i].trial.record.flipped_bits[0])
        << i;
  }
}

/// Child-side: run the full worker loop against its own supervisor and
/// exit 0 only if the coordinator declared the campaign complete.
[[noreturn]] void child_run_worker(const fi::CampaignConfig& config,
                                   WorkloadFactoryFn factory,
                                   std::uint64_t fingerprint,
                                   FabricOptions options,
                                   unsigned startup_delay_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(startup_delay_ms));
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(factory, toy_supervisor_config());
  supervisor.prepare_golden();
  const WorkerResult result = run_worker(supervisor, config, fingerprint,
                                         options, nullptr, nullptr, std::cerr);
  ::_exit(result.complete ? 0 : 3);
}

/// Pumps `link` until a message of type `want` arrives (other types are
/// ignored). False on timeout or a dead link with nothing buffered.
bool wait_for(Connection& link, MsgType want, Message* out, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    link.pump();
    Message message;
    while (link.next(&message)) {
      if (message.type == want) {
        *out = message;
        return true;
      }
    }
    if (!link.alive()) return false;
    ::usleep(2000);
  }
  return false;
}

/// Child-side: a worker that takes ONE lease, commits `kill_after`
/// records to its shard, then SIGKILLs itself mid-lease — the crash the
/// reclaim machinery exists for.
[[noreturn]] void child_doomed_worker(const fi::CampaignConfig& config,
                                      std::uint64_t fingerprint,
                                      const std::string& address,
                                      const std::string& shard_path,
                                      int kill_after) {
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                 toy_supervisor_config());
  supervisor.prepare_golden();

  const Address parsed = parse_address(address);
  int fd = -1;
  for (int i = 0; i < 500 && fd < 0; ++i) {
    fd = connect_to(parsed);
    if (fd < 0) ::usleep(10000);
  }
  if (fd < 0) ::_exit(4);
  Connection link(fd);

  Message hello;
  hello.type = MsgType::kHello;
  hello.fingerprint = fingerprint;
  if (!link.send(hello)) ::_exit(4);
  Message welcome;
  if (!wait_for(link, MsgType::kWelcome, &welcome, 5000)) ::_exit(4);

  Message request;
  request.type = MsgType::kLeaseRequest;
  request.worker = welcome.worker;
  if (!link.send(request)) ::_exit(4);
  Message grant;
  if (!wait_for(link, MsgType::kLeaseGrant, &grant, 5000)) ::_exit(4);

  fi::JournalHeader header;
  header.fingerprint = fingerprint;
  header.time_windows = supervisor.time_windows();
  header.workload = std::string(supervisor.workload_name());
  fi::CampaignJournalWriter shard(shard_path, header,
                                  fi::JournalFsync::kEveryRecord);

  fi::Campaign campaign(supervisor, config);
  fi::RangeHooks hooks;
  int committed = 0;
  hooks.on_commit = [&shard, &committed,
                     kill_after](const fi::JournalRecord& record) {
    shard.append(record);
    if (++committed == kill_after) {
      // Die with the lease half-done and no goodbye: the coordinator only
      // finds out when the heartbeat deadline passes.
      ::kill(::getpid(), SIGKILL);
    }
  };
  campaign.run_range(grant.begin, grant.end, hooks);
  ::_exit(5);  // unreachable if the kill fired as intended
}

TEST(FabricCampaign, WorkerKillIsReclaimedAndMatchesJobs1) {
  util::init_log_from_env();  // PHIFI_LOG=debug narrates the fabric drill
  const fi::CampaignConfig config = fabric_campaign(/*trials=*/12);
  const fi::JournalContents reference = reference_journal(
      config, &phifi::testing::make_toy_normal, temp_path("fab_kill_ref.jnl"));
  const std::uint64_t fingerprint = reference.header.fingerprint;

  const std::string socket_path = temp_path("fab_kill.sock");
  const std::string shard0 = temp_path("fab_kill_shard0.jnl");
  const std::string shard1 = temp_path("fab_kill_shard1.jnl");
  const std::string trace_path = temp_path("fab_kill_trace.ndjson");
  for (const auto& path : {socket_path, shard0, shard1, trace_path}) {
    fs::remove(path);
  }

  FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.lease_size = 3;
  coordinator_options.heartbeat_seconds = 0.05;
  coordinator_options.lease_timeout_seconds = 0.6;

  // The doomed worker connects first (no startup delay) so it owns the
  // campaign's first lease when it dies; the survivor starts 300ms later
  // and must absorb the reclaimed range.
  const pid_t doomed = ::fork();
  ASSERT_GE(doomed, 0);
  if (doomed == 0) {
    child_doomed_worker(config, fingerprint, coordinator_options.address,
                        shard1, /*kill_after=*/2);
  }
  FabricOptions survivor_options = coordinator_options;
  survivor_options.shard_path = shard0;
  survivor_options.reconnect_initial_ms = 30.0;
  const pid_t survivor = ::fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) {
    child_run_worker(config, &phifi::testing::make_toy_normal, fingerprint,
                     survivor_options, /*startup_delay_ms=*/300);
  }

  telemetry::MetricsRegistry metrics;
  std::ostringstream sink;
  CoordinatorResult result;
  {
    telemetry::TraceWriter trace(trace_path);
    result = run_coordinator(config, fingerprint, coordinator_options,
                             &metrics, &trace, nullptr, sink);
  }
  EXPECT_TRUE(result.complete) << sink.str();
  EXPECT_GE(result.workers_seen, 2u);
  EXPECT_GE(result.leases_reclaimed, 1u);
  const telemetry::Counter* reclaimed =
      metrics.find_counter("fabric.leases_reclaimed");
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_GE(reclaimed->value(), 1u);

  int status = 0;
  ASSERT_EQ(::waitpid(doomed, &status, 0), doomed);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The coordinator's trace must show the lease lifecycle incl. reclaim.
  const telemetry::TraceContents trace_contents =
      telemetry::read_trace_file(trace_path);
  bool saw_grant = false, saw_reclaim = false;
  for (const auto& event : trace_contents.fabric) {
    const std::string& kind = event.find("kind")->as_string();
    saw_grant = saw_grant || kind == "lease_grant";
    saw_reclaim = saw_reclaim || kind == "lease_reclaim";
  }
  EXPECT_TRUE(saw_grant);
  EXPECT_TRUE(saw_reclaim);

  // Merge the survivor's shard with the dead worker's partial shard: the
  // overlap dedups and the result is bit-identical to --jobs 1.
  MergeOptions merge_options;
  merge_options.shards = {shard0, shard1};
  merge_options.out_path = temp_path("fab_kill_merged.jnl");
  merge_options.allow_torn_tail = true;
  const MergeSummary summary =
      merge_shards(config, "Toy", reference.header.time_windows,
                   merge_options);
  EXPECT_EQ(summary.duplicates, 2u);  // the doomed worker's two commits
  EXPECT_EQ(summary.injected, config.trials);
  const fi::JournalContents merged =
      fi::read_journal(merge_options.out_path);
  EXPECT_EQ(merged.header.fingerprint, fingerprint);
  expect_same_records(reference.records, merged.records);
}

TEST(FabricCampaign, CoordinatorCrashResumesFromLedgerAndMatchesJobs1) {
  // The slow toy (~0.3s/trial) keeps the campaign alive long enough to
  // SIGKILL the coordinator mid-flight at a deterministic ledger point.
  const fi::CampaignConfig config = fabric_campaign(/*trials=*/6);
  const fi::JournalContents reference = reference_journal(
      config, &phifi::testing::make_toy_slow, temp_path("fab_res_ref.jnl"));
  const std::uint64_t fingerprint = reference.header.fingerprint;

  const std::string socket_path = temp_path("fab_res.sock");
  const std::string shard0 = temp_path("fab_res_shard0.jnl");
  const std::string ledger = temp_path("fab_res_ledger.bin");
  for (const auto& path : {socket_path, shard0, ledger}) {
    fs::remove(path);
  }

  FabricOptions coordinator_options;
  coordinator_options.address = "unix:" + socket_path;
  coordinator_options.ledger_path = ledger;
  coordinator_options.lease_size = 2;
  coordinator_options.heartbeat_seconds = 0.1;
  coordinator_options.lease_timeout_seconds = 5.0;

  const pid_t coordinator = ::fork();
  ASSERT_GE(coordinator, 0);
  if (coordinator == 0) {
    std::ostringstream sink;
    run_coordinator(config, fingerprint, coordinator_options, nullptr,
                    nullptr, nullptr, sink);
    ::_exit(0);  // should be SIGKILLed long before completing
  }
  FabricOptions worker_options = coordinator_options;
  worker_options.shard_path = shard0;
  worker_options.reconnect_initial_ms = 30.0;
  const pid_t worker = ::fork();
  ASSERT_GE(worker, 0);
  if (worker == 0) {
    child_run_worker(config, &phifi::testing::make_toy_slow, fingerprint,
                     worker_options, /*startup_delay_ms=*/0);
  }

  // Wait until the ledger shows real progress (>= 2 records: at least one
  // grant plus its completion or a second grant), then murder the
  // coordinator mid-campaign.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  bool progressed = false;
  while (!progressed && std::chrono::steady_clock::now() < deadline) {
    try {
      progressed = read_ledger(ledger).records.size() >= 2;
    } catch (const std::exception&) {
      // Ledger not created or header not yet durable — keep waiting.
    }
    if (!progressed) ::usleep(10000);
  }
  ASSERT_TRUE(progressed) << "coordinator never made ledger progress";
  ASSERT_EQ(::kill(coordinator, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(coordinator, &status, 0), coordinator);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Restart the coordinator in-process on the same ledger and address.
  // It must replay the ledger, re-adopt the worker's live lease when the
  // worker reconnects, and finish the campaign.
  telemetry::MetricsRegistry metrics;
  std::ostringstream sink;
  const CoordinatorResult result =
      run_coordinator(config, fingerprint, coordinator_options, &metrics,
                      nullptr, nullptr, sink);
  EXPECT_TRUE(result.complete) << sink.str();
  EXPECT_GE(result.completed, config.trials);

  ASSERT_EQ(::waitpid(worker, &status, 0), worker);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  MergeOptions merge_options;
  merge_options.shards = {shard0};
  merge_options.out_path = temp_path("fab_res_merged.jnl");
  const MergeSummary summary =
      merge_shards(config, "Toy", reference.header.time_windows,
                   merge_options);
  EXPECT_EQ(summary.injected, config.trials);
  const fi::JournalContents merged =
      fi::read_journal(merge_options.out_path);
  expect_same_records(reference.records, merged.records);
}

}  // namespace
}  // namespace phifi::fabric

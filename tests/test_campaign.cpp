#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

TEST(OutcomeTally, RatesAndAccumulation) {
  OutcomeTally tally;
  tally.add(Outcome::kMasked);
  tally.add(Outcome::kMasked);
  tally.add(Outcome::kSdc);
  tally.add(Outcome::kDue);
  tally.add(Outcome::kNotInjected);  // ignored
  EXPECT_EQ(tally.total(), 4u);
  EXPECT_DOUBLE_EQ(tally.masked_rate(), 0.5);
  EXPECT_DOUBLE_EQ(tally.sdc_rate(), 0.25);
  EXPECT_DOUBLE_EQ(tally.due_rate(), 0.25);

  OutcomeTally other;
  other.add(Outcome::kSdc);
  tally += other;
  EXPECT_EQ(tally.sdc, 2u);
}

TEST(OutcomeTally, EmptyRatesAreZero) {
  OutcomeTally tally;
  EXPECT_EQ(tally.total(), 0u);
  EXPECT_EQ(tally.sdc_rate(), 0.0);
  EXPECT_EQ(tally.due_rate(), 0.0);
  EXPECT_EQ(tally.masked_rate(), 0.0);
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ToyWorkload::reset_run_counter();
    supervisor_ = std::make_unique<TrialSupervisor>(
        &phifi::testing::make_toy_normal, toy_supervisor_config());
    supervisor_->prepare_golden();
  }

  std::unique_ptr<TrialSupervisor> supervisor_;
};

TEST_F(CampaignTest, RunsRequestedTrialCount) {
  CampaignConfig config;
  config.trials = 24;
  config.seed = 42;
  Campaign campaign(*supervisor_, config);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), 24u);
  EXPECT_EQ(result.trials.size(), 24u);
  EXPECT_EQ(result.workload, "Toy");
  EXPECT_EQ(result.time_windows, 4u);
  EXPECT_EQ(result.by_window.size(), 4u);
}

TEST_F(CampaignTest, ModelsCycleEvenly) {
  CampaignConfig config;
  config.trials = 20;
  config.seed = 7;
  // Models cycle by attempt index, so an even split needs every attempt to
  // inject; keep the window off the 0.99 edge so none land post-finish.
  config.latest_fraction = 0.9;
  Campaign campaign(*supervisor_, config);
  const CampaignResult result = campaign.run();
  std::uint64_t by_model_total = 0;
  for (const auto& tally : result.by_model) {
    EXPECT_EQ(tally.total(), 5u);
    by_model_total += tally.total();
  }
  EXPECT_EQ(by_model_total, result.overall.total());
}

TEST_F(CampaignTest, WindowTalliesSumToOverall) {
  CampaignConfig config;
  config.trials = 20;
  config.seed = 8;
  Campaign campaign(*supervisor_, config);
  const CampaignResult result = campaign.run();
  std::uint64_t window_total = 0;
  for (const auto& tally : result.by_window) window_total += tally.total();
  EXPECT_EQ(window_total, result.overall.total());
}

TEST_F(CampaignTest, CategoriesMatchRegisteredSites) {
  CampaignConfig config;
  config.trials = 30;
  config.seed = 9;
  Campaign campaign(*supervisor_, config);
  const CampaignResult result = campaign.run();
  std::uint64_t category_total = 0;
  for (const auto& [category, tally] : result.by_category) {
    EXPECT_TRUE(category == "data" || category == "constant")
        << "unexpected category " << category;
    category_total += tally.total();
  }
  EXPECT_EQ(category_total, result.overall.total());
}

TEST_F(CampaignTest, ObserverSeesEveryTrial) {
  CampaignConfig config;
  config.trials = 12;
  config.seed = 10;
  Campaign campaign(*supervisor_, config);
  int observed = 0;
  int with_output = 0;
  const CampaignResult result =
      campaign.run([&](const TrialResult& trial,
                       std::span<const std::byte> output) {
        ++observed;
        if (trial.outcome == Outcome::kMasked ||
            trial.outcome == Outcome::kSdc) {
          EXPECT_FALSE(output.empty());
          ++with_output;
        } else {
          EXPECT_TRUE(output.empty());
        }
      });
  EXPECT_EQ(observed, 12);
  EXPECT_EQ(static_cast<std::uint64_t>(with_output),
            result.overall.masked + result.overall.sdc);
}

TEST_F(CampaignTest, DeterministicForSeed) {
  CampaignConfig config;
  config.trials = 16;
  config.seed = 123;
  // Keep injection targets away from the very end of the run so a polling
  // race cannot turn a trial into NotInjected in one run but not the other.
  config.latest_fraction = 0.9;
  const CampaignResult a = Campaign(*supervisor_, config).run();
  const CampaignResult b = Campaign(*supervisor_, config).run();
  // What is seed-deterministic is the *selection*: victim variable, element,
  // fault model. The outcome of an individual trial can (rarely) flip when
  // the injected write races the kernel's own read-modify-write of the same
  // element — exactly as physical injections race the pipeline — so
  // outcomes are only required to match closely.
  ASSERT_EQ(a.trials.size(), b.trials.size());
  int outcome_diffs = 0;
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_STREQ(a.trials[i].record.site_name, b.trials[i].record.site_name);
    EXPECT_EQ(a.trials[i].record.model, b.trials[i].record.model);
    EXPECT_EQ(a.trials[i].record.element_index,
              b.trials[i].record.element_index);
    outcome_diffs += a.trials[i].outcome != b.trials[i].outcome;
  }
  EXPECT_LE(outcome_diffs, 2);
}

}  // namespace
}  // namespace phifi::fi

#include "core/flip_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/injection_site.hpp"

namespace phifi::fi {
namespace {

class FlipEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    big_.resize(4096, 1.0f);
    small_.resize(4, 1.0f);
    for (auto& block : worker_vars_) block = 7;
    registry_.add_global_array<float>("big_matrix", "matrix",
                                      std::span<float>(big_));
    registry_.add_global_array<float>("small_vec", "constant",
                                      std::span<float>(small_));
    for (int w = 0; w < 4; ++w) {
      registry_.add_worker(
          w, "i", "control",
          {reinterpret_cast<std::byte*>(&worker_vars_[w]), 8}, 8);
    }
  }

  std::vector<float> big_;
  std::vector<float> small_;
  std::int64_t worker_vars_[4];
  SiteRegistry registry_;
};

TEST_F(FlipEngineTest, RegistryBasics) {
  EXPECT_EQ(registry_.size(), 6u);
  EXPECT_EQ(registry_.worker_frame_count(), 4u);
  EXPECT_EQ(registry_.frame_sites(FrameKind::kGlobal).size(), 2u);
  EXPECT_EQ(registry_.frame_sites(FrameKind::kWorker, 2).size(), 1u);
  EXPECT_EQ(registry_.total_bytes(), 4096u * 4 + 16 + 32);
}

TEST_F(FlipEngineTest, InjectProducesCompleteRecord) {
  FlipEngine engine(registry_, SelectionPolicy::kCarolFi);
  util::Rng rng(3);
  const InjectionRecord record =
      engine.inject(FaultModel::kSingle, rng, 0.25);
  EXPECT_TRUE(record.injected);
  EXPECT_EQ(record.model, FaultModel::kSingle);
  EXPECT_DOUBLE_EQ(record.progress_fraction, 0.25);
  EXPECT_GT(std::strlen(record.site_name), 0u);
  EXPECT_GT(std::strlen(record.category), 0u);
  EXPECT_LT(record.site_index, registry_.size());
}

TEST_F(FlipEngineTest, SingleInjectChangesExactlyOneSite) {
  FlipEngine engine(registry_, SelectionPolicy::kBytesWeighted);
  util::Rng rng(9);
  const InjectionRecord record =
      engine.inject(FaultModel::kSingle, rng, 0.5);
  ASSERT_TRUE(record.injected);
  // Verify the recorded site actually changed.
  int changed_sites = 0;
  for (float v : big_) changed_sites += (v != 1.0f);
  for (float v : small_) changed_sites += (v != 1.0f);
  for (std::int64_t v : worker_vars_) changed_sites += (v != 7);
  EXPECT_EQ(changed_sites, 1);
}

TEST_F(FlipEngineTest, CarolFiPolicyHitsWorkerFramesOften) {
  FlipEngine engine(registry_, SelectionPolicy::kCarolFi);
  util::Rng rng(11);
  int worker_hits = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const InjectionRecord record =
        engine.inject(FaultModel::kSingle, rng, 0.5);
    worker_hits += record.frame == FrameKind::kWorker;
  }
  // Thread->frame selection gives the worker frame ~50% despite it being a
  // tiny fraction of total bytes (the paper's replicated-control effect).
  EXPECT_NEAR(worker_hits, kTrials / 2, kTrials * 0.07);
}

TEST_F(FlipEngineTest, BytesWeightedFavorsBigSites) {
  FlipEngine engine(registry_, SelectionPolicy::kBytesWeighted);
  util::Rng rng(13);
  std::map<std::string, int> hits;
  constexpr int kTrials = 3000;
  for (int i = 0; i < kTrials; ++i) {
    const InjectionRecord record =
        engine.inject(FaultModel::kSingle, rng, 0.5);
    ++hits[record.site_name];
  }
  // big_matrix is ~99.7% of the bytes.
  EXPECT_GT(hits["big_matrix"], kTrials * 0.98);
}

TEST_F(FlipEngineTest, GlobalOnlyNeverPicksWorkerFrames) {
  FlipEngine engine(registry_, SelectionPolicy::kGlobalBytesWeighted);
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const InjectionRecord record =
        engine.inject(FaultModel::kSingle, rng, 0.5);
    EXPECT_EQ(record.frame, FrameKind::kGlobal);
  }
}

TEST_F(FlipEngineTest, WorkerOnlyAlwaysPicksWorkerFrames) {
  FlipEngine engine(registry_, SelectionPolicy::kWorkerFrameOnly);
  util::Rng rng(19);
  std::map<int, int> worker_hits;
  for (int i = 0; i < 2000; ++i) {
    const InjectionRecord record =
        engine.inject(FaultModel::kSingle, rng, 0.5);
    EXPECT_EQ(record.frame, FrameKind::kWorker);
    ++worker_hits[record.worker];
  }
  // All four workers get hit.
  EXPECT_EQ(worker_hits.size(), 4u);
}

TEST(FlipEngineEmpty, EmptyRegistryDoesNotInject) {
  SiteRegistry registry;
  FlipEngine engine(registry, SelectionPolicy::kCarolFi);
  util::Rng rng(1);
  const InjectionRecord record = engine.inject(FaultModel::kSingle, rng, 0.5);
  EXPECT_FALSE(record.injected);
}

TEST(FlipEngineNames, PolicyNames) {
  EXPECT_EQ(to_string(SelectionPolicy::kCarolFi), "carol-fi");
  EXPECT_EQ(to_string(SelectionPolicy::kBytesWeighted), "bytes-weighted");
  EXPECT_EQ(to_string(SelectionPolicy::kGlobalBytesWeighted), "global-bytes");
  EXPECT_EQ(to_string(SelectionPolicy::kWorkerFrameOnly), "worker-frame");
}

TEST(SiteRegistryTest, ElementAccess) {
  SiteRegistry registry;
  std::vector<double> data(10, 1.0);
  registry.add_global_array<double>("d", "matrix", std::span<double>(data));
  const InjectionSite& site = registry.site(0);
  EXPECT_EQ(site.element_count(), 10u);
  EXPECT_EQ(site.element_size, 8u);
  auto element = site.element(3);
  EXPECT_EQ(static_cast<void*>(element.data()),
            static_cast<void*>(&data[3]));
}

}  // namespace
}  // namespace phifi::fi

#include "util/array_view.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

namespace phifi::util {
namespace {

TEST(Shape, RankAndSize) {
  EXPECT_EQ((Shape{.width = 5}).rank(), 1);
  EXPECT_EQ((Shape{.width = 5, .height = 4}).rank(), 2);
  EXPECT_EQ((Shape{.width = 5, .height = 4, .depth = 3}).rank(), 3);
  EXPECT_EQ((Shape{.width = 5, .height = 4, .depth = 3}).size(), 60u);
}

class ShapeRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(ShapeRoundTripTest, FlattenUnflattenRoundTrip) {
  const auto [w, h, d] = GetParam();
  const Shape shape{.width = w, .height = h, .depth = d};
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const Coord c = unflatten(shape, i);
    EXPECT_LT(c.x, w);
    EXPECT_LT(c.y, h);
    EXPECT_LT(c.z, d);
    EXPECT_EQ(flatten(shape, c), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeRoundTripTest,
    ::testing::Values(std::make_tuple(7, 1, 1), std::make_tuple(4, 5, 1),
                      std::make_tuple(3, 4, 5), std::make_tuple(1, 1, 1),
                      std::make_tuple(16, 16, 1)));

TEST(Shape, UnflattenIsRowMajorXFastest) {
  const Shape shape{.width = 4, .height = 3, .depth = 2};
  EXPECT_EQ(unflatten(shape, 0), (Coord{0, 0, 0}));
  EXPECT_EQ(unflatten(shape, 1), (Coord{1, 0, 0}));
  EXPECT_EQ(unflatten(shape, 4), (Coord{0, 1, 0}));
  EXPECT_EQ(unflatten(shape, 12), (Coord{0, 0, 1}));
}

TEST(View2D, IndexingMatchesRowMajor) {
  std::vector<int> data(12);
  for (int i = 0; i < 12; ++i) data[i] = i;
  View2D<int> view(data.data(), 3, 4);
  EXPECT_EQ(view(0, 0), 0);
  EXPECT_EQ(view(0, 3), 3);
  EXPECT_EQ(view(1, 0), 4);
  EXPECT_EQ(view(2, 3), 11);
  EXPECT_EQ(view.row(1)[2], 6);
  view(2, 2) = 99;
  EXPECT_EQ(data[10], 99);
}

TEST(View3D, IndexingMatchesLayout) {
  std::vector<int> data(24);
  for (int i = 0; i < 24; ++i) data[i] = i;
  View3D<int> view(data.data(), 2, 3, 4);
  EXPECT_EQ(view(0, 0, 0), 0);
  EXPECT_EQ(view(0, 1, 0), 4);
  EXPECT_EQ(view(1, 0, 0), 12);
  EXPECT_EQ(view(1, 2, 3), 23);
}

TEST(AlignedBuffer, IsCacheLineAlignedAndZeroed) {
  AlignedBuffer<double> buffer(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], 0.0);
  }
}

TEST(AlignedBuffer, ResizeAndEmpty) {
  AlignedBuffer<float> buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.resize(7);
  EXPECT_EQ(buffer.size(), 7u);
  buffer[3] = 1.5f;
  EXPECT_EQ(buffer.span()[3], 1.5f);
  buffer.resize(0);
  EXPECT_TRUE(buffer.empty());
}

}  // namespace
}  // namespace phifi::util

#include "core/progress.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace phifi::fi {
namespace {

TEST(Progress, FractionTracksTicks) {
  ProgressTracker progress;
  progress.reset(10);
  EXPECT_EQ(progress.fraction(), 0.0);
  progress.tick(3);
  EXPECT_DOUBLE_EQ(progress.fraction(), 0.3);
  progress.tick(7);
  EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
  progress.tick(5);  // over-ticking clamps
  EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
}

TEST(Progress, ZeroTotalIsZeroFraction) {
  ProgressTracker progress;
  progress.reset(0);
  progress.tick(100);
  EXPECT_EQ(progress.fraction(), 0.0);
}

TEST(Progress, HookFiresOnceAtCrossing) {
  ProgressTracker progress;
  progress.reset(100);
  int fires = 0;
  double fired_at = 0.0;
  progress.arm(0.5, [&](double at) {
    ++fires;
    fired_at = at;
  });
  for (int i = 0; i < 49; ++i) progress.tick();
  EXPECT_EQ(fires, 0);
  progress.tick();  // crosses 0.5
  EXPECT_EQ(fires, 1);
  EXPECT_DOUBLE_EQ(fired_at, 0.5);
  for (int i = 0; i < 50; ++i) progress.tick();
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(progress.fired());
}

TEST(Progress, LateTargetFiresAtFinish) {
  ProgressTracker progress;
  progress.reset(10);
  int fires = 0;
  double fired_at = -1.0;
  progress.arm(0.999, [&](double at) {
    ++fires;
    fired_at = at;
  });
  for (int i = 0; i < 9; ++i) progress.tick();
  EXPECT_EQ(fires, 0);
  progress.finish();
  EXPECT_EQ(fires, 1);
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
  EXPECT_TRUE(progress.finished());
}

TEST(Progress, WeightedTickCrossingReportsActualFraction) {
  ProgressTracker progress;
  progress.reset(100);
  double fired_at = 0.0;
  progress.arm(0.5, [&](double at) { fired_at = at; });
  progress.tick(80);  // jumps straight past the target
  EXPECT_DOUBLE_EQ(fired_at, 0.8);
}

TEST(Progress, UnarmedNeverFires) {
  ProgressTracker progress;
  progress.reset(4);
  progress.tick(4);
  progress.finish();
  EXPECT_FALSE(progress.fired());
}

TEST(Progress, ResetClearsArming) {
  ProgressTracker progress;
  progress.reset(4);
  int fires = 0;
  progress.arm(0.1, [&](double) { ++fires; });
  progress.reset(4);
  progress.tick(4);
  progress.finish();
  EXPECT_EQ(fires, 0);
}

TEST(Progress, PulseFiresOncePerSlice) {
  ProgressTracker progress;
  progress.reset(100);
  int pulses = 0;
  progress.set_pulse(4, [&] { ++pulses; });
  progress.tick(24);
  EXPECT_EQ(pulses, 0);  // below the first 1/4 slice
  progress.tick(1);
  EXPECT_EQ(pulses, 1);  // crossed 25%
  progress.tick(50);
  EXPECT_EQ(pulses, 2);  // a jump over several slices pulses once
  progress.tick(25);
  EXPECT_EQ(pulses, 3);
  progress.tick(10);  // over-ticking clamps; no extra pulse
  EXPECT_EQ(pulses, 3);
}

TEST(Progress, PulseAndArmCoexist) {
  ProgressTracker progress;
  progress.reset(100);
  int pulses = 0;
  int fires = 0;
  progress.set_pulse(10, [&] { ++pulses; });
  progress.arm(0.5, [&](double) { ++fires; });
  for (int i = 0; i < 100; ++i) progress.tick();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(pulses, 10);
}

TEST(Progress, ResetClearsPulse) {
  ProgressTracker progress;
  progress.reset(10);
  int pulses = 0;
  progress.set_pulse(2, [&] { ++pulses; });
  progress.reset(10);
  progress.tick(10);
  EXPECT_EQ(pulses, 0);
}

TEST(Progress, ConcurrentTickersFireExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    ProgressTracker progress;
    progress.reset(4000);
    std::atomic<int> fires{0};
    progress.arm(0.5, [&](double) { fires.fetch_add(1); });
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&progress] {
        for (int i = 0; i < 1000; ++i) progress.tick();
      });
    }
    for (auto& t : threads) t.join();
    progress.finish();
    EXPECT_EQ(fires.load(), 1);
  }
}

}  // namespace
}  // namespace phifi::fi

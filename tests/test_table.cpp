#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace phifi::util {
namespace {

TEST(Table, TextRenderingAligns) {
  Table table("demo");
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  std::ostringstream os;
  table.print_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table;
  table.set_header({"a", "b"});
  table.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, RowCount) {
  Table table;
  table.set_header({"h"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_percent(0.853, 1), "85.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Fmt, Interval) {
  EXPECT_EQ(fmt_interval(10.0, 8.5, 11.5, 1), "10.0 [8.5, 11.5]");
}

}  // namespace
}  // namespace phifi::util

#include "phi/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "phi/resource_map.hpp"

namespace phifi::phi {
namespace {

TEST(DeviceSpec, KnightsCorner3120a) {
  const DeviceSpec spec = DeviceSpec::knights_corner_3120a();
  EXPECT_EQ(spec.physical_cores, 57u);
  EXPECT_EQ(spec.threads_per_core, 4u);
  EXPECT_EQ(spec.hardware_threads(), 228u);
  EXPECT_EQ(spec.vector_bits, 512u);
  EXPECT_EQ(spec.dram_bytes, std::size_t{6} << 30);
  EXPECT_EQ(spec.l2_bytes_total(), std::size_t{57} * 512 * 1024);
}

class PartitionTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(PartitionTest, CoversRangeExactlyOnce) {
  const auto [count, workers] = GetParam();
  std::size_t covered = 0;
  std::size_t previous_end = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const auto [begin, end] = Device::partition(count, w, workers);
    EXPECT_LE(begin, end);
    EXPECT_EQ(begin, previous_end);  // contiguous, ordered
    covered += end - begin;
    previous_end = end;
  }
  EXPECT_EQ(covered, count);
  EXPECT_EQ(previous_end, count);
}

TEST_P(PartitionTest, BalancedWithinOne) {
  const auto [count, workers] = GetParam();
  std::size_t min_len = count + 1;
  std::size_t max_len = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const auto [begin, end] = Device::partition(count, w, workers);
    min_len = std::min(min_len, end - begin);
    max_len = std::max(max_len, end - begin);
  }
  EXPECT_LE(max_len - min_len, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionTest,
    ::testing::Values(std::make_tuple(0, 4), std::make_tuple(1, 4),
                      std::make_tuple(96, 228), std::make_tuple(228, 228),
                      std::make_tuple(1000, 7), std::make_tuple(5, 5)));

TEST(Device, LaunchRunsEveryLogicalWorkerOnce) {
  Device device(DeviceSpec::test_device(), 2);
  std::vector<std::atomic<int>> hits(device.spec().hardware_threads());
  device.launch(device.spec().hardware_threads(), [&](WorkerCtx& ctx) {
    hits[ctx.worker].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, LaunchZeroWorkersIsNoOp) {
  Device device(DeviceSpec::test_device(), 1);
  device.launch(0, [](WorkerCtx&) { FAIL(); });
}

TEST(Device, RepeatedLaunchesWork) {
  Device device(DeviceSpec::test_device(), 2);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    device.launch(8, [&](WorkerCtx&) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(Device, ParallelForCoversRange) {
  Device device(DeviceSpec::test_device(), 2);
  std::vector<std::atomic<int>> hits(1000);
  device.parallel_for(1000, [&](std::size_t begin, std::size_t end,
                                WorkerCtx&) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, WorkerCtxReportsWorkerCount) {
  Device device(DeviceSpec::test_device(), 2);
  device.launch(5, [&](WorkerCtx& ctx) {
    EXPECT_EQ(ctx.num_workers, 5u);
    EXPECT_LT(ctx.worker, 5u);
    EXPECT_NE(ctx.ctl, nullptr);
    EXPECT_NE(ctx.counters, nullptr);
  });
}

TEST(Device, ExceptionsPropagateToCaller) {
  Device device(DeviceSpec::test_device(), 2);
  EXPECT_THROW(device.launch(4,
                             [](WorkerCtx& ctx) {
                               if (ctx.worker == 2) {
                                 throw std::runtime_error("boom");
                               }
                             }),
               std::runtime_error);
  // Device remains usable afterwards.
  std::atomic<int> count{0};
  device.launch(4, [&](WorkerCtx&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(Device, CountersAccumulate) {
  Device device(DeviceSpec::test_device(), 1);
  device.counters().reset();
  device.launch(3, [](WorkerCtx& ctx) { ctx.counters->add_flops(10); });
  const CounterSnapshot snap = device.counters().snapshot();
  EXPECT_EQ(snap.flops, 30u);
  EXPECT_EQ(snap.kernel_launches, 1u);
  EXPECT_EQ(snap.logical_threads_run, 3u);
}

TEST(Counters, ArithmeticIntensity) {
  Counters counters;
  counters.add_flops(100);
  counters.add_bytes_read(40);
  counters.add_bytes_written(10);
  EXPECT_DOUBLE_EQ(counters.snapshot().arithmetic_intensity(), 2.0);
  counters.reset();
  EXPECT_EQ(counters.snapshot().flops, 0u);
  EXPECT_EQ(counters.snapshot().arithmetic_intensity(), 0.0);
}

TEST(ControlBlock, VolatileSlotsRoundTrip) {
  ControlLayout layout;
  const ControlSlot a = layout.add("a");
  const ControlSlot b = layout.add("b");
  EXPECT_EQ(layout.count(), 2u);
  EXPECT_EQ(layout.name(0), "a");

  ControlBlock block;
  block.set(a, 42);
  block.set(b, -7);
  EXPECT_EQ(block.get(a), 42);
  EXPECT_EQ(block.get(b), -7);
  EXPECT_EQ(block.add(a, 8), 50);
  EXPECT_EQ(block.get(a), 50);
  block.clear();
  EXPECT_EQ(block.get(a), 0);
}

TEST(ControlBlock, SlotBytesAliasTheSlot) {
  ControlLayout layout;
  const ControlSlot a = layout.add("a");
  ControlBlock block;
  block.set(a, 1);
  auto bytes = block.slot_bytes(0);
  ASSERT_EQ(bytes.size(), 8u);
  bytes[0] = std::byte{0xff};
  EXPECT_EQ(block.get(a), 0xff);
}

TEST(ResourceMap, InventoryMatchesSpec) {
  const DeviceSpec spec = DeviceSpec::knights_corner_3120a();
  const ResourceMap map = ResourceMap::for_spec(spec);
  const Resource* l2 = map.find(ResourceClass::kL2Cache);
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->bits, spec.l2_bytes_total() * 8);
  EXPECT_EQ(l2->protection, Protection::kSecded);
  const Resource* dram = map.find(ResourceClass::kDram);
  ASSERT_NE(dram, nullptr);
  EXPECT_FALSE(dram->beam_exposed);
}

TEST(ResourceMap, UnprotectedSubsetSmaller) {
  const ResourceMap map =
      ResourceMap::for_spec(DeviceSpec::knights_corner_3120a());
  EXPECT_GT(map.exposed_bits(), map.exposed_bits(/*unprotected_only=*/true));
  EXPECT_GT(map.exposed_bits(true), 0u);
}

TEST(ResourceMap, EccDisabledRemovesProtection) {
  DeviceSpec spec = DeviceSpec::knights_corner_3120a();
  spec.ecc_enabled = false;
  const ResourceMap map = ResourceMap::for_spec(spec);
  EXPECT_EQ(map.find(ResourceClass::kL2Cache)->protection, Protection::kNone);
  // With ECC off, every beam-exposed bit is unprotected.
  EXPECT_EQ(map.exposed_bits(), map.exposed_bits(/*unprotected_only=*/true));
}

}  // namespace
}  // namespace phifi::phi

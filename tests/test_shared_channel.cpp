#include "core/shared_channel.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>

namespace phifi::fi {
namespace {

TEST(SharedChannel, InitiallyEmpty) {
  SharedChannel channel(64);
  EXPECT_FALSE(channel.record_ready());
  EXPECT_FALSE(channel.output_ready());
  EXPECT_EQ(channel.capacity(), 64u);
  EXPECT_TRUE(channel.output().empty());
}

TEST(SharedChannel, RecordRoundTrip) {
  SharedChannel channel(16);
  InjectionRecord record;
  record.injected = true;
  record.model = FaultModel::kDouble;
  record.worker = 42;
  record.progress_fraction = 0.75;
  std::strcpy(record.site_name, "var_x");
  std::strcpy(record.category, "matrix");
  channel.store_record(record);
  ASSERT_TRUE(channel.record_ready());
  const InjectionRecord loaded = channel.record();
  EXPECT_TRUE(loaded.injected);
  EXPECT_EQ(loaded.model, FaultModel::kDouble);
  EXPECT_EQ(loaded.worker, 42);
  EXPECT_DOUBLE_EQ(loaded.progress_fraction, 0.75);
  EXPECT_STREQ(loaded.site_name, "var_x");
}

TEST(SharedChannel, OutputRoundTripAndReset) {
  SharedChannel channel(8);
  const std::byte payload[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  channel.store_output(payload);
  ASSERT_TRUE(channel.output_ready());
  const auto output = channel.output();
  ASSERT_EQ(output.size(), 4u);
  EXPECT_EQ(std::memcmp(output.data(), payload, 4), 0);

  channel.reset();
  EXPECT_FALSE(channel.output_ready());
  EXPECT_FALSE(channel.record_ready());
  EXPECT_TRUE(channel.output().empty());
}

TEST(SharedChannel, SecondRecordOverwritesFirst) {
  SharedChannel channel(8);
  InjectionRecord provisional;
  provisional.injected = true;
  provisional.model = FaultModel::kZero;
  channel.store_record(provisional);
  InjectionRecord final_record = provisional;
  final_record.element_index = 99;
  std::strcpy(final_record.site_name, "final");
  channel.store_record(final_record);
  EXPECT_EQ(channel.record().element_index, 99u);
  EXPECT_STREQ(channel.record().site_name, "final");
}

TEST(SharedChannel, VisibleAcrossFork) {
  // The core property: a child's writes are observed by the parent.
  SharedChannel channel(16);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    InjectionRecord record;
    record.injected = true;
    record.element_index = 1234;
    channel.store_record(record);
    const std::byte payload[2] = {std::byte{0xaa}, std::byte{0xbb}};
    channel.store_output(payload);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_TRUE(channel.record_ready());
  ASSERT_TRUE(channel.output_ready());
  EXPECT_EQ(channel.record().element_index, 1234u);
  EXPECT_EQ(channel.output()[0], std::byte{0xaa});
  EXPECT_EQ(channel.output()[1], std::byte{0xbb});
}

TEST(SharedChannel, HeartbeatCountsAndResets) {
  SharedChannel channel(8);
  EXPECT_EQ(channel.heartbeat(), 0u);
  channel.beat();
  channel.beat();
  channel.beat();
  EXPECT_EQ(channel.heartbeat(), 3u);
  channel.reset();
  EXPECT_EQ(channel.heartbeat(), 0u);
}

TEST(SharedChannel, HeartbeatVisibleAcrossFork) {
  // The watchdog's liveness signal: child beats, parent observes.
  SharedChannel channel(8);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (int i = 0; i < 5; ++i) channel.beat();
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(channel.heartbeat(), 5u);
}

TEST(SharedChannel, PhaseLogRoundTripsInOrder) {
  SharedChannel channel(8);
  EXPECT_TRUE(channel.phases().empty());
  channel.store_phase("setup", 0.0, 0.001);
  channel.store_phase("kernel", 0.25, 0.010);
  const auto phases = channel.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_STREQ(phases[0].name, "setup");
  EXPECT_DOUBLE_EQ(phases[0].fraction, 0.0);
  EXPECT_DOUBLE_EQ(phases[0].t_seconds, 0.001);
  EXPECT_STREQ(phases[1].name, "kernel");
  EXPECT_DOUBLE_EQ(phases[1].fraction, 0.25);

  channel.reset();
  EXPECT_TRUE(channel.phases().empty());
}

TEST(SharedChannel, PhaseLogTruncatesLongNamesAndDropsOverflow) {
  SharedChannel channel(8);
  // Names longer than the fixed slot are truncated, not overrun.
  channel.store_phase("a-phase-name-well-beyond-twenty-four-chars", 0.5,
                      0.1);
  const auto one = channel.phases();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_LT(std::strlen(one[0].name), sizeof(PhaseRecord{}.name));

  // A corrupted child looping on enter_phase must not wedge anything:
  // transitions past the fixed capacity are silently dropped.
  for (std::size_t i = 0; i < SharedChannel::kMaxPhases + 10; ++i) {
    channel.store_phase("loop", 0.5, 0.1);
  }
  EXPECT_EQ(channel.phases().size(), SharedChannel::kMaxPhases);
}

TEST(SharedChannel, PhasesVisibleAcrossFork) {
  SharedChannel channel(8);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.store_phase("child-phase", 0.75, 0.002);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const auto phases = channel.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_STREQ(phases[0].name, "child-phase");
  EXPECT_DOUBLE_EQ(phases[0].fraction, 0.75);
}

TEST(SharedChannel, ZeroCapacityHandlesEmptyOutput) {
  SharedChannel channel(0);
  channel.store_output({});
  EXPECT_TRUE(channel.output_ready());
  EXPECT_TRUE(channel.output().empty());
}

}  // namespace
}  // namespace phifi::fi

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace phifi::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(7);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork(0);
  Rng child2 = parent.fork(1);
  // Streams should differ from each other and from the parent.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= child.next() != child2.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroIsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(8)];
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(41);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sq += x * x;
  }
  const double sample_mean = sum / kDraws;
  const double sample_var = sq / kDraws - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(sample_var, mean, std::max(0.1, mean * 0.10));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.05, 0.5, 2.0, 10.0, 50.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(51);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], kDraws / 4, kDraws * 0.02);
  EXPECT_NEAR(counts[2], 3 * kDraws / 4, kDraws * 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(52);
  const std::vector<double> weights = {0.0, 0.0};
  std::array<int, 2> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0], 5000, 500);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(61);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  auto original = values;
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(values, original);  // 1/100! chance of false failure
}

}  // namespace
}  // namespace phifi::util

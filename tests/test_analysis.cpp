// FIT arithmetic, tolerance curves, PVF helpers, and criticality tables.
#include <gtest/gtest.h>

#include "analysis/criticality.hpp"
#include "analysis/fit.hpp"
#include "analysis/pvf.hpp"
#include "analysis/tolerance.hpp"

namespace phifi::analysis {
namespace {

TEST(Fit, KnownConversion) {
  // 100 errors over 1e10 n/cm^2: sigma = 1e-8 cm^2;
  // FIT = 1e-8 * 13 * 1e9 = 130.
  const FitEstimate fit = fit_from_counts(100, 1e10);
  EXPECT_NEAR(fit.cross_section, 1e-8, 1e-15);
  EXPECT_NEAR(fit.fit, 130.0, 1e-9);
  EXPECT_GT(fit.fit_hi, fit.fit);
  EXPECT_LT(fit.fit_lo, fit.fit);
  EXPECT_NEAR(fit.mtbf_hours(), 1e9 / 130.0, 1e-3);
}

TEST(Fit, ZeroFluenceIsEmpty) {
  const FitEstimate fit = fit_from_counts(10, 0.0);
  EXPECT_EQ(fit.fit, 0.0);
  EXPECT_EQ(fit.mtbf_hours(), 0.0);
}

TEST(Fit, ConfidenceIntervalShrinksWithCounts) {
  const FitEstimate few = fit_from_counts(10, 1e10);
  const FitEstimate many = fit_from_counts(1000, 1e12);
  const double few_rel = (few.fit_hi - few.fit_lo) / few.fit;
  const double many_rel = (many.fit_hi - many.fit_lo) / many.fit;
  EXPECT_LT(many_rel, few_rel);
  // The paper's criterion: >=100 errors gives better than ~±10%.
  const FitEstimate hundred = fit_from_counts(100, 1e10);
  EXPECT_LT((hundred.fit_hi - hundred.fit) / hundred.fit, 0.25);
}

TEST(Fit, MachineMtbfScalesInversely) {
  // Sec. 4.2: Trinity-size machine, 19,000 boards. A 193-FIT benchmark
  // gives an event roughly every 1e9/(193*19000)/24 ~ 11.4 days.
  const double days = machine_mtbf_days(193.0, 19000.0);
  EXPECT_NEAR(days, 11.36, 0.1);
  EXPECT_NEAR(machine_mtbf_days(193.0, 190000.0), days / 10.0, 0.01);
  EXPECT_EQ(machine_mtbf_days(0.0, 100.0), 0.0);
}

TEST(Tolerance, CurveIsMonotoneNonIncreasing) {
  ToleranceAnalysis analysis;
  for (double e : {0.0001, 0.002, 0.02, 0.2, 2.0}) analysis.add_sdc(e);
  double previous = 1.0;
  for (double tol : ToleranceAnalysis::default_tolerances()) {
    const double remaining = analysis.remaining_fraction(tol);
    EXPECT_LE(remaining, previous);
    previous = remaining;
  }
}

TEST(Tolerance, KnownCounts) {
  ToleranceAnalysis analysis;
  analysis.add_sdc(0.0005);
  analysis.add_sdc(0.004);
  analysis.add_sdc(0.04);
  analysis.add_sdc(0.4);
  EXPECT_EQ(analysis.total_sdc(), 4u);
  EXPECT_EQ(analysis.sdc_at(0.001), 3u);
  EXPECT_EQ(analysis.sdc_at(0.01), 2u);
  EXPECT_EQ(analysis.sdc_at(0.1), 1u);
  EXPECT_DOUBLE_EQ(analysis.remaining_fraction(0.01), 0.5);
  EXPECT_DOUBLE_EQ(analysis.reduction_percent(0.01), 50.0);
}

TEST(Tolerance, InfiniteErrorsNeverTolerated) {
  ToleranceAnalysis analysis;
  analysis.add_sdc(std::numeric_limits<double>::infinity());
  EXPECT_EQ(analysis.sdc_at(0.15), 1u);
}

TEST(Tolerance, EmptyRemainsOne) {
  ToleranceAnalysis analysis;
  EXPECT_DOUBLE_EQ(analysis.remaining_fraction(0.05), 1.0);
}

TEST(Pvf, PercentScaling) {
  fi::OutcomeTally tally;
  tally.masked = 60;
  tally.sdc = 30;
  tally.due = 10;
  EXPECT_NEAR(sdc_pvf(tally).point, 30.0, 1e-9);
  EXPECT_NEAR(due_pvf(tally).point, 10.0, 1e-9);
  EXPECT_NEAR(masked_pvf(tally).point, 60.0, 1e-9);
  EXPECT_LT(sdc_pvf(tally).lo, 30.0);
  EXPECT_GT(sdc_pvf(tally).hi, 30.0);
}

fi::CampaignResult make_result() {
  fi::CampaignResult result;
  auto& matrix = result.by_category["matrix"];
  matrix.masked = 40;
  matrix.sdc = 40;
  matrix.due = 20;
  auto& control = result.by_category["control"];
  control.masked = 20;
  control.sdc = 30;
  control.due = 50;
  auto& rare = result.by_category["rare"];
  rare.sdc = 2;  // below min_injections
  return result;
}

TEST(Criticality, TableRanksByContribution) {
  const auto rows = criticality_table(make_result(), 10);
  ASSERT_EQ(rows.size(), 2u);
  // control: share 100/202, rate 0.8 -> 0.396; matrix: 100/202*0.6 -> 0.297.
  EXPECT_EQ(rows[0].category, "control");
  EXPECT_EQ(rows[1].category, "matrix");
  EXPECT_NEAR(rows[0].sdc_rate, 0.3, 1e-9);
  EXPECT_NEAR(rows[0].due_rate, 0.5, 1e-9);
  EXPECT_NEAR(rows[0].injection_share + rows[1].injection_share,
              200.0 / 202.0, 1e-9);
}

TEST(Criticality, MinInjectionFilter) {
  const auto rows = criticality_table(make_result(), 1);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(Criticality, RecommendationsAreCategoryAware) {
  CategoryCriticality control{.category = "control",
                              .injections = 100,
                              .sdc_rate = 0.3,
                              .due_rate = 0.4};
  EXPECT_NE(recommend_mitigation(control, true).find("duplication"),
            std::string::npos);

  CategoryCriticality matrix{.category = "matrix",
                             .injections = 100,
                             .sdc_rate = 0.5,
                             .due_rate = 0.2};
  EXPECT_NE(recommend_mitigation(matrix, true).find("ABFT"),
            std::string::npos);

  CategoryCriticality sort{.category = "mesh.sort",
                           .injections = 100,
                           .sdc_rate = 0.4,
                           .due_rate = 0.4};
  EXPECT_NE(recommend_mitigation(sort, false).find("sort"),
            std::string::npos);

  CategoryCriticality low{.category = "whatever",
                          .injections = 100,
                          .sdc_rate = 0.01,
                          .due_rate = 0.01};
  EXPECT_NE(recommend_mitigation(low, false).find("low criticality"),
            std::string::npos);
}

}  // namespace
}  // namespace phifi::analysis

#include "core/supervisor.hpp"

#include <gtest/gtest.h>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "tests/toy_workload.hpp"

// RLIMIT_AS clashes with ASan's shadow-memory reservation, so the
// address-space rlimit test must be skipped under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define PHIFI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PHIFI_ASAN 1
#endif
#endif

namespace phifi::fi {
namespace {

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

TEST(Supervisor, GoldenIsPrepared) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  EXPECT_EQ(supervisor.golden().size(), 64 * sizeof(double));
  EXPECT_EQ(supervisor.output_type(), ElementType::kF64);
  EXPECT_EQ(supervisor.time_windows(), 4u);
  EXPECT_GT(supervisor.golden_seconds(), 0.0);
  EXPECT_EQ(supervisor.workload_name(), "Toy");
}

TEST(Supervisor, CleanTrialIsMasked) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  const TrialResult result = supervisor.run_clean_trial();
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.due_kind, DueKind::kNone);
}

TEST(Supervisor, RandomFaultInOutputIsSdc) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  int sdcs = 0;
  int injected = 0;
  for (int i = 0; injected < 10 && i < 40; ++i) {
    TrialConfig config;
    config.trial_seed = 1000 + i;
    config.model = FaultModel::kRandom;
    config.policy = SelectionPolicy::kGlobalBytesWeighted;
    const TrialResult result = supervisor.run_trial(config);
    // A very late target can race the end of the run; such trials are
    // reported NotInjected and retried, as in a real campaign.
    if (result.outcome == Outcome::kNotInjected) continue;
    ++injected;
    if (result.outcome == Outcome::kSdc) {
      ++sdcs;
      EXPECT_TRUE(result.record.injected);
      EXPECT_EQ(result.record.model, FaultModel::kRandom);
      // The SDC trial's output is available and differs from golden.
      const auto output = supervisor.last_output();
      ASSERT_EQ(output.size(), supervisor.golden().size());
      EXPECT_NE(std::memcmp(output.data(), supervisor.golden().data(),
                            output.size()),
                0);
    }
  }
  // A Random overwrite of a persistently accumulated output element can
  // practically never restore the exact value.
  EXPECT_GE(sdcs, 8);
}

TEST(Supervisor, CrashTrialIsDueCrash) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_crash,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  TrialConfig config;
  config.trial_seed = 5;
  const TrialResult result = supervisor.run_trial(config);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kCrash);
}

TEST(Supervisor, HangTrialIsDueHang) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 0.3;
  config.timeout_factor = 5.0;
  TrialSupervisor supervisor(&phifi::testing::make_toy_hang, config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 6;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kHang);
  // A plain hang dies to SIGTERM inside the grace window; no escalation.
  EXPECT_FALSE(result.escalated_kill);
}

TEST(Supervisor, SigtermIgnoringHangIsEscalatedToSigkill) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 0.3;
  config.timeout_factor = 5.0;
  config.kill_grace_seconds = 0.1;
  TrialSupervisor supervisor(&phifi::testing::make_toy_hang_ignore_term,
                             config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 8;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kHang);
  EXPECT_TRUE(result.escalated_kill);
}

TEST(Supervisor, AddressSpaceRlimitIsDueRlimit) {
#ifdef PHIFI_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#endif
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.child_address_space_mb = 512;
  // Generous deadline: this test asserts *classification* (rlimit beats
  // watchdog), and touching 512MB can outlast the default ~0.5s deadline
  // on a loaded parallel-ctest host, misclassifying the trial as a hang.
  config.min_timeout_seconds = 10.0;
  TrialSupervisor supervisor(&phifi::testing::make_toy_bloat, config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 9;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kRlimit);
}

TEST(Supervisor, CpuRlimitIsDueRlimit) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  // Deadline far beyond the CPU limit so the kernel's SIGXCPU, not the
  // watchdog, is what stops the spinning child.
  config.min_timeout_seconds = 10.0;
  config.child_cpu_seconds = 1;
  TrialSupervisor supervisor(&phifi::testing::make_toy_hang, config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 10;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kRlimit);
  EXPECT_LT(result.seconds, 5.0);
}

TEST(Supervisor, HeartbeatExtendsDeadlineForSlowChild) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 0.15;
  config.heartbeat_divisions = 16;
  config.max_deadline_factor = 4.0;
  TrialSupervisor supervisor(&phifi::testing::make_toy_slow, config);
  supervisor.prepare_golden();
  // The slowed run (~0.3s) blows past the 0.15s base deadline, but the
  // child keeps beating, so the watchdog lets it finish.
  const TrialResult result = supervisor.run_clean_trial();
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_GT(result.heartbeats, 0u);
  EXPECT_GT(result.seconds, 0.15);
}

TEST(Supervisor, SlowChildWithoutHeartbeatIsKilled) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 0.15;
  config.heartbeat_divisions = 0;  // heartbeat off: hard deadline applies
  TrialSupervisor supervisor(&phifi::testing::make_toy_slow, config);
  supervisor.prepare_golden();
  const TrialResult result = supervisor.run_clean_trial();
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kHang);
}

TEST(Supervisor, StallTimeoutCutsSilentChildEarly) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 3.0;  // generous absolute deadline
  config.heartbeat_divisions = 16;
  config.stall_timeout_seconds = 0.2;
  TrialSupervisor supervisor(&phifi::testing::make_toy_hang, config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 11;
  const TrialResult result = supervisor.run_trial(trial);
  // The hang toy beats through its first half, then goes silent; the
  // stall timeout reaps it long before the 3s deadline.
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kStall);
  EXPECT_LT(result.seconds, 1.5);
}

TEST(Supervisor, WaitSurvivesSignalInterruptions) {
  ToyWorkload::reset_run_counter();
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so every delivery
  // forces waitpid/nanosleep in the supervisor out with EINTR.
  struct sigaction action = {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction old_action = {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &old_action), 0);

  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();

  std::atomic<bool> done{false};
  pthread_t target = pthread_self();
  std::thread pester([&] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const TrialResult result = supervisor.run_clean_trial();
  done.store(true, std::memory_order_relaxed);
  pester.join();
  sigaction(SIGUSR1, &old_action, nullptr);

  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.due_kind, DueKind::kNone);
}

TEST(Supervisor, ThrowTrialIsDueAbnormalExit) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_throw,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 7;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kAbnormalExit);
}

TEST(Supervisor, WindowAttributionMatchesProgressFraction) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  for (int i = 0; i < 8; ++i) {
    TrialConfig trial;
    trial.trial_seed = 100 + i;
    trial.model = FaultModel::kSingle;
    const TrialResult result = supervisor.run_trial(trial);
    if (result.outcome == Outcome::kNotInjected) continue;
    const unsigned expected = std::min(
        3u, static_cast<unsigned>(result.record.progress_fraction * 4));
    EXPECT_EQ(result.window, expected);
  }
}

TEST(Supervisor, GoldenIsDeterministicAcrossInstances) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor a(&phifi::testing::make_toy_normal,
                    toy_supervisor_config());
  a.prepare_golden();
  ToyWorkload::reset_run_counter();
  TrialSupervisor b(&phifi::testing::make_toy_normal,
                    toy_supervisor_config());
  b.prepare_golden();
  ASSERT_EQ(a.golden().size(), b.golden().size());
  EXPECT_EQ(std::memcmp(a.golden().data(), b.golden().data(),
                        a.golden().size()),
            0);
}

}  // namespace
}  // namespace phifi::fi

#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

TEST(Supervisor, GoldenIsPrepared) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  EXPECT_EQ(supervisor.golden().size(), 64 * sizeof(double));
  EXPECT_EQ(supervisor.output_type(), ElementType::kF64);
  EXPECT_EQ(supervisor.time_windows(), 4u);
  EXPECT_GT(supervisor.golden_seconds(), 0.0);
  EXPECT_EQ(supervisor.workload_name(), "Toy");
}

TEST(Supervisor, CleanTrialIsMasked) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  const TrialResult result = supervisor.run_clean_trial();
  EXPECT_EQ(result.outcome, Outcome::kMasked);
  EXPECT_EQ(result.due_kind, DueKind::kNone);
}

TEST(Supervisor, RandomFaultInOutputIsSdc) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  int sdcs = 0;
  int injected = 0;
  for (int i = 0; injected < 10 && i < 40; ++i) {
    TrialConfig config;
    config.trial_seed = 1000 + i;
    config.model = FaultModel::kRandom;
    config.policy = SelectionPolicy::kGlobalBytesWeighted;
    const TrialResult result = supervisor.run_trial(config);
    // A very late target can race the end of the run; such trials are
    // reported NotInjected and retried, as in a real campaign.
    if (result.outcome == Outcome::kNotInjected) continue;
    ++injected;
    if (result.outcome == Outcome::kSdc) {
      ++sdcs;
      EXPECT_TRUE(result.record.injected);
      EXPECT_EQ(result.record.model, FaultModel::kRandom);
      // The SDC trial's output is available and differs from golden.
      const auto output = supervisor.last_output();
      ASSERT_EQ(output.size(), supervisor.golden().size());
      EXPECT_NE(std::memcmp(output.data(), supervisor.golden().data(),
                            output.size()),
                0);
    }
  }
  // A Random overwrite of a persistently accumulated output element can
  // practically never restore the exact value.
  EXPECT_GE(sdcs, 8);
}

TEST(Supervisor, CrashTrialIsDueCrash) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_crash,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  TrialConfig config;
  config.trial_seed = 5;
  const TrialResult result = supervisor.run_trial(config);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kCrash);
}

TEST(Supervisor, HangTrialIsDueHang) {
  ToyWorkload::reset_run_counter();
  auto config = toy_supervisor_config();
  config.min_timeout_seconds = 0.3;
  config.timeout_factor = 5.0;
  TrialSupervisor supervisor(&phifi::testing::make_toy_hang, config);
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 6;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kHang);
}

TEST(Supervisor, ThrowTrialIsDueAbnormalExit) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_throw,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  TrialConfig trial;
  trial.trial_seed = 7;
  const TrialResult result = supervisor.run_trial(trial);
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kAbnormalExit);
}

TEST(Supervisor, WindowAttributionMatchesProgressFraction) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  for (int i = 0; i < 8; ++i) {
    TrialConfig trial;
    trial.trial_seed = 100 + i;
    trial.model = FaultModel::kSingle;
    const TrialResult result = supervisor.run_trial(trial);
    if (result.outcome == Outcome::kNotInjected) continue;
    const unsigned expected = std::min(
        3u, static_cast<unsigned>(result.record.progress_fraction * 4));
    EXPECT_EQ(result.window, expected);
  }
}

TEST(Supervisor, GoldenIsDeterministicAcrossInstances) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor a(&phifi::testing::make_toy_normal,
                    toy_supervisor_config());
  a.prepare_golden();
  ToyWorkload::reset_run_counter();
  TrialSupervisor b(&phifi::testing::make_toy_normal,
                    toy_supervisor_config());
  b.prepare_golden();
  ASSERT_EQ(a.golden().size(), b.golden().size());
  EXPECT_EQ(std::memcmp(a.golden().data(), b.golden().data(),
                        a.golden().size()),
            0);
}

}  // namespace
}  // namespace phifi::fi

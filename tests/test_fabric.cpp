// Fabric building blocks: wire protocol framing, the lease table and its
// crash-durable ledger, run_range determinism, and the shard merge — all
// fork-free and socket-local (the process-level failure drills live in
// test_fabric_campaign.cpp).
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "fabric/lease.hpp"
#include "fabric/merge.hpp"
#include "fabric/protocol.hpp"
#include "fabric/stats.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::fabric {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

// ---------------------------------------------------------------- protocol

Message sample_message() {
  Message message;
  message.type = MsgType::kLeaseDone;
  message.worker = 7;
  message.fingerprint = 0xfeedfacecafebeefULL;
  message.lease = 42;
  message.begin = 128;
  message.end = 160;
  message.progress = 150;
  message.injected = 22;
  message.masked = 11;
  message.sdc = 6;
  message.due = 5;
  message.run = 0xfaceb00c12345678ULL;
  message.text = "diagnostics ride along";
  return message;
}

TEST(FabricProtocol, MessageRoundTripsThroughFrame) {
  const Message sent = sample_message();
  std::vector<std::uint8_t> buffer = encode_message(sent);
  Message got;
  ASSERT_TRUE(decode_message(buffer, &got));
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.worker, sent.worker);
  EXPECT_EQ(got.fingerprint, sent.fingerprint);
  EXPECT_EQ(got.lease, sent.lease);
  EXPECT_EQ(got.begin, sent.begin);
  EXPECT_EQ(got.end, sent.end);
  EXPECT_EQ(got.progress, sent.progress);
  EXPECT_EQ(got.injected, sent.injected);
  EXPECT_EQ(got.masked, sent.masked);
  EXPECT_EQ(got.sdc, sent.sdc);
  EXPECT_EQ(got.due, sent.due);
  EXPECT_EQ(got.run, sent.run);
  EXPECT_EQ(got.text, sent.text);
}

TEST(FabricProtocol, StatsFrameCarriesSnapshotText) {
  Message stats;
  stats.type = MsgType::kStats;
  stats.worker = 3;
  stats.lease = 9;
  stats.text = R"({"executed":17,"trials_per_sec":4.5})";
  std::vector<std::uint8_t> buffer = encode_message(stats);
  Message got;
  ASSERT_TRUE(decode_message(buffer, &got));
  EXPECT_EQ(got.type, MsgType::kStats);
  EXPECT_EQ(got.worker, 3u);
  EXPECT_EQ(got.text, stats.text);
}

TEST(FabricProtocol, PartialFrameIsNotAMessage) {
  std::vector<std::uint8_t> frame = encode_message(sample_message());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> partial(frame.begin(),
                                      frame.begin() + cut);
    Message out;
    EXPECT_FALSE(decode_message(partial, &out)) << "cut at " << cut;
    EXPECT_EQ(partial.size(), cut) << "partial frame must not be consumed";
  }
}

TEST(FabricProtocol, CorruptCrcThrows) {
  std::vector<std::uint8_t> frame = encode_message(sample_message());
  frame[frame.size() / 2] ^= 0x40;
  Message out;
  EXPECT_THROW(decode_message(frame, &out), std::runtime_error);
}

TEST(FabricProtocol, BackToBackFramesDecodeInOrder) {
  Message first = sample_message();
  first.type = MsgType::kHeartbeat;
  Message second = sample_message();
  second.type = MsgType::kLeaseRequest;
  second.text.clear();
  std::vector<std::uint8_t> buffer = encode_message(first);
  const std::vector<std::uint8_t> tail = encode_message(second);
  buffer.insert(buffer.end(), tail.begin(), tail.end());

  Message out;
  ASSERT_TRUE(decode_message(buffer, &out));
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  ASSERT_TRUE(decode_message(buffer, &out));
  EXPECT_EQ(out.type, MsgType::kLeaseRequest);
  EXPECT_TRUE(buffer.empty());
}

TEST(FabricProtocol, AddressParsing) {
  const Address unix_addr = parse_address("unix:/tmp/x.sock");
  EXPECT_TRUE(unix_addr.is_unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");

  const Address tcp = parse_address("tcp:127.0.0.1:9123");
  EXPECT_FALSE(tcp.is_unix);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9123);

  EXPECT_THROW(parse_address("quic:nope"), std::runtime_error);
  EXPECT_THROW(parse_address("tcp:nohost"), std::runtime_error);
  EXPECT_THROW(parse_address("tcp:host:notaport"), std::runtime_error);
  EXPECT_THROW(parse_address("unix:"), std::runtime_error);
}

TEST(FabricProtocol, ConnectionExchangesFramesOverUnixSocket) {
  const std::string path = temp_path("proto.sock");
  fs::remove(path);
  const Address address = parse_address("unix:" + path);
  const int listen_fd = listen_on(address);
  ASSERT_GE(listen_fd, 0);

  const int client_fd = connect_to(address);
  ASSERT_GE(client_fd, 0);
  int server_fd = -1;
  for (int i = 0; i < 100 && server_fd < 0; ++i) {
    server_fd = accept_on(listen_fd);
    if (server_fd < 0) ::usleep(1000);
  }
  ASSERT_GE(server_fd, 0);

  Connection client(client_fd);
  Connection server(server_fd);
  ASSERT_TRUE(client.send(sample_message()));

  Message got;
  bool received = false;
  for (int i = 0; i < 100 && !received; ++i) {
    server.pump();
    received = server.next(&got);
    if (!received) ::usleep(1000);
  }
  ASSERT_TRUE(received);
  EXPECT_EQ(got.type, MsgType::kLeaseDone);
  EXPECT_EQ(got.text, "diagnostics ride along");

  // Peer close: frames sent before the close are still poppable.
  got.type = MsgType::kShutdown;
  ASSERT_TRUE(server.send(got));
  server.close();
  Message final_msg;
  received = false;
  for (int i = 0; i < 100 && !received; ++i) {
    client.pump();
    received = client.next(&final_msg);
    if (!received) ::usleep(1000);
  }
  ASSERT_TRUE(received);
  EXPECT_EQ(final_msg.type, MsgType::kShutdown);
  ::close(listen_fd);
  fs::remove(path);
}

// -------------------------------------------------- observability codecs

TEST(FabricStats, AttemptDetailRoundTrips) {
  std::vector<AttemptOutcome> attempts(3);
  attempts[0].outcome = "Masked";
  attempts[0].model = "single";
  attempts[0].category = "compute";
  attempts[0].window = 1;
  attempts[0].injected = true;
  attempts[1].outcome = "DUE";
  attempts[1].due_kind = "hang";
  attempts[1].model = "double";
  attempts[1].category = "control";
  attempts[1].window = 2;
  attempts[1].injected = true;
  attempts[2].outcome = "NotInjected";
  attempts[2].injected = false;

  const std::vector<AttemptOutcome> got =
      decode_attempts(encode_attempts(attempts));
  ASSERT_EQ(got.size(), attempts.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].outcome, attempts[i].outcome) << i;
    EXPECT_EQ(got[i].due_kind, attempts[i].due_kind) << i;
    EXPECT_EQ(got[i].model, attempts[i].model) << i;
    EXPECT_EQ(got[i].category, attempts[i].category) << i;
    EXPECT_EQ(got[i].window, attempts[i].window) << i;
    EXPECT_EQ(got[i].injected, attempts[i].injected) << i;
  }
  EXPECT_TRUE(decode_attempts("").empty());
  EXPECT_THROW(decode_attempts("{}"), std::runtime_error);
  EXPECT_THROW(decode_attempts(R"([{"k":"hang"}])"), std::runtime_error);
}

TEST(FabricStats, OutcomeNamesRoundTripThroughToString) {
  for (const fi::Outcome outcome :
       {fi::Outcome::kMasked, fi::Outcome::kSdc, fi::Outcome::kDue,
        fi::Outcome::kNotInjected}) {
    EXPECT_EQ(outcome_from_name(std::string(fi::to_string(outcome))),
              outcome);
  }
  EXPECT_THROW(outcome_from_name("Garbled"), std::runtime_error);
}

TEST(FabricStats, WorkerStatsRoundTrip) {
  WorkerStats stats;
  stats.executed = 120;
  stats.leases_done = 4;
  stats.masked = 70;
  stats.sdc = 30;
  stats.due = 15;
  stats.not_injected = 5;
  stats.trials_per_sec = 12.5;
  stats.uptime_seconds = 9.75;
  stats.due_kinds["hang"] = 10;
  stats.due_kinds["crash"] = 5;
  stats.estimator.overall = {70, 30, 15};
  telemetry::EstimatorCellKey key;
  key.model = "single";
  key.window = 2;
  key.category = "compute";
  stats.estimator.cells.emplace_back(key,
                                     telemetry::EstimatorCounts{40, 20, 8});

  const WorkerStats got = decode_stats(encode_stats(stats));
  EXPECT_EQ(got.executed, stats.executed);
  EXPECT_EQ(got.leases_done, stats.leases_done);
  EXPECT_EQ(got.masked, stats.masked);
  EXPECT_EQ(got.sdc, stats.sdc);
  EXPECT_EQ(got.due, stats.due);
  EXPECT_EQ(got.not_injected, stats.not_injected);
  EXPECT_DOUBLE_EQ(got.trials_per_sec, stats.trials_per_sec);
  EXPECT_DOUBLE_EQ(got.uptime_seconds, stats.uptime_seconds);
  EXPECT_EQ(got.due_kinds, stats.due_kinds);
  EXPECT_EQ(got.estimator.overall.masked, 70u);
  EXPECT_EQ(got.estimator.overall.sdc, 30u);
  ASSERT_EQ(got.estimator.cells.size(), 1u);
  EXPECT_EQ(got.estimator.cells[0].first, key);
  EXPECT_EQ(got.estimator.cells[0].second.due, 8u);
  EXPECT_THROW(decode_stats("[]"), std::runtime_error);
}

// -------------------------------------------------------------- lease table

using Clock = LeaseTable::Clock;

TEST(LeaseTable, GrantsContiguousRangesUpToBudget) {
  LeaseTable table(/*trials=*/10, /*budget=*/12, /*lease_size=*/4);
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  const auto a = table.grant(1, deadline);
  const auto b = table.grant(2, deadline);
  const auto c = table.grant(1, deadline);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->begin, 0u);
  EXPECT_EQ(a->end, 4u);
  EXPECT_EQ(b->begin, 4u);
  EXPECT_EQ(b->end, 8u);
  EXPECT_EQ(c->begin, 8u);
  EXPECT_EQ(c->end, 12u);  // clamped to the budget
  EXPECT_FALSE(table.grant(1, deadline).has_value());
  EXPECT_TRUE(table.exhausted());
  EXPECT_EQ(table.outstanding(), 3u);
}

TEST(LeaseTable, PrefixCountsRequireContiguity) {
  LeaseTable table(10, 40, 4);
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  const auto a = table.grant(1, deadline);
  const auto b = table.grant(2, deadline);
  ASSERT_TRUE(a && b);
  // Completing the SECOND range alone leaves the prefix empty.
  EXPECT_TRUE(table.complete(b->id, 4, 1));
  EXPECT_EQ(table.prefix_injected(), 0u);
  // Filling the hole releases both.
  EXPECT_TRUE(table.complete(a->id, 3, 2));
  EXPECT_EQ(table.prefix_injected(), 7u);
  EXPECT_EQ(table.prefix_sdc(), 3u);
}

TEST(LeaseTable, ExpiredLeaseIsReclaimedAndRegranted) {
  LeaseTable table(10, 40, 4);
  const auto now = Clock::now();
  const auto stale = table.grant(1, now - std::chrono::seconds(1));
  const auto live = table.grant(2, now + std::chrono::seconds(60));
  ASSERT_TRUE(stale && live);

  const std::vector<Lease> expired = table.expire(now);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, stale->id);
  EXPECT_EQ(table.outstanding(), 1u);

  // Stale completions and heartbeats for the reclaimed lease are refused.
  EXPECT_FALSE(table.heartbeat(stale->id, now + std::chrono::seconds(60)));
  EXPECT_FALSE(table.complete(stale->id, 4, 0));

  // The reclaimed range is re-granted before fresh space.
  const auto regrant = table.grant(3, now + std::chrono::seconds(60));
  ASSERT_TRUE(regrant.has_value());
  EXPECT_EQ(regrant->begin, stale->begin);
  EXPECT_EQ(regrant->end, stale->end);
  EXPECT_NE(regrant->id, stale->id);
}

TEST(LeaseTable, AdoptReattachesOutstandingLease) {
  LeaseTable table(10, 40, 4);
  const auto now = Clock::now();
  const auto lease = table.grant(1, now + std::chrono::milliseconds(10));
  ASSERT_TRUE(lease.has_value());
  // A reconnecting worker (new id) adopts and refreshes the deadline.
  EXPECT_TRUE(table.adopt(lease->id, 9, now + std::chrono::seconds(60)));
  EXPECT_TRUE(table.expire(now + std::chrono::seconds(1)).empty());
  EXPECT_TRUE(table.complete(lease->id, 4, 0));
  EXPECT_EQ(table.prefix_injected(), 4u);
  // Adopting a completed lease fails.
  EXPECT_FALSE(table.adopt(lease->id, 9, now + std::chrono::seconds(60)));
}

// ------------------------------------------------------------ lease ledger

TEST(LeaseLedger, RoundTripsRecords) {
  const std::string path = temp_path("ledger_rt.bin");
  fs::remove(path);
  {
    LeaseLedgerWriter writer(path, /*fingerprint=*/0xabcdULL,
                             /*trials=*/100, /*run_id=*/0x5eedULL);
    writer.append({LedgerKind::kGrant, 1, 0, 8, 0, 0, ""});
    writer.append(
        {LedgerKind::kDone, 1, 0, 8, 8, 3, R"([{"o":"Masked"}])"});
    writer.append({LedgerKind::kGrant, 2, 8, 16, 0, 0, ""});
    writer.append({LedgerKind::kReclaim, 2, 8, 16, 0, 0, ""});
  }
  const LedgerContents contents = read_ledger(path);
  EXPECT_EQ(contents.fingerprint, 0xabcdULL);
  EXPECT_EQ(contents.trials, 100u);
  EXPECT_EQ(contents.run_id, 0x5eedULL);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  ASSERT_EQ(contents.records.size(), 4u);
  EXPECT_EQ(contents.records[0].kind, LedgerKind::kGrant);
  EXPECT_EQ(contents.records[1].kind, LedgerKind::kDone);
  EXPECT_EQ(contents.records[1].injected, 8u);
  EXPECT_EQ(contents.records[1].sdc, 3u);
  // The per-attempt detail survives the round trip byte for byte — a
  // restarted coordinator rebuilds its fleet tally from exactly this.
  EXPECT_EQ(contents.records[1].detail, R"([{"o":"Masked"}])");
  EXPECT_EQ(contents.records[0].detail, "");
  EXPECT_EQ(contents.records[3].kind, LedgerKind::kReclaim);
  fs::remove(path);
}

TEST(LeaseLedger, TornTailIsDroppedAndResumable) {
  const std::string path = temp_path("ledger_torn.bin");
  fs::remove(path);
  {
    LeaseLedgerWriter writer(path, 0x1111ULL, 50, 0x2222ULL);
    writer.append({LedgerKind::kGrant, 1, 0, 8, 0, 0, ""});
    writer.append({LedgerKind::kGrant, 2, 8, 16, 0, 0, ""});
  }
  // Tear the final record mid-write, as a coordinator crash would.
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 7);

  const LedgerContents torn = read_ledger(path);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_GT(torn.dropped_bytes, 0u);

  // Resume appends after the torn tail is truncated away.
  {
    LeaseLedgerWriter writer(path, torn.valid_bytes);
    writer.append({LedgerKind::kGrant, 2, 8, 16, 0, 0, ""});
    writer.append({LedgerKind::kDone, 1, 0, 8, 8, 0, ""});
  }
  const LedgerContents healed = read_ledger(path);
  EXPECT_EQ(healed.dropped_bytes, 0u);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[2].kind, LedgerKind::kDone);
  fs::remove(path);
}

TEST(LeaseLedger, ReplayRebuildsTableState) {
  // grant 1 [0,8) done; grant 2 [8,16) reclaimed; grant 3 [8,16) open.
  LeaseTable table(20, 80, 8);
  const auto grace = Clock::now() + std::chrono::seconds(60);
  table.restore_grant(1, 0, 8, grace);
  table.restore_done(1, 8, 2);
  table.restore_grant(2, 8, 16, grace);
  table.restore_reclaim(2);
  table.restore_grant(3, 8, 16, grace);

  EXPECT_EQ(table.prefix_injected(), 8u);
  EXPECT_EQ(table.outstanding(), 1u);
  // Restored leases are orphaned until a worker adopts them.
  EXPECT_TRUE(table.adopt(3, 5, grace));
  EXPECT_FALSE(table.adopt(2, 5, grace));  // reclaimed: gone
  EXPECT_FALSE(table.adopt(1, 5, grace));  // done: gone
  // Fresh grants continue past every range the ledger issued.
  const auto next = table.grant(5, grace);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->begin, 16u);
}

// ---------------------------------------------------- run_range + merge

fi::CampaignConfig toy_campaign(std::size_t trials) {
  fi::CampaignConfig config;
  config.trials = trials;
  config.seed = 0xfab41cULL;
  return config;
}

/// A jobs=1 reference journal for the toy workload, written once.
fi::JournalContents reference_journal(const fi::CampaignConfig& base,
                                      const std::string& path) {
  fs::remove(path);
  fi::CampaignConfig config = base;
  config.journal_path = path;
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                 toy_supervisor_config());
  supervisor.prepare_golden();
  fi::Campaign campaign(supervisor, config);
  const fi::CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), base.trials);
  return fi::read_journal(path);
}

void expect_same_records(const std::vector<fi::JournalRecord>& a,
                         const std::vector<fi::JournalRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attempt_index, b[i].attempt_index) << i;
    EXPECT_EQ(a[i].trial.outcome, b[i].trial.outcome) << i;
    EXPECT_EQ(a[i].trial.due_kind, b[i].trial.due_kind) << i;
    EXPECT_EQ(a[i].trial.window, b[i].trial.window) << i;
    EXPECT_EQ(a[i].trial.record.model, b[i].trial.record.model) << i;
    EXPECT_EQ(a[i].trial.record.site_index, b[i].trial.record.site_index);
    EXPECT_EQ(a[i].trial.record.element_index,
              b[i].trial.record.element_index);
    EXPECT_EQ(a[i].trial.record.flipped_bits[0],
              b[i].trial.record.flipped_bits[0]);
  }
}

TEST(CampaignRunRange, CommitsExactlyTheJobsOneRecords) {
  const fi::CampaignConfig base = toy_campaign(8);
  const fi::JournalContents reference =
      reference_journal(base, temp_path("range_ref.jnl"));

  // Execute the same attempt space in two disjoint ranges with a fresh
  // supervisor each — any process may run any range.
  std::vector<fi::JournalRecord> collected;
  for (const auto& [begin, end] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {4, reference.records.size()}, {0, 4}}) {
    ToyWorkload::reset_run_counter();
    fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                   toy_supervisor_config());
    supervisor.prepare_golden();
    fi::Campaign campaign(supervisor, base);
    fi::RangeHooks hooks;
    hooks.on_commit = [&collected](const fi::JournalRecord& record) {
      collected.push_back(record);
    };
    const fi::RangeResult result = campaign.run_range(begin, end, hooks);
    EXPECT_EQ(result.committed, end - begin);
    EXPECT_FALSE(result.cancelled);
    EXPECT_FALSE(result.aborted);
  }
  std::sort(collected.begin(), collected.end(),
            [](const fi::JournalRecord& a, const fi::JournalRecord& b) {
              return a.attempt_index < b.attempt_index;
            });
  expect_same_records(reference.records, collected);
}

/// Writes `records` as a shard journal with the given header.
void write_shard(const std::string& path, const fi::JournalHeader& header,
                 const std::vector<fi::JournalRecord>& records) {
  fs::remove(path);
  fi::CampaignJournalWriter writer(path, header,
                                   fi::JournalFsync::kOnClose);
  for (const fi::JournalRecord& record : records) writer.append(record);
  writer.sync();
}

struct MergeFixture : ::testing::Test {
  void SetUp() override {
    base = toy_campaign(8);
    reference = reference_journal(base, temp_path("merge_ref.jnl"));
    ASSERT_GE(reference.records.size(), 6u);
    shard0 = temp_path("merge_shard0.jnl");
    shard1 = temp_path("merge_shard1.jnl");
    out = temp_path("merge_out.jnl");
    fs::remove(out);
  }

  MergeOptions options_for(std::vector<std::string> shards) {
    MergeOptions options;
    options.shards = std::move(shards);
    options.out_path = out;
    return options;
  }

  MergeSummary merge(const MergeOptions& options) {
    return merge_shards(base, "Toy", reference.header.time_windows,
                        options);
  }

  fi::CampaignConfig base;
  fi::JournalContents reference;
  std::string shard0, shard1, out;
};

TEST_F(MergeFixture, SplitShardsMergeBitIdentical) {
  const std::size_t half = reference.records.size() / 2;
  write_shard(shard0, reference.header,
              {reference.records.begin(), reference.records.begin() + half});
  write_shard(shard1, reference.header,
              {reference.records.begin() + half, reference.records.end()});

  const MergeSummary summary = merge(options_for({shard1, shard0}));
  EXPECT_EQ(summary.merged, reference.records.size());
  EXPECT_EQ(summary.duplicates, 0u);
  EXPECT_EQ(summary.injected, base.trials);

  const fi::JournalContents merged = fi::read_journal(out);
  EXPECT_EQ(merged.header.fingerprint, reference.header.fingerprint);
  expect_same_records(reference.records, merged.records);
}

TEST_F(MergeFixture, ReclaimOverlapIsDeduped) {
  // Shard 1 re-executed [0, 3) after a reclaim: same indices, same seeds,
  // so the merge keeps one copy and the result is unchanged.
  write_shard(shard0, reference.header, reference.records);
  write_shard(shard1, reference.header,
              {reference.records.begin(), reference.records.begin() + 3});

  const MergeSummary summary = merge(options_for({shard0, shard1}));
  EXPECT_EQ(summary.duplicates, 3u);
  const fi::JournalContents merged = fi::read_journal(out);
  expect_same_records(reference.records, merged.records);
}

TEST_F(MergeFixture, GapIsRefusedNamingTheMissingRange) {
  // Drop the third record: its attempt index is in no shard.
  std::vector<fi::JournalRecord> holey = reference.records;
  const std::uint64_t missing = holey[2].attempt_index;
  holey.erase(holey.begin() + 2);
  write_shard(shard0, reference.header, holey);
  const std::string range = "[" + std::to_string(missing) + ", " +
                            std::to_string(missing + 1) + ")";
  try {
    merge(options_for({shard0}));
    FAIL() << "gap must refuse the merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(range), std::string::npos)
        << error.what();
  }
}

TEST_F(MergeFixture, MismatchedFingerprintNamesTheShard) {
  write_shard(shard0, reference.header, reference.records);
  fi::JournalHeader foreign = reference.header;
  foreign.fingerprint ^= 0x1234ULL;
  write_shard(shard1, foreign, {});
  try {
    merge(options_for({shard0, shard1}));
    FAIL() << "fingerprint mismatch must refuse the merge";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(shard1), std::string::npos) << what;
    EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
  }
}

TEST_F(MergeFixture, TornShardRefusedUnlessAllowed) {
  const std::size_t half = reference.records.size() / 2;
  write_shard(shard0, reference.header, reference.records);
  write_shard(shard1, reference.header,
              {reference.records.begin(),
               reference.records.begin() + half});
  // Tear shard1's final record, as a SIGKILLed worker would.
  fs::resize_file(shard1, fs::file_size(shard1) - 5);

  try {
    merge(options_for({shard0, shard1}));
    FAIL() << "torn shard must refuse the merge by default";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(shard1), std::string::npos)
        << error.what();
  }

  // With --allow-torn-tail the torn record is dropped; shard0 still has
  // every attempt, so the merged output is bit-identical anyway.
  MergeOptions options = options_for({shard0, shard1});
  options.allow_torn_tail = true;
  const MergeSummary summary = merge(options);
  const fi::JournalContents merged = fi::read_journal(out);
  EXPECT_GT(summary.duplicates, 0u);
  expect_same_records(reference.records, merged.records);
}

TEST_F(MergeFixture, IncompleteCoverageIsRefused) {
  const std::size_t half = reference.records.size() / 2;
  write_shard(shard0, reference.header,
              {reference.records.begin(),
               reference.records.begin() + half});
  EXPECT_THROW(merge(options_for({shard0})), std::runtime_error);
}

}  // namespace
}  // namespace phifi::fabric

// ABFT, residue codes, DWC/TMR, RMT, and checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mitigation/abft.hpp"
#include "mitigation/checkpoint.hpp"
#include "mitigation/dwc.hpp"
#include "mitigation/residue.hpp"
#include "mitigation/rmt.hpp"
#include "util/rng.hpp"

namespace phifi::mitigation {
namespace {

// ---- ABFT ----

struct GemmFixture {
  std::size_t n = 16;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;

  explicit GemmFixture(std::uint64_t seed) {
    util::Rng rng(seed);
    a.resize(n * n);
    b.resize(n * n);
    c.assign(n * n, 0.0);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
          c[i * n + j] += a[i * n + k] * b[k * n + j];
        }
      }
    }
  }
};

TEST(Abft, CleanResultIsConsistent) {
  GemmFixture gemm(1);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_TRUE(report.consistent);
  EXPECT_EQ(report.corrected, 0u);
  EXPECT_FALSE(report.uncorrectable);
}

TEST(Abft, CorrectsSingleError) {
  GemmFixture gemm(2);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  const double original = gemm.c[5 * gemm.n + 9];
  gemm.c[5 * gemm.n + 9] += 3.5;
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_TRUE(report.detected());
  EXPECT_EQ(report.corrected, 1u);
  EXPECT_FALSE(report.uncorrectable);
  EXPECT_NEAR(gemm.c[5 * gemm.n + 9], original, 1e-6);
}

TEST(Abft, CorrectsRowLineError) {
  GemmFixture gemm(3);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  std::vector<double> originals;
  for (std::size_t j = 2; j < 9; ++j) {
    originals.push_back(gemm.c[7 * gemm.n + j]);
    gemm.c[7 * gemm.n + j] += 1.0 + static_cast<double>(j);
  }
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_EQ(report.corrected, 7u);
  EXPECT_FALSE(report.uncorrectable);
  for (std::size_t j = 2; j < 9; ++j) {
    EXPECT_NEAR(gemm.c[7 * gemm.n + j], originals[j - 2], 1e-6);
  }
}

TEST(Abft, CorrectsColumnLineError) {
  GemmFixture gemm(4);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  for (std::size_t i = 1; i < 6; ++i) gemm.c[i * gemm.n + 3] -= 2.0;
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_EQ(report.corrected, 5u);
  EXPECT_FALSE(report.uncorrectable);
}

TEST(Abft, CorrectsScatteredPairableErrors) {
  GemmFixture gemm(5);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  // Distinct rows, distinct cols, distinct magnitudes: pairable.
  gemm.c[2 * gemm.n + 4] += 1.0;
  gemm.c[8 * gemm.n + 11] += 2.0;
  gemm.c[13 * gemm.n + 1] += 4.0;
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_EQ(report.corrected, 3u);
  EXPECT_FALSE(report.uncorrectable);
}

TEST(Abft, SquareBlockIsDetectedButUncorrectable) {
  GemmFixture gemm(6);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  // 2x2 block with equal deltas: row/col sums cannot localize it.
  gemm.c[3 * gemm.n + 5] += 1.0;
  gemm.c[3 * gemm.n + 6] += 2.0;
  gemm.c[4 * gemm.n + 5] += 2.0;
  gemm.c[4 * gemm.n + 6] += 1.0;
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_TRUE(report.detected());
  EXPECT_TRUE(report.uncorrectable);
}

TEST(Abft, NanIsDetectedUncorrectable) {
  GemmFixture gemm(7);
  AbftGemm abft(gemm.a, gemm.b, gemm.n);
  gemm.c[0] = std::nan("");
  const AbftReport report = abft.check_and_correct(gemm.c);
  EXPECT_TRUE(report.detected());
  EXPECT_TRUE(report.uncorrectable);
  EXPECT_EQ(report.corrected, 0u);
}

// ---- Residue codes ----

template <std::uint32_t M>
void expect_all_single_bit_flips_detected() {
  util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto value = static_cast<std::int64_t>(rng.next());
    ResidueChecked<M> checked(value);
    for (int bit = 0; bit < 64; ++bit) {
      ResidueChecked<M> corrupted = checked;
      corrupted.raw_value() ^= (std::int64_t{1} << bit);
      EXPECT_FALSE(corrupted.verify())
          << "M=" << M << " bit " << bit << " undetected";
    }
  }
}

TEST(Residue, Mod3DetectsEverySingleBitFlip) {
  expect_all_single_bit_flips_detected<3>();
}

TEST(Residue, Mod15DetectsEverySingleBitFlip) {
  expect_all_single_bit_flips_detected<15>();
}

TEST(Residue, ArithmeticPreservesVerification) {
  util::Rng rng(23);
  ResidueMod3 acc3(0);
  ResidueMod15 acc15(0);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(rng.range(-1000000, 1000000));
    acc3 += ResidueMod3(v);
    acc15 += ResidueMod15(v);
    EXPECT_TRUE(acc3.verify());
    EXPECT_TRUE(acc15.verify());
  }
  for (int i = 0; i < 100; ++i) {
    const auto v = static_cast<std::int64_t>(rng.range(-1000, 1000));
    acc3 *= ResidueMod3(v);
    acc15 *= ResidueMod15(v);
    EXPECT_TRUE(acc3.verify()) << "at step " << i;
    EXPECT_TRUE(acc15.verify()) << "at step " << i;
  }
}

TEST(Residue, NegativeValuesAndOverflowWrap) {
  ResidueMod15 a(std::numeric_limits<std::int64_t>::max());
  a += ResidueMod15(1);  // wraps to INT64_MIN
  EXPECT_TRUE(a.verify());
  ResidueMod3 b(-5);
  b *= ResidueMod3(-7);
  EXPECT_EQ(b.value(), 35);
  EXPECT_TRUE(b.verify());
}

TEST(Residue, CheckBitCorruptionDetected) {
  ResidueMod15 a(12345);
  a.raw_residue() ^= 1u;
  EXPECT_FALSE(a.verify());
}

TEST(Residue, DoubleBitFlipDetectionRate) {
  // Double flips are not guaranteed detectable, but most should be.
  util::Rng rng(29);
  int detected = 0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    ResidueMod15 checked(static_cast<std::int64_t>(rng.next()));
    const int b1 = static_cast<int>(rng.below(64));
    int b2 = static_cast<int>(rng.below(63));
    if (b2 >= b1) ++b2;
    checked.raw_value() ^= (std::int64_t{1} << b1);
    checked.raw_value() ^= (std::int64_t{1} << b2);
    detected += !checked.verify();
  }
  EXPECT_GT(detected, kTrials * 0.7);
}

// ---- DWC / TMR ----

TEST(Dwc, RoundTripAndDetection) {
  Duplicated<std::int64_t> var(42);
  EXPECT_EQ(var.get(), 42);
  EXPECT_TRUE(var.consistent());
  var.raw_primary() = 43;
  EXPECT_FALSE(var.consistent());
  EXPECT_THROW((void)var.get(), DwcMismatch);
}

TEST(Dwc, ShadowCorruptionDetected) {
  Duplicated<std::int32_t> var(-7);
  var.raw_shadow() ^= 0x10;
  EXPECT_THROW((void)var.get(), DwcMismatch);
}

TEST(Dwc, CommonModeValueDetectedByComplementStorage) {
  // A common-mode fault forcing the same raw value into both storage words
  // (stuck-at / shared write path) is caught because the shadow is stored
  // complemented.
  Duplicated<std::int64_t> var(1000);
  var.raw_shadow() = static_cast<std::uint64_t>(var.raw_primary());
  EXPECT_THROW((void)var.get(), DwcMismatch);
}

TEST(Tmr, CorrectsSingleCopyCorruption) {
  Tmr<std::int64_t> var(7);
  var.raw_copy(1) = 99;
  EXPECT_EQ(var.get(), 7);
  EXPECT_EQ(var.raw_copy(1), 7);  // repaired
}

TEST(Tmr, AllDifferentThrows) {
  Tmr<std::int64_t> var(7);
  var.raw_copy(0) = 1;
  var.raw_copy(1) = 2;
  var.raw_copy(2) = 3;
  EXPECT_THROW((void)var.get(), DwcMismatch);
}

// ---- RMT ----

TEST(Rmt, DeterministicKernelAgrees) {
  std::vector<double> out(16);
  auto kernel = [&out] {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<double>(i) * 1.5;
    }
  };
  const RmtReport report = run_duplicated(
      {reinterpret_cast<std::byte*>(out.data()), out.size() * 8}, kernel);
  EXPECT_FALSE(report.mismatch_detected);
  EXPECT_EQ(report.runs, 2);
}

TEST(Rmt, DetectsOneTimeFault) {
  std::vector<double> out(16);
  int run_index = 0;
  auto kernel = [&out, &run_index] {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<double>(i);
    }
    if (run_index++ == 0) out[3] = 999.0;  // fault in first run only
  };
  const RmtReport report = run_duplicated(
      {reinterpret_cast<std::byte*>(out.data()), out.size() * 8}, kernel);
  EXPECT_TRUE(report.mismatch_detected);
}

TEST(Rmt, TripleCorrectsOneBadRun) {
  std::vector<double> out(8);
  int run_index = 0;
  auto kernel = [&out, &run_index] {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = 2.0;
    }
    if (run_index++ == 1) out[0] = -1.0;  // second run is the bad one
  };
  const RmtReport report = run_triplicated(
      {reinterpret_cast<std::byte*>(out.data()), out.size() * 8}, kernel);
  EXPECT_TRUE(report.mismatch_detected);
  EXPECT_TRUE(report.corrected);
  EXPECT_EQ(out[0], 2.0);
  EXPECT_EQ(report.runs, 3);
}

// ---- Checkpoint ----

TEST(Checkpoint, SaveRestoreRoundTrip) {
  std::vector<float> state = {1.0f, 2.0f, 3.0f};
  std::vector<std::int32_t> more = {7, 8};
  CheckpointManager manager;
  manager.register_array<float>("state", std::span<float>(state));
  manager.register_array<std::int32_t>("more", std::span<std::int32_t>(more));
  EXPECT_EQ(manager.bytes(), 3 * 4 + 2 * 4);

  manager.save();
  state[1] = -99.0f;
  more[0] = 0;
  manager.restore();
  EXPECT_EQ(state[1], 2.0f);
  EXPECT_EQ(more[0], 7);
  EXPECT_EQ(manager.saves(), 1u);
  EXPECT_EQ(manager.restores(), 1u);
}

TEST(Checkpoint, RestoreWithoutSaveIsNoOp) {
  std::vector<float> state = {5.0f};
  CheckpointManager manager;
  manager.register_array<float>("state", std::span<float>(state));
  manager.restore();
  EXPECT_EQ(state[0], 5.0f);
  EXPECT_EQ(manager.restores(), 0u);
}

TEST(Checkpoint, LatestSaveWins) {
  std::vector<int> state = {1};
  CheckpointManager manager;
  manager.register_array<int>("state", std::span<int>(state));
  manager.save();
  state[0] = 2;
  manager.save();
  state[0] = 3;
  manager.restore();
  EXPECT_EQ(state[0], 2);
}

}  // namespace
}  // namespace phifi::mitigation

#include <gtest/gtest.h>

#include <map>

#include "radiation/beam_campaign.hpp"
#include "radiation/sensitivity.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::radiation {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  phi::ResourceMap map_ =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  DeviceSensitivity sensitivity_ = DeviceSensitivity::knc_3120a(map_);
};

TEST_F(SensitivityTest, CrossSectionIsPositiveAndExcludesDram) {
  EXPECT_GT(sensitivity_.strike_cross_section(), 0.0);
  for (const ResourceModel& r : sensitivity_.resources()) {
    EXPECT_NE(r.cls, phi::ResourceClass::kDram);
    EXPECT_GT(r.total_cross_section, 0.0);
  }
}

TEST_F(SensitivityTest, ExpectedStrikesScaleWithFluence) {
  const double one = sensitivity_.expected_strikes(1e6);
  EXPECT_GT(one, 0.0);
  EXPECT_DOUBLE_EQ(sensitivity_.expected_strikes(2e6), 2.0 * one);
}

TEST_F(SensitivityTest, StrikeOutcomeDistributionIsSane) {
  util::Rng rng(3);
  std::map<StrikeOutcome::Kind, int> kinds;
  std::map<fi::SelectionPolicy, int> targets;
  constexpr int kStrikes = 200000;
  for (int i = 0; i < kStrikes; ++i) {
    const StrikeOutcome outcome = sensitivity_.sample_strike(rng);
    ++kinds[outcome.kind];
    if (outcome.kind == StrikeOutcome::Kind::kProgramFault) {
      ++targets[outcome.target];
    }
  }
  // The vast majority of strikes hit ECC-protected arrays and are absorbed.
  EXPECT_GT(kinds[StrikeOutcome::Kind::kAbsorbed], kStrikes * 0.9);
  // But machine checks and program faults both occur.
  EXPECT_GT(kinds[StrikeOutcome::Kind::kMachineCheck], 0);
  EXPECT_GT(kinds[StrikeOutcome::Kind::kProgramFault], 0);
  // Program faults use the beam-specific target policies.
  for (const auto& [policy, count] : targets) {
    EXPECT_TRUE(policy == fi::SelectionPolicy::kBytesWeighted ||
                policy == fi::SelectionPolicy::kGlobalBytesWeighted ||
                policy == fi::SelectionPolicy::kWorkerFrameOnly);
    EXPECT_GT(count, 0);
  }
}

TEST_F(SensitivityTest, ProgramFaultModelsCoverMixture) {
  util::Rng rng(5);
  std::map<fi::FaultModel, int> models;
  for (int i = 0; i < 400000; ++i) {
    const StrikeOutcome outcome = sensitivity_.sample_strike(rng);
    if (outcome.kind == StrikeOutcome::Kind::kProgramFault) {
      ++models[outcome.model];
    }
  }
  EXPECT_GT(models[fi::FaultModel::kSingle], 0);
  EXPECT_GT(models[fi::FaultModel::kDouble], 0);
  EXPECT_GT(models[fi::FaultModel::kRandom], 0);
  EXPECT_GT(models[fi::FaultModel::kZero], 0);
}

TEST_F(SensitivityTest, EccOffIncreasesProgramFaults) {
  phi::DeviceSpec no_ecc = phi::DeviceSpec::knights_corner_3120a();
  no_ecc.ecc_enabled = false;
  const DeviceSensitivity unprotected =
      DeviceSensitivity::knc_3120a(phi::ResourceMap::for_spec(no_ecc));
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  int protected_faults = 0;
  int unprotected_faults = 0;
  for (int i = 0; i < 100000; ++i) {
    protected_faults += sensitivity_.sample_strike(rng_a).kind ==
                        StrikeOutcome::Kind::kProgramFault;
    unprotected_faults += unprotected.sample_strike(rng_b).kind ==
                          StrikeOutcome::Kind::kProgramFault;
  }
  EXPECT_GT(unprotected_faults, protected_faults);
}

TEST(BeamCampaignTest, SmallCampaignProducesFitEstimates) {
  testing::ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&testing::make_toy_normal,
                                 testing::toy_supervisor_config());
  supervisor.prepare_golden();
  const phi::ResourceMap map =
      phi::ResourceMap::for_spec(phi::DeviceSpec::knights_corner_3120a());
  const DeviceSensitivity sensitivity = DeviceSensitivity::knc_3120a(map);

  BeamConfig config;
  config.seed = 99;
  config.min_sdc = 5;
  config.min_due = 2;
  config.max_executions = 400;
  config.flux = 2.0e6;
  BeamCampaign campaign(supervisor, sensitivity, config);
  const BeamResult result = campaign.run();

  EXPECT_GT(result.runs, 0u);
  EXPECT_GT(result.fluence, 0.0);
  EXPECT_GT(result.strikes, 0u);
  EXPECT_GT(result.executions, 0u);
  EXPECT_LE(result.executions, config.max_executions);
  // FIT estimates follow directly from counts and fluence.
  EXPECT_NEAR(result.sdc_fit.fit,
              static_cast<double>(result.sdc) / result.fluence * 13.0 * 1e9,
              1e-6);
  // Pattern fractions decompose the SDC FIT.
  double pattern_fit_sum = 0.0;
  for (int p = 1; p < analysis::kPatternCount; ++p) {
    pattern_fit_sum +=
        result.pattern_fit(static_cast<analysis::ErrorPattern>(p));
  }
  if (result.sdc > 0) {
    EXPECT_NEAR(pattern_fit_sum, result.sdc_fit.fit,
                result.sdc_fit.fit * 1e-9 + 1e-9);
  }
}

}  // namespace
}  // namespace phifi::radiation

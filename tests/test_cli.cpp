#include "cli/config.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/trace_analysis.hpp"
#include "cli/runner.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace phifi::cli {
namespace {

RunnerConfig parse(const std::string& text) {
  std::istringstream stream(text);
  return parse_config(stream);
}

TEST(CliConfig, DefaultsWhenEmpty) {
  const RunnerConfig config = parse("");
  EXPECT_EQ(config.mode, RunMode::kInject);
  EXPECT_EQ(config.workload, "DGEMM");
  EXPECT_EQ(config.models.size(), 4u);
}

TEST(CliConfig, ParsesAllKeys) {
  const RunnerConfig config = parse(R"(
# a comment
mode = beam
workload = HotSpot
seed = 0x10
log_file = /tmp/x.csv
trials = 123
policy = bytes-weighted
models = Single + Zero
earliest_fraction = 0.2
latest_fraction = 0.8
flux = 1e5
min_sdc = 7
min_due = 3
max_executions = 99
device_os_threads = 2
timeout_factor = 11
min_timeout_seconds = 0.5
input_seed = 42
)");
  EXPECT_EQ(config.mode, RunMode::kBeam);
  EXPECT_EQ(config.workload, "HotSpot");
  EXPECT_EQ(config.seed, 16u);
  EXPECT_EQ(config.log_file, "/tmp/x.csv");
  EXPECT_EQ(config.trials, 123u);
  EXPECT_EQ(config.policy, fi::SelectionPolicy::kBytesWeighted);
  ASSERT_EQ(config.models.size(), 2u);
  EXPECT_EQ(config.models[0], fi::FaultModel::kSingle);
  EXPECT_EQ(config.models[1], fi::FaultModel::kZero);
  EXPECT_DOUBLE_EQ(config.earliest_fraction, 0.2);
  EXPECT_DOUBLE_EQ(config.flux, 1e5);
  EXPECT_EQ(config.min_sdc, 7u);
  EXPECT_EQ(config.device_os_threads, 2u);
  EXPECT_DOUBLE_EQ(config.min_timeout_seconds, 0.5);
  EXPECT_EQ(config.input_seed, 42u);
}

TEST(CliConfig, ParsesDurabilityAndSupervisionKeys) {
  const RunnerConfig config = parse(R"(
journal_file = /tmp/c.jnl
resume = true
journal_fsync = on-close
watchdog_poll = fixed
kill_grace_seconds = 0.5
child_address_space_mb = 2048
child_cpu_seconds = 30
heartbeat_divisions = 32
stall_timeout_seconds = 1.5
trial_fast_path = true
max_consecutive_failures = 3
)");
  EXPECT_EQ(config.journal_file, "/tmp/c.jnl");
  EXPECT_TRUE(config.resume);
  EXPECT_EQ(config.journal_fsync, fi::JournalFsync::kOnClose);
  EXPECT_EQ(config.watchdog_poll, fi::WatchdogPoll::kFixed);
  EXPECT_DOUBLE_EQ(config.kill_grace_seconds, 0.5);
  EXPECT_EQ(config.child_address_space_mb, 2048u);
  EXPECT_EQ(config.child_cpu_seconds, 30u);
  EXPECT_EQ(config.heartbeat_divisions, 32u);
  EXPECT_DOUBLE_EQ(config.stall_timeout_seconds, 1.5);
  EXPECT_TRUE(config.trial_fast_path);
  EXPECT_EQ(config.max_consecutive_failures, 3u);

  // The parsed keys reach the structs the campaign actually consumes.
  const fi::SupervisorConfig supervisor = config.supervisor_config();
  EXPECT_EQ(supervisor.poll, fi::WatchdogPoll::kFixed);
  EXPECT_EQ(supervisor.child_address_space_mb, 2048u);
  EXPECT_EQ(supervisor.heartbeat_divisions, 32u);
  EXPECT_TRUE(supervisor.trial_fast_path);
  const fi::CampaignConfig campaign = config.campaign_config();
  EXPECT_EQ(campaign.journal_path, "/tmp/c.jnl");
  EXPECT_TRUE(campaign.resume);
  EXPECT_EQ(campaign.journal_fsync, fi::JournalFsync::kOnClose);
  EXPECT_EQ(campaign.max_consecutive_failures, 3u);
}

TEST(CliConfig, BadDurabilityValuesAreErrors) {
  EXPECT_THROW(parse("resume = maybe\n"), std::runtime_error);
  EXPECT_THROW(parse("journal_fsync = sometimes\n"), std::runtime_error);
  EXPECT_THROW(parse("watchdog_poll = frantic\n"), std::runtime_error);
}

TEST(CliConfig, DurabilityKeysSurviveFormatRoundTrip) {
  RunnerConfig config;
  config.journal_file = "camp.jnl";
  config.resume = true;
  config.journal_fsync = fi::JournalFsync::kOnClose;
  config.watchdog_poll = fi::WatchdogPoll::kFixed;
  config.kill_grace_seconds = 0.75;
  config.child_address_space_mb = 4096;
  config.child_cpu_seconds = 60;
  config.heartbeat_divisions = 8;
  config.stall_timeout_seconds = 2.0;
  config.trial_fast_path = true;
  config.max_consecutive_failures = 9;
  const RunnerConfig reparsed = parse(format_config(config));
  EXPECT_EQ(reparsed.journal_file, config.journal_file);
  EXPECT_EQ(reparsed.resume, config.resume);
  EXPECT_EQ(reparsed.journal_fsync, config.journal_fsync);
  EXPECT_EQ(reparsed.watchdog_poll, config.watchdog_poll);
  EXPECT_DOUBLE_EQ(reparsed.kill_grace_seconds, config.kill_grace_seconds);
  EXPECT_EQ(reparsed.child_address_space_mb, config.child_address_space_mb);
  EXPECT_EQ(reparsed.child_cpu_seconds, config.child_cpu_seconds);
  EXPECT_EQ(reparsed.heartbeat_divisions, config.heartbeat_divisions);
  EXPECT_DOUBLE_EQ(reparsed.stall_timeout_seconds,
                   config.stall_timeout_seconds);
  EXPECT_EQ(reparsed.trial_fast_path, config.trial_fast_path);
  EXPECT_EQ(reparsed.max_consecutive_failures,
            config.max_consecutive_failures);
}

TEST(CliConfig, TelemetryKeysParseAndRoundTrip) {
  const RunnerConfig config = parse(R"(
trace_file = /tmp/c.ndjson
metrics_file = /tmp/c.metrics.json
progress_seconds = 1.5
)");
  EXPECT_EQ(config.trace_file, "/tmp/c.ndjson");
  EXPECT_EQ(config.metrics_file, "/tmp/c.metrics.json");
  EXPECT_DOUBLE_EQ(config.progress_seconds, 1.5);

  const RunnerConfig reparsed = parse(format_config(config));
  EXPECT_EQ(reparsed.trace_file, config.trace_file);
  EXPECT_EQ(reparsed.metrics_file, config.metrics_file);
  EXPECT_DOUBLE_EQ(reparsed.progress_seconds, config.progress_seconds);
}

TEST(CliConfig, ObservatoryKeysParseAndRoundTrip) {
  const RunnerConfig config = parse(R"(
metrics_format = openmetrics
history_file = /tmp/c.history.ndjson
stop_ci_width = 0.005
)");
  EXPECT_EQ(config.metrics_format, MetricsFormat::kOpenMetrics);
  EXPECT_EQ(config.history_file, "/tmp/c.history.ndjson");
  EXPECT_DOUBLE_EQ(config.stop_ci_width, 0.005);

  const RunnerConfig reparsed = parse(format_config(config));
  EXPECT_EQ(reparsed.metrics_format, config.metrics_format);
  EXPECT_EQ(reparsed.history_file, config.history_file);
  EXPECT_DOUBLE_EQ(reparsed.stop_ci_width, config.stop_ci_width);
}

TEST(CliConfig, BadObservatoryValuesAreErrors) {
  EXPECT_THROW(parse("metrics_format = xml\n"), std::runtime_error);
  EXPECT_THROW(parse("stop_ci_width = -0.1\n"), std::runtime_error);
  EXPECT_THROW(parse("stop_ci_width = 0.5\n"), std::runtime_error);
  EXPECT_THROW(parse("stop_ci_width = half\n"), std::runtime_error);
}

TEST(CliConfig, CommentsAndWhitespaceIgnored) {
  const RunnerConfig config =
      parse("  trials =  5   # inline comment\n\n   \n# whole line\n");
  EXPECT_EQ(config.trials, 5u);
}

TEST(CliConfig, UnknownKeyIsError) {
  EXPECT_THROW(parse("trails = 100\n"), std::runtime_error);
}

TEST(CliConfig, BadValuesAreErrors) {
  EXPECT_THROW(parse("trials = many\n"), std::runtime_error);
  EXPECT_THROW(parse("policy = lucky-dip\n"), std::runtime_error);
  EXPECT_THROW(parse("models = Single + Quintuple\n"), std::runtime_error);
  EXPECT_THROW(parse("mode = maybe\n"), std::runtime_error);
  EXPECT_THROW(parse("trials\n"), std::runtime_error);
  EXPECT_THROW(parse("trials =\n"), std::runtime_error);
}

TEST(CliConfig, InvalidInjectionWindowRejected) {
  EXPECT_THROW(parse("earliest_fraction = 0.9\nlatest_fraction = 0.2\n"),
               std::runtime_error);
  EXPECT_THROW(parse("latest_fraction = 1.5\n"), std::runtime_error);
}

TEST(CliConfig, FormatParseRoundTrip) {
  RunnerConfig config;
  config.mode = RunMode::kBeam;
  config.workload = "NW";
  config.seed = 77;
  config.trials = 321;
  config.policy = fi::SelectionPolicy::kWorkerFrameOnly;
  config.models = {fi::FaultModel::kDouble};
  config.log_file = "log.csv";
  const RunnerConfig reparsed = parse(format_config(config));
  EXPECT_EQ(reparsed.mode, config.mode);
  EXPECT_EQ(reparsed.workload, config.workload);
  EXPECT_EQ(reparsed.seed, config.seed);
  EXPECT_EQ(reparsed.trials, config.trials);
  EXPECT_EQ(reparsed.policy, config.policy);
  EXPECT_EQ(reparsed.models, config.models);
  EXPECT_EQ(reparsed.log_file, config.log_file);
}

TEST(CliRunner, UnknownWorkloadThrows) {
  RunnerConfig config;
  config.workload = "SuperLINPACK";
  std::ostringstream out;
  EXPECT_THROW(run_from_config(config, out), std::runtime_error);
}

TEST(CliRunner, RunsSmallInjectionCampaign) {
  RunnerConfig config;
  config.workload = "LUD";
  config.trials = 15;
  config.seed = 5;
  std::ostringstream out;
  const RunSummary summary = run_from_config(config, out);
  EXPECT_EQ(summary.workload, "LUD");
  EXPECT_EQ(summary.outcomes.total(), 15u);
  EXPECT_NE(out.str().find("Injection campaign - LUD"), std::string::npos);
}

TEST(CliRunner, WritesTraceAndMetricsWhenConfigured) {
  namespace fs = std::filesystem;
  const std::string trace_path =
      ::testing::TempDir() + "phifi_cli_trace.ndjson";
  const std::string metrics_path =
      ::testing::TempDir() + "phifi_cli_metrics.json";
  fs::remove(trace_path);
  fs::remove(metrics_path);

  RunnerConfig config;
  config.workload = "LUD";
  config.trials = 12;
  config.seed = 9;
  config.trace_file = trace_path;
  config.metrics_file = metrics_path;
  std::ostringstream out;
  const RunSummary summary = run_from_config(config, out);
  EXPECT_EQ(summary.outcomes.total(), 12u);
  EXPECT_GT(summary.trace_records, 0u);

  // The trace reconstructs the campaign tallies (phifi_parse --from-trace).
  const telemetry::TraceContents contents =
      telemetry::read_trace_file(trace_path);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  EXPECT_EQ(contents.campaign.string_or("workload", ""), "LUD");
  EXPECT_FALSE(contents.end.is_null());
  const fi::CampaignResult from_trace = analysis::aggregate_trace(contents);
  EXPECT_EQ(from_trace.overall.total(), summary.outcomes.total());
  EXPECT_EQ(from_trace.overall.sdc, summary.outcomes.sdc);

  // The metrics snapshot is valid JSON and carries the campaign counters
  // plus the golden run's workload-character gauges.
  std::ifstream metrics_stream(metrics_path);
  ASSERT_TRUE(metrics_stream);
  std::stringstream buffer;
  buffer << metrics_stream.rdbuf();
  const util::json::Value snap = util::json::parse(buffer.str());
  const util::json::Value* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("campaign.completed", -1.0), 12.0);
  const util::json::Value* gauges = snap.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GT(gauges->number_or("phi.golden.flops", 0.0), 0.0);
}

TEST(CliRunner, ProgressEmitterRendersFinalLine) {
  RunnerConfig config;
  config.workload = "LUD";
  config.trials = 8;
  config.seed = 11;
  config.progress_seconds = 0.0001;  // effectively every trial
  std::ostringstream out;
  const RunSummary summary = run_from_config(config, out);
  EXPECT_GT(summary.progress_emits, 0u);
  EXPECT_NE(out.str().find("[progress]"), std::string::npos);
}

TEST(CliRunner, RunsSmallBeamCampaign) {
  RunnerConfig config;
  config.mode = RunMode::kBeam;
  config.workload = "DGEMM";
  config.seed = 6;
  config.min_sdc = 3;
  config.min_due = 1;
  config.max_executions = 200;
  std::ostringstream out;
  const RunSummary summary = run_from_config(config, out);
  EXPECT_EQ(summary.mode, RunMode::kBeam);
  EXPECT_GT(summary.sdc_fit, 0.0);
  EXPECT_NE(out.str().find("Beam campaign - DGEMM"), std::string::npos);
}

}  // namespace
}  // namespace phifi::cli

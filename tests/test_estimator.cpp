// Observatory tests: the streaming CampaignEstimator against util::stats
// ground truth and an offline pass over a real campaign, the OpenMetrics
// exposition (including the cumulative-bucket round-trip against the JSON
// snapshot), the --history ledger, and the drift gate's z-test verdicts.
#include "telemetry/estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/drift.hpp"
#include "core/campaign.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "tests/toy_workload.hpp"
#include "util/statistics.hpp"

namespace phifi::telemetry {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

void expect_interval_eq(const util::Interval& a, const util::Interval& b) {
  EXPECT_DOUBLE_EQ(a.point, b.point);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

// -------------------------------------------------------------- estimator

TEST(CampaignEstimator, IntervalsMatchUtilStatisticsOnKnownCounts) {
  CampaignEstimator est;
  for (int i = 0; i < 7; ++i) {
    est.record(EstimatorOutcome::kMasked, "Single", 0, "data", true);
  }
  for (int i = 0; i < 2; ++i) {
    est.record(EstimatorOutcome::kSdc, "Single", 0, "data", true);
  }
  est.record(EstimatorOutcome::kDue, "Single", 0, "data", true);

  EXPECT_EQ(est.total(), 10u);
  EXPECT_EQ(est.counts().masked, 7u);
  EXPECT_EQ(est.counts().sdc, 2u);
  EXPECT_EQ(est.counts().due, 1u);
  expect_interval_eq(est.sdc_interval(), util::wilson_interval(2, 10));
  expect_interval_eq(est.due_interval(), util::wilson_interval(1, 10));
  expect_interval_eq(est.masked_interval(), util::wilson_interval(7, 10));
}

TEST(CampaignEstimator, EmptyEstimatorHasDegenerateIntervals) {
  CampaignEstimator est;
  EXPECT_EQ(est.total(), 0u);
  expect_interval_eq(est.sdc_interval(), util::wilson_interval(0, 0));
  EXPECT_TRUE(est.cells().empty());
}

TEST(CampaignEstimator, CellsAreGatedOnInjectedAndKeyedPerAxis) {
  CampaignEstimator est;
  est.record(EstimatorOutcome::kSdc, "Single", 0, "data", true);
  est.record(EstimatorOutcome::kMasked, "Single", 0, "data", true);
  est.record(EstimatorOutcome::kDue, "Double", 1, "control", true);
  // Not injected: counts toward the overall split only, never a cell.
  est.record(EstimatorOutcome::kMasked, "Single", 0, "data", false);

  EXPECT_EQ(est.total(), 4u);
  const std::vector<CellEstimate> cells = est.cells();
  ASSERT_EQ(cells.size(), 2u);
  // std::map ordering: "Double" < "Single".
  EXPECT_EQ(cells[0].key.model, "Double");
  EXPECT_EQ(cells[0].key.window, 1u);
  EXPECT_EQ(cells[0].key.category, "control");
  EXPECT_EQ(cells[0].counts.due, 1u);
  EXPECT_EQ(cells[1].key.model, "Single");
  EXPECT_EQ(cells[1].counts.total(), 2u);
  EXPECT_EQ(cells[1].counts.sdc, 1u);
  expect_interval_eq(cells[1].sdc, util::wilson_interval(1, 2));
}

TEST(CampaignEstimator, TrialsToHalfWidthProjectsAndSaturates) {
  CampaignEstimator est;
  // Before any data the planning formula still yields a finite projection
  // (the Wilson center shrinks toward 1/2, never exactly 0).
  EXPECT_GT(est.trials_to_half_width(0.01), 0u);

  for (int i = 0; i < 50; ++i) {
    est.record(i % 5 == 0 ? EstimatorOutcome::kSdc
                          : EstimatorOutcome::kMasked,
               "Single", 0, "data", true);
  }
  // A coarse target is already met at n=50.
  EXPECT_GT(est.sdc_interval().half_width(), 0.01);
  EXPECT_LE(est.sdc_interval().half_width(), 0.2);
  EXPECT_EQ(est.trials_to_half_width(0.2), 0u);
  // A tight target needs more; tighter targets need strictly more.
  const std::uint64_t more_1pct = est.trials_to_half_width(0.01);
  const std::uint64_t more_half_pct = est.trials_to_half_width(0.005);
  EXPECT_GT(more_1pct, 0u);
  EXPECT_GT(more_half_pct, more_1pct);
  // The projection matches the documented planning formula
  // n = z²·p̃(1−p̃)/eps² with p̃ the Wilson center at the current counts.
  const double z = util::normal_quantile_two_sided(est.confidence());
  const double shrink = (10.0 + z * z / 2.0) / (50.0 + z * z);
  const double needed = z * z * shrink * (1.0 - shrink) / (0.01 * 0.01);
  EXPECT_EQ(more_1pct,
            static_cast<std::uint64_t>(std::ceil(needed - 50.0)));
}

TEST(CampaignEstimator, PublishExportsOverallAndPerCellGauges) {
  CampaignEstimator est;
  est.record(EstimatorOutcome::kSdc, "Double", 2, "data", true);
  est.record(EstimatorOutcome::kMasked, "Double", 2, "data", true);

  MetricsRegistry metrics;
  est.publish(metrics);

  const Gauge* trials = metrics.find_gauge("campaign.est.trials");
  ASSERT_NE(trials, nullptr);
  EXPECT_DOUBLE_EQ(trials->value(), 2.0);
  const Gauge* rate = metrics.find_gauge("campaign.est.sdc_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->value(), util::wilson_interval(1, 2).point);
  const Gauge* lo = metrics.find_gauge("campaign.est.sdc_ci_lo");
  ASSERT_NE(lo, nullptr);
  EXPECT_DOUBLE_EQ(lo->value(), util::wilson_interval(1, 2).lo);
  const Gauge* cell =
      metrics.find_gauge("campaign.est.cell.Double.w2.data.sdc_rate");
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->value(), util::wilson_interval(1, 2).point);
}

// The fabric aggregation property: snapshots hold only integer counts, so
// folding worker estimators into a fleet estimator is associative and
// commutative — any sharding of the trial stream, folded in any order,
// must be BIT-identical (intervals included) to one estimator fed every
// trial directly. This is what lets the coordinator's live numbers equal
// a --jobs 1 run.
TEST(CampaignEstimator, FoldIsOrderAndShardingInvariant) {
  struct SyntheticTrial {
    EstimatorOutcome outcome;
    std::string model;
    unsigned window;
    std::string category;
    bool injected;
  };
  std::mt19937_64 rng(0xf01dabcdULL);
  const std::vector<std::string> models = {"Single", "Double", "Random"};
  const std::vector<std::string> categories = {"data", "control", "addr"};
  std::vector<SyntheticTrial> trials;
  trials.reserve(500);
  for (int i = 0; i < 500; ++i) {
    SyntheticTrial trial;
    const auto draw = rng() % 100;
    trial.outcome = draw < 60   ? EstimatorOutcome::kMasked
                    : draw < 80 ? EstimatorOutcome::kSdc
                                : EstimatorOutcome::kDue;
    trial.model = models[rng() % models.size()];
    trial.window = static_cast<unsigned>(rng() % 3);
    trial.category = categories[rng() % categories.size()];
    trial.injected = rng() % 10 != 0;
    trials.push_back(std::move(trial));
  }

  CampaignEstimator reference;
  for (const SyntheticTrial& trial : trials) {
    reference.record(trial.outcome, trial.model, trial.window,
                     trial.category, trial.injected);
  }

  for (int round = 0; round < 8; ++round) {
    // Random sharding across a random worker count, then a random fold
    // order — the interleavings a real fleet produces.
    const std::size_t workers = 1 + rng() % 7;
    std::vector<CampaignEstimator> shards(workers);
    for (const SyntheticTrial& trial : trials) {
      shards[rng() % workers].record(trial.outcome, trial.model,
                                     trial.window, trial.category,
                                     trial.injected);
    }
    std::vector<std::size_t> order(workers);
    for (std::size_t i = 0; i < workers; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);

    CampaignEstimator fleet;
    for (const std::size_t index : order) {
      fleet.fold(shards[index].snapshot());
    }
    ASSERT_EQ(fleet.total(), reference.total()) << "round " << round;
    EXPECT_EQ(fleet.counts().masked, reference.counts().masked);
    EXPECT_EQ(fleet.counts().sdc, reference.counts().sdc);
    EXPECT_EQ(fleet.counts().due, reference.counts().due);
    expect_interval_eq(fleet.sdc_interval(), reference.sdc_interval());
    expect_interval_eq(fleet.due_interval(), reference.due_interval());
    expect_interval_eq(fleet.masked_interval(),
                       reference.masked_interval());
    const std::vector<CellEstimate> fleet_cells = fleet.cells();
    const std::vector<CellEstimate> ref_cells = reference.cells();
    ASSERT_EQ(fleet_cells.size(), ref_cells.size()) << "round " << round;
    for (std::size_t i = 0; i < fleet_cells.size(); ++i) {
      EXPECT_EQ(fleet_cells[i].key, ref_cells[i].key) << i;
      EXPECT_EQ(fleet_cells[i].counts.masked, ref_cells[i].counts.masked);
      EXPECT_EQ(fleet_cells[i].counts.sdc, ref_cells[i].counts.sdc);
      EXPECT_EQ(fleet_cells[i].counts.due, ref_cells[i].counts.due);
      expect_interval_eq(fleet_cells[i].sdc, ref_cells[i].sdc);
      expect_interval_eq(fleet_cells[i].due, ref_cells[i].due);
    }
  }

  // Snapshot/fold round trip: a fresh estimator rebuilt from a single
  // snapshot is indistinguishable from the original.
  CampaignEstimator rebuilt;
  rebuilt.fold(reference.snapshot());
  EXPECT_EQ(rebuilt.total(), reference.total());
  expect_interval_eq(rebuilt.sdc_interval(), reference.sdc_interval());
  ASSERT_EQ(rebuilt.cells().size(), reference.cells().size());
}

// The acceptance cross-check: the streaming estimator fed from the commit
// path must agree with an offline pass over the campaign's own trial
// records, overall and cell by cell.
TEST(CampaignEstimator, MatchesOfflinePassOverRealCampaign) {
  using phifi::testing::ToyWorkload;
  ToyWorkload::reset_run_counter();
  fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                 phifi::testing::toy_supervisor_config());
  supervisor.prepare_golden();

  CampaignEstimator streaming;
  fi::CampaignConfig config;
  config.trials = 16;
  config.seed = 42;
  config.estimator = &streaming;
  fi::Campaign campaign(supervisor, config);
  const fi::CampaignResult result = campaign.run();

  CampaignEstimator offline;
  for (const fi::TrialResult& trial : result.trials) {
    EstimatorOutcome outcome = EstimatorOutcome::kMasked;
    switch (trial.outcome) {
      case fi::Outcome::kMasked: outcome = EstimatorOutcome::kMasked; break;
      case fi::Outcome::kSdc: outcome = EstimatorOutcome::kSdc; break;
      case fi::Outcome::kDue: outcome = EstimatorOutcome::kDue; break;
      case fi::Outcome::kNotInjected: continue;
    }
    offline.record(outcome, std::string(to_string(trial.record.model)),
                   trial.window, trial.record.category,
                   trial.record.injected);
  }

  EXPECT_EQ(streaming.total(), result.overall.total());
  EXPECT_EQ(streaming.counts().masked, offline.counts().masked);
  EXPECT_EQ(streaming.counts().sdc, offline.counts().sdc);
  EXPECT_EQ(streaming.counts().due, offline.counts().due);
  expect_interval_eq(streaming.sdc_interval(), offline.sdc_interval());

  const std::vector<CellEstimate> live = streaming.cells();
  const std::vector<CellEstimate> replayed = offline.cells();
  ASSERT_EQ(live.size(), replayed.size());
  ASSERT_FALSE(live.empty());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_TRUE(live[i].key == replayed[i].key);
    EXPECT_EQ(live[i].counts.masked, replayed[i].counts.masked);
    EXPECT_EQ(live[i].counts.sdc, replayed[i].counts.sdc);
    EXPECT_EQ(live[i].counts.due, replayed[i].counts.due);
  }
}

// ------------------------------------------------------------ openmetrics

TEST(OpenMetrics, RendersAllFamiliesWithTypeHelpAndEof) {
  MetricsRegistry metrics;
  metrics.counter("campaign.sdc").inc(3);
  metrics.gauge("campaign.est.sdc_rate").set(0.25);
  Histogram& hist = metrics.histogram("campaign.trial_latency_ms",
                                      {1.0, 5.0, 25.0});
  hist.observe(0.5);
  hist.observe(4.0);
  hist.observe(100.0);

  const std::string text = metrics.render_openmetrics();
  EXPECT_NE(text.find("# TYPE phifi_campaign_sdc_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP phifi_campaign_sdc_total"), std::string::npos);
  EXPECT_NE(text.find("phifi_campaign_sdc_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE phifi_campaign_est_sdc_rate gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("phifi_campaign_est_sdc_rate 0.25\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE phifi_campaign_trial_latency_ms histogram\n"),
      std::string::npos);
  // Buckets are cumulative with an le label, capped by +Inf == count.
  EXPECT_NE(text.find("phifi_campaign_trial_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("phifi_campaign_trial_latency_ms_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("phifi_campaign_trial_latency_ms_bucket{le=\"25\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("phifi_campaign_trial_latency_ms_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("phifi_campaign_trial_latency_ms_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("phifi_campaign_trial_latency_ms_sum 104.5\n"),
            std::string::npos);
  // The exposition terminator is the last line.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, HistogramBucketsRoundTripAgainstJsonSnapshot) {
  MetricsRegistry metrics;
  Histogram& hist = metrics.histogram("lat", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.5, 1.7, 3.0, 3.5, 4.0, 9.0}) hist.observe(v);

  // De-cumulate the OpenMetrics buckets and compare with the snapshot's
  // disjoint counts — the two exports must describe the same histogram.
  const std::string text = metrics.render_openmetrics();
  std::vector<std::uint64_t> cumulative;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("phifi_lat_bucket{", 0) == 0) {
      cumulative.push_back(
          static_cast<std::uint64_t>(
              std::stoull(line.substr(line.rfind(' ') + 1))));
    }
  }
  ASSERT_EQ(cumulative.size(), 4u);  // 3 edges + the +Inf bucket
  const util::json::Value snap = metrics.snapshot();
  const util::json::Value* counts =
      snap.find("histograms")->find("lat")->find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->size(), 4u);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto disjoint =
        static_cast<std::uint64_t>(counts->as_array()[i].as_double());
    EXPECT_EQ(cumulative[i] - running, disjoint) << "bucket " << i;
    running = cumulative[i];
  }
  EXPECT_EQ(cumulative.back(), hist.count());
}

TEST(OpenMetrics, SanitizesMetricNames) {
  MetricsRegistry metrics;
  metrics.gauge("campaign.est.cell.Double.w2.x-y.sdc_rate").set(1.0);
  const std::string text = metrics.render_openmetrics();
  EXPECT_NE(
      text.find("phifi_campaign_est_cell_Double_w2_x_y_sdc_rate 1\n"),
      std::string::npos);
}

// ---------------------------------------------------------------- history

HistoryRecord sample_history(std::uint64_t sdc, std::uint64_t completed) {
  HistoryRecord record;
  record.workload = "Toy";
  record.fingerprint = 0xdeadbeefcafef00dULL;  // > 2^53: hex round-trip
  record.git_revision = "v1.2-3-gabc";
  record.seed = 42;
  record.jobs = 4;
  record.trials_target = completed;
  record.completed = completed;
  record.sdc = sdc;
  record.due = completed / 10;
  record.masked = completed - sdc - record.due;
  record.not_injected = 1;
  record.stopped_early = true;
  record.elapsed_seconds = 12.5;
  record.trials_per_sec = static_cast<double>(completed) / 12.5;
  const util::Interval ci = util::wilson_interval(sdc, completed);
  record.sdc_rate = ci.point;
  record.sdc_ci_lo = ci.lo;
  record.sdc_ci_hi = ci.hi;
  HistoryCell cell;
  cell.model = "Double";
  cell.window = 2;
  cell.category = "data";
  cell.sdc = sdc / 2;
  cell.masked = completed / 2 - cell.sdc;
  const util::Interval cell_ci =
      util::wilson_interval(cell.sdc, cell.masked + cell.sdc);
  cell.sdc_rate = cell_ci.point;
  cell.sdc_ci_lo = cell_ci.lo;
  cell.sdc_ci_hi = cell_ci.hi;
  record.cells.push_back(cell);
  return record;
}

TEST(History, JsonRoundTripPreservesEveryField) {
  const HistoryRecord record = sample_history(20, 100);
  const util::json::Value json = history_to_json(record);
  EXPECT_EQ(json.string_or("type", ""), "campaign_summary");
  // The fingerprint exceeds 2^53, so it must travel as a hex string, not a
  // JSON double.
  EXPECT_EQ(json.string_or("fingerprint", ""), "deadbeefcafef00d");

  const HistoryRecord back = history_from_json(json);
  EXPECT_EQ(back.workload, record.workload);
  EXPECT_EQ(back.fingerprint, record.fingerprint);
  EXPECT_EQ(back.git_revision, record.git_revision);
  EXPECT_EQ(back.seed, record.seed);
  EXPECT_EQ(back.jobs, record.jobs);
  EXPECT_EQ(back.completed, record.completed);
  EXPECT_EQ(back.masked, record.masked);
  EXPECT_EQ(back.sdc, record.sdc);
  EXPECT_EQ(back.due, record.due);
  EXPECT_EQ(back.not_injected, record.not_injected);
  EXPECT_EQ(back.stopped_early, record.stopped_early);
  EXPECT_DOUBLE_EQ(back.elapsed_seconds, record.elapsed_seconds);
  EXPECT_DOUBLE_EQ(back.trials_per_sec, record.trials_per_sec);
  EXPECT_DOUBLE_EQ(back.sdc_rate, record.sdc_rate);
  EXPECT_DOUBLE_EQ(back.sdc_ci_lo, record.sdc_ci_lo);
  EXPECT_DOUBLE_EQ(back.sdc_ci_hi, record.sdc_ci_hi);
  ASSERT_EQ(back.cells.size(), 1u);
  EXPECT_EQ(back.cells[0].model, "Double");
  EXPECT_EQ(back.cells[0].window, 2u);
  EXPECT_EQ(back.cells[0].category, "data");
  EXPECT_EQ(back.cells[0].sdc, record.cells[0].sdc);
  EXPECT_DOUBLE_EQ(back.cells[0].sdc_rate, record.cells[0].sdc_rate);
}

TEST(History, AppendAccumulatesAndTornTailIsDropped) {
  const std::string path = temp_path("history.ndjson");
  fs::remove(path);
  append_history(path, sample_history(20, 100));
  append_history(path, sample_history(30, 100));
  std::vector<HistoryRecord> records = read_history_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sdc, 20u);
  EXPECT_EQ(records[1].sdc, 30u);

  // A torn final record (crashed writer) is dropped, not fatal.
  fs::resize_file(path, fs::file_size(path) - 7);
  records = read_history_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sdc, 20u);
}

TEST(History, UnknownRecordTypesAreSkippedForForwardCompat) {
  const std::string path = temp_path("history_compat.ndjson");
  fs::remove(path);
  append_history(path, sample_history(20, 100));
  {
    std::ofstream stream(path, std::ios::app | std::ios::binary);
    stream << "{\"type\": \"future-extension\"}\n";
  }
  append_history(path, sample_history(40, 100));
  const std::vector<HistoryRecord> records = read_history_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sdc, 40u);
}

TEST(History, MissingFileThrows) {
  EXPECT_THROW(read_history_file(temp_path("history_missing.ndjson")),
               std::runtime_error);
}

// ------------------------------------------------------------------ drift

TEST(Drift, IdenticalRecordsAreQuiet) {
  // Two same-seed campaigns have bit-identical tallies; the gate must not
  // fire (this is CI's jobs=1 vs jobs=2 determinism check).
  const HistoryRecord record = sample_history(20, 100);
  const analysis::DriftReport report =
      analysis::compute_drift(record, record);
  EXPECT_FALSE(report.any_significant);
  EXPECT_TRUE(report.unmatched_cells.empty());
  ASSERT_FALSE(report.entries.empty());
  for (const analysis::DriftEntry& entry : report.entries) {
    EXPECT_DOUBLE_EQ(entry.z, 0.0) << entry.slice;
    EXPECT_DOUBLE_EQ(entry.p_value, 1.0) << entry.slice;
    EXPECT_FALSE(entry.significant) << entry.slice;
  }
}

TEST(Drift, SyntheticRegressionIsFlagged) {
  // SDC rate jumps 20% -> 40% over 1000 trials: z ~ 9.7, far past any
  // reasonable alpha. The overall "sdc" slice must flag, and the report's
  // sign convention (positive = current higher) must hold.
  const HistoryRecord baseline = sample_history(200, 1000);
  const HistoryRecord regressed = sample_history(400, 1000);
  const analysis::DriftReport report =
      analysis::compute_drift(baseline, regressed);
  EXPECT_TRUE(report.any_significant);
  bool found_sdc = false;
  for (const analysis::DriftEntry& entry : report.entries) {
    if (entry.slice != "sdc") continue;
    found_sdc = true;
    EXPECT_TRUE(entry.significant);
    EXPECT_GT(entry.z, 2.0);
    EXPECT_LT(entry.p_value, 0.001);
    EXPECT_EQ(entry.baseline_events, 200u);
    EXPECT_EQ(entry.current_events, 400u);
  }
  EXPECT_TRUE(found_sdc);
}

TEST(Drift, AlphaControlsTheVerdict) {
  // A mild shift: significant at a loose alpha, not at a strict one.
  const HistoryRecord baseline = sample_history(100, 500);
  const HistoryRecord shifted = sample_history(130, 500);
  const analysis::DriftReport loose =
      analysis::compute_drift(baseline, shifted, /*alpha=*/0.2);
  const analysis::DriftReport strict =
      analysis::compute_drift(baseline, shifted, /*alpha=*/1e-6);
  bool loose_sdc = false;
  bool strict_sdc = false;
  for (const auto& entry : loose.entries) {
    if (entry.slice == "sdc") loose_sdc = entry.significant;
  }
  for (const auto& entry : strict.entries) {
    if (entry.slice == "sdc") strict_sdc = entry.significant;
  }
  EXPECT_TRUE(loose_sdc);
  EXPECT_FALSE(strict_sdc);
}

TEST(Drift, UnmatchedCellsAreListedNotCompared) {
  HistoryRecord baseline = sample_history(20, 100);
  HistoryRecord current = sample_history(20, 100);
  HistoryCell extra;
  extra.model = "Single";
  extra.window = 0;
  extra.category = "control";
  extra.sdc = 5;
  extra.masked = 5;
  current.cells.push_back(extra);
  const analysis::DriftReport report =
      analysis::compute_drift(baseline, current);
  ASSERT_EQ(report.unmatched_cells.size(), 1u);
  EXPECT_NE(report.unmatched_cells[0].find("Single"), std::string::npos);
  EXPECT_NE(report.unmatched_cells[0].find("current only"),
            std::string::npos);
}

TEST(Drift, WorkloadMismatchThrows) {
  HistoryRecord baseline = sample_history(20, 100);
  HistoryRecord other = sample_history(20, 100);
  other.workload = "DGEMM";
  EXPECT_THROW(analysis::compute_drift(baseline, other), std::runtime_error);
}

}  // namespace
}  // namespace phifi::telemetry

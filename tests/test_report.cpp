#include "report/report.hpp"

#include <gtest/gtest.h>

namespace phifi::report {
namespace {

fi::CampaignResult make_campaign() {
  fi::CampaignResult result;
  result.workload = "DGEMM";
  result.time_windows = 5;
  result.by_window.resize(5);
  for (int i = 0; i < 60; ++i) result.overall.add(fi::Outcome::kMasked);
  for (int i = 0; i < 25; ++i) result.overall.add(fi::Outcome::kSdc);
  for (int i = 0; i < 15; ++i) result.overall.add(fi::Outcome::kDue);
  auto& matrix = result.by_category["matrix"];
  matrix.masked = 30;
  matrix.sdc = 20;
  matrix.due = 5;
  auto& control = result.by_category["control"];
  control.masked = 30;
  control.sdc = 5;
  control.due = 10;
  result.by_model[0].masked = 60;
  result.by_model[0].sdc = 25;
  result.by_model[0].due = 15;
  result.by_window[2].sdc = 25;
  result.by_window[2].masked = 40;
  return result;
}

TEST(Report, CampaignOnlySectionsPresent) {
  const fi::CampaignResult campaign = make_campaign();
  ReportInputs inputs;
  inputs.campaign = &campaign;
  inputs.algebraic = true;
  const std::string markdown = render_report(inputs);

  EXPECT_NE(markdown.find("# Reliability report: DGEMM"), std::string::npos);
  EXPECT_NE(markdown.find("## Outcomes"), std::string::npos);
  EXPECT_NE(markdown.find("## Execution-time windows"), std::string::npos);
  EXPECT_NE(markdown.find("## Code-portion criticality"), std::string::npos);
  EXPECT_NE(markdown.find("| matrix |"), std::string::npos);
  EXPECT_NE(markdown.find("ABFT"), std::string::npos);
  // No beam section without beam data.
  EXPECT_EQ(markdown.find("## Beam experiment"), std::string::npos);
}

TEST(Report, BeamSectionIncludesFitAndCheckpointAdvice) {
  const fi::CampaignResult campaign = make_campaign();
  radiation::BeamResult beam;
  beam.workload = "DGEMM";
  beam.runs = 1000;
  beam.fluence = 1e10;
  beam.sdc = 100;
  beam.sdc_fit = analysis::fit_from_counts(100, 1e10);
  beam.due_fit = analysis::fit_from_counts(30, 1e10);
  beam.patterns.add(analysis::ErrorPattern::kLine);
  beam.patterns.add(analysis::ErrorPattern::kSingle);
  beam.tolerance.add_sdc(0.001);
  beam.tolerance.add_sdc(1.0);

  ReportInputs inputs;
  inputs.campaign = &campaign;
  inputs.beam = &beam;
  const std::string markdown = render_report(inputs);

  EXPECT_NE(markdown.find("## Beam experiment"), std::string::npos);
  EXPECT_NE(markdown.find("SDC FIT: **130.0**"), std::string::npos);
  EXPECT_NE(markdown.find("Young/Daly-optimal interval"), std::string::npos);
  EXPECT_NE(markdown.find("Imprecise-computing leverage"), std::string::npos);
  // 1 of 2 SDCs tolerated at 0.5%: 50% reduction.
  EXPECT_NE(markdown.find("removes 50.0% /"), std::string::npos);
}

}  // namespace
}  // namespace phifi::report

// A tiny, controllable workload for exercising the supervisor machinery:
// configurable to run cleanly, crash, hang, or throw mid-execution.
//
// Misbehaving modes only act from the second run() onwards within a
// process tree: the first run is the supervisor's in-process golden
// execution, which must stay clean. Forked trial children inherit the
// incremented counter and therefore misbehave. Call reset_run_counter()
// before each prepare_golden().
#pragma once

#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/workload_api.hpp"
#include "util/array_view.hpp"

namespace phifi::testing {

class ToyWorkload : public fi::Workload {
 public:
  enum class Mode {
    kNormal,
    kCrash,
    kHang,
    kThrow,
    /// Ignores SIGTERM then hangs — exercises the SIGTERM→SIGKILL
    /// escalation path of the watchdog.
    kHangIgnoreTerm,
    /// Allocates without bound — exercises the address-space rlimit path.
    kBloat,
    /// Runs far slower than the golden run but keeps ticking — exercises
    /// the heartbeat "slow but alive" deadline extension.
    kSlow,
  };

  explicit ToyWorkload(Mode mode = Mode::kNormal, unsigned steps = 600,
                       bool resettable = true)
      : mode_(mode), steps_(steps), resettable_(resettable) {}

  static void reset_run_counter() { global_runs_.store(0); }

  [[nodiscard]] std::string_view name() const override { return "Toy"; }

  void setup(std::uint64_t input_seed) override {
    out_.assign(64, 0.0);
    scale_ = 1.0 + static_cast<double>(input_seed % 7);
  }

  void run(phi::Device&, fi::ProgressTracker& progress) override {
    const bool golden_run = global_runs_.fetch_add(1) == 0;
    const volatile double* scale = &scale_;
    progress.enter_phase("toy-first-half");
    for (unsigned step = 0; step < steps_; ++step) {
      if (step == steps_ / 2) progress.enter_phase("toy-second-half");
      if (!golden_run && step == steps_ / 2) misbehave();
      if (!golden_run && mode_ == Mode::kSlow) {
        // Much slower than the golden run, but still ticking: the heartbeat
        // should keep the watchdog from killing this child.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // ~10us of busy work per step so the flip thread has time to fire.
      volatile double sink = 0.0;
      for (int i = 0; i < 2000; ++i) {
        sink = sink + 1.0;
      }
      out_[step % out_.size()] += *scale * static_cast<double>(step % 13);
      progress.tick();
    }
  }

  void register_sites(fi::SiteRegistry& registry) override {
    registry.add_global_array<double>("toy_output", "data",
                                      std::span<double>(out_));
    registry.add_global_scalar("scale", "constant", scale_);
  }

  bool reset() override {
    if (!resettable_) return false;
    // run() only accumulates into out_ (scale_ is read-only); note the
    // static run counter is process state, deliberately NOT reset — warm
    // children must see the same >0 counter legacy children inherit.
    std::fill(out_.begin(), out_.end(), 0.0);
    return true;
  }

  [[nodiscard]] std::span<const std::byte> output_bytes() const override {
    return {reinterpret_cast<const std::byte*>(out_.data()),
            out_.size() * sizeof(double)};
  }
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = 8, .height = 8};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF64;
  }
  [[nodiscard]] unsigned time_windows() const override { return 4; }
  [[nodiscard]] std::uint64_t total_steps() const override { return steps_; }

 private:
  void misbehave() {
    switch (mode_) {
      case Mode::kNormal:
        return;
      case Mode::kCrash: {
        volatile int* null_ptr = nullptr;
        *null_ptr = 1;  // SIGSEGV
        return;
      }
      case Mode::kHang: {
        volatile bool forever = true;
        while (forever) {
        }
        return;
      }
      case Mode::kThrow:
        throw std::runtime_error("toy failure");
      case Mode::kHangIgnoreTerm: {
        std::signal(SIGTERM, SIG_IGN);
        volatile bool forever = true;
        while (forever) {
        }
        return;
      }
      case Mode::kBloat: {
        // Keep every chunk referenced so the optimizer cannot elide the
        // allocations; the vector leaks, but the child is about to die.
        static std::vector<char*> hoard;
        for (;;) {
          constexpr std::size_t kChunk = 32u << 20;
          char* chunk = new char[kChunk];
          std::memset(chunk, 0x5a, kChunk);
          hoard.push_back(chunk);
        }
        return;
      }
      case Mode::kSlow:
        return;  // handled per-step in run()
    }
  }

  static inline std::atomic<int> global_runs_{0};

  Mode mode_;
  unsigned steps_;
  bool resettable_;
  std::vector<double> out_;
  double scale_ = 1.0;
};

inline std::unique_ptr<fi::Workload> make_toy_normal() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kNormal);
}
inline std::unique_ptr<fi::Workload> make_toy_no_reset() {
  // Declines reset(): forces the fast path into template mode in tests.
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kNormal, 600,
                                       /*resettable=*/false);
}
inline std::unique_ptr<fi::Workload> make_toy_crash() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kCrash);
}
inline std::unique_ptr<fi::Workload> make_toy_hang() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kHang);
}
inline std::unique_ptr<fi::Workload> make_toy_throw() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kThrow);
}
inline std::unique_ptr<fi::Workload> make_toy_hang_ignore_term() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kHangIgnoreTerm);
}
inline std::unique_ptr<fi::Workload> make_toy_bloat() {
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kBloat);
}
inline std::unique_ptr<fi::Workload> make_toy_slow() {
  // Fewer steps so the 1ms-per-step slowed run stays ~0.3s.
  return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kSlow, 300);
}

/// Supervisor config tuned for fast unit tests.
inline fi::SupervisorConfig toy_supervisor_config() {
  fi::SupervisorConfig config;
  config.device_os_threads = 1;
  config.device_spec = phi::DeviceSpec::test_device();
  config.min_timeout_seconds = 0.5;
  config.timeout_factor = 30.0;
  return config;
}

}  // namespace phifi::testing

// Telemetry subsystem tests: metrics registry semantics, NDJSON trace
// round-trip and torn-tail durability (mirroring test_campaign_journal),
// and — via a real toy-workload campaign — span ordering/monotonicity plus
// the acceptance cross-check that --from-trace aggregation agrees with the
// journal-derived tallies.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/trace_analysis.hpp"
#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/trace.hpp"
#include "tests/toy_workload.hpp"
#include "util/statistics.hpp"

namespace phifi::telemetry {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

// ---------------------------------------------------------------- metrics

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 2.0, 5.0});
  hist.observe(0.5);   // (−inf, 1]  -> bucket 0
  hist.observe(1.0);   // edge value lands in its own bucket
  hist.observe(1.001); // (1, 2]     -> bucket 1
  hist.observe(2.0);
  hist.observe(5.0);   // (2, 5]     -> bucket 2
  hist.observe(7.5);   // > last edge -> overflow bucket

  ASSERT_EQ(hist.bucket_total(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 7.5);
  EXPECT_DOUBLE_EQ(hist.mean(), hist.sum() / 6.0);
}

TEST(Histogram, RejectsDegenerateEdges) {
  EXPECT_THROW(Histogram({}), std::runtime_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::runtime_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::runtime_error);
}

TEST(Histogram, CanonicalEdgeSetsAreStrictlyAscending) {
  for (const auto& edges :
       {default_latency_edges_ms(), watchdog_poll_edges_ms()}) {
    ASSERT_FALSE(edges.empty());
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
    EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
  }
}

TEST(MetricsRegistry, HandlesAreStableAndGetOrCreate) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("a.count");
  counter.inc();
  EXPECT_EQ(&registry.counter("a.count"), &counter);
  EXPECT_EQ(registry.counter("a.count").value(), 1u);

  Histogram& hist = registry.histogram("a.hist", {1.0, 2.0});
  // Re-request with different edges: first creation wins.
  Histogram& again = registry.histogram("a.hist", {10.0});
  EXPECT_EQ(&again, &hist);
  ASSERT_EQ(again.upper_edges().size(), 2u);

  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_EQ(registry.find_gauge("missing"), nullptr);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
  EXPECT_EQ(registry.find_counter("a.count"), &counter);
}

TEST(MetricsRegistry, SnapshotCarriesAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("trials").inc(3);
  registry.gauge("target").set(10.0);
  Histogram& hist = registry.histogram("lat", {1.0, 5.0});
  hist.observe(0.5);
  hist.observe(9.0);

  const util::json::Value snap = registry.snapshot();
  const util::json::Value* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("trials", -1.0), 3.0);
  const util::json::Value* gauges = snap.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("target", -1.0), 10.0);
  const util::json::Value* hists = snap.find("histograms");
  ASSERT_NE(hists, nullptr);
  const util::json::Value* lat = hists->find("lat");
  ASSERT_NE(lat, nullptr);
  // counts has one entry per edge plus the overflow bucket.
  ASSERT_EQ(lat->find("upper_edges")->size(), 2u);
  ASSERT_EQ(lat->find("counts")->size(), 3u);
  EXPECT_DOUBLE_EQ(lat->number_or("count", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(lat->number_or("sum", -1.0), 9.5);
}

// ------------------------------------------------------------------ trace

TrialTrace sample_trace_trial(int i) {
  TrialTrace trial;
  trial.attempt = static_cast<std::uint64_t>(i);
  trial.outcome = i % 3 == 0 ? "Masked" : i % 3 == 1 ? "SDC" : "DUE";
  trial.due_kind = trial.outcome == "DUE" ? "hang" : "none";
  trial.injected = true;
  trial.model = "Double";
  trial.site = "toy_output";
  trial.category = "data";
  trial.frame = i % 2 == 0 ? "global" : "worker";
  trial.worker = i % 2 == 0 ? -1 : i;
  trial.progress_fraction = 0.25 + 0.01 * i;
  trial.window = static_cast<unsigned>(i % 4);
  trial.seconds = 0.125 * (i + 1);
  trial.heartbeats = 16u + static_cast<std::uint64_t>(i);
  trial.escalated_kill = (i % 2) == 1;
  trial.fork_mode = i % 3 == 0 ? "legacy" : i % 3 == 1 ? "warm" : "template";
  trial.fork_seconds = 0.001 * (i + 1);
  trial.setup_skipped = i % 3 != 0;
  trial.ts_ms = 10.0 * i;
  trial.spans = {{"fork", 0.0, 0.5}, {"run", 0.5, 3.5}, {"classify", 3.5, 4.0}};
  trial.phases = {{"setup", 0.0, 0.1}, {"main", 0.5, 1.7}};
  return trial;
}

void expect_trial_trace_eq(const TrialTrace& a, const TrialTrace& b) {
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.due_kind, b.due_kind);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.site, b.site);
  EXPECT_EQ(a.category, b.category);
  EXPECT_EQ(a.frame, b.frame);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_DOUBLE_EQ(a.progress_fraction, b.progress_fraction);
  EXPECT_EQ(a.window, b.window);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.escalated_kill, b.escalated_kill);
  EXPECT_EQ(a.fork_mode, b.fork_mode);
  EXPECT_DOUBLE_EQ(a.fork_seconds, b.fork_seconds);
  EXPECT_EQ(a.setup_skipped, b.setup_skipped);
  EXPECT_DOUBLE_EQ(a.ts_ms, b.ts_ms);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].name, b.spans[i].name);
    EXPECT_DOUBLE_EQ(a.spans[i].t0_ms, b.spans[i].t0_ms);
    EXPECT_DOUBLE_EQ(a.spans[i].t1_ms, b.spans[i].t1_ms);
  }
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].name, b.phases[i].name);
    EXPECT_DOUBLE_EQ(a.phases[i].fraction, b.phases[i].fraction);
    EXPECT_DOUBLE_EQ(a.phases[i].t_ms, b.phases[i].t_ms);
  }
}

std::string write_sample_trace(const std::string& name, int trials,
                               bool with_end = true) {
  const std::string path = temp_path(name);
  fs::remove(path);
  TraceWriter writer(path);
  TraceCampaign header;
  header.workload = "Toy";
  header.trials = static_cast<std::uint64_t>(trials);
  header.seed = 42;
  header.policy = "carol-fi";
  header.models = {"Single", "Double"};
  header.time_windows = 4;
  writer.campaign(header);
  for (int i = 0; i < trials; ++i) writer.trial(sample_trace_trial(i));
  if (with_end) {
    TraceEnd end;
    end.completed = static_cast<std::uint64_t>(trials);
    writer.end(end);
  }
  writer.sync();
  return path;
}

TEST(Trace, RoundTripsAllRecordKinds) {
  const std::string path = write_sample_trace("trace_roundtrip.ndjson", 3);
  const TraceContents contents = read_trace_file(path);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  EXPECT_FALSE(contents.campaign.is_null());
  EXPECT_EQ(contents.campaign.string_or("workload", ""), "Toy");
  EXPECT_DOUBLE_EQ(contents.campaign.number_or("time_windows", 0.0), 4.0);
  EXPECT_FALSE(contents.end.is_null());
  EXPECT_DOUBLE_EQ(contents.end.number_or("completed", 0.0), 3.0);
  ASSERT_EQ(contents.trials.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    expect_trial_trace_eq(contents.trials[i], sample_trace_trial(i));
  }
}

TEST(Trace, WriterCountsRecords) {
  const std::string path = temp_path("trace_count.ndjson");
  fs::remove(path);
  TraceWriter writer(path);
  EXPECT_EQ(writer.records_written(), 0u);
  writer.campaign(TraceCampaign{});
  writer.trial(sample_trace_trial(0));
  writer.end(TraceEnd{});
  EXPECT_EQ(writer.records_written(), 3u);
  EXPECT_GE(writer.now_ms(), 0.0);
}

TEST(Trace, TornTailIsDroppedNotFatal) {
  // The torn write of a crash: chop mid-way into the final record. The
  // reader must drop exactly the torn line and report its size, mirroring
  // CampaignJournal.TruncatedTailIsDroppedNotFatal.
  const std::string path =
      write_sample_trace("trace_torn.ndjson", 3, /*with_end=*/false);
  fs::resize_file(path, fs::file_size(path) - 5);
  const TraceContents contents = read_trace_file(path);
  ASSERT_EQ(contents.trials.size(), 2u);
  EXPECT_GT(contents.dropped_bytes, 0u);
  EXPECT_TRUE(contents.end.is_null());
  expect_trial_trace_eq(contents.trials[1], sample_trace_trial(1));
}

TEST(Trace, GarbageLineDropsItAndTheRest) {
  const std::string path = write_sample_trace("trace_garbage.ndjson", 1,
                                              /*with_end=*/false);
  {
    std::ofstream stream(path, std::ios::app | std::ios::binary);
    stream << "{\"type\": \"trial\", truncated nonsense\n";
    stream << "{\"type\": \"end\", \"completed\": 1}\n";
  }
  const TraceContents contents = read_trace_file(path);
  // Everything after the corrupt line is untrustworthy: the valid-looking
  // end record behind it must be dropped too, like the journal does.
  ASSERT_EQ(contents.trials.size(), 1u);
  EXPECT_TRUE(contents.end.is_null());
  EXPECT_GT(contents.dropped_bytes, 0u);
}

TEST(Trace, AppendModeExtendsExistingTrace) {
  const std::string path =
      write_sample_trace("trace_append.ndjson", 1, /*with_end=*/false);
  {
    TraceWriter writer(path, /*truncate=*/false);
    writer.trial(sample_trace_trial(1));
    writer.end(TraceEnd{});
  }
  const TraceContents contents = read_trace_file(path);
  EXPECT_FALSE(contents.campaign.is_null());
  ASSERT_EQ(contents.trials.size(), 2u);
  EXPECT_FALSE(contents.end.is_null());
}

TEST(Trace, UnknownRecordTypesAreSkippedForForwardCompat) {
  const std::string path = write_sample_trace("trace_unknown.ndjson", 1);
  {
    std::ofstream stream(path, std::ios::app | std::ios::binary);
    stream << "{\"type\": \"future-extension\", \"x\": 1}\n";
  }
  const TraceContents contents = read_trace_file(path);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  EXPECT_EQ(contents.trials.size(), 1u);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace_file(temp_path("trace_missing.ndjson")),
               std::runtime_error);
}

// --------------------------------------------------------------- progress

TEST(ProgressEmitter, RenderReflectsRegistryCounts) {
  MetricsRegistry registry;
  registry.counter("campaign.completed").inc(10);
  registry.gauge("campaign.trials_target").set(40.0);
  registry.counter("campaign.masked").inc(5);
  registry.counter("campaign.sdc").inc(2);
  registry.counter("campaign.due").inc(3);
  registry.counter("campaign.due.hang").inc(2);
  registry.counter("campaign.due.crash").inc(1);

  std::ostringstream out;
  ProgressEmitter emitter(registry, out);
  const std::string line = emitter.render();
  EXPECT_NE(line.find("10/40 trials"), std::string::npos);
  EXPECT_NE(line.find("masked 50.0%"), std::string::npos);
  EXPECT_NE(line.find("sdc 20.0%"), std::string::npos);
  EXPECT_NE(line.find("due 30.0%"), std::string::npos);
  EXPECT_NE(line.find("hang:2"), std::string::npos);
  EXPECT_NE(line.find("crash:1"), std::string::npos);
}

TEST(ProgressEmitter, FabricViewAppearsOnlyWhenWorkersGaugeExists) {
  MetricsRegistry registry;
  registry.counter("campaign.completed").inc(10);
  registry.gauge("campaign.trials_target").set(40.0);
  registry.counter("campaign.masked").inc(10);

  std::ostringstream out;
  ProgressEmitter emitter(registry, out);
  // A plain (non-fabric) campaign never mentions workers.
  EXPECT_EQ(emitter.render().find("workers:"), std::string::npos);

  // A fabric coordinator publishes the gauges; the line shows the fan-out
  // next to the (already aggregate) rate.
  registry.gauge("fabric.workers_live").set(3.0);
  registry.gauge("fabric.leases_outstanding").set(5.0);
  const std::string line = emitter.render();
  EXPECT_NE(line.find("workers: 3 live / 5 leased"), std::string::npos);
}

TEST(ProgressEmitter, ColdStartRendersPlaceholdersNotAnEmptySplit) {
  // Before the first completed trial there is no throughput sample and no
  // outcome mix: the line must say so instead of "ETA ?" + an all-zero
  // split that looks like a real measurement.
  MetricsRegistry registry;
  registry.gauge("campaign.trials_target").set(40.0);
  std::ostringstream out;
  ProgressEmitter emitter(registry, out);
  const std::string line = emitter.render();
  EXPECT_NE(line.find("0/40 trials"), std::string::npos);
  EXPECT_NE(line.find("0.0/s"), std::string::npos);
  EXPECT_NE(line.find("ETA --"), std::string::npos);
  EXPECT_NE(line.find("waiting for first completed trial"),
            std::string::npos);
  EXPECT_EQ(line.find("masked"), std::string::npos);
  EXPECT_EQ(line.find("?"), std::string::npos);
}

TEST(ProgressEmitter, EstimatorLineShowsCiAndPrecisionEta) {
  MetricsRegistry registry;
  registry.counter("campaign.completed").inc(10);
  registry.gauge("campaign.trials_target").set(40.0);
  registry.counter("campaign.masked").inc(8);
  registry.counter("campaign.sdc").inc(2);

  CampaignEstimator estimator;
  for (int i = 0; i < 8; ++i) {
    estimator.record(EstimatorOutcome::kMasked, "Single", 0, "data", true);
  }
  for (int i = 0; i < 2; ++i) {
    estimator.record(EstimatorOutcome::kSdc, "Single", 0, "data", true);
  }

  std::ostringstream out;
  ProgressEmitter emitter(registry, out);
  emitter.set_estimator(&estimator, /*target_half_width=*/0.005);
  const std::string line = emitter.render();
  // The CI-annotated split renders the Wilson point and half-width for
  // 2/10 in percent (one decimal, matching the rest of the line).
  const util::Interval ci = util::wilson_interval(2, 10);
  char expected[64];
  std::snprintf(expected, sizeof expected, "| sdc %.1f%% ±%.1f",
                100.0 * ci.point, 100.0 * ci.half_width());
  EXPECT_NE(line.find(expected), std::string::npos);
  EXPECT_NE(line.find("ETA to ±0.5%:"), std::string::npos);
  EXPECT_NE(line.find("trials"), std::string::npos);

  // Once the target is met the ETA collapses to "reached".
  ProgressEmitter coarse(registry, out);
  coarse.set_estimator(&estimator, /*target_half_width=*/0.3);
  EXPECT_NE(coarse.render().find("ETA to ±30.0%: reached"),
            std::string::npos);
}

TEST(ProgressEmitter, TickIsTimeGatedEmitNowIsNot) {
  MetricsRegistry registry;
  std::ostringstream out;
  ProgressEmitter emitter(registry, out, /*interval_seconds=*/3600.0);
  for (int i = 0; i < 100; ++i) emitter.tick();
  EXPECT_EQ(emitter.emitted(), 0u);
  EXPECT_TRUE(out.str().empty());

  emitter.emit_now();
  EXPECT_EQ(emitter.emitted(), 1u);
  EXPECT_NE(out.str().find("[progress]"), std::string::npos);

  // A zero interval makes every tick emit.
  std::ostringstream out2;
  ProgressEmitter eager(registry, out2, /*interval_seconds=*/0.0);
  eager.tick();
  eager.tick();
  EXPECT_EQ(eager.emitted(), 2u);
}

// ----------------------------------------------- campaign-driven telemetry

/// Runs a toy campaign with trace + metrics + journal attached and exposes
/// all three outputs for cross-checking.
class CampaignTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    using phifi::testing::ToyWorkload;
    ToyWorkload::reset_run_counter();
    trace_path_ = temp_path("telemetry_campaign.ndjson");
    journal_path_ = temp_path("telemetry_campaign.jnl");
    fs::remove(trace_path_);
    fs::remove(journal_path_);

    fi::SupervisorConfig sup_config =
        phifi::testing::toy_supervisor_config();
    sup_config.metrics = &metrics_;
    supervisor_ = std::make_unique<fi::TrialSupervisor>(
        &phifi::testing::make_toy_normal, sup_config);
    supervisor_->prepare_golden();

    TraceWriter trace(trace_path_);
    fi::CampaignConfig config;
    config.trials = 20;
    config.seed = 42;
    config.journal_path = journal_path_;
    config.journal_fsync = fi::JournalFsync::kOnClose;
    config.trace = &trace;
    config.metrics = &metrics_;
    fi::Campaign campaign(*supervisor_, config);
    result_ = campaign.run();
    trace.sync();
    contents_ = read_trace_file(trace_path_);
  }

  std::string trace_path_;
  std::string journal_path_;
  MetricsRegistry metrics_;
  std::unique_ptr<fi::TrialSupervisor> supervisor_;
  fi::CampaignResult result_;
  TraceContents contents_;
};

TEST_F(CampaignTelemetryTest, TraceBracketsEveryAttempt) {
  EXPECT_EQ(contents_.dropped_bytes, 0u);
  ASSERT_FALSE(contents_.campaign.is_null());
  EXPECT_EQ(contents_.campaign.string_or("workload", ""), "Toy");
  EXPECT_DOUBLE_EQ(contents_.campaign.number_or("time_windows", 0.0), 4.0);
  ASSERT_FALSE(contents_.end.is_null());
  EXPECT_DOUBLE_EQ(contents_.end.number_or("completed", 0.0),
                   static_cast<double>(result_.overall.total()));
  EXPECT_DOUBLE_EQ(contents_.end.number_or("masked", 0.0),
                   static_cast<double>(result_.overall.masked));
  EXPECT_DOUBLE_EQ(contents_.end.number_or("sdc", 0.0),
                   static_cast<double>(result_.overall.sdc));
  EXPECT_DOUBLE_EQ(contents_.end.number_or("due", 0.0),
                   static_cast<double>(result_.overall.due));
  // The enriched end record: wall-clock, early-stop flag, DUE-kind split.
  EXPECT_FALSE(contents_.end.bool_or("stopped_early", true));
  EXPECT_GT(contents_.end.number_or("elapsed_ms", -1.0), 0.0);
  const util::json::Value* due_kinds = contents_.end.find("due_kinds");
  ASSERT_NE(due_kinds, nullptr);
  double due_kind_sum = 0.0;
  for (const auto& [kind, count] : due_kinds->as_object()) {
    EXPECT_EQ(static_cast<std::uint64_t>(count.as_double()),
              result_.due_kinds.at(kind))
        << kind;
    due_kind_sum += count.as_double();
  }
  EXPECT_DOUBLE_EQ(due_kind_sum, static_cast<double>(result_.overall.due));
  // One trial record per attempt: completed plus NotInjected retries.
  EXPECT_EQ(contents_.trials.size(), result_.attempts);
}

TEST_F(CampaignTelemetryTest, SpansAreOrderedAndMonotonic) {
  ASSERT_FALSE(contents_.trials.empty());
  double last_ts = -1.0;
  for (const TrialTrace& trial : contents_.trials) {
    // Trial start stamps are monotonic on the campaign clock.
    EXPECT_GE(trial.ts_ms, last_ts);
    last_ts = trial.ts_ms;

    ASSERT_GE(trial.spans.size(), 3u);
    EXPECT_EQ(trial.spans.front().name, "fork");
    EXPECT_EQ(trial.spans.back().name, "classify");
    double cursor = 0.0;
    for (const TraceSpan& span : trial.spans) {
      EXPECT_GE(span.t0_ms, cursor) << span.name;
      EXPECT_GE(span.t1_ms, span.t0_ms) << span.name;
      cursor = span.t0_ms;
    }
    // Consecutive spans abut: fork ends where run begins, and so on.
    for (std::size_t i = 1; i < trial.spans.size(); ++i) {
      EXPECT_GE(trial.spans[i].t0_ms, trial.spans[i - 1].t0_ms);
    }
    // Phases from the child are monotonic in both time and progress.
    double phase_t = -1.0;
    for (const TracePhase& phase : trial.phases) {
      EXPECT_GE(phase.t_ms, phase_t);
      phase_t = phase.t_ms;
      EXPECT_GE(phase.fraction, 0.0);
      EXPECT_LE(phase.fraction, 1.0);
    }
  }
}

TEST_F(CampaignTelemetryTest, WorkloadPhasesReachTheTrace) {
  // The toy workload announces two phases through the shared channel; they
  // must survive the child->parent->trace path for completed trials.
  std::size_t with_first = 0;
  std::size_t with_second = 0;
  for (const TrialTrace& trial : contents_.trials) {
    for (const TracePhase& phase : trial.phases) {
      if (phase.name == "toy-first-half") ++with_first;
      if (phase.name == "toy-second-half") ++with_second;
    }
  }
  EXPECT_GT(with_first, 0u);
  EXPECT_GT(with_second, 0u);
}

TEST_F(CampaignTelemetryTest, TraceAggregationMatchesJournalTallies) {
  // The acceptance cross-check: --from-trace reconstruction must agree
  // with the journal-derived counts, table by table.
  const fi::JournalContents journal = fi::read_journal(journal_path_);
  fi::CampaignResult from_journal;
  from_journal.workload = journal.header.workload;
  from_journal.time_windows = journal.header.time_windows;
  from_journal.by_window.resize(journal.header.time_windows);
  for (const fi::JournalRecord& record : journal.records) {
    fi::accumulate_trial(from_journal, record.trial);
  }

  const fi::CampaignResult from_trace =
      analysis::aggregate_trace(contents_);

  EXPECT_EQ(from_trace.workload, from_journal.workload);
  EXPECT_EQ(from_trace.not_injected, from_journal.not_injected);
  const auto expect_tally_eq = [](const fi::OutcomeTally& a,
                                  const fi::OutcomeTally& b,
                                  const std::string& what) {
    EXPECT_EQ(a.masked, b.masked) << what;
    EXPECT_EQ(a.sdc, b.sdc) << what;
    EXPECT_EQ(a.due, b.due) << what;
  };
  expect_tally_eq(from_trace.overall, from_journal.overall, "overall");
  for (std::size_t i = 0; i < from_trace.by_model.size(); ++i) {
    expect_tally_eq(from_trace.by_model[i], from_journal.by_model[i],
                    "model " + std::to_string(i));
  }
  ASSERT_EQ(from_trace.by_window.size(), from_journal.by_window.size());
  for (std::size_t i = 0; i < from_trace.by_window.size(); ++i) {
    expect_tally_eq(from_trace.by_window[i], from_journal.by_window[i],
                    "window " + std::to_string(i));
  }
  ASSERT_EQ(from_trace.by_category.size(), from_journal.by_category.size());
  for (const auto& [category, tally] : from_journal.by_category) {
    ASSERT_TRUE(from_trace.by_category.contains(category)) << category;
    expect_tally_eq(from_trace.by_category.at(category), tally, category);
  }
  for (const auto& [frame, tally] : from_journal.by_frame) {
    ASSERT_TRUE(from_trace.by_frame.contains(frame)) << frame;
    expect_tally_eq(from_trace.by_frame.at(frame), tally, frame);
  }

  // And both agree with the live campaign's own tallies.
  expect_tally_eq(from_trace.overall, result_.overall, "live overall");
}

TEST_F(CampaignTelemetryTest, MetricsMatchCampaignResult) {
  const auto counter = [this](const std::string& name) {
    const Counter* c = metrics_.find_counter(name);
    return c == nullptr ? std::uint64_t{0} : c->value();
  };
  EXPECT_EQ(counter("campaign.completed"), result_.overall.total());
  EXPECT_EQ(counter("campaign.masked"), result_.overall.masked);
  EXPECT_EQ(counter("campaign.sdc"), result_.overall.sdc);
  EXPECT_EQ(counter("campaign.due"), result_.overall.due);
  EXPECT_EQ(counter("campaign.not_injected"), result_.not_injected);

  const Gauge* target = metrics_.find_gauge("campaign.trials_target");
  ASSERT_NE(target, nullptr);
  EXPECT_DOUBLE_EQ(target->value(), 20.0);

  // Every live (non-replayed) trial lands one latency observation.
  const Histogram* latency =
      metrics_.find_histogram("campaign.trial_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), result_.overall.total());

  // The supervisor fed its watchdog histograms through the same registry.
  const Histogram* poll =
      metrics_.find_histogram("supervisor.poll_interval_ms");
  ASSERT_NE(poll, nullptr);
  EXPECT_GT(poll->count(), 0u);
}

TEST(TraceAggregation, UnknownOutcomeStringThrows) {
  TraceContents contents;
  TrialTrace trial;
  trial.outcome = "Mangled";
  contents.trials.push_back(trial);
  EXPECT_THROW(analysis::aggregate_trace(contents), std::runtime_error);
}

TEST(TraceAggregation, MergeRejectsWorkloadMismatch) {
  TraceContents a;
  a.campaign = util::json::Value::object();
  a.campaign["workload"] = "Toy";
  fi::CampaignResult result = analysis::aggregate_trace(a);

  TraceContents b;
  b.campaign = util::json::Value::object();
  b.campaign["workload"] = "DGEMM";
  EXPECT_THROW(analysis::accumulate_trace(result, b), std::runtime_error);
}

TEST(TraceAggregation, InfersWindowCountWithoutHeader) {
  TraceContents contents;
  TrialTrace trial = sample_trace_trial(0);
  trial.outcome = "Masked";
  trial.window = 5;
  contents.trials.push_back(trial);
  const fi::CampaignResult result = analysis::aggregate_trace(contents);
  ASSERT_EQ(result.by_window.size(), 6u);
  EXPECT_EQ(result.by_window[5].masked, 1u);
}

}  // namespace
}  // namespace phifi::telemetry

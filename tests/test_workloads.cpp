// Functional correctness and determinism of the six benchmarks, checked
// against independent straight-line reference implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/progress.hpp"
#include "workloads/clamr_workload.hpp"
#include "workloads/dgemm.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lavamd.hpp"
#include "workloads/lud.hpp"
#include "workloads/nw.hpp"
#include "workloads/registry.hpp"

namespace phifi::work {
namespace {

phi::Device make_device() {
  return phi::Device(phi::DeviceSpec::knights_corner_3120a(), 2);
}

std::vector<std::byte> run_once(fi::Workload& workload, std::uint64_t seed) {
  workload.setup(seed);
  phi::Device device = make_device();
  fi::ProgressTracker progress;
  progress.reset(workload.total_steps());
  workload.run(device, progress);
  progress.finish();
  EXPECT_GE(progress.fraction(), 1.0) << workload.name()
                                      << " under-ticked progress";
  const auto bytes = workload.output_bytes();
  return {bytes.begin(), bytes.end()};
}

class AllWorkloadsTest : public ::testing::TestWithParam<WorkloadInfo> {};

TEST_P(AllWorkloadsTest, GoldenIsDeterministic) {
  auto w1 = GetParam().factory();
  auto w2 = GetParam().factory();
  const auto out1 = run_once(*w1, 42);
  const auto out2 = run_once(*w2, 42);
  ASSERT_EQ(out1.size(), out2.size());
  EXPECT_EQ(std::memcmp(out1.data(), out2.data(), out1.size()), 0);
}

TEST_P(AllWorkloadsTest, DifferentSeedsDifferentOutputs) {
  auto w1 = GetParam().factory();
  auto w2 = GetParam().factory();
  const auto out1 = run_once(*w1, 1);
  const auto out2 = run_once(*w2, 2);
  ASSERT_EQ(out1.size(), out2.size());
  EXPECT_NE(std::memcmp(out1.data(), out2.data(), out1.size()), 0);
}

TEST_P(AllWorkloadsTest, OutputShapeMatchesBytes) {
  auto workload = GetParam().factory();
  workload->setup(7);
  const util::Shape shape = workload->output_shape();
  EXPECT_EQ(shape.size() * element_size(workload->output_type()),
            workload->output_bytes().size());
}

TEST_P(AllWorkloadsTest, RegistersGlobalAndWorkerSites) {
  auto workload = GetParam().factory();
  workload->setup(7);
  fi::SiteRegistry registry;
  workload->register_sites(registry);
  EXPECT_FALSE(registry.frame_sites(fi::FrameKind::kGlobal).empty());
  EXPECT_GT(registry.worker_frame_count(), 0u);
  EXPECT_GT(registry.total_bytes(), 0u);
  // Sites must alias live memory, including the whole output buffer.
  const auto output = workload->output_bytes();
  bool output_covered = false;
  for (const auto& site : registry.sites()) {
    if (site.data <= output.data() &&
        site.data + site.bytes >= output.data() + output.size()) {
      output_covered = true;
    }
  }
  EXPECT_TRUE(output_covered) << "output buffer not registered as a site";
}

TEST_P(AllWorkloadsTest, TimeWindowsMatchPaper) {
  auto workload = GetParam().factory();
  const std::string_view name = workload->name();
  const unsigned windows = workload->time_windows();
  if (name == "CLAMR") {
    EXPECT_EQ(windows, 9u);
  }
  if (name == "DGEMM" || name == "HotSpot") {
    EXPECT_EQ(windows, 5u);
  }
  if (name == "LUD" || name == "NW") {
    EXPECT_EQ(windows, 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllWorkloadsTest, ::testing::ValuesIn(all_workloads()),
    [](const ::testing::TestParamInfo<WorkloadInfo>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Registry, FindsAllSixByName) {
  EXPECT_EQ(all_workloads().size(), 6u);
  for (const auto& info : all_workloads()) {
    EXPECT_EQ(find_workload(info.name), info.factory);
  }
  EXPECT_EQ(find_workload("nope"), nullptr);
}

TEST(DgemmTest, MatchesNaiveReference) {
  Dgemm dgemm(24, 16);
  run_once(dgemm, 5);
  const std::size_t n = dgemm.n();
  const auto a = dgemm.a();
  const auto b = dgemm.b();
  const auto c = std::span<const double>(
      reinterpret_cast<const double*>(dgemm.output_bytes().data()), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        expected += a[i * n + k] * b[k * n + j];
      }
      ASSERT_NEAR(c[i * n + j], expected, 1e-9)
          << "element (" << i << "," << j << ")";
    }
  }
}

TEST(LudTest, LTimesUReconstructsOriginal) {
  Lud lud(32, 16);
  run_once(lud, 9);
  const std::size_t n = lud.n();
  const auto lu = lud.matrix();
  const auto original = lud.original();
  // Reconstruct A = L * U from the packed in-place factors.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t limit = std::min(i, j);
      for (std::size_t k = 0; k < limit; ++k) {
        sum += static_cast<double>(lu[i * n + k]) * lu[k * n + j];
      }
      // L has unit diagonal: if i <= j the diagonal term is U itself.
      sum += (i <= j) ? lu[i * n + j]
                      : static_cast<double>(lu[i * n + j]) * lu[j * n + j];
      ASSERT_NEAR(sum, original[i * n + j], 1e-2)
          << "element (" << i << "," << j << ")";
    }
  }
}

TEST(NwTest, MatchesReferenceDp) {
  Nw nw(48, 16);
  run_once(nw, 3);
  const std::size_t n = nw.length() + 1;
  const auto score = nw.score();
  // Invariants: boundary rows follow gap penalties; interior cells obey the
  // DP recurrence relative to their neighbors.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(score[i * n], -static_cast<std::int32_t>(i) * 2);
    ASSERT_EQ(score[i], -static_cast<std::int32_t>(i) * 2);
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 1; j < n; ++j) {
      const std::int32_t v = score[i * n + j];
      const std::int32_t up = score[(i - 1) * n + j] - 2;
      const std::int32_t left = score[i * n + (j - 1)] - 2;
      ASSERT_GE(v, up);
      ASSERT_GE(v, left);
      // v equals one of the three DP options; check against max bound.
      ASSERT_LE(std::max(up, left), v);
    }
  }
}

TEST(HotspotTest, ConvergesTowardEquilibriumAndStaysFinite) {
  HotSpot hotspot(32, 32, 40, 16);
  run_once(hotspot, 11);
  const auto temps = hotspot.temperatures();
  for (float t : temps) {
    ASSERT_TRUE(std::isfinite(t));
    // Physical range: between ambient-ish and a loose ceiling.
    ASSERT_GT(t, 0.0f);
    ASSERT_LT(t, 1000.0f);
  }
}

TEST(HotspotTest, ZeroPowerDecaysTowardAmbient) {
  // With more iterations the grid must move toward the ambient sink.
  HotSpot short_run(16, 16, 4, 8);
  HotSpot long_run(16, 16, 200, 8);
  run_once(short_run, 13);
  run_once(long_run, 13);
  double short_mean = 0.0;
  double long_mean = 0.0;
  for (float t : short_run.temperatures()) short_mean += t;
  for (float t : long_run.temperatures()) long_mean += t;
  short_mean /= 256.0;
  long_mean /= 256.0;
  // Ambient is 80; initial is ~323. Longer run must be closer to ambient.
  EXPECT_LT(long_mean, short_mean);
}

TEST(LavaMdTest, MatchesSerialReference) {
  LavaMd lava(2, 8, 16);
  run_once(lava, 17);
  // Independent O(N^2-with-cutoff) reference over the same inputs.
  LavaMd ref_source(2, 8, 16);
  ref_source.setup(17);
  fi::SiteRegistry registry;
  ref_source.register_sites(registry);
  // Pull positions/charges back out of the registered sites.
  std::span<const double> rv;
  std::span<const double> qv;
  for (const auto& site : registry.sites()) {
    if (site.name == "positions") {
      rv = {reinterpret_cast<const double*>(site.data), site.bytes / 8};
    } else if (site.name == "charges") {
      qv = {reinterpret_cast<const double*>(site.data), site.bytes / 8};
    }
  }
  ASSERT_FALSE(rv.empty());
  ASSERT_FALSE(qv.empty());

  const std::size_t nb = 2;
  const std::size_t ppb = 8;
  const auto forces = lava.forces();
  const double a2 = 0.5 * 0.5;
  for (std::size_t i = 0; i < lava.particle_count(); ++i) {
    const std::size_t box = i / ppb;
    const std::size_t bx = box % nb;
    const std::size_t by = (box / nb) % nb;
    const std::size_t bz = box / (nb * nb);
    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    double fw = 0.0;
    for (std::size_t j = 0; j < lava.particle_count(); ++j) {
      const std::size_t jbox = j / ppb;
      const std::size_t jbx = jbox % nb;
      const std::size_t jby = (jbox / nb) % nb;
      const std::size_t jbz = jbox / (nb * nb);
      const auto near = [](std::size_t a, std::size_t b) {
        return a == b || a + 1 == b || b + 1 == a;
      };
      if (!near(bx, jbx) || !near(by, jby) || !near(bz, jbz)) continue;
      const double dx = rv[i * 4 + 0] - rv[j * 4 + 0];
      const double dy = rv[i * 4 + 1] - rv[j * 4 + 1];
      const double dz = rv[i * 4 + 2] - rv[j * 4 + 2];
      const double d2 = dx * dx + dy * dy + dz * dz;
      const double vij = std::exp(-a2 * d2);
      const double fs = (rv[i * 4 + 3] + rv[j * 4 + 3]) * 2.0 * vij;
      fw += qv[j] * vij;
      fx += qv[j] * fs * dx;
      fy += qv[j] * fs * dy;
      fz += qv[j] * fs * dz;
    }
    ASSERT_NEAR(forces[i * 4 + 0], fx, 1e-9);
    ASSERT_NEAR(forces[i * 4 + 1], fy, 1e-9);
    ASSERT_NEAR(forces[i * 4 + 2], fz, 1e-9);
    ASSERT_NEAR(forces[i * 4 + 3], fw, 1e-9);
  }
}

TEST(ClamrTest, VolumeApproximatelyConserved) {
  clamr::MeshParams params;
  Clamr clamr_workload(params, 18, 16);
  run_once(clamr_workload, 21);
  const auto& mesh = clamr_workload.mesh();
  // Initial volume: base height 1 everywhere plus the Gaussian hump.
  // Lax-Friedrichs + reflective-ish boundaries keep total volume near the
  // initial value (coarsening averages conserve it exactly).
  const double volume = mesh.total_volume();
  const double fine = params.fine_size();
  const double base_volume = fine * fine;  // h = 1 background
  EXPECT_GT(volume, base_volume * 0.95);
  EXPECT_LT(volume, base_volume * 1.30);
}

TEST(ClamrTest, MeshRefinesAroundWaveFront) {
  clamr::MeshParams params;
  Clamr clamr_workload(params, 12, 16);
  clamr_workload.setup(23);
  // The dry run recorded cell counts; refinement must kick in (more cells
  // than the base grid) at some step.
  std::uint64_t max_cells = 0;
  for (std::uint64_t c : clamr_workload.step_cells()) {
    max_cells = std::max(max_cells, c);
  }
  EXPECT_GT(max_cells, static_cast<std::uint64_t>(params.base_size) *
                           params.base_size);
}

TEST(ClamrTest, ProgressTotalCoversAllPhases) {
  Clamr clamr_workload({}, 10, 16);
  clamr_workload.setup(25);
  // Compute-phase ticks alone are one per cell per step; the sort/tree/
  // regrid phase ticks add roughly half that again.
  std::uint64_t compute_ticks = 0;
  for (std::uint64_t c : clamr_workload.step_cells()) compute_ticks += c;
  EXPECT_GT(clamr_workload.total_steps(), compute_ticks);
  EXPECT_LT(clamr_workload.total_steps(), compute_ticks * 2);
}


TEST(ClamrTest, MeshStaysGradedThroughRun) {
  clamr::MeshParams params;
  Clamr clamr_workload(params, 18, 16);
  run_once(clamr_workload, 29);
  const clamr::AmrMesh& mesh = clamr_workload.mesh();
  clamr::Quadtree tree(params.fine_size(),
                       static_cast<std::size_t>(params.fine_size()) *
                           params.fine_size());
  mesh.build_tree(tree);
  EXPECT_TRUE(mesh.is_graded(tree));
}

}  // namespace
}  // namespace phifi::work

#include "analysis/checkpoint_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace phifi::analysis {
namespace {

TEST(CheckpointModel, WasteFormulaKnownValues) {
  // d=60s, t=3540s, M=36000s: waste = 60/3600 + 3600/72000 = 1/60 + 0.05.
  EXPECT_NEAR(checkpoint_waste(3540.0, 36000.0, 60.0),
              60.0 / 3600.0 + 3600.0 / 72000.0, 1e-12);
}

TEST(CheckpointModel, WasteDegenerateInputs) {
  EXPECT_EQ(checkpoint_waste(0.0, 1000.0, 10.0), 1.0);
  EXPECT_EQ(checkpoint_waste(100.0, 0.0, 10.0), 1.0);
  EXPECT_EQ(checkpoint_waste(100.0, 1000.0, -1.0), 1.0);
  // Absurdly frequent checkpoints on a failing machine caps at 1.
  EXPECT_EQ(checkpoint_waste(1.0, 2.0, 100.0), 1.0);
}

TEST(CheckpointModel, OptimumMatchesYoungForSmallCost) {
  // d << M: Daly reduces to Young's sqrt(2 d M).
  const double m = 1e6;
  const double d = 10.0;
  const CheckpointPlan plan = optimal_checkpoint(m, d);
  EXPECT_NEAR(plan.interval_seconds, std::sqrt(2.0 * d * m), 0.05 * plan.interval_seconds);
}

TEST(CheckpointModel, OptimumIsActuallyOptimal) {
  // The waste at the returned interval must beat nearby intervals.
  const double m = 50000.0;
  const double d = 120.0;
  const CheckpointPlan plan = optimal_checkpoint(m, d);
  const double at_optimum = plan.waste_fraction;
  EXPECT_LE(at_optimum,
            checkpoint_waste(plan.interval_seconds * 0.5, m, d) + 1e-12);
  EXPECT_LE(at_optimum,
            checkpoint_waste(plan.interval_seconds * 2.0, m, d) + 1e-12);
  EXPECT_LT(at_optimum, 0.2);
}

TEST(CheckpointModel, LowerDueRateMeansLongerIntervalLessWaste) {
  // The Sec. 6 argument: halving the DUE FIT (doubling machine MTBF)
  // lengthens the optimal interval and reduces the waste.
  const double d = 60.0;
  const double mtbf_base = machine_mtbf_seconds(40.0, 19000.0);
  const double mtbf_hardened = machine_mtbf_seconds(20.0, 19000.0);
  EXPECT_NEAR(mtbf_hardened, 2.0 * mtbf_base, 1e-6);
  const CheckpointPlan base = optimal_checkpoint(mtbf_base, d);
  const CheckpointPlan hardened = optimal_checkpoint(mtbf_hardened, d);
  EXPECT_GT(hardened.interval_seconds, base.interval_seconds);
  EXPECT_LT(hardened.waste_fraction, base.waste_fraction);
}

TEST(CheckpointModel, MachineMtbfSeconds) {
  // 193 FIT x 19000 boards: 1e9/(193*19000) hours.
  const double expected_hours = 1e9 / (193.0 * 19000.0);
  EXPECT_NEAR(machine_mtbf_seconds(193.0, 19000.0), expected_hours * 3600.0,
              1.0);
  EXPECT_EQ(machine_mtbf_seconds(0.0, 100.0), 0.0);
}

TEST(CheckpointModel, DegenerateOptimum) {
  const CheckpointPlan plan = optimal_checkpoint(0.0, 60.0);
  EXPECT_EQ(plan.waste_fraction, 1.0);
}

}  // namespace
}  // namespace phifi::analysis

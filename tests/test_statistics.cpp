#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace phifi::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile_two_sided(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile_two_sided(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(normal_quantile_two_sided(0.6827), 1.0, 1e-3);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(WaldInterval, MatchesHandComputation) {
  // p = 0.2, n = 100: half-width = 1.95996 * sqrt(0.2*0.8/100) = 0.0784.
  const Interval ci = wald_interval(20, 100);
  EXPECT_DOUBLE_EQ(ci.point, 0.2);
  EXPECT_NEAR(ci.lo, 0.2 - 0.0784, 1e-3);
  EXPECT_NEAR(ci.hi, 0.2 + 0.0784, 1e-3);
}

TEST(WaldInterval, ClampsToUnitInterval) {
  const Interval lo = wald_interval(0, 10);
  EXPECT_EQ(lo.lo, 0.0);
  const Interval hi = wald_interval(10, 10);
  EXPECT_EQ(hi.hi, 1.0);
}

TEST(WaldInterval, ZeroTrials) {
  const Interval ci = wald_interval(0, 0);
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.half_width(), 0.0);
}

TEST(WilsonInterval, ContainsTruthMoreRobustly) {
  // Wilson never collapses to zero width at p-hat = 0.
  const Interval ci = wilson_interval(0, 50);
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.2);
}

TEST(WilsonInterval, NarrowerThanWaldAtExtremes) {
  const Interval wald = wald_interval(1, 1000);
  const Interval wilson = wilson_interval(1, 1000);
  EXPECT_GT(wilson.lo, wald.lo);
}

TEST(IntervalCoverage, WaldCoversNominallyAtModerateP) {
  // Simulation check: 95% CI should cover the true p in roughly 95% of
  // experiments (Wald is known slightly anti-conservative).
  Rng rng(77);
  const double p = 0.3;
  int covered = 0;
  constexpr int kExperiments = 2000;
  for (int e = 0; e < kExperiments; ++e) {
    std::uint64_t successes = 0;
    for (int i = 0; i < 500; ++i) successes += rng.bernoulli(p);
    const Interval ci = wald_interval(successes, 500);
    covered += (ci.lo <= p && p <= ci.hi);
  }
  EXPECT_GT(covered, kExperiments * 0.92);
}

TEST(PoissonInterval, CoversCount) {
  const Interval ci = poisson_interval(100);
  EXPECT_LT(ci.lo, 100.0);
  EXPECT_GT(ci.hi, 100.0);
  // Roughly +- 1.96*sqrt(100) = 19.6.
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 19.6, 2.0);
}

TEST(PoissonInterval, ZeroCountHasPositiveUpperBound) {
  const Interval ci = poisson_interval(0);
  EXPECT_GE(ci.lo, -0.26);  // variance-stabilized lower edge, ~0
  EXPECT_GT(ci.hi, 0.5);
}

TEST(TwoProportionZTest, KnownValue) {
  // 20/100 vs 40/100: pooled p = 0.3, se = sqrt(0.3*0.7*(2/100)),
  // z = (0.2-0.4)/se ~ -3.086 (sample 1's rate is lower).
  const TwoProportionTest test = two_proportion_z_test(20, 100, 40, 100);
  EXPECT_NEAR(test.z, -3.0861, 1e-3);
  EXPECT_NEAR(test.p_value, 2.0 * normal_cdf(-3.0861), 1e-4);
  EXPECT_LT(test.p_value, 0.01);
}

TEST(TwoProportionZTest, EqualRatesAreZeroSignal) {
  const TwoProportionTest test = two_proportion_z_test(25, 100, 25, 100);
  EXPECT_DOUBLE_EQ(test.z, 0.0);
  EXPECT_DOUBLE_EQ(test.p_value, 1.0);
}

TEST(TwoProportionZTest, DegenerateInputsAreNeutral) {
  // An empty sample, or a pooled proportion of exactly 0 or 1, carries no
  // evidence of a difference: z = 0, p = 1 (never NaN).
  for (const TwoProportionTest test :
       {two_proportion_z_test(0, 0, 5, 10), two_proportion_z_test(0, 10, 0, 10),
        two_proportion_z_test(10, 10, 10, 10)}) {
    EXPECT_DOUBLE_EQ(test.z, 0.0);
    EXPECT_DOUBLE_EQ(test.p_value, 1.0);
  }
}

TEST(ChiSquared, ZeroWhenMatching) {
  const std::vector<std::uint64_t> obs = {10, 20, 30};
  const std::vector<double> exp = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic(obs, exp), 0.0);
}

TEST(ChiSquared, KnownValue) {
  const std::vector<std::uint64_t> obs = {12, 8};
  const std::vector<double> exp = {10.0, 10.0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic(obs, exp), 0.4 + 0.4);
}

TEST(Interpolate, LinearBetweenPoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 25.0);
}

TEST(Interpolate, ClampsOutsideDomain) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {3.0, 7.0};
  EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(interpolate(xs, ys, 9.0), 7.0);
}

}  // namespace
}  // namespace phifi::util

#include "core/trial_log.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

TrialResult make_trial(Outcome outcome, FaultModel model, const char* site,
                       const char* category, unsigned window,
                       double progress) {
  TrialResult trial;
  trial.outcome = outcome;
  trial.due_kind = outcome == Outcome::kDue ? DueKind::kCrash : DueKind::kNone;
  trial.record.injected = true;
  trial.record.model = model;
  trial.record.frame = FrameKind::kGlobal;
  trial.record.element_index = 17;
  trial.record.burst_elements = 2;
  trial.record.progress_fraction = progress;
  std::strncpy(trial.record.site_name, site,
               sizeof(trial.record.site_name) - 1);
  std::strncpy(trial.record.category, category,
               sizeof(trial.record.category) - 1);
  trial.window = window;
  trial.seconds = 0.005;
  return trial;
}

TEST(TrialLog, WriteReadRoundTrip) {
  std::stringstream stream;
  TrialLogWriter writer(stream);
  writer.append(make_trial(Outcome::kSdc, FaultModel::kRandom, "matrix_a",
                           "matrix", 2, 0.41));
  writer.append(make_trial(Outcome::kDue, FaultModel::kZero, "i", "control",
                           0, 0.07));
  EXPECT_EQ(writer.written(), 2u);

  const auto entries = TrialLogReader::read(stream);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].outcome, Outcome::kSdc);
  EXPECT_EQ(entries[0].model, FaultModel::kRandom);
  EXPECT_EQ(entries[0].site, "matrix_a");
  EXPECT_EQ(entries[0].category, "matrix");
  EXPECT_EQ(entries[0].element_index, 17u);
  EXPECT_EQ(entries[0].burst_elements, 2u);
  EXPECT_NEAR(entries[0].progress_fraction, 0.41, 1e-6);
  EXPECT_EQ(entries[0].window, 2u);
  EXPECT_EQ(entries[1].outcome, Outcome::kDue);
  EXPECT_EQ(entries[1].due_kind, DueKind::kCrash);
}

TEST(TrialLog, RlimitAndStallDueKindsRoundTrip) {
  std::stringstream stream;
  TrialLogWriter writer(stream);
  TrialResult rlimit = make_trial(Outcome::kDue, FaultModel::kSingle, "a",
                                  "m", 1, 0.5);
  rlimit.due_kind = DueKind::kRlimit;
  writer.append(rlimit);
  TrialResult stall = make_trial(Outcome::kDue, FaultModel::kSingle, "b",
                                 "m", 2, 0.6);
  stall.due_kind = DueKind::kStall;
  writer.append(stall);

  const auto entries = TrialLogReader::read(stream);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].due_kind, DueKind::kRlimit);
  EXPECT_EQ(entries[1].due_kind, DueKind::kStall);
}

TEST(TrialLog, AggregateRebuildsTallies) {
  std::stringstream stream;
  TrialLogWriter writer(stream);
  writer.append(make_trial(Outcome::kMasked, FaultModel::kSingle, "a", "m",
                           0, 0.1));
  writer.append(
      make_trial(Outcome::kSdc, FaultModel::kSingle, "a", "m", 1, 0.3));
  writer.append(
      make_trial(Outcome::kDue, FaultModel::kZero, "i", "c", 3, 0.9));

  const auto entries = TrialLogReader::read(stream);
  const CampaignResult result = TrialLogReader::aggregate(entries, 4);
  EXPECT_EQ(result.overall.total(), 3u);
  EXPECT_EQ(result.overall.masked, 1u);
  EXPECT_EQ(result.overall.sdc, 1u);
  EXPECT_EQ(result.overall.due, 1u);
  EXPECT_EQ(
      result.by_model[static_cast<int>(FaultModel::kSingle)].total(), 2u);
  EXPECT_EQ(result.by_window[3].due, 1u);
  EXPECT_EQ(result.by_category.at("m").sdc, 1u);
  EXPECT_EQ(result.by_category.at("c").due, 1u);
}

TEST(TrialLog, RejectsBadHeader) {
  std::stringstream stream("nope\n1,2,3\n");
  EXPECT_THROW(TrialLogReader::read(stream), std::runtime_error);
}

TEST(TrialLog, RejectsMalformedRow) {
  std::stringstream stream;
  TrialLogWriter writer(stream);
  stream << "1,SDC,none\n";
  EXPECT_THROW(TrialLogReader::read(stream), std::runtime_error);
}

TEST(TrialLog, EnumRoundTrips) {
  for (Outcome outcome : {Outcome::kMasked, Outcome::kSdc, Outcome::kDue,
                          Outcome::kNotInjected}) {
    EXPECT_EQ(outcome_from_string(to_string(outcome)), outcome);
  }
  for (DueKind kind : {DueKind::kNone, DueKind::kCrash,
                       DueKind::kAbnormalExit, DueKind::kHang}) {
    EXPECT_EQ(due_kind_from_string(to_string(kind)), kind);
  }
  for (FaultModel model : kAllFaultModels) {
    EXPECT_EQ(fault_model_from_string(to_string(model)), model);
  }
  EXPECT_THROW(outcome_from_string("bogus"), std::runtime_error);
  EXPECT_THROW(fault_model_from_string(""), std::runtime_error);
}

TEST(TrialLog, CampaignLogAggregatesBackToCampaignTallies) {
  phifi::testing::ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             phifi::testing::toy_supervisor_config());
  supervisor.prepare_golden();
  CampaignConfig config;
  config.trials = 20;
  config.seed = 99;
  const CampaignResult live = Campaign(supervisor, config).run();

  std::stringstream stream;
  TrialLogWriter writer(stream);
  writer.append_all(live);
  const CampaignResult replayed = TrialLogReader::aggregate(
      TrialLogReader::read(stream), live.time_windows);

  EXPECT_EQ(replayed.overall.masked, live.overall.masked);
  EXPECT_EQ(replayed.overall.sdc, live.overall.sdc);
  EXPECT_EQ(replayed.overall.due, live.overall.due);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(replayed.by_model[m].total(), live.by_model[m].total());
  }
  for (unsigned w = 0; w < live.time_windows; ++w) {
    EXPECT_EQ(replayed.by_window[w].total(), live.by_window[w].total());
  }
}

}  // namespace
}  // namespace phifi::fi

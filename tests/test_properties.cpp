// Cross-module property tests: invariants that must hold over randomized
// and parameterized input sweeps rather than single examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "analysis/spatial.hpp"
#include "analysis/tolerance.hpp"
#include "core/fault_model.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "workloads/clamr/zorder.hpp"
#include "workloads/registry.hpp"

namespace phifi {
namespace {

// ---- fault models over varying element sizes ----

class FaultModelSizeTest
    : public ::testing::TestWithParam<std::tuple<fi::FaultModel, int>> {};

TEST_P(FaultModelSizeTest, StaysWithinElementAndReportsChange) {
  const auto [model, size] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(size) * 131 +
                static_cast<int>(model));
  for (int trial = 0; trial < 100; ++trial) {
    // A guard band around the element must never be touched.
    std::vector<std::byte> buffer(static_cast<std::size_t>(size) + 16,
                                  std::byte{0x5a});
    const auto element =
        std::span<std::byte>(buffer).subspan(8, static_cast<std::size_t>(size));
    const fi::FaultApplication app = apply_fault(model, element, rng);
    for (std::size_t i = 0; i < 8; ++i) {
      ASSERT_EQ(buffer[i], std::byte{0x5a});
      ASSERT_EQ(buffer[buffer.size() - 1 - i], std::byte{0x5a});
    }
    // `changed` must agree with the bytes.
    bool any_changed = false;
    for (std::byte b : element) any_changed |= b != std::byte{0x5a};
    ASSERT_EQ(app.changed, any_changed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsBySize, FaultModelSizeTest,
    ::testing::Combine(::testing::ValuesIn(fi::kAllFaultModels),
                       ::testing::Values(1, 4, 8, 16)));

// ---- spatial classifier invariances ----

TEST(SpatialProperties, TransposeMapsPatternsConsistently) {
  const util::Shape shape{.width = 12, .height = 12};
  util::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t count = 1 + rng.below(20);
    std::set<std::size_t> unique;
    std::set<std::size_t> transposed;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t x = rng.below(12);
      const std::size_t y = rng.below(12);
      unique.insert(util::flatten(shape, {x, y, 0}));
      transposed.insert(util::flatten(shape, {y, x, 0}));
    }
    const std::vector<std::size_t> a(unique.begin(), unique.end());
    const std::vector<std::size_t> b(transposed.begin(), transposed.end());
    // Transposition swaps rows and columns; every pattern class is
    // symmetric under it.
    EXPECT_EQ(analysis::classify_pattern(a, shape),
              analysis::classify_pattern(b, shape));
  }
}

TEST(SpatialProperties, TranslationInvariantWithinBounds) {
  const util::Shape shape{.width = 16, .height = 16};
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<std::size_t> base;
    const std::size_t count = 1 + rng.below(6);
    for (std::size_t i = 0; i < count; ++i) {
      base.insert(util::flatten(shape, {rng.below(8), rng.below(8), 0}));
    }
    std::vector<std::size_t> original(base.begin(), base.end());
    std::vector<std::size_t> shifted;
    for (std::size_t flat : original) {
      const util::Coord c = util::unflatten(shape, flat);
      shifted.push_back(util::flatten(shape, {c.x + 7, c.y + 7, 0}));
    }
    EXPECT_EQ(analysis::classify_pattern(original, shape),
              analysis::classify_pattern(shifted, shape));
  }
}

TEST(SpatialProperties, SubsetOfLineIsLineOrSingle) {
  const util::Shape shape{.width = 32, .height = 32};
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t row = rng.below(32);
    std::vector<std::size_t> indices;
    for (std::size_t x = 0; x < 32; ++x) {
      if (rng.bernoulli(0.4)) {
        indices.push_back(util::flatten(shape, {x, row, 0}));
      }
    }
    if (indices.empty()) continue;
    const analysis::ErrorPattern pattern =
        analysis::classify_pattern(indices, shape);
    EXPECT_TRUE(pattern == analysis::ErrorPattern::kLine ||
                pattern == analysis::ErrorPattern::kSingle)
        << to_string(pattern);
  }
}

// ---- Morton keys ----

TEST(ZOrderProperties, ParentKeyIsChildKeyShifted) {
  using work::clamr::morton_encode;
  util::Rng rng(9);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.below(1 << 12));
    const std::uint32_t y = static_cast<std::uint32_t>(rng.below(1 << 12));
    EXPECT_EQ(morton_encode(x, y) >> 2, morton_encode(x >> 1, y >> 1));
  }
}

TEST(ZOrderProperties, KeysAreUniquePerCoordinate) {
  using work::clamr::morton_encode;
  std::set<std::uint32_t> keys;
  for (std::uint32_t x = 0; x < 32; ++x) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      keys.insert(morton_encode(x, y));
    }
  }
  EXPECT_EQ(keys.size(), 32u * 32u);
}

// ---- tolerance curve ----

TEST(ToleranceProperties, RemainingFractionMonotoneForRandomInputs) {
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    analysis::ToleranceAnalysis tolerance;
    const int count = 1 + static_cast<int>(rng.below(50));
    for (int i = 0; i < count; ++i) {
      tolerance.add_sdc(std::exp(rng.uniform(-12.0, 2.0)));
    }
    double previous = 1.1;
    for (double t : analysis::ToleranceAnalysis::default_tolerances()) {
      const double remaining = tolerance.remaining_fraction(t);
      ASSERT_LE(remaining, previous + 1e-12);
      ASSERT_GE(remaining, 0.0);
      previous = remaining;
    }
  }
}

// ---- interval coverage sweep ----

class WilsonCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(WilsonCoverageTest, CoversTruePNearNominal) {
  const double p = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  int covered = 0;
  constexpr int kExperiments = 1500;
  constexpr int kSamples = 200;
  for (int e = 0; e < kExperiments; ++e) {
    std::uint64_t successes = 0;
    for (int i = 0; i < kSamples; ++i) successes += rng.bernoulli(p);
    const util::Interval ci = util::wilson_interval(successes, kSamples);
    covered += (ci.lo <= p && p <= ci.hi);
  }
  EXPECT_GT(covered, kExperiments * 0.92) << "p = " << p;
}

INSTANTIATE_TEST_SUITE_P(PGrid, WilsonCoverageTest,
                         ::testing::Values(0.02, 0.1, 0.3, 0.5, 0.8));

// ---- golden outputs are finite ----

class GoldenFiniteTest : public ::testing::TestWithParam<work::WorkloadInfo> {
};

TEST_P(GoldenFiniteTest, FloatOutputsHaveNoNansOrInfs) {
  auto workload = GetParam().factory();
  workload->setup(31337);
  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(workload->total_steps());
  workload->run(device, progress);
  progress.finish();
  const auto bytes = workload->output_bytes();
  if (workload->output_type() == fi::ElementType::kF32) {
    const auto* values = reinterpret_cast<const float*>(bytes.data());
    for (std::size_t i = 0; i < bytes.size() / 4; ++i) {
      ASSERT_TRUE(std::isfinite(values[i])) << "index " << i;
    }
  } else if (workload->output_type() == fi::ElementType::kF64) {
    const auto* values = reinterpret_cast<const double*>(bytes.data());
    for (std::size_t i = 0; i < bytes.size() / 8; ++i) {
      ASSERT_TRUE(std::isfinite(values[i])) << "index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenFiniteTest,
    ::testing::ValuesIn(work::all_workloads()),
    [](const ::testing::TestParamInfo<work::WorkloadInfo>& param_info) {
      return std::string(param_info.param.name);
    });

// ---- hamming distance of fault models ----

TEST(FaultModelProperties, DoubleAlwaysDistanceTwoFromOriginal) {
  util::Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    std::array<std::byte, 8> data{};
    for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
    const auto original = data;
    apply_fault(fi::FaultModel::kDouble, data, rng);
    EXPECT_EQ(util::hamming_distance(original, data), 2u);
  }
}

TEST(FaultModelProperties, ZeroIsIdempotent) {
  util::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::array<std::byte, 8> data{};
    for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
    apply_fault(fi::FaultModel::kZero, data, rng);
    const auto after_first = data;
    const fi::FaultApplication second =
        apply_fault(fi::FaultModel::kZero, data, rng);
    EXPECT_EQ(data, after_first);
    EXPECT_FALSE(second.changed);
  }
}

}  // namespace
}  // namespace phifi

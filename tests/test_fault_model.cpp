#include "core/fault_model.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "util/bits.hpp"

namespace phifi::fi {
namespace {

using util::hamming_distance;

class FaultModelTest : public ::testing::TestWithParam<FaultModel> {};

TEST_P(FaultModelTest, ReportsModelAndDeterministicForSeed) {
  std::array<std::byte, 8> a{};
  std::array<std::byte, 8> b{};
  std::memset(a.data(), 0x5a, a.size());
  std::memset(b.data(), 0x5a, b.size());
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  const FaultApplication app_a = apply_fault(GetParam(), a, rng_a);
  const FaultApplication app_b = apply_fault(GetParam(), b, rng_b);
  EXPECT_EQ(app_a.model, GetParam());
  EXPECT_EQ(a, b);
  EXPECT_EQ(app_a.changed, app_b.changed);
}

INSTANTIATE_TEST_SUITE_P(AllModels, FaultModelTest,
                         ::testing::ValuesIn(kAllFaultModels));

TEST(FaultModel, SingleFlipsExactlyOneBit) {
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::byte, 4> data{std::byte{0x12}, std::byte{0x34},
                                  std::byte{0x56}, std::byte{0x78}};
    const auto original = data;
    const FaultApplication app =
        apply_fault(FaultModel::kSingle, data, rng);
    EXPECT_EQ(hamming_distance(original, data), 1u);
    EXPECT_TRUE(app.changed);
    EXPECT_EQ(app.flipped_count, 1u);
    EXPECT_TRUE(util::read_bit(data, app.flipped_bits[0]) !=
                util::read_bit(original, app.flipped_bits[0]));
  }
}

TEST(FaultModel, DoubleFlipsTwoBitsInOneByte) {
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::byte, 8> data{};
    const auto original = data;
    const FaultApplication app =
        apply_fault(FaultModel::kDouble, data, rng);
    EXPECT_EQ(hamming_distance(original, data), 2u);
    EXPECT_EQ(app.flipped_count, 2u);
    // Both flipped bits are in the same byte (physically adjacent cells).
    EXPECT_EQ(app.flipped_bits[0] / 8, app.flipped_bits[1] / 8);
    EXPECT_NE(app.flipped_bits[0], app.flipped_bits[1]);
  }
}

TEST(FaultModel, ZeroClearsElement) {
  util::Rng rng(3);
  std::array<std::byte, 4> data{std::byte{0xff}, std::byte{0x01},
                                std::byte{0x00}, std::byte{0x80}};
  const FaultApplication app = apply_fault(FaultModel::kZero, data, rng);
  for (std::byte b : data) EXPECT_EQ(b, std::byte{0});
  EXPECT_TRUE(app.changed);
}

TEST(FaultModel, ZeroOnZeroReportsUnchanged) {
  util::Rng rng(4);
  std::array<std::byte, 8> data{};
  const FaultApplication app = apply_fault(FaultModel::kZero, data, rng);
  EXPECT_FALSE(app.changed);
}

TEST(FaultModel, RandomOverwritesAllBytes) {
  util::Rng rng(5);
  // Over many trials, every byte position should change at least once.
  std::array<bool, 8> changed_at{};
  for (int trial = 0; trial < 100; ++trial) {
    std::array<std::byte, 8> data{};
    apply_fault(FaultModel::kRandom, data, rng);
    for (std::size_t i = 0; i < 8; ++i) {
      changed_at[i] |= data[i] != std::byte{0};
    }
  }
  for (bool c : changed_at) EXPECT_TRUE(c);
}

TEST(FaultModel, SingleCoversAllBitPositions) {
  util::Rng rng(6);
  std::array<bool, 32> hit{};
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<std::byte, 4> data{};
    const FaultApplication app = apply_fault(FaultModel::kSingle, data, rng);
    hit[app.flipped_bits[0]] = true;
  }
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_TRUE(hit[i]) << "bit " << i << " never selected";
  }
}

TEST(FaultModel, Names) {
  EXPECT_EQ(to_string(FaultModel::kSingle), "Single");
  EXPECT_EQ(to_string(FaultModel::kDouble), "Double");
  EXPECT_EQ(to_string(FaultModel::kRandom), "Random");
  EXPECT_EQ(to_string(FaultModel::kZero), "Zero");
}

}  // namespace
}  // namespace phifi::fi

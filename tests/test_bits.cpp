#include "util/bits.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace phifi::util {
namespace {

TEST(Bits, FlipAndReadBit) {
  std::array<std::byte, 4> buffer{};
  auto span = std::span<std::byte>(buffer);
  EXPECT_FALSE(read_bit(buffer, 13));
  flip_bit(span, 13);
  EXPECT_TRUE(read_bit(buffer, 13));
  EXPECT_EQ(static_cast<unsigned>(buffer[1]), 1u << 5);
  flip_bit(span, 13);
  EXPECT_FALSE(read_bit(buffer, 13));
  EXPECT_EQ(static_cast<unsigned>(buffer[1]), 0u);
}

TEST(Bits, FlipIsInvolution) {
  std::array<std::byte, 8> buffer{std::byte{0xa5}, std::byte{0x3c}};
  const auto original = buffer;
  for (std::size_t bit = 0; bit < 64; ++bit) {
    flip_bit(buffer, bit);
    flip_bit(buffer, bit);
    EXPECT_EQ(buffer, original) << "bit " << bit;
  }
}

TEST(Bits, HammingDistance) {
  std::array<std::byte, 2> a{std::byte{0xff}, std::byte{0x00}};
  std::array<std::byte, 2> b{std::byte{0x0f}, std::byte{0x01}};
  EXPECT_EQ(hamming_distance(a, b), 5u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, FloatBitsRoundTrip) {
  for (float v : {0.0f, 1.0f, -3.25f, 1e30f, -1e-30f}) {
    EXPECT_EQ(bits_to_float(float_bits(v)), v);
  }
}

TEST(Bits, DoubleBitsRoundTrip) {
  for (double v : {0.0, 1.0, -3.25, 1e300, -1e-300}) {
    EXPECT_EQ(bits_to_double(double_bits(v)), v);
  }
}

TEST(Bits, FloatSignBitFlip) {
  const std::uint32_t bits = float_bits(2.5f);
  EXPECT_EQ(bits_to_float(bits ^ 0x80000000u), -2.5f);
}

}  // namespace
}  // namespace phifi::util

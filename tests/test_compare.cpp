#include "analysis/compare.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace phifi::analysis {
namespace {

template <typename T>
std::span<const std::byte> bytes_of(const std::vector<T>& values) {
  return {reinterpret_cast<const std::byte*>(values.data()),
          values.size() * sizeof(T)};
}

TEST(RelativeError, Conventions) {
  EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 11.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(-10.0, -9.0), 0.1);
  EXPECT_TRUE(std::isinf(relative_error(0.0, 1.0)));
  EXPECT_TRUE(std::isinf(
      relative_error(1.0, std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isinf(
      relative_error(1.0, std::numeric_limits<double>::infinity())));
}

TEST(Compare, IdenticalBuffersMatch) {
  const std::vector<float> golden = {1.0f, 2.0f, 3.0f};
  const Comparison cmp =
      compare_outputs(bytes_of(golden), bytes_of(golden),
                      fi::ElementType::kF32);
  EXPECT_TRUE(cmp.matches());
  EXPECT_EQ(cmp.total_elements, 3u);
  EXPECT_EQ(cmp.max_relative_error(), 0.0);
}

TEST(Compare, FindsMismatchPositionsAndErrors) {
  const std::vector<double> golden = {1.0, 2.0, 4.0, 8.0};
  const std::vector<double> observed = {1.0, 2.2, 4.0, 4.0};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kF64);
  ASSERT_EQ(cmp.mismatch_count(), 2u);
  EXPECT_EQ(cmp.mismatch_indices[0], 1u);
  EXPECT_EQ(cmp.mismatch_indices[1], 3u);
  EXPECT_NEAR(cmp.relative_errors[0], 0.1, 1e-12);
  EXPECT_NEAR(cmp.relative_errors[1], 0.5, 1e-12);
  EXPECT_NEAR(cmp.max_relative_error(), 0.5, 1e-12);
}

TEST(Compare, BitwiseCatchesNegativeZero) {
  const std::vector<float> golden = {0.0f};
  const std::vector<float> observed = {-0.0f};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kF32);
  EXPECT_EQ(cmp.mismatch_count(), 1u);
}

TEST(Compare, NanIsNonFiniteAndInfiniteError) {
  const std::vector<float> golden = {1.0f, 2.0f};
  const std::vector<float> observed = {std::nanf(""), 2.0f};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kF32);
  EXPECT_TRUE(cmp.any_non_finite);
  EXPECT_TRUE(std::isinf(cmp.max_relative_error()));
}

TEST(Compare, IntegerTypes) {
  const std::vector<std::int32_t> golden = {10, -20, 0};
  const std::vector<std::int32_t> observed = {10, -22, 0};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kI32);
  ASSERT_EQ(cmp.mismatch_count(), 1u);
  EXPECT_NEAR(cmp.relative_errors[0], 0.1, 1e-12);
}

TEST(Compare, ToleranceCounting) {
  const std::vector<double> golden = {100.0, 100.0, 100.0};
  const std::vector<double> observed = {100.05, 101.0, 120.0};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kF64);
  EXPECT_EQ(cmp.count_above(0.0001), 3u);
  EXPECT_EQ(cmp.count_above(0.005), 2u);
  EXPECT_EQ(cmp.count_above(0.05), 1u);
  EXPECT_EQ(cmp.count_above(0.5), 0u);
  EXPECT_TRUE(cmp.is_sdc_at(0.05));
  EXPECT_FALSE(cmp.is_sdc_at(0.5));
}

TEST(Compare, SizeMismatchIsFullyWrongBeyondPrefix) {
  const std::vector<float> golden = {1.0f, 2.0f, 3.0f};
  const std::vector<float> observed = {1.0f, 2.0f};
  const Comparison cmp = compare_outputs(bytes_of(golden), bytes_of(observed),
                                         fi::ElementType::kF32);
  EXPECT_EQ(cmp.total_elements, 3u);
  EXPECT_EQ(cmp.mismatch_count(), 1u);
  EXPECT_TRUE(std::isinf(cmp.relative_errors[0]));
}

}  // namespace
}  // namespace phifi::analysis

#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace phifi::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EnvInitParsesKnownValues) {
  LogLevelGuard guard;
  ::setenv("PHIFI_LOG", "debug", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::setenv("PHIFI_LOG", "off", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);
  ::setenv("PHIFI_LOG", "nonsense", 1);
  set_log_level(LogLevel::kWarn);
  init_log_from_env();  // unknown value leaves the level unchanged
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("PHIFI_LOG");
}

TEST(Log, PlainModeRoundTrip) {
  const bool saved = log_plain();
  set_log_plain(true);
  EXPECT_TRUE(log_plain());
  set_log_plain(false);
  EXPECT_FALSE(log_plain());
  set_log_plain(saved);
}

TEST(Log, EnvInitParsesPlainFlag) {
  LogLevelGuard guard;
  const bool saved = log_plain();
  ::setenv("PHIFI_LOG_PLAIN", "1", 1);
  init_log_from_env();
  EXPECT_TRUE(log_plain());
  // Only the exact value "1" enables plain mode.
  ::setenv("PHIFI_LOG_PLAIN", "yes", 1);
  init_log_from_env();
  EXPECT_FALSE(log_plain());
  ::unsetenv("PHIFI_LOG_PLAIN");
  init_log_from_env();
  EXPECT_FALSE(log_plain());
  set_log_plain(saved);
}

TEST(Log, StreamsDoNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_debug() << "invisible " << 42;
  log_info() << "invisible";
  log_warn() << "invisible";
  log_error() << "invisible";
}

}  // namespace
}  // namespace phifi::util

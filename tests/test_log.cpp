#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace phifi::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EnvInitParsesKnownValues) {
  LogLevelGuard guard;
  ::setenv("PHIFI_LOG", "debug", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::setenv("PHIFI_LOG", "off", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);
  ::setenv("PHIFI_LOG", "nonsense", 1);
  set_log_level(LogLevel::kWarn);
  init_log_from_env();  // unknown value leaves the level unchanged
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("PHIFI_LOG");
}

TEST(Log, StreamsDoNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_debug() << "invisible " << 42;
  log_info() << "invisible";
  log_warn() << "invisible";
  log_error() << "invisible";
}

}  // namespace
}  // namespace phifi::util

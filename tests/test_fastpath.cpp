// Fork-server trial fast path: warm re-fork and template modes must be
// tally-for-tally, record-for-record indistinguishable from the legacy
// cold-start path — at any worker count, across SIGKILL + resume (in either
// direction: a fast-path journal resumed legacy and vice versa), and across
// a template process dying mid-campaign.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "core/golden_map.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

fi::SupervisorConfig fast_supervisor_config() {
  fi::SupervisorConfig config = toy_supervisor_config();
  config.trial_fast_path = true;
  return config;
}

CampaignConfig fastpath_campaign(unsigned jobs, const std::string& journal) {
  CampaignConfig config;
  config.trials = 12;
  config.seed = 0xfa57f00dULL;
  config.jobs = jobs;
  config.journal_path = journal;
  return config;
}

CampaignResult run_campaign(WorkloadFactory factory, bool fast,
                            const CampaignConfig& config,
                            const TrialObserver& observer = nullptr) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(std::move(factory),
                             fast ? fast_supervisor_config()
                                  : toy_supervisor_config());
  supervisor.prepare_golden();
  Campaign campaign(supervisor, config);
  return campaign.run(observer);
}

void expect_tally_eq(const OutcomeTally& a, const OutcomeTally& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
}

/// Asserts every aggregate slice and every per-trial record matches.
void expect_same_campaign(const CampaignResult& a, const CampaignResult& b) {
  expect_tally_eq(a.overall, b.overall);
  for (std::size_t m = 0; m < a.by_model.size(); ++m) {
    expect_tally_eq(a.by_model[m], b.by_model[m]);
  }
  ASSERT_EQ(a.by_window.size(), b.by_window.size());
  for (std::size_t w = 0; w < a.by_window.size(); ++w) {
    expect_tally_eq(a.by_window[w], b.by_window[w]);
  }
  ASSERT_EQ(a.by_category.size(), b.by_category.size());
  for (const auto& [category, tally] : a.by_category) {
    ASSERT_TRUE(b.by_category.count(category)) << category;
    expect_tally_eq(tally, b.by_category.at(category));
  }
  EXPECT_EQ(a.not_injected, b.not_injected);
  EXPECT_EQ(a.attempts, b.attempts);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].due_kind, b.trials[i].due_kind) << "trial " << i;
    EXPECT_EQ(a.trials[i].window, b.trials[i].window) << "trial " << i;
    EXPECT_EQ(a.trials[i].record.model, b.trials[i].record.model);
    EXPECT_EQ(a.trials[i].record.site_index, b.trials[i].record.site_index);
    EXPECT_EQ(a.trials[i].record.element_index,
              b.trials[i].record.element_index);
    EXPECT_EQ(a.trials[i].record.flipped_bits[0],
              b.trials[i].record.flipped_bits[0]);
  }
}

TEST(FastPath, GoldenDigestMatchesFnv1a) {
  const std::byte bytes[] = {std::byte{0x61}, std::byte{0x62},
                             std::byte{0x63}};
  // Reference FNV-1a 64 of "abc".
  EXPECT_EQ(fnv1a64({bytes, 3}), 0xe71fa2190541574bULL);
}

TEST(FastPath, GoldenMapPublishesSealedReadOnlyCopy) {
  GoldenMap map;
  std::vector<std::byte> golden(4096);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    golden[i] = static_cast<std::byte>(i * 7);
  }
  map.publish(golden);
  ASSERT_TRUE(map.mapped());
  ASSERT_EQ(map.size(), golden.size());
  EXPECT_EQ(map.digest(), fnv1a64(golden));
  EXPECT_TRUE(std::equal(golden.begin(), golden.end(),
                         map.golden().begin()));
  map.reset();
  EXPECT_FALSE(map.mapped());
}

TEST(FastPath, ResettableWorkloadResolvesWarmMode) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             fast_supervisor_config());
  supervisor.prepare_golden();
  EXPECT_EQ(supervisor.fork_mode(), ForkMode::kWarm);
  EXPECT_NE(supervisor.golden_digest(), 0u);
  EXPECT_EQ(supervisor.golden_output_bytes(), supervisor.golden().size());
  EXPECT_FALSE(supervisor.adopted());
}

TEST(FastPath, NonResettableWorkloadResolvesTemplateMode) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_no_reset,
                             fast_supervisor_config());
  supervisor.prepare_golden();
  EXPECT_EQ(supervisor.fork_mode(), ForkMode::kTemplate);
  EXPECT_NE(supervisor.golden_digest(), 0u);
}

TEST(FastPath, WarmModeMatchesLegacyBitIdenticalAtJobs1And4) {
  const CampaignResult legacy = run_campaign(
      &phifi::testing::make_toy_normal, false, fastpath_campaign(1, ""));
  ASSERT_EQ(legacy.overall.total(), 12u);

  const CampaignResult warm1 = run_campaign(
      &phifi::testing::make_toy_normal, true, fastpath_campaign(1, ""));
  EXPECT_EQ(warm1.trials.at(0).fork_mode, ForkMode::kWarm);
  EXPECT_TRUE(warm1.trials.at(0).setup_skipped);
  expect_same_campaign(legacy, warm1);

  const CampaignResult warm4 = run_campaign(
      &phifi::testing::make_toy_normal, true, fastpath_campaign(4, ""));
  expect_same_campaign(legacy, warm4);
}

TEST(FastPath, TemplateModeMatchesLegacyBitIdenticalAtJobs1And4) {
  const CampaignResult legacy = run_campaign(
      &phifi::testing::make_toy_no_reset, false, fastpath_campaign(1, ""));
  ASSERT_EQ(legacy.overall.total(), 12u);
  EXPECT_EQ(legacy.trials.at(0).fork_mode, ForkMode::kLegacy);
  EXPECT_FALSE(legacy.trials.at(0).setup_skipped);

  const CampaignResult tmpl1 = run_campaign(
      &phifi::testing::make_toy_no_reset, true, fastpath_campaign(1, ""));
  EXPECT_EQ(tmpl1.trials.at(0).fork_mode, ForkMode::kTemplate);
  // The first trial pays the template's setup; later ones ride the warm
  // image.
  EXPECT_FALSE(tmpl1.trials.at(0).setup_skipped);
  EXPECT_TRUE(tmpl1.trials.at(1).setup_skipped);
  expect_same_campaign(legacy, tmpl1);

  const CampaignResult tmpl4 = run_campaign(
      &phifi::testing::make_toy_no_reset, true, fastpath_campaign(4, ""));
  expect_same_campaign(legacy, tmpl4);
}

TEST(FastPath, WarmModeClassifiesCrashAsDue) {
  // Crash-mode toys misbehave from the second run() in the process tree:
  // the golden run is clean, every forked trial SIGSEGVs.
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_crash,
                             fast_supervisor_config());
  supervisor.prepare_golden();
  ASSERT_EQ(supervisor.fork_mode(), ForkMode::kWarm);
  const TrialResult result = supervisor.run_trial({.trial_seed = 7});
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kCrash);
  EXPECT_EQ(result.fork_mode, ForkMode::kWarm);
}

TEST(FastPath, TemplateModeClassifiesCrashAsDue) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(
      []() -> std::unique_ptr<Workload> {
        return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kCrash, 600,
                                             /*resettable=*/false);
      },
      fast_supervisor_config());
  supervisor.prepare_golden();
  ASSERT_EQ(supervisor.fork_mode(), ForkMode::kTemplate);
  const TrialResult result = supervisor.run_trial({.trial_seed = 7});
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kCrash);
  EXPECT_EQ(result.fork_mode, ForkMode::kTemplate);
}

TEST(FastPath, TemplateModeWatchdogKillsHungGrandchild) {
  ToyWorkload::reset_run_counter();
  fi::SupervisorConfig config = fast_supervisor_config();
  config.heartbeat_divisions = 0;  // no extensions: hit the hard deadline
  TrialSupervisor supervisor(
      []() -> std::unique_ptr<Workload> {
        return std::make_unique<ToyWorkload>(ToyWorkload::Mode::kHang, 600,
                                             /*resettable=*/false);
      },
      config);
  supervisor.prepare_golden();
  ASSERT_EQ(supervisor.fork_mode(), ForkMode::kTemplate);
  const TrialResult result = supervisor.run_trial({.trial_seed = 7});
  EXPECT_EQ(result.outcome, Outcome::kDue);
  EXPECT_EQ(result.due_kind, DueKind::kHang);
}

TEST(FastPath, FastPathJournalResumesUnderLegacyAndBack) {
  // Mode must not leak into the journal's identity: a campaign SIGKILLed
  // under the fast path resumes legacy (and the other way around), landing
  // on the sequential legacy reference bit-for-bit.
  const CampaignResult expected = run_campaign(
      &phifi::testing::make_toy_normal, false, fastpath_campaign(1, ""));

  struct Direction {
    bool kill_fast;
    bool resume_fast;
  };
  for (const Direction dir : {Direction{true, false}, Direction{false, true}}) {
    const std::string journal = temp_path(
        dir.kill_fast ? "fastpath_kill_fast.jnl" : "fastpath_kill_legacy.jnl");
    fs::remove(journal);
    const CampaignConfig config = fastpath_campaign(4, journal);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ToyWorkload::reset_run_counter();
      TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                 dir.kill_fast ? fast_supervisor_config()
                                               : toy_supervisor_config());
      supervisor.prepare_golden();
      Campaign campaign(supervisor, config);
      int committed = 0;
      campaign.run([&committed](const TrialResult&,
                                std::span<const std::byte>) {
        if (++committed == 3) ::kill(::getpid(), SIGKILL);
      });
      ::_exit(42);  // not reached: the kill lands inside run()
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    CampaignConfig resume_config = fastpath_campaign(2, journal);
    resume_config.resume = true;
    const CampaignResult resumed =
        run_campaign(&phifi::testing::make_toy_normal, dir.resume_fast,
                     resume_config, nullptr);
    EXPECT_GE(resumed.resumed_trials, 3u);
    EXPECT_FALSE(resumed.interrupted);
    expect_same_campaign(expected, resumed);
  }
}

TEST(FastPath, TemplateCrashMidCampaignRespawnsAndStaysBitIdentical) {
  // The drill: SIGKILL the slot's fork server partway through a campaign.
  // The supervisor must respawn it, replay the pending command if one was
  // in flight, and finish with tallies identical to the legacy reference.
  const CampaignResult expected = run_campaign(
      &phifi::testing::make_toy_no_reset, false, fastpath_campaign(1, ""));

  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_no_reset,
                             fast_supervisor_config());
  supervisor.prepare_golden();
  ASSERT_EQ(supervisor.fork_mode(), ForkMode::kTemplate);
  Campaign campaign(supervisor, fastpath_campaign(1, ""));
  int committed = 0;
  const CampaignResult result = campaign.run(
      [&](const TrialResult&, std::span<const std::byte>) {
        if (++committed == 3) {
          const pid_t tpid = supervisor.slot_template_pid(0);
          ASSERT_GT(tpid, 0);
          ASSERT_EQ(::kill(tpid, SIGKILL), 0);
        }
      });
  EXPECT_GE(supervisor.template_respawns(), 1u);
  expect_same_campaign(expected, result);
}

TEST(FastPath, TemplateDeathMidTrialReplaysDeterministically) {
  // Kill the template while its grandchild trial is in flight: the orphaned
  // grandchild is cleaned up and the command replayed against a fresh
  // template, converging on the exact same classified result.
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_no_reset,
                             fast_supervisor_config());
  supervisor.prepare_golden();
  ASSERT_EQ(supervisor.fork_mode(), ForkMode::kTemplate);
  const TrialConfig config{.trial_seed = 0xdeadULL};
  const TrialResult reference = supervisor.run_trial(config);

  supervisor.start_trial(0, config);
  const pid_t tpid = supervisor.slot_template_pid(0);
  ASSERT_GT(tpid, 0);
  ASSERT_EQ(::kill(tpid, SIGKILL), 0);
  TrialResult replayed;
  while (true) {
    std::vector<SlotCompletion> done = supervisor.poll_slots();
    if (!done.empty()) {
      replayed = std::move(done.front().result);
      break;
    }
    std::this_thread::sleep_for(supervisor.next_poll_delay());
  }
  EXPECT_GE(supervisor.template_respawns(), 1u);
  EXPECT_EQ(replayed.outcome, reference.outcome);
  EXPECT_EQ(replayed.due_kind, reference.due_kind);
  EXPECT_EQ(replayed.window, reference.window);
  EXPECT_EQ(replayed.record.site_index, reference.record.site_index);
  EXPECT_EQ(replayed.record.element_index, reference.record.element_index);
  EXPECT_EQ(replayed.record.flipped_bits[0], reference.record.flipped_bits[0]);
}

TEST(FastPath, AdoptedGoldenRunsTrialsWithoutAGoldenRun) {
  // First supervisor pays the golden run and records its digest; a second
  // one adopts digest + byte count (the fabric-worker resume path) and must
  // classify identically — without ever executing the workload in-process.
  ToyWorkload::reset_run_counter();
  TrialSupervisor first(&phifi::testing::make_toy_normal,
                        fast_supervisor_config());
  first.prepare_golden();
  const TrialResult expected = first.run_trial({.trial_seed = 99});

  // (The toy's process-wide run counter is already past the golden run —
  // advanced by `first` in this same process — so the adopting supervisor's
  // grandchildren stay on the legacy "second run" schedule.)
  TrialSupervisor second(&phifi::testing::make_toy_normal,
                         fast_supervisor_config());
  second.adopt_golden(first.golden_digest(), first.golden_output_bytes(),
                      first.golden_seconds());
  EXPECT_TRUE(second.adopted());
  EXPECT_EQ(second.fork_mode(), ForkMode::kTemplate);
  EXPECT_EQ(second.golden().size(), 0u);  // bytes are not materialized
  const TrialResult adopted = second.run_trial({.trial_seed = 99});
  EXPECT_EQ(adopted.outcome, expected.outcome);
  EXPECT_EQ(adopted.window, expected.window);
  EXPECT_EQ(adopted.record.site_index, expected.record.site_index);
  EXPECT_EQ(adopted.record.flipped_bits[0], expected.record.flipped_bits[0]);
}

}  // namespace
}  // namespace phifi::fi

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "workloads/clamr/amr_mesh.hpp"
#include "workloads/clamr/cell_sort.hpp"
#include "workloads/clamr/quadtree.hpp"
#include "workloads/clamr/zorder.hpp"

namespace phifi::work::clamr {
namespace {

TEST(ZOrder, EncodeDecodeRoundTrip) {
  for (std::uint32_t x = 0; x < 64; x += 3) {
    for (std::uint32_t y = 0; y < 64; y += 5) {
      std::uint32_t dx = 0;
      std::uint32_t dy = 0;
      morton_decode(morton_encode(x, y), dx, dy);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
    }
  }
}

TEST(ZOrder, KnownValues) {
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 0), 4u);
  EXPECT_EQ(morton_encode(0, 2), 8u);
}

TEST(ZOrder, SiblingsAreContiguous) {
  // The four children of any quadrant occupy four consecutive keys.
  for (std::uint32_t px = 0; px < 8; ++px) {
    for (std::uint32_t py = 0; py < 8; ++py) {
      const std::uint32_t base = morton_encode(px * 2, py * 2);
      std::set<std::uint32_t> keys;
      for (int q = 0; q < 4; ++q) {
        keys.insert(morton_encode(px * 2 + (q & 1), py * 2 + (q >> 1)));
      }
      EXPECT_EQ(*keys.begin(), base);
      EXPECT_EQ(*keys.rbegin(), base + 3);
      EXPECT_EQ(keys.size(), 4u);
    }
  }
}

class CellSortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellSortTest, SortsArbitraryKeys) {
  const std::size_t n = GetParam();
  util::Rng rng(7 + n);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(1000));

  CellSort sorter(std::max<std::size_t>(n, 1));
  sorter.sort(keys);
  ASSERT_EQ(sorter.count(), n);

  const auto perm = sorter.perm();
  // perm is a permutation of [0, n).
  std::set<std::int32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), n);
  // Output keys are sorted and match the permuted input keys.
  const auto sorted_keys = sorter.keys();
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(sorted_keys[r], keys[perm[r]]);
    if (r > 0) {
      EXPECT_LE(sorted_keys[r - 1], sorted_keys[r]);
    }
  }
}

TEST_P(CellSortTest, StableForEqualKeys) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  std::vector<std::uint32_t> keys(n, 5);  // all equal
  CellSort sorter(n);
  sorter.sort(keys);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(sorter.perm()[r], static_cast<std::int32_t>(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CellSortTest,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 100, 1000));

TEST(QuadtreeTest, LocatesEveryCellOfAUniformGrid) {
  // 4x4 cells on a 16-wide fine grid: each cell has depth 2, width 4.
  std::vector<std::int32_t> xs;
  std::vector<std::int32_t> ys;
  std::vector<std::int32_t> depths;
  for (std::int32_t j = 0; j < 4; ++j) {
    for (std::int32_t i = 0; i < 4; ++i) {
      xs.push_back(i);
      ys.push_back(j);
      depths.push_back(2);
    }
  }
  Quadtree tree(16, 64);
  tree.build(xs, ys, depths, xs.size());
  for (std::int64_t fy = 0; fy < 16; ++fy) {
    for (std::int64_t fx = 0; fx < 16; ++fx) {
      const std::int32_t cell = tree.locate(fx, fy);
      ASSERT_NE(cell, Quadtree::kNull);
      EXPECT_EQ(xs[cell], fx / 4);
      EXPECT_EQ(ys[cell], fy / 4);
    }
  }
}

TEST(QuadtreeTest, MixedDepths) {
  // One depth-1 cell covering the NE quadrant, four depth-2 cells in SW.
  std::vector<std::int32_t> xs = {1, 0, 1, 0, 1};
  std::vector<std::int32_t> ys = {1, 0, 0, 1, 1};
  std::vector<std::int32_t> depths = {1, 2, 2, 2, 2};
  Quadtree tree(8, 16);
  tree.build(xs, ys, depths, xs.size());
  EXPECT_EQ(tree.locate(6, 6), 0);  // NE quadrant
  EXPECT_EQ(tree.locate(0, 0), 1);
  EXPECT_EQ(tree.locate(3, 1), 2);
  EXPECT_EQ(tree.locate(1, 3), 3);
  EXPECT_EQ(tree.locate(2, 2), 4);
}

TEST(QuadtreeTest, OutsideDomainIsNull) {
  std::vector<std::int32_t> xs = {0};
  std::vector<std::int32_t> ys = {0};
  std::vector<std::int32_t> depths = {0};
  Quadtree tree(8, 4);
  tree.build(xs, ys, depths, 1);
  EXPECT_EQ(tree.locate(-1, 0), Quadtree::kNull);
  EXPECT_EQ(tree.locate(0, 8), Quadtree::kNull);
  EXPECT_EQ(tree.locate(100, 100), Quadtree::kNull);
}

TEST(QuadtreeTest, UncoveredRegionIsNull) {
  // Only the SW depth-1 quadrant is present.
  std::vector<std::int32_t> xs = {0};
  std::vector<std::int32_t> ys = {0};
  std::vector<std::int32_t> depths = {1};
  Quadtree tree(8, 4);
  tree.build(xs, ys, depths, 1);
  EXPECT_EQ(tree.locate(1, 1), 0);
  EXPECT_EQ(tree.locate(6, 6), Quadtree::kNull);
}

TEST(QuadtreeTest, CyclicCorruptionTerminates) {
  std::vector<std::int32_t> xs = {0, 1, 0, 1};
  std::vector<std::int32_t> ys = {0, 0, 1, 1};
  std::vector<std::int32_t> depths = {1, 1, 1, 1};
  Quadtree tree(8, 8);
  tree.build(xs, ys, depths, 4);
  // Corrupt a child link to point back at the root. The walk must
  // terminate (the descent is depth-bounded and the quadrant size halves
  // each step); under corruption it may return a wrong cell or kNull, but
  // it must not hang.
  tree.children_buffer()[0] = 0;
  tree.leaf_buffer()[0] = Quadtree::kNull;
  const std::int32_t result = tree.locate(1, 1);
  EXPECT_TRUE(result == Quadtree::kNull || (result >= 0 && result < 4))
      << result;
  // A fully cyclic corruption (every quadrant loops to the root) returns
  // kNull once the quadrant size bottoms out.
  for (int q = 0; q < 4; ++q) tree.children_buffer()[q] = 0;
  EXPECT_EQ(tree.locate(1, 1), Quadtree::kNull);
}

TEST(AmrMeshTest, InitialGridIsBaseResolution) {
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break();
  EXPECT_EQ(mesh.cell_count(),
            static_cast<std::size_t>(params.base_size) * params.base_size);
  // Hump in the middle: center cell higher than a corner cell.
  const auto h = mesh.h();
  const auto x = mesh.x();
  const auto y = mesh.y();
  float center_h = 0.0f;
  float corner_h = 0.0f;
  for (std::size_t c = 0; c < mesh.cell_count(); ++c) {
    if (x[c] == 8 && y[c] == 8) center_h = h[c];
    if (x[c] == 0 && y[c] == 0) corner_h = h[c];
  }
  EXPECT_GT(center_h, corner_h + 0.1f);
}

TEST(AmrMeshTest, PermutationReordersConsistently) {
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break();
  const std::size_t n = mesh.cell_count();
  std::vector<std::uint32_t> keys(mesh.capacity());
  mesh.compute_keys(keys);
  CellSort sorter(mesh.capacity());
  sorter.sort({keys.data(), n});
  const float h_first_before = mesh.h()[sorter.perm()[0]];
  mesh.apply_permutation(sorter.perm());
  EXPECT_EQ(mesh.h()[0], h_first_before);
  // Keys are now sorted in cell order.
  mesh.compute_keys(keys);
  for (std::size_t c = 1; c < n; ++c) EXPECT_LE(keys[c - 1], keys[c]);
}

TEST(AmrMeshTest, RegridRefinesSteepGradients) {
  MeshParams params;
  params.refine_threshold = 0.01f;
  AmrMesh mesh(params);
  mesh.init_dam_break(1.0f);
  Quadtree tree(params.fine_size(), mesh.capacity());
  mesh.build_tree(tree);
  const std::size_t before = mesh.cell_count();
  const std::size_t after = mesh.regrid(tree);
  EXPECT_GT(after, before);
  // Total volume conserved exactly by refinement (children copy h).
}

TEST(AmrMeshTest, CoarseningMergesFlatSiblings) {
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break(0.0f);  // perfectly flat: every gradient is zero
  Quadtree tree(params.fine_size(), mesh.capacity());
  // Refine everything once by brute force: set a negative threshold.
  MeshParams& p = mesh.mutable_params();
  const float saved = p.refine_threshold;
  p.refine_threshold = -1.0f;
  mesh.build_tree(tree);
  mesh.regrid(tree);
  const std::size_t refined = mesh.cell_count();
  EXPECT_EQ(refined, 4u * params.base_size * params.base_size);
  // Restore the threshold: now everything is flat, so siblings coarsen.
  p.refine_threshold = saved;
  mesh.build_tree(tree);
  mesh.regrid(tree);
  EXPECT_EQ(mesh.cell_count(),
            static_cast<std::size_t>(params.base_size) * params.base_size);
  const double volume = mesh.total_volume();
  const double fine = params.fine_size();
  EXPECT_NEAR(volume, fine * fine, 1e-3);
}

TEST(AmrMeshTest, RasterizeCoversFineGrid) {
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break();
  std::vector<float> raster(
      static_cast<std::size_t>(params.fine_size()) * params.fine_size(),
      -1.0f);
  mesh.rasterize(raster);
  for (float v : raster) EXPECT_GT(v, 0.0f);  // every pixel written
}

TEST(AmrMeshTest, ComputeStepKeepsFlatFieldFlat) {
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break(0.0f);
  Quadtree tree(params.fine_size(), mesh.capacity());
  mesh.build_tree(tree);
  for (std::size_t c = 0; c < mesh.cell_count(); ++c) {
    mesh.compute_cell(tree, c);
  }
  mesh.swap_state();
  for (std::size_t c = 0; c < mesh.cell_count(); ++c) {
    EXPECT_FLOAT_EQ(mesh.h()[c], 1.0f);
  }
}


TEST(AmrMeshTest, RegridEnforcesTwoToOneGrading) {
  MeshParams params;
  params.refine_threshold = 0.03f;
  params.coarsen_threshold = 0.01f;
  AmrMesh mesh(params);
  mesh.init_dam_break(0.8f);
  Quadtree tree(params.fine_size(), mesh.capacity());
  // Several regrid rounds around a steep hump: every intermediate mesh
  // must satisfy the 2:1 face-neighbor constraint.
  for (int round = 0; round < 4; ++round) {
    mesh.build_tree(tree);
    mesh.regrid(tree);
    mesh.build_tree(tree);
    ASSERT_TRUE(mesh.is_graded(tree)) << "round " << round;
  }
}

TEST(AmrMeshTest, GradingCancelsIllegalCoarsening) {
  // A fully refined mesh with one steep cell: its neighbors may not
  // coarsen past one level below it even if their own gradients are flat.
  MeshParams params;
  AmrMesh mesh(params);
  mesh.init_dam_break(0.0f);
  Quadtree tree(params.fine_size(), mesh.capacity());
  // Refine everything twice to the finest level.
  MeshParams& p = mesh.mutable_params();
  const float saved = p.refine_threshold;
  p.refine_threshold = -1.0f;
  for (int round = 0; round < 2; ++round) {
    mesh.build_tree(tree);
    mesh.regrid(tree);
  }
  p.refine_threshold = saved;
  // Plant a sharp spike so one region stays refined while the rest wants
  // to coarsen all the way back down.
  const std::size_t cells = mesh.cell_count();
  mesh.h_buffer()[cells / 2] = 5.0f;
  for (int round = 0; round < 3; ++round) {
    mesh.build_tree(tree);
    mesh.regrid(tree);
    mesh.build_tree(tree);
    ASSERT_TRUE(mesh.is_graded(tree)) << "round " << round;
  }
}

}  // namespace
}  // namespace phifi::work::clamr

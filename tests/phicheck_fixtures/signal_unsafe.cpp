// phicheck fixture: a signal handler that reaches non-async-signal-safe
// calls, directly (malloc) and through a helper (printf). Compiled by
// nobody; scanned by test_phicheck to pin the checker's diagnostics.
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace {

int g_count = 0;

void helper() {
  std::printf("count %d\n", g_count);
}

void on_signal(int) {
  ++g_count;
  helper();
  void* scratch = malloc(16);
  (void)scratch;
}

}  // namespace

int install_handler() {
  std::signal(SIGINT, on_signal);
  return g_count;
}

// phicheck fixture: double-fork (fork-server) topology violations — a
// fork-child-entry template whose grandchild branches fall through into
// the serve loop instead of ending the process.
#include <unistd.h>

namespace fixture {

int serve_counter;

// phicheck:fork-child-entry
void grandchild_entry() {
  // phicheck:fork-workload-entry
  _exit(0);
}

// phicheck:fork-child-entry
void bad_template_loop() {
  // phicheck:fork-workload-entry
  while (true) {
    const int pid = fork();
    if (pid == 0) {
      grandchild_entry();
      serve_counter = 1;  // falls back into the serve loop
    }
  }
}

// phicheck:fork-child-entry
void silent_template_loop() {
  // phicheck:fork-workload-entry
  while (true) {
    const int pid = fork();
    if (pid == 0) {
      serve_counter = 2;  // no terminating call at all
    }
  }
}

}  // namespace fixture

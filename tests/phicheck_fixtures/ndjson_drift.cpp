// phicheck fixture: an NDJSON writer that drifted from its declared family —
// one undeclared field written, one required field missing.
#include <map>
#include <string>

namespace fixture_ndjson {

using Json = std::map<std::string, int>;

// phicheck:ndjson-writer(fixture.sample) record
Json drifting_writer() {
  Json record;
  record["alpha"] = 1;
  record["gamma"] = 3;
  return record;
}

}  // namespace fixture_ndjson

// phicheck fixture: a raw interruptible syscall outside any eintr-helper —
// the retry discipline the eintr checker exists to enforce.
#include <unistd.h>

namespace fixture_eintr {

long drain_fd(int fd) {
  char buf[64];
  const long n = ::read(fd, buf, sizeof buf);
  return n;
}

}  // namespace fixture_eintr

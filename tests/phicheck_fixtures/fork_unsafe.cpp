// phicheck fixture: post-fork heap and stdio before the workload-entry
// marker, plus a fork child branch that calls an unannotated function.
#include <unistd.h>

#include <cstdio>

namespace fixture {

int run_workload();

// phicheck:fork-child-entry
void child_entry() {
  std::printf("child up\n");
  int* scratch = new int[4];
  delete[] scratch;
  // phicheck:fork-workload-entry
  run_workload();
  _exit(0);
}

void spawn() {
  const int pid = fork();
  if (pid == 0) {
    child_entry();
  }
  (void)pid;
}

void bad_spawn() {
  const int pid = fork();
  if (pid == 0) {
    run_workload();
  }
  (void)pid;
}

}  // namespace fixture

// phicheck fixture: shared-memory structs that violate the POD contract —
// an allocating member, a raw pointer, and a missing size= pin.
#include <cstdint>
#include <string>

namespace fixture {

// phicheck:shm-pod fixture::BadRecord size=16
struct BadRecord {
  std::string label;
  std::uint8_t* bytes;
  double value = 0.0;
};

// phicheck:shm-pod fixture::MissingPin
struct MissingPin {
  std::uint32_t a = 0;
};

}  // namespace fixture

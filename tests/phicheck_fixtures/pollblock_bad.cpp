// phicheck fixture: a poll-loop root that reaches blocking calls, directly
// (usleep) and through a helper (nanosleep). Compiled by nobody; scanned by
// test_phicheck to pin the poll-loop checker's diagnostics.
#include <ctime>
#include <unistd.h>

namespace fixture_pollblock {

void pollblock_drain() {
  timespec ts{0, 1000};
  nanosleep(&ts, nullptr);
}

// phicheck:poll-loop
void bad_event_loop() {
  for (int i = 0; i < 3; ++i) {
    usleep(100);
    pollblock_drain();
  }
}

}  // namespace fixture_pollblock

// phicheck fixture: memory_order uses that disagree with the declared
// policy in fixtures_policy.txt (relaxed load where acquire is declared,
// an implicit seq_cst store, and an atomic with no policy line at all).
#include <atomic>

namespace fixture {

std::atomic<int> g_ready{0};
std::atomic<int> g_undeclared{0};

int peek() { return g_ready.load(std::memory_order_relaxed); }

void mark() { g_ready.store(1); }

void bump() { g_undeclared.fetch_add(1, std::memory_order_relaxed); }

}  // namespace fixture

// phicheck fixture: the wire frame escapes before the durable append — the
// ordering bug that double-runs trials after a coordinator crash.
namespace fixture_durability {

struct BadLink {
  void send(int frame);
};
struct BadLedger {
  void append(int record);
};

void bad_commit(BadLink& link, BadLedger& ledger) {
  link.send(42);     // phicheck:wire-after(fixture-bad)
  ledger.append(7);  // phicheck:durable-before(fixture-bad)
}

}  // namespace fixture_durability

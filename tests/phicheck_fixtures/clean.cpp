// phicheck fixture: the disciplined version of everything the other
// fixtures get wrong — must produce zero findings.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>

namespace fixture_clean {

std::atomic<bool> g_flag{false};

void on_quit(int) { g_flag.store(true, std::memory_order_relaxed); }

int install_clean_handler() {
  std::signal(SIGTERM, on_quit);
  return 0;
}

int run_clean_workload();

// phicheck:shm-pod fixture_clean::GoodRecord size=8
struct GoodRecord {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

// phicheck:fork-child-entry
void clean_child_entry() {
  // phicheck:fork-workload-entry
  run_clean_workload();
  _exit(0);
}

void clean_spawn() {
  const int pid = fork();
  if (pid == 0) {
    clean_child_entry();
  }
  (void)pid;
}

}  // namespace fixture_clean

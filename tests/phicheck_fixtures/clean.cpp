// phicheck fixture: the disciplined version of everything the other
// fixtures get wrong — must produce zero findings.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <map>
#include <string>

namespace fixture_clean {

std::atomic<bool> g_flag{false};

void on_quit(int) { g_flag.store(true, std::memory_order_relaxed); }

int install_clean_handler() {
  std::signal(SIGTERM, on_quit);
  return 0;
}

int run_clean_workload();

// phicheck:shm-pod fixture_clean::GoodRecord size=8
struct GoodRecord {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

// phicheck:fork-child-entry
void clean_child_entry() {
  // phicheck:fork-workload-entry
  run_clean_workload();
  _exit(0);
}

void clean_spawn() {
  const int pid = fork();
  if (pid == 0) {
    clean_child_entry();
  }
  (void)pid;
}

// phicheck:fork-child-entry — a fork-server: each grandchild branch ends
// the process through the grandchild's own entry function.
void clean_template_loop() {
  // phicheck:fork-workload-entry
  for (int i = 0; i < 3; ++i) {
    const int pid = fork();
    if (pid == 0) {
      clean_child_entry();
    }
    (void)pid;
  }
}

// phicheck:poll-loop
void clean_event_loop() {
  for (int i = 0; i < 3; ++i) {
    // phicheck:blocking-ok(fixture: deliberate pacing nap, bounded at 100us)
    usleep(100);
  }
}

// phicheck:eintr-helper retries until the read lands or fails for real
long clean_read_retry(int fd, char* buf, unsigned long len) {
  while (true) {
    const long n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

struct CleanLink {
  void send(int frame);
};
struct CleanLedger {
  void append(int record);
};

void clean_commit(CleanLink& link, CleanLedger& ledger) {
  ledger.append(7);  // phicheck:durable-before(fixture-good)
  link.send(42);     // phicheck:wire-after(fixture-good)
}

// phicheck:exhaustive-switch
enum class CleanPhase {
  kIdle,
  kBusy,
};

int clean_dispatch(CleanPhase phase) {
  switch (phase) {
    case CleanPhase::kIdle:
      return 0;
    // phicheck:allow(enum-switch) fixture: kBusy deliberately folded in
    default:
      return 1;
  }
}

using Json = std::map<std::string, int>;

// phicheck:ndjson-writer(fixture.clean) out
Json clean_writer() {
  Json out;
  out["name"] = 1;
  out["value"] = 2;
  return out;
}

}  // namespace fixture_clean

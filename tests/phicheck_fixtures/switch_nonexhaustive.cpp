// phicheck fixture: a switch over an exhaustive-switch enum whose default
// silently swallows an enumerator.
namespace fixture_switch {

// phicheck:exhaustive-switch
enum class Phase {
  kInit,
  kRun,
  kDrain,
};

int bad_dispatch(Phase phase) {
  switch (phase) {
    case Phase::kInit: return 0;
    case Phase::kRun: return 1;
    default: return -1;
  }
}

}  // namespace fixture_switch

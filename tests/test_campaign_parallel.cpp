// Multi-worker scheduler end-to-end: a --jobs N campaign must be
// indistinguishable, tally for tally and trial for trial, from the same
// campaign run sequentially — including across SIGKILL + resume and across
// journal anomalies (duplicate records).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "core/campaign.hpp"
#include "core/campaign_journal.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

CampaignConfig parallel_campaign(unsigned jobs, const std::string& journal) {
  CampaignConfig config;
  config.trials = 12;
  config.seed = 0xfa57f00dULL;
  config.jobs = jobs;
  config.journal_path = journal;
  return config;
}

CampaignResult run_campaign(const CampaignConfig& config,
                            const TrialObserver& observer = nullptr) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  Campaign campaign(supervisor, config);
  return campaign.run(observer);
}

void expect_tally_eq(const OutcomeTally& a, const OutcomeTally& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
}

/// Asserts every aggregate slice and every per-trial record matches.
void expect_same_campaign(const CampaignResult& a, const CampaignResult& b) {
  expect_tally_eq(a.overall, b.overall);
  for (std::size_t m = 0; m < a.by_model.size(); ++m) {
    expect_tally_eq(a.by_model[m], b.by_model[m]);
  }
  ASSERT_EQ(a.by_window.size(), b.by_window.size());
  for (std::size_t w = 0; w < a.by_window.size(); ++w) {
    expect_tally_eq(a.by_window[w], b.by_window[w]);
  }
  ASSERT_EQ(a.by_category.size(), b.by_category.size());
  for (const auto& [category, tally] : a.by_category) {
    ASSERT_TRUE(b.by_category.count(category)) << category;
    expect_tally_eq(tally, b.by_category.at(category));
  }
  ASSERT_EQ(a.by_frame.size(), b.by_frame.size());
  for (const auto& [frame, tally] : a.by_frame) {
    ASSERT_TRUE(b.by_frame.count(frame)) << frame;
    expect_tally_eq(tally, b.by_frame.at(frame));
  }
  EXPECT_EQ(a.not_injected, b.not_injected);
  EXPECT_EQ(a.attempts, b.attempts);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].due_kind, b.trials[i].due_kind) << "trial " << i;
    EXPECT_EQ(a.trials[i].window, b.trials[i].window) << "trial " << i;
    EXPECT_EQ(a.trials[i].record.model, b.trials[i].record.model);
    EXPECT_EQ(a.trials[i].record.site_index, b.trials[i].record.site_index);
    EXPECT_EQ(a.trials[i].record.element_index,
              b.trials[i].record.element_index);
    EXPECT_EQ(a.trials[i].record.flipped_bits[0],
              b.trials[i].record.flipped_bits[0]);
  }
}

TEST(CampaignParallel, JobsFourMatchesJobsOneBitIdentical) {
  const CampaignResult sequential = run_campaign(parallel_campaign(1, ""));
  ASSERT_EQ(sequential.overall.total(), 12u);
  const CampaignResult parallel = run_campaign(parallel_campaign(4, ""));
  expect_same_campaign(sequential, parallel);
}

TEST(CampaignParallel, JobsMatchWithNotInjectedAttempts) {
  // latest_fraction near 1.0 provokes occasional NotInjected attempts,
  // which consume attempt indices (and thus shift the model cycle); the
  // parallel scheduler must agree with the sequential one on those too.
  CampaignConfig base = parallel_campaign(1, "");
  base.trials = 8;
  base.latest_fraction = 0.999;
  const CampaignResult sequential = run_campaign(base);
  CampaignConfig wide = base;
  wide.jobs = 4;
  const CampaignResult parallel = run_campaign(wide);
  expect_same_campaign(sequential, parallel);
}

TEST(CampaignParallel, SigkilledParallelCampaignResumesBitIdentical) {
  const std::string journal = temp_path("parallel_kill.jnl");
  fs::remove(journal);

  // Reference: sequential, uninterrupted, no journal.
  const CampaignResult expected = run_campaign(parallel_campaign(1, ""));

  // A child process runs the journaled campaign with 4 workers in flight
  // and SIGKILLs itself after its 3rd committed trial — a real crash with
  // speculative attempts still running.
  const CampaignConfig config = parallel_campaign(4, journal);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ToyWorkload::reset_run_counter();
    TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                               toy_supervisor_config());
    supervisor.prepare_golden();
    Campaign campaign(supervisor, config);
    int committed = 0;
    campaign.run([&committed](const TrialResult&,
                              std::span<const std::byte>) {
      if (++committed == 3) ::kill(::getpid(), SIGKILL);
    });
    ::_exit(42);  // not reached: the kill lands inside run()
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume with a different worker count: jobs is not fingerprinted, and
  // the continuation must still land on the sequential reference.
  CampaignConfig resume_config = parallel_campaign(2, journal);
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  EXPECT_GE(resumed.resumed_trials, 3u);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignParallel, DuplicateJournalRecordsDedupedOnResume) {
  const std::string journal = temp_path("parallel_dup.jnl");
  fs::remove(journal);

  const CampaignResult expected = run_campaign(parallel_campaign(1, ""));

  // Interrupt a parallel campaign partway, leaving a valid journal.
  std::atomic<bool> stop{false};
  CampaignConfig config = parallel_campaign(4, journal);
  config.stop_flag = &stop;
  int committed = 0;
  (void)run_campaign(config,
                     [&](const TrialResult&, std::span<const std::byte>) {
                       if (++committed == 3) stop.store(true);
                     });

  // Re-append a copy of the last record, as a crashed resume whose torn
  // tail healed could: replay must count that attempt exactly once.
  const JournalContents contents = read_journal(journal);
  ASSERT_FALSE(contents.records.empty());
  {
    CampaignJournalWriter writer(journal, contents.valid_bytes,
                                 JournalFsync::kEveryRecord);
    writer.append(contents.records.back());
  }

  CampaignConfig resume_config = parallel_campaign(4, journal);
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignParallel, BatchFsyncJournalInterruptAndResume) {
  const std::string journal = temp_path("parallel_batch.jnl");
  fs::remove(journal);

  const CampaignResult expected = run_campaign(parallel_campaign(1, ""));

  // Group-commit journal: fsync every K records, flushed on interrupt. The
  // stop path must leave every committed record durable and resumable.
  std::atomic<bool> stop{false};
  CampaignConfig config = parallel_campaign(4, journal);
  config.journal_fsync = JournalFsync::kBatch;
  config.journal_batch.max_records = 4;
  config.journal_batch.max_delay_ms = 10000.0;  // records, not time
  config.stop_flag = &stop;
  int committed = 0;
  const CampaignResult interrupted = run_campaign(
      config, [&](const TrialResult&, std::span<const std::byte>) {
        if (++committed == 3) stop.store(true);
      });
  EXPECT_TRUE(interrupted.interrupted);

  CampaignConfig resume_config = config;
  resume_config.stop_flag = nullptr;
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignParallel, SlotOutputsStayIsolated) {
  // Four slots in flight share nothing: every completed trial's journaled
  // attempt index must be unique and contiguous, and the supervisor must
  // end with no active slots.
  const std::string journal = temp_path("parallel_slots.jnl");
  fs::remove(journal);

  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  Campaign campaign(supervisor, parallel_campaign(4, journal));
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), 12u);
  EXPECT_EQ(supervisor.active_slots(), 0u);
  EXPECT_EQ(supervisor.slot_count(), 4u);

  const JournalContents contents = read_journal(journal);
  ASSERT_EQ(contents.records.size(), result.attempts);
  for (std::size_t i = 0; i < contents.records.size(); ++i) {
    EXPECT_EQ(contents.records[i].attempt_index, i);
  }
}

TEST(CampaignParallel, StopCiWidthHaltsEveryJobsCountAtTheSameAttempt) {
  // The sequential stop rule is evaluated only at attempt-order commit
  // boundaries, so jobs=1 and jobs=4 must stop at the identical attempt
  // with bit-identical tallies — workers past the stopping attempt are
  // speculative and never committed.
  CampaignConfig base = parallel_campaign(1, "");
  base.trials = 40;
  base.stop_ci_width = 0.2;  // fires around n=10..21 for any outcome mix
  const CampaignResult sequential = run_campaign(base);
  ASSERT_TRUE(sequential.stopped_early);
  ASSERT_LT(sequential.overall.total(), 40u);
  ASSERT_GT(sequential.overall.total(), 0u);

  CampaignConfig wide = base;
  wide.jobs = 4;
  const CampaignResult parallel = run_campaign(wide);
  EXPECT_TRUE(parallel.stopped_early);
  expect_same_campaign(sequential, parallel);
}

TEST(CampaignParallel, StopCiWidthSurvivesSigkillAndResume) {
  const std::string journal = temp_path("parallel_ci_kill.jnl");
  fs::remove(journal);

  // Reference: sequential, uninterrupted, stopping on precision.
  CampaignConfig reference = parallel_campaign(1, "");
  reference.trials = 40;
  reference.stop_ci_width = 0.2;
  const CampaignResult expected = run_campaign(reference);
  ASSERT_TRUE(expected.stopped_early);

  // SIGKILL a 4-worker journaled run before the stop point; the resumed
  // campaign must replay, re-arm the stop rule, and land on the reference.
  CampaignConfig config = parallel_campaign(4, journal);
  config.trials = 40;
  config.stop_ci_width = 0.2;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ToyWorkload::reset_run_counter();
    TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                               toy_supervisor_config());
    supervisor.prepare_golden();
    Campaign campaign(supervisor, config);
    int committed = 0;
    campaign.run([&committed](const TrialResult&,
                              std::span<const std::byte>) {
      if (++committed == 3) ::kill(::getpid(), SIGKILL);
    });
    ::_exit(42);  // not reached: the kill lands inside run()
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  CampaignConfig resume_config = parallel_campaign(2, journal);
  resume_config.trials = 40;
  resume_config.stop_ci_width = 0.2;
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  EXPECT_TRUE(resumed.stopped_early);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignParallel, StopCiWidthIsFingerprinted) {
  // A journal written under one epsilon must not resume under another:
  // the stop rule is part of the campaign's identity.
  CampaignConfig a = parallel_campaign(1, "");
  CampaignConfig b = a;
  b.stop_ci_width = 0.2;
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  EXPECT_NE(campaign_fingerprint(a, supervisor.workload_name(),
                                 supervisor.time_windows()),
            campaign_fingerprint(b, supervisor.workload_name(),
                                 supervisor.time_windows()));
}

TEST(CampaignParallel, IndexedSeedsAreOrderIndependent) {
  // The counter-indexed seed derivation is the determinism linchpin: it
  // must be a pure function of (campaign seed, attempt index).
  EXPECT_EQ(trial_seed_for(42, 0), trial_seed_for(42, 0));
  EXPECT_NE(trial_seed_for(42, 0), trial_seed_for(42, 1));
  EXPECT_NE(trial_seed_for(42, 0), trial_seed_for(43, 0));
  // And spot-check dispersion: adjacent indices differ in many bits.
  const std::uint64_t a = trial_seed_for(7, 100);
  const std::uint64_t b = trial_seed_for(7, 101);
  EXPECT_GT(__builtin_popcountll(a ^ b), 8);
}

}  // namespace
}  // namespace phifi::fi

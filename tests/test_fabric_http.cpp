// ScrapeServer unit tests: drive the coordinator's single-threaded HTTP
// endpoint with raw client sockets, pumping service() the way the
// coordinator's poll loop does. Covers routing, OpenMetrics content type,
// slow/partial requests, bad methods, and unknown paths.
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "fabric/http.hpp"

namespace phifi::fabric {
namespace {

int connect_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Sends `request` and pumps server.service() until the server closes the
/// connection, returning everything it sent back.
std::string exchange(ScrapeServer& server, int fd,
                     const std::string& request) {
  std::size_t sent = 0;
  std::string response;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sent < request.size()) {
      const ssize_t n =
          ::send(fd, request.data() + sent, request.size() - sent, 0);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    server.service();
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // server closed: response complete
    }
    ::usleep(1000);
  }
  return response;
}

std::string get(ScrapeServer& server, const std::string& path,
                const std::string& method = "GET") {
  const int fd = connect_client(server.port());
  EXPECT_GE(fd, 0);
  const std::string response = exchange(
      server, fd, method + " " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
  ::close(fd);
  return response;
}

TEST(ScrapeServer, EphemeralPortIsResolved) {
  ScrapeServer server("tcp:127.0.0.1:0");
  EXPECT_GT(server.port(), 0);
}

TEST(ScrapeServer, MalformedSpecThrows) {
  EXPECT_THROW(ScrapeServer("nonsense"), std::runtime_error);
  EXPECT_THROW(ScrapeServer("tcp:127.0.0.1:notaport"), std::runtime_error);
}

TEST(ScrapeServer, MetricsRouteServesHandlerWithOpenMetricsType) {
  ScrapeServer server("tcp:127.0.0.1:0");
  server.set_metrics_handler(
      []() { return std::string("phifi_campaign_sdc_total 3\n# EOF\n"); });
  const std::string response = get(server, "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(response.find("phifi_campaign_sdc_total 3"), std::string::npos);
  EXPECT_NE(response.find("# EOF"), std::string::npos);
}

TEST(ScrapeServer, CampaignRouteServesJson) {
  ScrapeServer server("tcp:127.0.0.1:0");
  server.set_campaign_handler(
      []() { return std::string(R"({"sdc":4,"workers":[]})"); });
  const std::string response = get(server, "/campaign.json");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find(R"("sdc":4)"), std::string::npos);
}

TEST(ScrapeServer, HealthzAndErrors) {
  ScrapeServer server("tcp:127.0.0.1:0");
  EXPECT_NE(get(server, "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(get(server, "/nope").find("404"), std::string::npos);
  EXPECT_NE(get(server, "/healthz", "POST").find("405"),
            std::string::npos);
}

TEST(ScrapeServer, MetricsWithoutHandlerStillTerminates) {
  // No handler registered: the route must still answer (an empty,
  // well-formed exposition) rather than hang the scraper.
  ScrapeServer server("tcp:127.0.0.1:0");
  const std::string response = get(server, "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST(ScrapeServer, DribbledRequestIsReassembled) {
  // A request arriving one byte per service() pass (a slow or adversarial
  // client) must neither block the loop nor corrupt the parse.
  ScrapeServer server("tcp:127.0.0.1:0");
  server.set_campaign_handler([]() { return std::string("{}"); });
  const int fd = connect_client(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /campaign.json HTTP/1.1\r\n\r\n";
  for (const char byte : request) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
    server.service();
    ::usleep(500);
  }
  std::string response;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    server.service();
    char buffer[1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    }
    ::usleep(1000);
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST(ScrapeServer, ConcurrentClientsAreAllServed) {
  ScrapeServer server("tcp:127.0.0.1:0");
  server.set_metrics_handler([]() { return std::string("# EOF\n"); });
  const int a = connect_client(server.port());
  const int b = connect_client(server.port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(a, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::send(b, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response_a;
  std::string response_b;
  bool done_a = false;
  bool done_b = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((!done_a || !done_b) &&
         std::chrono::steady_clock::now() < deadline) {
    server.service();
    char buffer[1024];
    ssize_t n = ::recv(a, buffer, sizeof(buffer), 0);
    if (n > 0) response_a.append(buffer, static_cast<std::size_t>(n));
    if (n == 0) done_a = true;
    n = ::recv(b, buffer, sizeof(buffer), 0);
    if (n > 0) response_b.append(buffer, static_cast<std::size_t>(n));
    if (n == 0) done_b = true;
    ::usleep(1000);
  }
  ::close(a);
  ::close(b);
  EXPECT_NE(response_a.find("200 OK"), std::string::npos);
  EXPECT_NE(response_b.find("200 OK"), std::string::npos);
  EXPECT_EQ(server.clients(), 0u);
}

}  // namespace
}  // namespace phifi::fabric

// Concurrency stress tests, written to run under ThreadSanitizer.
//
// These deliberately hammer the three cross-thread surfaces of the
// codebase — the MetricsRegistry (hot-path relaxed atomics behind a
// name-lookup mutex), the SharedChannel heartbeat/phase-log protocol
// (release/acquire publication across what is normally a process
// boundary), and ProgressTracker's concurrent tick path (one-shot hook
// exchange plus the monotone pulse) — so the CI TSan job exercises the
// exact orderings the phicheck atomics policy declares. They also pass as
// plain tests: every assertion is on exact totals or monotone invariants,
// never on racy intermediate reads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/progress.hpp"
#include "core/shared_channel.hpp"
#include "telemetry/metrics.hpp"

namespace {

constexpr int kThreads = 4;
constexpr int kIters = 5000;

TEST(ConcurrencyStressTest, MetricsRegistryCountersAndGauges) {
  phifi::telemetry::MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread get-or-creates the shared counter by name (races on
      // the registry mutex) and its own private counter, interleaved with
      // gauge stores.
      auto& shared = registry.counter("stress.shared");
      auto& mine = registry.counter("stress.t" + std::to_string(t));
      auto& gauge = registry.gauge("stress.gauge");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        mine.inc(2);
        gauge.set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(registry.counter("stress.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("stress.t" + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters) * 2);
  }
  const double g = registry.gauge("stress.gauge").value();
  EXPECT_GE(g, 0.0);
  EXPECT_LE(g, static_cast<double>(kIters - 1));
}

TEST(ConcurrencyStressTest, MetricsRegistryHistogramUnderSnapshot) {
  phifi::telemetry::MetricsRegistry registry;
  std::atomic<bool> done{false};

  // One thread snapshots continuously while the others observe: snapshot()
  // must tolerate concurrent relaxed mutation without torn structure.
  std::thread snapshotter([&registry, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = registry.snapshot();
      (void)snap;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto& h = registry.histogram("stress.latency",
                                   phifi::telemetry::default_latency_edges_ms());
      for (int i = 0; i < kIters; ++i) {
        h.observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const auto* h = registry.find_histogram("stress.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < h->bucket_total(); ++i) {
    bucket_sum += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, h->count());
}

TEST(ConcurrencyStressTest, SharedChannelHeartbeatAndPhaseLog) {
  // In production the writer is the forked child and the reader is the
  // watchdog thread in the parent; same memory, same orderings — threads
  // here make the race visible to TSan.
  phifi::fi::SharedChannel channel(256);
  channel.reset();

  const std::string payload = "stress-output";
  std::atomic<bool> writer_done{false};

  std::thread writer([&channel, &payload, &writer_done] {
    phifi::fi::InjectionRecord record{};
    record.site_index = 7;
    channel.store_record(record);
    for (int i = 0; i < kIters; ++i) {
      channel.beat();
      if (i % 1000 == 0) {
        channel.store_phase("phase", static_cast<double>(i) / kIters, 0.0);
      }
    }
    std::vector<std::byte> bytes(payload.size());
    std::memcpy(bytes.data(), payload.data(), payload.size());
    channel.store_output(bytes);
    writer_done.store(true, std::memory_order_release);
  });

  // Reader polls exactly like the watchdog: heartbeat must be monotone,
  // and record/output flags must only ever go up.
  std::uint64_t last_beat = 0;
  bool saw_record = false;
  while (!writer_done.load(std::memory_order_acquire)) {
    const std::uint64_t beat = channel.heartbeat();
    EXPECT_GE(beat, last_beat);
    last_beat = beat;
    if (channel.record_ready()) saw_record = true;
    (void)channel.phases();
    std::this_thread::yield();
  }
  writer.join();

  EXPECT_TRUE(saw_record || channel.record_ready());
  EXPECT_TRUE(channel.output_ready());
  EXPECT_EQ(channel.heartbeat(), static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(channel.record().site_index, 7u);

  const auto out = channel.output();
  ASSERT_EQ(out.size(), payload.size());
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);

  const auto phases = channel.phases();
  EXPECT_EQ(phases.size(), static_cast<std::size_t>(kIters / 1000));
}

TEST(ConcurrencyStressTest, ParallelSlotChannels) {
  // The multi-worker scheduler gives every slot its own SharedChannel; the
  // parent polls all of them from one thread while N children write. Model
  // that here with one writer thread per channel and a single polling
  // reader, so TSan checks the per-slot publication orderings exactly as
  // the parallel campaign exercises them — no fork involved.
  constexpr int kSlots = 4;
  std::vector<std::unique_ptr<phifi::fi::SharedChannel>> channels;
  channels.reserve(kSlots);
  for (int s = 0; s < kSlots; ++s) {
    channels.push_back(std::make_unique<phifi::fi::SharedChannel>(64));
    channels.back()->reset();
  }

  std::atomic<int> writers_done{0};
  std::vector<std::thread> writers;
  writers.reserve(kSlots);
  for (int s = 0; s < kSlots; ++s) {
    writers.emplace_back([&channels, &writers_done, s] {
      auto& channel = *channels[static_cast<std::size_t>(s)];
      phifi::fi::InjectionRecord record{};
      record.site_index = static_cast<unsigned>(s);
      channel.store_record(record);
      for (int i = 0; i < kIters; ++i) {
        channel.beat();
        if (i % 1000 == 0) {
          channel.store_phase("phase", static_cast<double>(i) / kIters, 0.0);
        }
      }
      const std::byte fill{static_cast<unsigned char>(0x40 + s)};
      std::vector<std::byte> bytes(32, fill);
      channel.store_output(bytes);
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // One reader sweeps every slot per pass, like poll_slots().
  std::vector<std::uint64_t> last_beat(kSlots, 0);
  while (writers_done.load(std::memory_order_acquire) < kSlots) {
    for (int s = 0; s < kSlots; ++s) {
      auto& channel = *channels[static_cast<std::size_t>(s)];
      const std::uint64_t beat = channel.heartbeat();
      EXPECT_GE(beat, last_beat[static_cast<std::size_t>(s)]);
      last_beat[static_cast<std::size_t>(s)] = beat;
      (void)channel.record_ready();
      (void)channel.phases();
    }
    std::this_thread::yield();
  }
  for (auto& th : writers) th.join();

  // Slot isolation: every channel holds exactly its own writer's data.
  for (int s = 0; s < kSlots; ++s) {
    auto& channel = *channels[static_cast<std::size_t>(s)];
    EXPECT_TRUE(channel.output_ready());
    EXPECT_EQ(channel.heartbeat(), static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(channel.record().site_index, static_cast<unsigned>(s));
    const auto out = channel.output();
    ASSERT_EQ(out.size(), 32u);
    EXPECT_EQ(out[0], std::byte{static_cast<unsigned char>(0x40 + s)});
  }
}

TEST(ConcurrencyStressTest, ProgressTrackerConcurrentTicks) {
  phifi::fi::ProgressTracker tracker;
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kIters;
  tracker.reset(total);

  std::atomic<int> hook_fires{0};
  std::atomic<int> pulses{0};
  tracker.arm(0.5, [&hook_fires](double fraction) {
    hook_fires.fetch_add(1, std::memory_order_relaxed);
    EXPECT_GE(fraction, 0.5);
  });
  tracker.set_pulse(
      10, [&pulses] { pulses.fetch_add(1, std::memory_order_relaxed); });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kIters; ++i) tracker.tick();
    });
  }
  for (auto& th : threads) th.join();
  tracker.finish();

  // The one-shot injection hook must fire exactly once no matter how the
  // ticks interleave; the pulse is a liveness signal and only needs to
  // have fired at all.
  EXPECT_EQ(hook_fires.load(std::memory_order_relaxed), 1);
  EXPECT_GE(pulses.load(std::memory_order_relaxed), 1);
  EXPECT_DOUBLE_EQ(tracker.fraction(), 1.0);
  EXPECT_TRUE(tracker.fired());
  EXPECT_TRUE(tracker.finished());
}

}  // namespace

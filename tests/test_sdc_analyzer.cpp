#include "analysis/sdc_analyzer.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/toy_workload.hpp"

namespace phifi::analysis {
namespace {

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

class SdcAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ToyWorkload::reset_run_counter();
    supervisor_ = std::make_unique<fi::TrialSupervisor>(
        &phifi::testing::make_toy_normal, toy_supervisor_config());
    supervisor_->prepare_golden();
  }

  /// A copy of the golden output with `count` elements bumped starting at
  /// flat index `first`, each by `fraction` of its value.
  std::vector<std::byte> corrupted(std::size_t first, std::size_t count,
                                   double fraction) {
    std::vector<std::byte> bytes(supervisor_->golden().begin(),
                                 supervisor_->golden().end());
    auto* values = reinterpret_cast<double*>(bytes.data());
    for (std::size_t i = first; i < first + count; ++i) {
      values[i] = values[i] * (1.0 + fraction) + 1e-6;
    }
    return bytes;
  }

  std::unique_ptr<fi::TrialSupervisor> supervisor_;
};

TEST_F(SdcAnalyzerTest, CountsAndClassifiesSdcs) {
  SdcAnalyzer analyzer(*supervisor_);
  analyzer.inspect(corrupted(5, 1, 0.5));   // single
  analyzer.inspect(corrupted(8, 8, 0.5));   // one full row -> line
  analyzer.inspect(corrupted(0, 64, 0.5));  // everything -> square
  EXPECT_EQ(analyzer.sdc_count(), 3u);
  EXPECT_EQ(analyzer.patterns().count(ErrorPattern::kSingle), 1u);
  EXPECT_EQ(analyzer.patterns().count(ErrorPattern::kLine), 1u);
  EXPECT_EQ(analyzer.patterns().count(ErrorPattern::kSquare), 1u);
  EXPECT_NEAR(analyzer.single_element_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(analyzer.corrupted_elements().mean(), (1 + 8 + 64) / 3.0,
              1e-9);
}

TEST_F(SdcAnalyzerTest, ToleranceFeedsFromMaxRelativeError) {
  SdcAnalyzer analyzer(*supervisor_);
  analyzer.inspect(corrupted(3, 1, 0.004));  // ~0.4% error
  analyzer.inspect(corrupted(9, 1, 0.20));   // 20% error
  EXPECT_EQ(analyzer.tolerance().total_sdc(), 2u);
  EXPECT_EQ(analyzer.tolerance().sdc_at(0.01), 1u);
  EXPECT_EQ(analyzer.tolerance().sdc_at(0.5), 0u);
}

TEST_F(SdcAnalyzerTest, MatchingOutputIgnoredDefensively) {
  SdcAnalyzer analyzer(*supervisor_);
  std::vector<std::byte> clean(supervisor_->golden().begin(),
                               supervisor_->golden().end());
  analyzer.inspect(clean);
  EXPECT_EQ(analyzer.sdc_count(), 0u);
}

TEST_F(SdcAnalyzerTest, ObserverOnlyReactsToSdcTrials) {
  SdcAnalyzer analyzer(*supervisor_);
  auto observer = analyzer.observer();
  fi::TrialResult masked;
  masked.outcome = fi::Outcome::kMasked;
  observer(masked, supervisor_->golden());
  fi::TrialResult due;
  due.outcome = fi::Outcome::kDue;
  observer(due, {});
  EXPECT_EQ(analyzer.sdc_count(), 0u);

  fi::TrialResult sdc;
  sdc.outcome = fi::Outcome::kSdc;
  const auto bytes = corrupted(1, 2, 0.5);
  observer(sdc, bytes);
  EXPECT_EQ(analyzer.sdc_count(), 1u);
}

}  // namespace
}  // namespace phifi::analysis

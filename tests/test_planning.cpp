#include "analysis/planning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace phifi::analysis {
namespace {

TEST(Planning, WorstCaseHalfWidthAtPaperScale) {
  // 10,000 injections: half-width = 1.96 * 0.5 / 100 = 0.98%. The paper's
  // quoted "1.96%" is the looser z/sqrt(n) bound.
  EXPECT_NEAR(worst_case_half_width(10000), 0.0098, 1e-4);
  EXPECT_NEAR(worst_case_half_width(10000) * 2.0, 0.0196, 2e-4);
  EXPECT_EQ(worst_case_half_width(0), 1.0);
}

TEST(Planning, RequiredTrialsInvertsHalfWidth) {
  const std::uint64_t n = required_trials(0.0098);
  EXPECT_NEAR(static_cast<double>(n), 10000.0, 50.0);
  // Round trip: the returned n achieves the requested width.
  EXPECT_LE(worst_case_half_width(n), 0.0098 + 1e-9);
  EXPECT_GT(worst_case_half_width(n - 50), 0.0098);
}

TEST(Planning, RequiredTrialsMonotone) {
  EXPECT_GT(required_trials(0.001), required_trials(0.01));
  EXPECT_GT(required_trials(0.01), required_trials(0.1));
}

TEST(Planning, RequiredErrorsForBeamCampaign) {
  // 10% relative half-width needs (1.96/0.1)^2 ~ 385 errors; with the
  // paper's "more than 100" the interval is ~19.6%.
  EXPECT_NEAR(static_cast<double>(required_errors(0.10)), 385.0, 2.0);
  EXPECT_NEAR(1.96 / std::sqrt(100.0), 0.196, 1e-3);
  EXPECT_EQ(required_errors(1.96 / std::sqrt(100.0)), 100u);
}

TEST(Planning, ChiSquaredPValueKnownPoints) {
  // Critical values: chi2_{0.95}(1) = 3.841, chi2_{0.95}(3) = 7.815.
  EXPECT_NEAR(chi_squared_p_value(3.841, 1), 0.05, 0.01);
  EXPECT_NEAR(chi_squared_p_value(7.815, 3), 0.05, 0.005);
  EXPECT_GT(chi_squared_p_value(0.5, 3), 0.9);
  EXPECT_LT(chi_squared_p_value(30.0, 3), 1e-4);
  EXPECT_EQ(chi_squared_p_value(5.0, 0), 1.0);
  EXPECT_EQ(chi_squared_p_value(0.0, 3), 1.0);
}

TEST(Planning, TwoProportionDetectsRealDifference) {
  // 30% vs 15% with 500 trials each: clearly significant.
  EXPECT_LT(two_proportion_p_value(150, 500, 75, 500), 1e-6);
  // 30% vs 31% with 100 trials each: not significant.
  EXPECT_GT(two_proportion_p_value(30, 100, 31, 100), 0.5);
  EXPECT_EQ(two_proportion_p_value(0, 0, 5, 10), 1.0);
  EXPECT_EQ(two_proportion_p_value(0, 10, 0, 10), 1.0);
}

TEST(Planning, TwoProportionCalibratedUnderNull) {
  // Under the null (equal p), p-values should be uniform-ish: roughly 5%
  // of experiments land below 0.05.
  util::Rng rng(41);
  int significant = 0;
  constexpr int kExperiments = 2000;
  for (int e = 0; e < kExperiments; ++e) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    for (int i = 0; i < 300; ++i) {
      a += rng.bernoulli(0.25);
      b += rng.bernoulli(0.25);
    }
    significant += two_proportion_p_value(a, 300, b, 300) < 0.05;
  }
  EXPECT_NEAR(significant, kExperiments * 0.05, kExperiments * 0.025);
}

}  // namespace
}  // namespace phifi::analysis

#include "core/campaign_journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace phifi::fi {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

JournalHeader sample_header() {
  JournalHeader header;
  header.fingerprint = 0x1122334455667788ULL;
  header.time_windows = 4;
  header.workload = "Toy";
  header.golden_digest = 0xfeedfacecafef00dULL;
  header.golden_seconds = 0.375;
  header.golden_output_bytes = 512;
  return header;
}

/// A TrialResult with every serialized field set to a distinctive value.
TrialResult sample_trial(int i) {
  TrialResult trial;
  trial.outcome = i % 3 == 0   ? Outcome::kMasked
                  : i % 3 == 1 ? Outcome::kSdc
                               : Outcome::kDue;
  trial.due_kind = trial.outcome == Outcome::kDue ? DueKind::kRlimit
                                                  : DueKind::kNone;
  trial.window = static_cast<unsigned>(i % 4);
  trial.seconds = 0.125 * (i + 1);
  trial.heartbeats = 16u + static_cast<unsigned>(i);
  trial.escalated_kill = (i % 2) == 1;
  trial.record.injected = true;
  trial.record.changed = true;
  trial.record.model = FaultModel::kDouble;
  trial.record.frame = FrameKind::kWorker;
  trial.record.worker = i;
  trial.record.site_index = 3u + static_cast<unsigned>(i);
  trial.record.element_index = 40u + static_cast<unsigned>(i);
  trial.record.burst_elements = 2;
  trial.record.flipped_bits[0] = 0xdeadbeefULL + i;
  trial.record.flipped_bits[1] = 7;
  trial.record.flipped_count = 2;
  trial.record.progress_fraction = 0.25 + 0.01 * i;
  std::snprintf(trial.record.site_name, sizeof trial.record.site_name,
                "site_%d", i);
  std::snprintf(trial.record.category, sizeof trial.record.category, "data");
  return trial;
}

void expect_trial_eq(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.due_kind, b.due_kind);
  EXPECT_EQ(a.window, b.window);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.escalated_kill, b.escalated_kill);
  EXPECT_EQ(a.record.injected, b.record.injected);
  EXPECT_EQ(a.record.changed, b.record.changed);
  EXPECT_EQ(a.record.model, b.record.model);
  EXPECT_EQ(a.record.frame, b.record.frame);
  EXPECT_EQ(a.record.worker, b.record.worker);
  EXPECT_EQ(a.record.site_index, b.record.site_index);
  EXPECT_EQ(a.record.element_index, b.record.element_index);
  EXPECT_EQ(a.record.burst_elements, b.record.burst_elements);
  EXPECT_EQ(a.record.flipped_bits[0], b.record.flipped_bits[0]);
  EXPECT_EQ(a.record.flipped_bits[1], b.record.flipped_bits[1]);
  EXPECT_EQ(a.record.flipped_count, b.record.flipped_count);
  EXPECT_DOUBLE_EQ(a.record.progress_fraction, b.record.progress_fraction);
  EXPECT_STREQ(a.record.site_name, b.record.site_name);
  EXPECT_STREQ(a.record.category, b.record.category);
}

/// Writes a journal with `count` sample records and returns its path.
std::string write_sample_journal(const std::string& name, int count) {
  const std::string path = temp_path(name);
  fs::remove(path);
  CampaignJournalWriter writer(path, sample_header(),
                               JournalFsync::kOnClose);
  for (int i = 0; i < count; ++i) {
    JournalRecord record;
    record.attempt_index = static_cast<std::uint64_t>(i);
    record.trial = sample_trial(i);
    writer.append(record);
  }
  writer.sync();
  return path;
}

void flip_byte_at(const std::string& path, std::uint64_t offset) {
  std::fstream stream(path,
                      std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(stream);
  stream.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  stream.read(&byte, 1);
  byte ^= 0x40;
  stream.seekp(static_cast<std::streamoff>(offset));
  stream.write(&byte, 1);
}

TEST(CampaignJournal, Crc32MatchesKnownVector) {
  // The canonical CRC-32/IEEE check value for "123456789".
  EXPECT_EQ(journal_crc32("123456789", 9), 0xcbf43926u);
}

TEST(CampaignJournal, RoundTripsHeaderAndRecords) {
  const std::string path = write_sample_journal("roundtrip.jnl", 3);
  const JournalContents contents = read_journal(path);
  EXPECT_EQ(contents.header.fingerprint, sample_header().fingerprint);
  EXPECT_EQ(contents.header.time_windows, 4u);
  EXPECT_EQ(contents.header.workload, "Toy");
  EXPECT_EQ(contents.header.golden_digest, sample_header().golden_digest);
  EXPECT_DOUBLE_EQ(contents.header.golden_seconds,
                   sample_header().golden_seconds);
  EXPECT_EQ(contents.header.golden_output_bytes,
            sample_header().golden_output_bytes);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  EXPECT_EQ(contents.valid_bytes, fs::file_size(path));
  ASSERT_EQ(contents.records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(contents.records[i].attempt_index,
              static_cast<std::uint64_t>(i));
    expect_trial_eq(contents.records[i].trial, sample_trial(i));
  }
}

TEST(CampaignJournal, BatchFsyncSyncsEveryKRecordsAndOnSync) {
  const std::string path = temp_path("batch.jnl");
  fs::remove(path);
  JournalBatchPolicy batch;
  batch.max_records = 3;
  batch.max_delay_ms = 1e9;  // count-triggered only in this test
  CampaignJournalWriter writer(path, sample_header(), JournalFsync::kBatch,
                               batch);
  JournalRecord record;
  record.trial = sample_trial(0);

  record.attempt_index = 0;
  writer.append(record);
  record.attempt_index = 1;
  writer.append(record);
  EXPECT_EQ(writer.unsynced(), 2u);  // below the batch size: not yet synced
  record.attempt_index = 2;
  writer.append(record);
  EXPECT_EQ(writer.unsynced(), 0u);  // third append triggered the fsync

  record.attempt_index = 3;
  writer.append(record);
  EXPECT_EQ(writer.unsynced(), 1u);
  writer.sync();  // the interrupt/stop path forces the partial batch out
  EXPECT_EQ(writer.unsynced(), 0u);

  // Whatever the fsync cadence, the byte stream is the same journal.
  const JournalContents contents = read_journal(path);
  ASSERT_EQ(contents.records.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(contents.records[i].attempt_index, i);
  }
}

TEST(CampaignJournal, TruncatedTailIsDroppedNotFatal) {
  const std::string path = write_sample_journal("truncated.jnl", 3);
  // Chop mid-way into the last record: the torn write of a crash.
  fs::resize_file(path, fs::file_size(path) - 5);
  const JournalContents contents = read_journal(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_GT(contents.dropped_bytes, 0u);
  EXPECT_EQ(contents.valid_bytes + contents.dropped_bytes,
            fs::file_size(path));
  expect_trial_eq(contents.records[1].trial, sample_trial(1));
}

TEST(CampaignJournal, CorruptedChecksumTailIsDropped) {
  // Find the byte range of the last record by diffing valid_bytes before
  // and after appending it.
  const std::string path = write_sample_journal("corrupt.jnl", 2);
  const std::uint64_t two_records = read_journal(path).valid_bytes;
  {
    CampaignJournalWriter writer(path, two_records, JournalFsync::kOnClose);
    JournalRecord record;
    record.attempt_index = 2;
    record.trial = sample_trial(2);
    writer.append(record);
  }
  ASSERT_EQ(read_journal(path).records.size(), 3u);

  // Flip a payload byte of the last record; its CRC no longer matches.
  flip_byte_at(path, two_records + 4 + 8);
  const JournalContents contents = read_journal(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_GT(contents.dropped_bytes, 0u);
  EXPECT_EQ(contents.valid_bytes, two_records);
}

TEST(CampaignJournal, AppendAfterTornTailTruncatesIt) {
  const std::string path = write_sample_journal("reappend.jnl", 3);
  fs::resize_file(path, fs::file_size(path) - 5);
  const JournalContents before = read_journal(path);
  ASSERT_EQ(before.records.size(), 2u);

  // Reopen for append at the last valid offset, as a resume does.
  {
    CampaignJournalWriter writer(path, before.valid_bytes,
                                 JournalFsync::kEveryRecord);
    JournalRecord record;
    record.attempt_index = 7;
    record.trial = sample_trial(7);
    writer.append(record);
  }
  const JournalContents after = read_journal(path);
  EXPECT_EQ(after.dropped_bytes, 0u);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.records[2].attempt_index, 7u);
  expect_trial_eq(after.records[2].trial, sample_trial(7));
}

TEST(CampaignJournal, MissingFileThrows) {
  EXPECT_THROW(read_journal(temp_path("does_not_exist.jnl")),
               std::runtime_error);
}

TEST(CampaignJournal, BadMagicThrows) {
  const std::string path = temp_path("badmagic.jnl");
  {
    std::ofstream stream(path, std::ios::binary | std::ios::trunc);
    stream << "NOTAJRNL and then some bytes";
  }
  EXPECT_THROW(read_journal(path), std::runtime_error);
}

TEST(CampaignJournal, CorruptHeaderThrows) {
  const std::string path = write_sample_journal("badheader.jnl", 1);
  // Flip a byte inside the header payload (magic is 8 bytes, then the
  // u32 size, then the payload).
  flip_byte_at(path, 8 + 4 + 2);
  EXPECT_THROW(read_journal(path), std::runtime_error);
}

TEST(CampaignJournal, FingerprintCoversResumeCriticalFields) {
  CampaignConfig config;
  const std::uint64_t base = campaign_fingerprint(config, "Toy", 4);
  EXPECT_EQ(campaign_fingerprint(config, "Toy", 4), base);

  CampaignConfig other = config;
  other.seed ^= 1;
  EXPECT_NE(campaign_fingerprint(other, "Toy", 4), base);

  other = config;
  other.trials += 1;
  EXPECT_NE(campaign_fingerprint(other, "Toy", 4), base);

  other = config;
  other.models.pop_back();
  EXPECT_NE(campaign_fingerprint(other, "Toy", 4), base);

  other = config;
  other.latest_fraction = 0.5;
  EXPECT_NE(campaign_fingerprint(other, "Toy", 4), base);

  EXPECT_NE(campaign_fingerprint(config, "DGEMM", 4), base);
  EXPECT_NE(campaign_fingerprint(config, "Toy", 8), base);
}

}  // namespace
}  // namespace phifi::fi

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace phifi::util::json {
namespace {

TEST(Json, BuildAndDumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(nullptr).dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersStayExact) {
  // Campaign counters are uint64 but well below 2^53; their JSON round
  // trip must be exact and must not grow a ".0" suffix.
  EXPECT_EQ(Value(std::uint64_t{90000}).dump(), "90000");
  const Value parsed = parse("123456789012345");
  EXPECT_EQ(parsed.as_int(), 123456789012345LL);
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  const Value parsed = parse("\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(parsed.as_string(), "a\"b\\c\n");
}

TEST(Json, ObjectAndArrayRoundTrip) {
  Value root = Value::object();
  root["name"] = "trial";
  root["count"] = 3;
  Value spans = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value span = Value::object();
    span["t0"] = i * 1.5;
    spans.push_back(std::move(span));
  }
  root["spans"] = std::move(spans);

  const Value reparsed = parse(root.dump());
  EXPECT_EQ(reparsed.string_or("name", ""), "trial");
  EXPECT_EQ(reparsed.number_or("count", 0.0), 3.0);
  const Value* arr = reparsed.find("spans");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->size(), 3u);
  EXPECT_DOUBLE_EQ(arr->as_array()[2].number_or("t0", -1.0), 3.0);
}

TEST(Json, KeyOrderIsDeterministic) {
  Value a = Value::object();
  a["zeta"] = 1;
  a["alpha"] = 2;
  Value b = Value::object();
  b["alpha"] = 2;
  b["zeta"] = 1;
  EXPECT_EQ(a.dump(), b.dump());  // std::map ordering
}

TEST(Json, LookupFallbacks) {
  const Value v = parse(R"({"x": 1, "s": "str", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("x", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "d"), "str");
  EXPECT_EQ(v.string_or("missing", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("missing", false));
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(parse("'single'"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("nul"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse("[1, 2]");
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_NO_THROW((void)v.as_array());
}

TEST(Json, NestedParse) {
  const Value v = parse(
      R"({"outer": {"inner": [{"deep": [1, [2, {"x": null}]]}]}})");
  const Value* outer = v.find("outer");
  ASSERT_NE(outer, nullptr);
  const Value* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->size(), 1u);
}

}  // namespace
}  // namespace phifi::util::json

// Trial latency anatomy profiler: the fold must be exact (a fleet of
// worker snapshots folded in any grouping equals the jobs=1 accumulation
// bit for bit), the disabled path must stay free, the NDJSON stream must
// survive torn tails, and every execution path — legacy cold-start and
// the fork-server fast path — must feed all eight phases per trial.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "fabric/stats.hpp"
#include "telemetry/profiler.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::telemetry {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

TEST(ProfilerBuckets, IndexMapsLog2Ranges) {
  // Bucket 0 holds exactly 0 us; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(profile_bucket_index(0), 0u);
  EXPECT_EQ(profile_bucket_index(1), 1u);
  EXPECT_EQ(profile_bucket_index(2), 2u);
  EXPECT_EQ(profile_bucket_index(3), 2u);
  EXPECT_EQ(profile_bucket_index(4), 3u);
  EXPECT_EQ(profile_bucket_index(7), 3u);
  EXPECT_EQ(profile_bucket_index(8), 4u);
  EXPECT_EQ(profile_bucket_index(1023), 10u);
  EXPECT_EQ(profile_bucket_index(1024), 11u);
  // Everything at or past 2^47 lands in the final catch-all bucket.
  EXPECT_EQ(profile_bucket_index(std::uint64_t{1} << 47),
            kProfileBuckets - 1);
  EXPECT_EQ(profile_bucket_index(~std::uint64_t{0}), kProfileBuckets - 1);
}

TEST(ProfilerBuckets, EdgeIsInclusiveUpperBoundOfItsRange) {
  EXPECT_EQ(profile_bucket_edge_us(0), 0u);
  EXPECT_EQ(profile_bucket_edge_us(1), 1u);
  EXPECT_EQ(profile_bucket_edge_us(2), 3u);
  EXPECT_EQ(profile_bucket_edge_us(10), 1023u);
  // Every representable duration sits at or below its bucket's edge.
  for (const std::uint64_t us : {1ull, 2ull, 3ull, 100ull, 999ull, 4096ull,
                                 123456789ull}) {
    EXPECT_LE(us, profile_bucket_edge_us(profile_bucket_index(us))) << us;
  }
}

TEST(ProfilerBuckets, PercentilesMatchHandComputedRanks) {
  ProfilePhaseHist hist;
  EXPECT_EQ(profile_percentile_ms(hist, 50), 0.0);  // empty: no data

  // 90 observations in bucket 10 ([512, 1024) us), 10 in bucket 14
  // ([8192, 16384) us). p50 rank = 50 -> bucket 10; p95 rank = 95 ->
  // bucket 14; p99 -> bucket 14.
  for (int i = 0; i < 90; ++i) hist.observe(600);
  for (int i = 0; i < 10; ++i) hist.observe(9000);
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 50), 1023 / 1000.0);
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 95), 16383 / 1000.0);
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 99), 16383 / 1000.0);
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 100), 16383 / 1000.0);
  EXPECT_NEAR(hist.mean_ms(), (90 * 600 + 10 * 9000) / (100 * 1000.0),
              1e-12);
}

TEST(ProfilerBuckets, PercentileRankCeilingOnSmallCounts) {
  ProfilePhaseHist hist;
  hist.observe(0);
  hist.observe(1000000);  // bucket 20
  // p50 of 2 observations: rank = ceil(2*50/100) = 1 -> first bucket.
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 50), 0.0);
  EXPECT_DOUBLE_EQ(profile_percentile_ms(hist, 51), 1048575 / 1000.0);
}

// The acceptance property: shard a synthetic campaign across N "workers"
// at random, fold the per-worker snapshots in shuffled order (and in
// arbitrary pairings), and land bit-identically on the jobs=1 reference.
TEST(ProfilerFold, RandomShardingFoldsBitIdenticalToSequential) {
  std::mt19937_64 rng(0xf01df01dULL);
  for (int round = 0; round < 20; ++round) {
    const std::size_t trials = 1 + rng() % 400;
    const std::size_t workers = 1 + rng() % 8;

    ProfileSnapshot reference;
    std::vector<ProfileSnapshot> shards(workers);
    for (std::size_t t = 0; t < trials; ++t) {
      TrialProfile profile;
      for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
        // Mix zeros, small, and huge durations across the bucket range.
        profile.phase_us[p] = (rng() % 4 == 0) ? 0 : rng() % (1ull << 40);
      }
      const std::size_t worker = rng() % workers;
      for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
        reference.phases[p].observe(profile.phase_us[p]);
        shards[worker].phases[p].observe(profile.phase_us[p]);
      }
    }

    // Fold the shards in a shuffled order...
    std::shuffle(shards.begin(), shards.end(), rng);
    ProfileSnapshot linear;
    for (const ProfileSnapshot& shard : shards) linear.fold(shard);
    EXPECT_EQ(linear, reference) << "round " << round;

    // ...and pairwise-tree folded (associativity), through the JSON wire
    // codec each worker would ship its snapshot over (codec exactness).
    std::vector<ProfileSnapshot> level;
    level.reserve(shards.size());
    for (const ProfileSnapshot& shard : shards) {
      level.push_back(profile_snapshot_from_json(
          profile_snapshot_to_json(shard)));
    }
    while (level.size() > 1) {
      std::vector<ProfileSnapshot> next;
      for (std::size_t i = 0; i < level.size(); i += 2) {
        ProfileSnapshot merged = level[i];
        if (i + 1 < level.size()) merged.fold(level[i + 1]);
        next.push_back(merged);
      }
      level = std::move(next);
    }
    EXPECT_EQ(level.front(), reference) << "round " << round;
    EXPECT_EQ(level.front().trials(), reference.phase(ProfilePhase::kRun)
                                          .count);
  }
}

TEST(Profiler, DefaultConstructedAccumulatesWithoutAFile) {
  TrialProfiler profiler;
  EXPECT_FALSE(profiler.writing());
  TrialProfile profile;
  profile.us(ProfilePhase::kRun) = 1500;
  profiler.trial(profile);
  profiler.trial(profile);
  profiler.sync();  // no-op without a file
  EXPECT_EQ(profiler.records_written(), 0u);
  EXPECT_EQ(profiler.snapshot().trials(), 2u);
  EXPECT_EQ(profiler.snapshot().phase(ProfilePhase::kRun).sum_us, 3000u);
}

TEST(Profiler, NdjsonRoundTripPreservesEveryField) {
  const std::string path = temp_path("profiler_roundtrip.ndjson");
  fs::remove(path);
  {
    TrialProfiler profiler(path);
    ASSERT_TRUE(profiler.writing());
    profiler.set_workload("toy");
    for (std::uint64_t attempt = 0; attempt < 5; ++attempt) {
      TrialProfile profile;
      profile.attempt = attempt;
      profile.fork_mode = attempt % 2 == 0 ? "warm" : "template";
      for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
        profile.phase_us[p] = attempt * 1000 + p;
      }
      profiler.trial(profile);
    }
    EXPECT_EQ(profiler.records_written(), 5u);
    profiler.sync();
  }
  const ProfileContents contents = read_profile_file(path);
  EXPECT_EQ(contents.dropped_bytes, 0u);
  ASSERT_EQ(contents.trials.size(), 5u);
  for (std::uint64_t attempt = 0; attempt < 5; ++attempt) {
    const TrialProfile& trial = contents.trials[attempt];
    EXPECT_EQ(trial.attempt, attempt);
    EXPECT_EQ(trial.workload, "toy");  // stamped by set_workload
    EXPECT_EQ(trial.fork_mode, attempt % 2 == 0 ? "warm" : "template");
    for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
      EXPECT_EQ(trial.phase_us[p], attempt * 1000 + p);
    }
  }
}

TEST(Profiler, AppendModeKeepsResumedHistory) {
  const std::string path = temp_path("profiler_append.ndjson");
  fs::remove(path);
  {
    TrialProfiler first(path);
    TrialProfile profile;
    profile.attempt = 0;
    first.trial(profile);
  }
  {
    TrialProfiler resumed(path, /*truncate=*/false);
    TrialProfile profile;
    profile.attempt = 1;
    resumed.trial(profile);
  }
  const ProfileContents contents = read_profile_file(path);
  ASSERT_EQ(contents.trials.size(), 2u);
  EXPECT_EQ(contents.trials[0].attempt, 0u);
  EXPECT_EQ(contents.trials[1].attempt, 1u);
}

TEST(Profiler, TornTailIsDroppedNotParsed) {
  std::stringstream stream;
  TrialProfile profile;
  profile.attempt = 7;
  profile.workload = "toy";
  stream << trial_profile_to_json(profile).dump() << "\n";
  const std::string torn = R"({"type":"profile","attempt":8,"wor)";
  stream << torn;  // crash mid-write: no trailing newline
  const ProfileContents contents = read_profile(stream);
  ASSERT_EQ(contents.trials.size(), 1u);
  EXPECT_EQ(contents.trials[0].attempt, 7u);
  EXPECT_EQ(contents.dropped_bytes, torn.size());
}

TEST(Profiler, UnknownRecordTypesAreSkipped) {
  std::stringstream stream;
  stream << R"({"type":"trace","attempt":0})" << "\n";
  TrialProfile profile;
  profile.attempt = 3;
  stream << trial_profile_to_json(profile).dump() << "\n";
  const ProfileContents contents = read_profile(stream);
  ASSERT_EQ(contents.trials.size(), 1u);
  EXPECT_EQ(contents.trials[0].attempt, 3u);
  EXPECT_EQ(contents.dropped_bytes, 0u);
}

TEST(ProfilerWire, WorkerStatsCarryTheSnapshotExactly) {
  fabric::WorkerStats stats;
  stats.executed = 42;
  TrialProfile profile;
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    profile.phase_us[p] = 1000 * (p + 1);
  }
  TrialProfiler profiler;
  profiler.trial(profile);
  profiler.trial(profile);
  stats.profile = profiler.snapshot();

  const fabric::WorkerStats decoded =
      fabric::decode_stats(fabric::encode_stats(stats));
  EXPECT_EQ(decoded.executed, 42u);
  EXPECT_EQ(decoded.profile, stats.profile);
  EXPECT_EQ(decoded.profile.trials(), 2u);
}

TEST(ProfilerWire, StatsWithoutProfileDecodeEmpty) {
  fabric::WorkerStats stats;
  stats.executed = 1;
  const fabric::WorkerStats decoded =
      fabric::decode_stats(fabric::encode_stats(stats));
  EXPECT_EQ(decoded.profile.trials(), 0u);
  EXPECT_EQ(decoded.profile, ProfileSnapshot{});
}

// Both execution paths — legacy cold-start and the fork-server fast path
// — must commit one observation per phase per trial, with the right
// fork_mode stamped on every NDJSON record.
class ProfilerCampaignTest : public ::testing::Test {
 protected:
  fi::CampaignResult run_with_profiler(bool fast, unsigned jobs,
                                       TrialProfiler& profiler) {
    phifi::testing::ToyWorkload::reset_run_counter();
    fi::SupervisorConfig supervisor_config =
        phifi::testing::toy_supervisor_config();
    supervisor_config.trial_fast_path = fast;
    fi::TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                                   supervisor_config);
    supervisor.prepare_golden();
    fi::CampaignConfig config;
    config.trials = 10;
    config.seed = 0xbeefULL;
    config.jobs = jobs;
    config.profiler = &profiler;
    fi::Campaign campaign(supervisor, config);
    return campaign.run(nullptr);
  }
};

TEST_F(ProfilerCampaignTest, LegacyPathFeedsEveryPhaseEveryTrial) {
  const std::string path = temp_path("profiler_legacy.ndjson");
  fs::remove(path);
  TrialProfiler profiler(path);
  const fi::CampaignResult result = run_with_profiler(false, 1, profiler);
  profiler.sync();
  EXPECT_EQ(result.attempts, 10u);

  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.trials(), 10u);
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    EXPECT_EQ(snapshot.phases[p].count, 10u)
        << to_string(static_cast<ProfilePhase>(p));
  }
  // Wall-clock phases really measured something: a run of 10 forked
  // trials cannot take zero total fork or run time.
  EXPECT_GT(snapshot.phase(ProfilePhase::kFork).sum_us, 0u);
  EXPECT_GT(snapshot.phase(ProfilePhase::kRun).sum_us, 0u);

  const ProfileContents contents = read_profile_file(path);
  ASSERT_EQ(contents.trials.size(), 10u);
  for (const TrialProfile& trial : contents.trials) {
    EXPECT_EQ(trial.fork_mode, "legacy");
  }
  // Attempts committed in deterministic order, once each.
  for (std::uint64_t i = 0; i < contents.trials.size(); ++i) {
    EXPECT_EQ(contents.trials[i].attempt, i);
  }
}

TEST_F(ProfilerCampaignTest, FastPathFeedsEveryPhaseAndMatchesLegacyCount) {
  const std::string path = temp_path("profiler_fast.ndjson");
  fs::remove(path);
  TrialProfiler profiler(path);
  const fi::CampaignResult result = run_with_profiler(true, 2, profiler);
  profiler.sync();
  EXPECT_EQ(result.attempts, 10u);

  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.trials(), 10u);
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    EXPECT_EQ(snapshot.phases[p].count, 10u)
        << to_string(static_cast<ProfilePhase>(p));
  }

  const ProfileContents contents = read_profile_file(path);
  ASSERT_EQ(contents.trials.size(), 10u);
  for (const TrialProfile& trial : contents.trials) {
    EXPECT_EQ(trial.fork_mode, "warm");  // resettable toy resolves warm
  }
}

}  // namespace
}  // namespace phifi::telemetry

// Self-test for the phicheck static analyzer: runs the real binary over
// fixture translation units seeded with known violations and asserts the
// golden diagnostics, then checks the clean fixture and the shm assert
// emission over the real src/ tree.
//
// The fixture files under tests/phicheck_fixtures/ are scan targets only —
// they are never compiled into any test binary.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef PHICHECK_BIN
#error "PHICHECK_BIN must be defined to the phicheck executable path"
#endif
#ifndef PHICHECK_FIXTURES
#error "PHICHECK_FIXTURES must be defined to the fixture directory"
#endif
#ifndef PHICHECK_DATA
#error "PHICHECK_DATA must be defined to the tools/phicheck data directory"
#endif
#ifndef PHICHECK_SRC
#error "PHICHECK_SRC must be defined to the repo src/ directory"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_phicheck(const std::string& args) {
  RunResult result;
  const std::string cmd = std::string(PHICHECK_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

std::string fixture_args() {
  return std::string("--root ") + PHICHECK_FIXTURES + " --allowlist " +
         PHICHECK_DATA + "/signal_allowlist.txt --policy " +
         PHICHECK_FIXTURES + "/fixtures_policy.txt --ndjson-schema " +
         PHICHECK_FIXTURES + "/fixtures_ndjson_schema.txt";
}

}  // namespace

TEST(PhicheckTest, FixtureScanFindsAllSeededViolations) {
  const RunResult r = run_phicheck(fixture_args());
  ASSERT_EQ(r.exit_code, 1) << r.output;

  // Signal-safety: direct call and call through a helper in the call graph.
  EXPECT_NE(r.output.find("signal_unsafe.cpp:13: [signal-safety] call to "
                          "'printf'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("via on_signal -> helper"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("signal_unsafe.cpp:19: [signal-safety] call to "
                          "'malloc'"),
            std::string::npos)
      << r.output;

  // Fork-safety: stdio and heap before the workload entry marker, plus a
  // child branch calling an unannotated function.
  EXPECT_NE(r.output.find("fork_unsafe.cpp:13: [fork-safety] call to "
                          "'printf'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("fork_unsafe.cpp:14: [fork-safety] heap allocation"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fork_unsafe.cpp:32: [fork-safety] child branch "
                          "of fork() calls 'run_workload'"),
            std::string::npos)
      << r.output;

  // Double-fork (fork-server) topology: a grandchild branch that falls
  // through past its entry call, and one with no terminating call at all.
  EXPECT_NE(r.output.find("double_fork_bad.cpp:21: [fork-safety] "
                          "fork-server 'bad_template_loop' forks a "
                          "grandchild whose branch can fall through"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("double_fork_bad.cpp:33: [fork-safety] "
                          "fork-server 'silent_template_loop' forks a "
                          "grandchild whose branch can fall through"),
            std::string::npos)
      << r.output;

  // Shm-POD: allocating member, raw pointer member, missing size pin.
  EXPECT_NE(r.output.find("shm_nonpod.cpp:10: [shm-pod] member 'label'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("shm_nonpod.cpp:11: [shm-pod] pointer member 'bytes'"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("shm_nonpod.cpp:16: [shm-pod] shm-pod "
                          "'fixture::MissingPin' is missing a size= pin"),
            std::string::npos)
      << r.output;

  // Atomics: order violating policy, implicit seq_cst, undeclared atomic.
  EXPECT_NE(r.output.find("atomics_mismatch.cpp:11: [atomics] memory_order "
                          "'relaxed' on 'g_ready.load'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("atomics_mismatch.cpp:13: [atomics] memory_order "
                          "'implicit' on 'g_ready.store'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("atomics_mismatch.cpp:15: [atomics] atomic op "
                          "'g_undeclared.fetch_add' has no declared policy"),
            std::string::npos)
      << r.output;

  // Poll-loop: blocking call direct from the root and through a helper.
  EXPECT_NE(r.output.find("pollblock_bad.cpp:17: [poll-loop] blocking call "
                          "'usleep' reachable from poll loop "
                          "(bad_event_loop -> usleep)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("pollblock_bad.cpp:11: [poll-loop] blocking call "
                          "'nanosleep' reachable from poll loop "
                          "(bad_event_loop -> pollblock_drain -> nanosleep)"),
            std::string::npos)
      << r.output;

  // EINTR discipline: raw syscall outside any annotated helper.
  EXPECT_NE(r.output.find("eintr_unguarded.cpp:9: [eintr] direct call to "
                          "interruptible 'read' in 'drain_fd' outside an "
                          "eintr-helper"),
            std::string::npos)
      << r.output;

  // Durability order: send precedes the matching append.
  EXPECT_NE(r.output.find("durability_bad.cpp:13: [durability] "
                          "wire-after(fixture-bad) is not dominated by "
                          "durable-before(fixture-bad)"),
            std::string::npos)
      << r.output;

  // Enum-switch: a default swallowing an enumerator.
  EXPECT_NE(r.output.find("switch_nonexhaustive.cpp:13: [enum-switch] switch "
                          "over 'Phase' in 'bad_dispatch' does not name "
                          "enumerator(s): kDrain"),
            std::string::npos)
      << r.output;

  // NDJSON schema: one undeclared field written, one required field missing.
  EXPECT_NE(r.output.find("ndjson_drift.cpp:11: [ndjson-schema] "
                          "'drifting_writer' writes field 'gamma' not "
                          "declared for family 'fixture.sample'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("ndjson_drift.cpp:11: [ndjson-schema] "
                          "'drifting_writer' does not write required field "
                          "'beta' of family 'fixture.sample'"),
            std::string::npos)
      << r.output;

  EXPECT_NE(r.output.find("phicheck: 20 finding(s)"), std::string::npos)
      << r.output;
}

TEST(PhicheckTest, JsonReportCarriesFindings) {
  const RunResult r = run_phicheck(fixture_args() + " --json -");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"checker\": \"poll-loop\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"checker\": \"durability\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"files_scanned\""), std::string::npos) << r.output;
}

TEST(PhicheckTest, CleanFixtureProducesNoFindings) {
  const std::string args = std::string("--root ") + PHICHECK_FIXTURES +
                           "/clean.cpp --allowlist " + PHICHECK_DATA +
                           "/signal_allowlist.txt --policy " +
                           PHICHECK_FIXTURES + "/fixtures_policy.txt" +
                           " --ndjson-schema " + PHICHECK_FIXTURES +
                           "/fixtures_ndjson_schema.txt";
  const RunResult r = run_phicheck(args);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("phicheck: OK"), std::string::npos) << r.output;
}

TEST(PhicheckTest, RealSourcesScanClean) {
  // The CI gate in another form: the product tree must stay checker-clean.
  const std::string args = std::string("--root ") + PHICHECK_SRC +
                           " --allowlist " + PHICHECK_DATA +
                           "/signal_allowlist.txt --policy " + PHICHECK_DATA +
                           "/atomics_policy.txt --ndjson-schema " +
                           PHICHECK_DATA + "/ndjson_schema.txt";
  const RunResult r = run_phicheck(args);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(PhicheckTest, SchemaDriftFailsTheGate) {
  // Deleting a declared field from the spec must fail the ndjson gate (and
  // therefore the build step that emits the Python table).
  std::ifstream in(std::string(PHICHECK_DATA) + "/ndjson_schema.txt");
  ASSERT_TRUE(in.good());
  const std::string drifted = ::testing::TempDir() + "drifted_schema.txt";
  {
    std::ofstream out(drifted);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("elapsed_ms") != std::string::npos) continue;
      out << line << "\n";
    }
  }
  const std::string args = std::string("--check ndjson --root ") +
                           PHICHECK_SRC + "/telemetry/trace.cpp" +
                           " --ndjson-schema " + drifted;
  const RunResult r = run_phicheck(args);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("writes field 'elapsed_ms' not declared for "
                          "family 'trace.end'"),
            std::string::npos)
      << r.output;
  std::remove(drifted.c_str());
}

TEST(PhicheckTest, ShmAssertEmissionCoversRealSharedStructs) {
  const std::string args = std::string("--root ") + PHICHECK_SRC +
                           " --check shm --emit-shm-asserts -";
  const RunResult r = run_phicheck(args);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(
                "static_assert(sizeof(phifi::fi::PhaseRecord) == 40"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "static_assert(sizeof(phifi::fi::InjectionRecord) == 152"),
            std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("static_assert(sizeof(phifi::fi::ShmHeader) == 1568"),
      std::string::npos)
      << r.output;
  EXPECT_NE(
      r.output.find("std::is_trivially_copyable_v<phifi::fi::PhaseRecord>"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("is_always_lock_free"), std::string::npos)
      << r.output;
}

TEST(PhicheckTest, UnknownFlagReportsUsage) {
  const RunResult r = run_phicheck("--no-such-flag");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// End-to-end integration: the full supervisor/campaign stack against each
// real benchmark, and the burst-injection path used by the beam simulator.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/sdc_analyzer.hpp"
#include "core/campaign.hpp"
#include "workloads/registry.hpp"

namespace phifi {
namespace {

fi::SupervisorConfig integration_config() {
  fi::SupervisorConfig config;
  config.device_os_threads = 1;
  config.min_timeout_seconds = 1.0;
  config.timeout_factor = 40.0;
  return config;
}

class WorkloadCampaignTest
    : public ::testing::TestWithParam<work::WorkloadInfo> {};

TEST_P(WorkloadCampaignTest, CleanForkedTrialIsMasked) {
  fi::TrialSupervisor supervisor(GetParam().factory, integration_config());
  supervisor.prepare_golden();
  const fi::TrialResult result = supervisor.run_clean_trial();
  EXPECT_EQ(result.outcome, fi::Outcome::kMasked)
      << "clean child run of " << GetParam().name
      << " should reproduce the golden output bit-exactly";
}

TEST_P(WorkloadCampaignTest, SmallCampaignBehavesSanely) {
  fi::TrialSupervisor supervisor(GetParam().factory, integration_config());
  supervisor.prepare_golden();
  fi::CampaignConfig config;
  config.trials = 40;
  config.seed = 0x1d7e57;
  analysis::SdcAnalyzer analyzer(supervisor);
  const fi::CampaignResult result =
      fi::Campaign(supervisor, config).run(analyzer.observer());

  EXPECT_EQ(result.overall.total(), 40u);
  // Every benchmark masks some faults and fails on others.
  EXPECT_GT(result.overall.masked, 0u);
  EXPECT_GT(result.overall.sdc + result.overall.due, 0u);
  // Every trial is attributed to a category and a window.
  std::uint64_t category_total = 0;
  for (const auto& [category, tally] : result.by_category) {
    EXPECT_FALSE(category.empty());
    category_total += tally.total();
  }
  EXPECT_EQ(category_total, result.overall.total());
  // The analyzer saw exactly the SDC trials.
  EXPECT_EQ(analyzer.sdc_count(), result.overall.sdc);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCampaignTest,
    ::testing::ValuesIn(work::all_workloads()),
    [](const ::testing::TestParamInfo<work::WorkloadInfo>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(BurstInjection, CorruptsConsecutiveElements) {
  std::vector<double> data(64, 1.0);
  fi::SiteRegistry registry;
  registry.add_global_array<double>("data", "matrix",
                                    std::span<double>(data));
  fi::FlipEngine engine(registry, fi::SelectionPolicy::kBytesWeighted);
  util::Rng rng(11);
  const fi::InjectionRecord record =
      engine.inject(fi::FaultModel::kRandom, rng, 0.5, /*burst=*/8);
  ASSERT_TRUE(record.injected);
  EXPECT_GE(record.burst_elements, 1u);
  EXPECT_LE(record.burst_elements, 8u);
  // Changed elements are exactly the recorded contiguous burst.
  std::size_t changed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != 1.0) {
      ++changed;
      EXPECT_GE(i, record.element_index);
      EXPECT_LT(i, record.element_index + record.burst_elements);
    }
  }
  EXPECT_EQ(changed, record.burst_elements);
}

TEST(BurstInjection, ClampsAtSiteEnd) {
  std::vector<double> data(4, 1.0);
  fi::SiteRegistry registry;
  registry.add_global_array<double>("data", "matrix",
                                    std::span<double>(data));
  fi::FlipEngine engine(registry, fi::SelectionPolicy::kBytesWeighted);
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::fill(data.begin(), data.end(), 1.0);
    const fi::InjectionRecord record =
        engine.inject(fi::FaultModel::kZero, rng, 0.5, /*burst=*/16);
    EXPECT_LE(record.element_index + record.burst_elements, data.size());
  }
}

TEST(BurstInjection, SupervisorForwardsBurst) {
  // A burst of Random through the whole stack on DGEMM should corrupt
  // multiple output elements when it lands in matrix C.
  fi::TrialSupervisor supervisor(work::find_workload("DGEMM"),
                                 integration_config());
  supervisor.prepare_golden();
  for (int i = 0; i < 20; ++i) {
    fi::TrialConfig trial;
    trial.trial_seed = 400 + i;
    trial.model = fi::FaultModel::kRandom;
    trial.policy = fi::SelectionPolicy::kGlobalBytesWeighted;
    trial.burst_elements = 8;
    const fi::TrialResult result = supervisor.run_trial(trial);
    if (result.outcome != fi::Outcome::kSdc) continue;
    EXPECT_GE(result.record.burst_elements, 1u);
    const analysis::Comparison comparison = analysis::compare_outputs(
        supervisor.golden(), supervisor.last_output(),
        fi::ElementType::kF64);
    EXPECT_GT(comparison.mismatch_count(), 0u);
    return;  // one verified SDC is enough
  }
  FAIL() << "no SDC produced in 20 burst trials";
}

}  // namespace
}  // namespace phifi

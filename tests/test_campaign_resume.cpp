// Crash-recovery end-to-end: a campaign SIGKILLed mid-run, resumed from its
// write-ahead journal, must produce tallies bit-identical to the same
// campaign run uninterrupted with the same seed.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/campaign.hpp"
#include "tests/toy_workload.hpp"

namespace phifi::fi {
namespace {

namespace fs = std::filesystem;

using phifi::testing::ToyWorkload;
using phifi::testing::toy_supervisor_config;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "phifi_" + name;
}

CampaignConfig small_campaign(const std::string& journal) {
  CampaignConfig config;
  config.trials = 8;
  config.seed = 0x5eedf00dULL;
  config.journal_path = journal;
  return config;
}

/// Runs the configured campaign on a fresh toy supervisor.
CampaignResult run_campaign(const CampaignConfig& config,
                            const TrialObserver& observer = nullptr) {
  ToyWorkload::reset_run_counter();
  TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                             toy_supervisor_config());
  supervisor.prepare_golden();
  Campaign campaign(supervisor, config);
  return campaign.run(observer);
}

void expect_tally_eq(const OutcomeTally& a, const OutcomeTally& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
}

/// Asserts every aggregate slice and every per-trial record matches.
void expect_same_campaign(const CampaignResult& a, const CampaignResult& b) {
  expect_tally_eq(a.overall, b.overall);
  for (std::size_t m = 0; m < a.by_model.size(); ++m) {
    expect_tally_eq(a.by_model[m], b.by_model[m]);
  }
  ASSERT_EQ(a.by_window.size(), b.by_window.size());
  for (std::size_t w = 0; w < a.by_window.size(); ++w) {
    expect_tally_eq(a.by_window[w], b.by_window[w]);
  }
  ASSERT_EQ(a.by_category.size(), b.by_category.size());
  for (const auto& [category, tally] : a.by_category) {
    ASSERT_TRUE(b.by_category.count(category)) << category;
    expect_tally_eq(tally, b.by_category.at(category));
  }
  ASSERT_EQ(a.by_frame.size(), b.by_frame.size());
  for (const auto& [frame, tally] : a.by_frame) {
    ASSERT_TRUE(b.by_frame.count(frame)) << frame;
    expect_tally_eq(tally, b.by_frame.at(frame));
  }
  EXPECT_EQ(a.not_injected, b.not_injected);
  EXPECT_EQ(a.attempts, b.attempts);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].due_kind, b.trials[i].due_kind) << "trial " << i;
    EXPECT_EQ(a.trials[i].window, b.trials[i].window) << "trial " << i;
    EXPECT_EQ(a.trials[i].record.model, b.trials[i].record.model);
    EXPECT_EQ(a.trials[i].record.site_index, b.trials[i].record.site_index);
    EXPECT_EQ(a.trials[i].record.element_index,
              b.trials[i].record.element_index);
    EXPECT_EQ(a.trials[i].record.flipped_bits[0],
              b.trials[i].record.flipped_bits[0]);
  }
}

TEST(CampaignResume, SigkilledCampaignResumesBitIdentical) {
  const std::string journal = temp_path("resume_kill.jnl");
  fs::remove(journal);

  // Reference: the same campaign, same seed, uninterrupted, no journal.
  CampaignConfig reference_config = small_campaign("");
  const CampaignResult expected = run_campaign(reference_config);
  ASSERT_EQ(expected.overall.total(), reference_config.trials);

  // A child process runs the journaled campaign and SIGKILLs itself after
  // its 3rd completed trial — no destructors, no flushing, a real crash.
  const CampaignConfig config = small_campaign(journal);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ToyWorkload::reset_run_counter();
    TrialSupervisor supervisor(&phifi::testing::make_toy_normal,
                               toy_supervisor_config());
    supervisor.prepare_golden();
    Campaign campaign(supervisor, config);
    int completed = 0;
    campaign.run([&completed](const TrialResult&,
                              std::span<const std::byte>) {
      if (++completed == 3) ::kill(::getpid(), SIGKILL);
    });
    ::_exit(42);  // not reached: the kill lands inside run()
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume from the journal and finish the campaign.
  CampaignConfig resume_config = config;
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);

  EXPECT_EQ(resumed.resumed_trials, 3u);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignResume, StopFlagInterruptsAndResumeCompletes) {
  const std::string journal = temp_path("resume_stop.jnl");
  fs::remove(journal);

  const CampaignConfig reference_config = small_campaign("");
  const CampaignResult expected = run_campaign(reference_config);

  // Cooperative stop: the observer raises the flag after two completed
  // trials; the campaign finishes the in-flight trial and returns.
  std::atomic<bool> stop{false};
  CampaignConfig config = small_campaign(journal);
  config.stop_flag = &stop;
  int completed = 0;
  const CampaignResult interrupted = run_campaign(
      config, [&](const TrialResult&, std::span<const std::byte>) {
        if (++completed == 2) stop.store(true);
      });
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.overall.total(), 2u);

  CampaignConfig resume_config = small_campaign(journal);
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  EXPECT_EQ(resumed.resumed_trials, 2u);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignResume, ResumeSurvivesTornJournalTail) {
  const std::string journal = temp_path("resume_torn.jnl");
  fs::remove(journal);

  const CampaignResult expected = run_campaign(small_campaign(""));

  std::atomic<bool> stop{false};
  CampaignConfig config = small_campaign(journal);
  config.stop_flag = &stop;
  int completed = 0;
  (void)run_campaign(config,
                     [&](const TrialResult&, std::span<const std::byte>) {
                       if (++completed == 3) stop.store(true);
                     });

  // Simulate a torn final write: append garbage that is not a valid frame.
  {
    std::ofstream stream(journal,
                         std::ios::binary | std::ios::app);
    stream << "\x13\x37garbage-torn-tail";
  }

  CampaignConfig resume_config = small_campaign(journal);
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  EXPECT_GE(resumed.resumed_trials, 3u);
  expect_same_campaign(expected, resumed);
}

TEST(CampaignResume, MismatchedFingerprintIsRejected) {
  const std::string journal = temp_path("resume_mismatch.jnl");
  fs::remove(journal);

  std::atomic<bool> stop{false};
  CampaignConfig config = small_campaign(journal);
  config.stop_flag = &stop;
  int completed = 0;
  (void)run_campaign(config,
                     [&](const TrialResult&, std::span<const std::byte>) {
                       if (++completed == 1) stop.store(true);
                     });

  // Same journal, different campaign seed: the resume must refuse to mix
  // the two seed streams.
  CampaignConfig resume_config = small_campaign(journal);
  resume_config.resume = true;
  resume_config.seed ^= 0xff;
  EXPECT_THROW((void)run_campaign(resume_config), std::runtime_error);
}

TEST(CampaignResume, NotInjectedAttemptsKeepSeedStreamAligned) {
  // latest_fraction close to 1.0 provokes occasional NotInjected attempts
  // (the flip target can land after the run ends). Those attempts consume
  // seed draws, so resume must replay them too; this exercises that path
  // end to end without asserting any particular NotInjected count.
  const std::string journal = temp_path("resume_notinj.jnl");
  fs::remove(journal);

  CampaignConfig base = small_campaign("");
  base.trials = 6;
  base.latest_fraction = 0.999;
  const CampaignResult expected = run_campaign(base);

  std::atomic<bool> stop{false};
  CampaignConfig config = base;
  config.journal_path = journal;
  config.stop_flag = &stop;
  int completed = 0;
  (void)run_campaign(config,
                     [&](const TrialResult&, std::span<const std::byte>) {
                       if (++completed == 2) stop.store(true);
                     });

  CampaignConfig resume_config = config;
  resume_config.stop_flag = nullptr;
  resume_config.resume = true;
  const CampaignResult resumed = run_campaign(resume_config);
  expect_same_campaign(expected, resumed);
}

}  // namespace
}  // namespace phifi::fi

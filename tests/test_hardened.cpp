// Hardened workload variants (the paper's Sec. 7 future work).
#include "workloads/hardened.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/compare.hpp"
#include "core/campaign.hpp"
#include "core/progress.hpp"
#include "workloads/registry.hpp"

namespace phifi::work {
namespace {

fi::SupervisorConfig test_config() {
  fi::SupervisorConfig config;
  config.device_os_threads = 1;
  config.min_timeout_seconds = 1.0;
  return config;
}

std::vector<std::byte> run_clean(fi::Workload& workload,
                                 std::uint64_t seed = 7) {
  workload.setup(seed);
  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(workload.total_steps());
  workload.run(device, progress);
  progress.finish();
  const auto bytes = workload.output_bytes();
  return {bytes.begin(), bytes.end()};
}

TEST(AbftDgemmTest, CleanRunMatchesBaselineAndIsConsistent) {
  AbftDgemm hardened(32, 16);
  Dgemm baseline(32, 16);
  const auto hardened_out = run_clean(hardened);
  const auto baseline_out = run_clean(baseline);
  ASSERT_EQ(hardened_out.size(), baseline_out.size());
  EXPECT_EQ(std::memcmp(hardened_out.data(), baseline_out.data(),
                        hardened_out.size()),
            0);
  ASSERT_TRUE(hardened.last_report().has_value());
  EXPECT_TRUE(hardened.last_report()->consistent);
  EXPECT_EQ(hardened.name(), "DGEMM+ABFT");
}

TEST(AbftDgemmTest, RepairsSingleCorruptionOfC) {
  // Corrupt one element of C after the kernel by arming the progress hook
  // right at the end of the run -> the ABFT audit must repair it.
  AbftDgemm hardened(32, 16);
  hardened.setup(3);
  Dgemm baseline(32, 16);
  const auto golden = run_clean(baseline, 3);

  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(hardened.total_steps());
  progress.arm(0.95, [&](double) { hardened.c()[5 * 32 + 7] += 100.0; });
  hardened.run(device, progress);
  progress.finish();

  ASSERT_TRUE(hardened.last_report().has_value());
  EXPECT_TRUE(hardened.last_report()->detected());
  EXPECT_GE(hardened.last_report()->corrected, 1u);
  const auto repaired = hardened.output_bytes();
  const auto* got = reinterpret_cast<const double*>(repaired.data());
  const auto* want = reinterpret_cast<const double*>(golden.data());
  for (std::size_t i = 0; i < 32 * 32; ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-6) << "element " << i;
  }
}

TEST(AbftDgemmTest, RegistersChecksumSites) {
  AbftDgemm hardened(32, 16);
  hardened.setup(5);
  fi::SiteRegistry registry;
  hardened.register_sites(registry);
  bool row_sums = false;
  bool col_sums = false;
  for (const auto& site : registry.sites()) {
    row_sums |= site.name == "abft_row_sums";
    col_sums |= site.name == "abft_col_sums";
  }
  EXPECT_TRUE(row_sums);
  EXPECT_TRUE(col_sums);
}

TEST(HardenedHotSpotTest, CleanRunMatchesBaseline) {
  auto hardened = make_hardened_hotspot();
  HotSpot baseline;
  const auto hardened_out = run_clean(*hardened);
  const auto baseline_out = run_clean(baseline);
  ASSERT_EQ(hardened_out.size(), baseline_out.size());
  EXPECT_EQ(std::memcmp(hardened_out.data(), baseline_out.data(),
                        hardened_out.size()),
            0);
  EXPECT_EQ(hardened->name(), "HotSpot+DWC");
}

TEST(HardenedClamrTest, CleanRunMatchesBaseline) {
  auto hardened = make_hardened_clamr();
  Clamr baseline;
  const auto hardened_out = run_clean(*hardened);
  const auto baseline_out = run_clean(baseline);
  ASSERT_EQ(hardened_out.size(), baseline_out.size());
  EXPECT_EQ(std::memcmp(hardened_out.data(), baseline_out.data(),
                        hardened_out.size()),
            0);
  EXPECT_EQ(hardened->name(), "CLAMR+guards");
}


TEST(RmtLavaMdTest, CleanRunMatchesBaseline) {
  auto hardened = make_rmt_lavamd();
  LavaMd baseline;
  const auto hardened_out = run_clean(*hardened);
  const auto baseline_out = run_clean(baseline);
  ASSERT_EQ(hardened_out.size(), baseline_out.size());
  EXPECT_EQ(std::memcmp(hardened_out.data(), baseline_out.data(),
                        hardened_out.size()),
            0);
  EXPECT_EQ(hardened->name(), "LavaMD+RMT");
  EXPECT_EQ(hardened->total_steps(), 2 * baseline.total_steps());
}

TEST(RmtLavaMdTest, DetectsMidRunOutputCorruption) {
  // Corrupt the force array between the two redundant executions: the
  // compare must trip and surface a detected error.
  RmtLavaMd hardened(2, 8, 16);
  hardened.setup(3);
  phi::Device device(phi::DeviceSpec::knights_corner_3120a(), 1);
  fi::ProgressTracker progress;
  progress.reset(hardened.total_steps());
  fi::SiteRegistry registry;
  hardened.register_sites(registry);
  std::span<double> forces;
  for (const auto& site : registry.sites()) {
    if (site.name == "forces") {
      forces = {reinterpret_cast<double*>(site.data), site.bytes / 8};
    }
  }
  ASSERT_FALSE(forces.empty());
  // Fire just after the first pass completes (progress 0.5 = end of run 1).
  progress.arm(0.55, [&](double) { forces[3] += 42.0; });
  EXPECT_THROW(hardened.run(device, progress), HardeningDetected);
}

class HardeningCampaignTest
    : public ::testing::TestWithParam<fi::WorkloadFactory> {};

TEST_P(HardeningCampaignTest, CampaignRunsCleanly) {
  fi::TrialSupervisor supervisor(GetParam(), test_config());
  supervisor.prepare_golden();
  fi::CampaignConfig config;
  config.trials = 25;
  config.seed = 0x4ea7;
  fi::Campaign campaign(supervisor, config);
  const fi::CampaignResult result = campaign.run();
  EXPECT_EQ(result.overall.total(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Hardened, HardeningCampaignTest,
                         ::testing::Values(&make_abft_dgemm,
                                           &make_hardened_hotspot,
                                           &make_hardened_clamr,
                                           &make_rmt_lavamd));

TEST(HardeningComparison, AbftEliminatesSignificantSdcs) {
  // Inject only into global data (where ABFT has coverage). A floating-
  // point ABFT repair leaves ~1e-13 rounding residue, which the bitwise
  // classifier still counts as SDC; the meaningful metric is SDCs whose
  // worst element error exceeds a small tolerance. Those must (almost)
  // disappear under ABFT.
  auto run_campaign = [](fi::WorkloadFactory factory,
                         std::size_t& significant_sdcs) {
    fi::TrialSupervisor supervisor(factory, test_config());
    supervisor.prepare_golden();
    fi::CampaignConfig config;
    config.trials = 60;
    config.seed = 0xabf;
    config.policy = fi::SelectionPolicy::kGlobalBytesWeighted;
    return fi::Campaign(supervisor, config)
        .run([&](const fi::TrialResult& trial,
                 std::span<const std::byte> output) {
          if (trial.outcome != fi::Outcome::kSdc) return;
          const analysis::Comparison comparison = analysis::compare_outputs(
              supervisor.golden(), output, fi::ElementType::kF64);
          significant_sdcs += comparison.is_sdc_at(1e-6);
        });
  };
  std::size_t baseline_significant = 0;
  std::size_t hardened_significant = 0;
  const fi::CampaignResult baseline =
      run_campaign(find_workload("DGEMM"), baseline_significant);
  const fi::CampaignResult hardened =
      run_campaign(&make_abft_dgemm, hardened_significant);
  EXPECT_GT(baseline_significant, 10u);
  EXPECT_LE(hardened_significant, baseline_significant / 5)
      << "baseline significant " << baseline_significant << "/"
      << baseline.overall.sdc << ", hardened significant "
      << hardened_significant << "/" << hardened.overall.sdc;
}

}  // namespace
}  // namespace phifi::work

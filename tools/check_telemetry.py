#!/usr/bin/env python3
"""Schema check for phifi telemetry outputs (docs/TELEMETRY.md,
docs/OBSERVATORY.md).

Validates an NDJSON trial trace, a metrics snapshot (JSON or OpenMetrics
text), and/or a --history campaign ledger produced by phifi_run, and
cross-checks them against each other when several are given:

    check_telemetry.py --trace campaign.ndjson --metrics metrics.json
    check_telemetry.py --metrics metrics.json --openmetrics metrics.om
    check_telemetry.py --history reliability.ndjson
    check_telemetry.py --trace campaign.ndjson --profile campaign.profile
    check_telemetry.py --schema build/generated/telemetry_schema.py

--schema loads the field table that phicheck generates at build time from
tools/phicheck/ndjson_schema.txt (the declared source of truth for NDJSON
record shapes). With --schema this script (a) self-checks its own hardcoded
field expectations against the table, so validator/spec drift fails CI even
without an artifact to validate, and (b) strictly checks every record in
--trace/--history against its family: required fields present, no fields
outside the declared set.

Exits non-zero with a pointed message on the first violation. Stdlib only,
so CI can run it without installing anything.
"""

import argparse
import json
import sys

OUTCOMES = {"Masked", "SDC", "DUE", "NotInjected"}
DUE_KINDS = {"none", "crash", "abnormal-exit", "hang", "rlimit", "stall",
             "infra"}
FABRIC_KINDS = {"worker_join", "worker_leave", "lease_grant", "lease_adopt",
                "lease_done", "lease_reclaim"}
FORK_MODES = {"legacy", "warm", "template"}
PROFILE_PHASES_US = ("fork_us", "setup_us", "inject_us", "run_us",
                     "classify_us", "rob_wait_us", "journal_us", "flush_us")


# The NDJSON line currently being validated, so fail() can show the actual
# offending record instead of leaving the user to fish it out by line number.
_OFFENDING_LINE = None

# Field table loaded from --schema: {family: {"required": [...],
# "optional": [...]}}. None means no strict field checking.
_SCHEMA = None


def set_offending_line(line):
    global _OFFENDING_LINE
    _OFFENDING_LINE = line


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    if _OFFENDING_LINE:
        shown = _OFFENDING_LINE
        if len(shown) > 300:
            shown = shown[:300] + "...[truncated]"
        print(f"check_telemetry: offending line: {shown}", file=sys.stderr)
    sys.exit(1)


def require(condition, message):
    if not condition:
        fail(message)


def load_schema(path):
    """Loads the phicheck-generated field table (a Python file defining
    SCHEMA) without importing it as a module."""
    scope = {}
    with open(path, encoding="utf-8") as stream:
        exec(compile(stream.read(), path, "exec"), scope)  # noqa: S102
    schema = scope.get("SCHEMA")
    require(isinstance(schema, dict) and schema,
            f"{path}: no SCHEMA dict (regenerate with phicheck "
            f"--emit-ndjson-schema)")
    for family, fields in schema.items():
        require(isinstance(fields, dict)
                and set(fields) == {"required", "optional"},
                f"{path}: malformed family {family!r}")
    return schema


def schema_fields(family):
    """All declared fields (required + optional) for a family."""
    entry = _SCHEMA[family]
    return set(entry["required"]) | set(entry["optional"])


def check_fields(record, family, where, extra_ok=()):
    """Strict shape check against the generated table: every required field
    present, nothing outside the declared set. No-op without --schema."""
    if _SCHEMA is None:
        return
    require(family in _SCHEMA,
            f"{where}: record family {family!r} missing from the schema "
            f"table (update tools/phicheck/ndjson_schema.txt)")
    allowed = schema_fields(family) | set(extra_ok)
    # The trace writer stamps correlation context onto every record.
    if family.startswith("trace.") and "trace.context" in _SCHEMA:
        allowed |= schema_fields("trace.context")
    for key in record:
        require(key in allowed,
                f"{where}: field {key!r} is not declared for {family} in "
                f"ndjson_schema.txt")
    for key in _SCHEMA[family]["required"]:
        require(key in record,
                f"{where}: {family} record is missing required field "
                f"{key!r}")


def schema_self_check(schema):
    """Cross-checks this script's hardcoded field expectations against the
    generated table, so the validator cannot silently lag the writers."""
    expected = {
        "trace.trial": {"attempt", "outcome", "due_kind", "injected",
                        "progress_fraction", "window", "seconds", "ts_ms",
                        "spans", "phases", "fork_mode", "fork_seconds",
                        "setup_skipped"},
        "trace.fabric": {"kind", "worker", "lease", "begin", "end",
                         "injected", "ts_ms"},
        "trace.end": {"completed", "masked", "sdc", "due", "not_injected",
                      "elapsed_ms", "stopped_early", "due_kinds"},
        "trace.campaign": {"workload", "trials", "time_windows", "jobs"},
        "history.campaign_summary":
            set(HISTORY_COUNTS) | set(HISTORY_RATES)
            | {"workload", "fingerprint", "stopped_early", "interrupted",
               "aborted", "elapsed_seconds", "trials_per_sec", "cells"},
        "history.cell": {"model", "category", "window", "masked", "sdc",
                         "due", "sdc_rate"},
        "profile": set(PROFILE_PHASES_US) | {"attempt", "workload",
                                             "fork_mode"},
    }
    for family, fields in expected.items():
        require(family in schema,
                f"schema table lost family {family!r} that this validator "
                f"depends on")
        declared = (set(schema[family]["required"])
                    | set(schema[family]["optional"]))
        missing = fields - declared
        require(not missing,
                f"{family}: validator checks field(s) {sorted(missing)} "
                f"that the schema table no longer declares")
    print(f"check_telemetry: schema OK: {len(schema)} families, "
          f"validator expectations all declared")


def check_hex_id(record, key, where):
    """Validates a 16-hex correlation id (docs/FLEET_OBSERVABILITY.md)."""
    value = check_string(record, key, where)
    require(len(value) == 16
            and all(c in "0123456789abcdef" for c in value),
            f"{where}: '{key}' = {value!r} is not 16 hex digits")
    return value


def check_number(record, key, where, minimum=None):
    require(key in record, f"{where}: missing '{key}'")
    value = record[key]
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{where}: '{key}' is not a number: {value!r}")
    if minimum is not None:
        require(value >= minimum, f"{where}: '{key}' = {value} < {minimum}")
    return value


def check_string(record, key, where, allowed=None):
    require(key in record, f"{where}: missing '{key}'")
    value = record[key]
    require(isinstance(value, str), f"{where}: '{key}' is not a string")
    if allowed is not None:
        require(value in allowed,
                f"{where}: '{key}' = {value!r} not in {sorted(allowed)}")
    return value


def check_trial(record, where, prev_ts, jobs):
    check_number(record, "attempt", where, minimum=0)
    outcome = check_string(record, "outcome", where, allowed=OUTCOMES)
    check_string(record, "due_kind", where, allowed=DUE_KINDS)
    require(isinstance(record.get("injected"), bool),
            f"{where}: 'injected' is not a bool")
    if outcome == "NotInjected":
        require(not record["injected"],
                f"{where}: NotInjected trial claims injected=true")
    fraction = check_number(record, "progress_fraction", where)
    require(0.0 <= fraction <= 1.0,
            f"{where}: progress_fraction {fraction} outside [0, 1]")
    check_number(record, "window", where, minimum=0)
    check_number(record, "seconds", where, minimum=0)
    fork_mode = check_string(record, "fork_mode", where, allowed=FORK_MODES)
    check_number(record, "fork_seconds", where, minimum=0)
    require(isinstance(record.get("setup_skipped"), bool),
            f"{where}: 'setup_skipped' is not a bool")
    if fork_mode == "legacy":
        require(not record["setup_skipped"],
                f"{where}: legacy trial claims setup_skipped=true")
    elif fork_mode == "warm":
        require(record["setup_skipped"],
                f"{where}: warm trial claims setup_skipped=false")
    ts = check_number(record, "ts_ms", where, minimum=0)
    # ts_ms stamps the trial's *launch*; records commit in attempt order.
    # Single-worker campaigns launch in commit order, so the stream is
    # monotonic; with jobs > 1 an infra-retried attempt can relaunch after
    # later attempts launched, so only non-negativity holds there.
    if jobs <= 1:
        require(ts >= prev_ts,
                f"{where}: ts_ms {ts} went backwards (prev {prev_ts})")

    spans = record.get("spans")
    require(isinstance(spans, list), f"{where}: 'spans' is not an array")
    cursor = 0.0
    for i, span in enumerate(spans):
        span_where = f"{where} span[{i}]"
        check_string(span, "name", span_where)
        t0 = check_number(span, "t0_ms", span_where, minimum=0)
        t1 = check_number(span, "t1_ms", span_where)
        require(t1 >= t0, f"{span_where}: t1_ms {t1} < t0_ms {t0}")
        require(t0 >= cursor,
                f"{span_where}: t0_ms {t0} overlaps previous span")
        cursor = t0

    phases = record.get("phases")
    require(isinstance(phases, list), f"{where}: 'phases' is not an array")
    phase_t = 0.0
    for i, phase in enumerate(phases):
        phase_where = f"{where} phase[{i}]"
        check_string(phase, "name", phase_where)
        t = check_number(phase, "t_ms", phase_where, minimum=0)
        require(t >= phase_t, f"{phase_where}: t_ms {t} went backwards")
        phase_t = t
    return ts


def check_fabric(record, where):
    """Returns the event kind. Fabric records are the coordinator's lease
    lifecycle log (docs/FABRIC.md); lease-less kinds (worker_join/leave)
    carry zeroed range fields."""
    kind = check_string(record, "kind", where, allowed=FABRIC_KINDS)
    # Correlation (docs/FLEET_OBSERVABILITY.md): every fabric record names
    # the run it belongs to and the worker it concerns.
    check_hex_id(record, "run_id", where)
    check_number(record, "worker", where, minimum=1)
    check_number(record, "lease", where, minimum=0)
    begin = check_number(record, "begin", where, minimum=0)
    end = check_number(record, "end", where, minimum=0)
    require(end >= begin, f"{where}: lease end {end} < begin {begin}")
    injected = check_number(record, "injected", where, minimum=0)
    require(injected <= end - begin,
            f"{where}: injected {injected} exceeds lease width "
            f"{end - begin}")
    check_number(record, "ts_ms", where, minimum=0)
    if kind in ("lease_grant", "lease_adopt", "lease_done", "lease_reclaim"):
        require(record["lease"] >= 1, f"{where}: {kind} without a lease id")
        require(end > begin, f"{where}: {kind} with an empty range")
    return kind


def check_trace(path):
    """Returns (trial_count, outcome_counts, end_record_or_None,
    fabric_kind_counts, run_ids)."""
    counts = {name: 0 for name in OUTCOMES}
    fabric_counts = {name: 0 for name in FABRIC_KINDS}
    header = None
    segments = 0
    end = None
    trials = 0
    prev_ts = 0.0
    jobs = 1
    run_ids = set()
    unstamped = 0  # records with no run_id (ok only outside fabric runs)
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            set_offending_line(line)
            if not line:
                fail(f"{where}: blank line in NDJSON stream")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{where}: unparseable record: {error}")
            require(isinstance(record, dict), f"{where}: not an object")
            # Correlation context stamped by the trace writer: validate on
            # every record that carries it, and remember whether any record
            # went unstamped (a fabric trace may not mix).
            if "run_id" in record:
                run_ids.add(check_hex_id(record, "run_id", where))
            else:
                unstamped += 1
            if "worker_id" in record:
                check_number(record, "worker_id", where, minimum=1)
            if "lease_id" in record:
                check_number(record, "lease_id", where, minimum=1)
            kind = check_string(record, "type", where)
            if kind in ("campaign", "trial", "fabric", "end"):
                check_fields(record, f"trace.{kind}", where)
            if kind == "campaign":
                # A resumed campaign appends a second header (resumed=true)
                # and restarts the campaign clock; only the first segment
                # may claim a fresh start.
                if segments > 0:
                    require(record.get("resumed") is True,
                            f"{where}: non-resumed campaign header after "
                            f"existing records")
                check_string(record, "workload", where)
                if header is not None:
                    require(record["workload"] == header["workload"],
                            f"{where}: workload changed across resume")
                check_number(record, "trials", where, minimum=1)
                check_number(record, "time_windows", where, minimum=1)
                header = record
                segments += 1
                end = None
                prev_ts = 0.0
                jobs = record.get("jobs", 1)
                require(isinstance(jobs, int) and jobs >= 1,
                        f"{where}: 'jobs' = {jobs!r} is not a positive int")
            elif kind == "trial":
                require(header is not None,
                        f"{where}: trial before campaign header")
                require(end is None, f"{where}: trial after end record")
                prev_ts = check_trial(record, where, prev_ts, jobs)
                counts[record["outcome"]] += 1
                trials += 1
            elif kind == "fabric":
                fabric_counts[check_fabric(record, where)] += 1
            elif kind == "end":
                require(end is None, f"{where}: duplicate end record")
                for key in ("completed", "masked", "sdc", "due",
                            "not_injected"):
                    check_number(record, key, where, minimum=0)
                check_number(record, "elapsed_ms", where, minimum=0)
                require(isinstance(record.get("stopped_early"), bool),
                        f"{where}: 'stopped_early' is not a bool")
                due_kinds = record.get("due_kinds")
                require(isinstance(due_kinds, dict),
                        f"{where}: 'due_kinds' is not an object")
                for kind_name, count in due_kinds.items():
                    require(kind_name in DUE_KINDS and kind_name != "none",
                            f"{where}: unknown due_kind {kind_name!r}")
                    require(isinstance(count, int) and count > 0,
                            f"{where}: due_kinds[{kind_name!r}] = {count!r} "
                            f"(zero-count kinds are omitted)")
                require(sum(due_kinds.values()) == record["due"],
                        f"{where}: due_kinds sum {sum(due_kinds.values())} "
                        f"!= due {record['due']}")
                end = record
            # Unknown types are forward-compatible: skip.
    set_offending_line(None)  # whole-file checks below have no single line
    fabric_total = sum(fabric_counts.values())
    # A fabric coordinator's trace is pure lease lifecycle — no campaign
    # header, no trial records. Anything else must lead with a header.
    require(header is not None or (fabric_total > 0 and trials == 0),
            f"{path}: no campaign header record")
    if fabric_total > 0:
        require(fabric_counts["lease_grant"] + fabric_counts["lease_adopt"]
                >= fabric_counts["lease_done"],
                f"{path}: more lease_done events than grants + adoptions")
        require(fabric_counts["worker_join"] >= 1,
                f"{path}: fabric events without any worker_join")
        # Fabric runs stamp run_id on *every* record, and one run writes
        # exactly one run id per trace stream.
        require(unstamped == 0,
                f"{path}: {unstamped} record(s) without run_id in a fabric "
                f"trace")
        require(len(run_ids) == 1,
                f"{path}: expected one run_id, saw {sorted(run_ids)}")
    if end is not None and not (fabric_total > 0 and trials == 0):
        # The final end record tallies the whole campaign. A single-segment
        # trace must match it exactly; a resumed trace may fall short of it
        # by the records a crash tore off before the resume replayed them
        # from the journal. (A coordinator trace is exempt: its end record
        # is the *fleet* tally folded from lease details, with no local
        # trial records to compare — cross-checked via --history instead.)
        completed = counts["Masked"] + counts["SDC"] + counts["DUE"]
        for key, expect in (("completed", completed),
                            ("masked", counts["Masked"]),
                            ("sdc", counts["SDC"]),
                            ("due", counts["DUE"]),
                            ("not_injected", counts["NotInjected"])):
            if segments == 1:
                require(end[key] == expect,
                        f"{path}: end.{key} = {end[key]} but trial records "
                        f"tally {expect}")
            else:
                require(end[key] >= expect,
                        f"{path}: end.{key} = {end[key]} < trial-record "
                        f"tally {expect}")
    print(f"check_telemetry: trace OK: {path} ({trials} trial records, "
          f"{fabric_total} fabric records, {segments} segment(s), "
          f"end={'present' if end else 'absent'})")
    return trials, counts, end, fabric_counts, run_ids


def check_metrics(path):
    """Returns the counters dict."""
    with open(path, encoding="utf-8") as stream:
        try:
            snapshot = json.load(stream)
        except json.JSONDecodeError as error:
            fail(f"{path}: unparseable JSON: {error}")
    for section in ("counters", "gauges", "histograms"):
        require(section in snapshot and isinstance(snapshot[section], dict),
                f"{path}: missing '{section}' object")
    counters = snapshot["counters"]
    for name, value in counters.items():
        require(isinstance(value, (int, float)) and value >= 0,
                f"{path}: counter '{name}' = {value!r}")
    for name, hist in snapshot["histograms"].items():
        where = f"{path}: histogram '{name}'"
        edges = hist.get("upper_edges")
        hist_counts = hist.get("counts")
        require(isinstance(edges, list) and edges, f"{where}: bad edges")
        require(edges == sorted(edges) and len(set(edges)) == len(edges),
                f"{where}: edges not strictly ascending")
        require(isinstance(hist_counts, list)
                and len(hist_counts) == len(edges) + 1,
                f"{where}: counts length != edges + overflow")
        require(sum(hist_counts) == hist.get("count"),
                f"{where}: bucket counts do not sum to 'count'")
    completed = counters.get("campaign.completed")
    if completed is not None:
        split = sum(counters.get(f"campaign.{k}", 0)
                    for k in ("masked", "sdc", "due"))
        require(split == completed,
                f"{path}: masked+sdc+due = {split} != campaign.completed "
                f"= {completed}")
    print(f"check_telemetry: metrics OK: {path} "
          f"({len(counters)} counters)")
    return counters


def openmetrics_name(name):
    """The C++ renderer's sanitization: phifi_ prefix, [^A-Za-z0-9_] -> _."""
    return "phifi_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in name)


def parse_openmetrics(path):
    """Returns (samples dict name->float, types dict family->kind)."""
    samples = {}
    types = {}
    helps = set()
    lines = open(path, encoding="utf-8").read().splitlines()
    require(lines and lines[-1] == "# EOF",
            f"{path}: missing '# EOF' terminator")
    for lineno, line in enumerate(lines[:-1], start=1):
        where = f"{path}:{lineno}"
        set_offending_line(line)
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ", 3)
            require(kind in ("counter", "gauge", "histogram"),
                    f"{where}: unknown metric type {kind!r}")
            require(family not in types, f"{where}: duplicate # TYPE")
            types[family] = kind
            continue
        if line.startswith("# HELP "):
            helps.add(line.split(" ", 3)[2])
            continue
        require(not line.startswith("#"), f"{where}: stray comment line")
        name, _, value = line.rpartition(" ")
        require(name and not name.endswith(" "), f"{where}: bad sample line")
        try:
            samples[name] = float(value)
        except ValueError:
            fail(f"{where}: sample value {value!r} is not a number")
        base = name.split("{", 1)[0]
        require(base.startswith("phifi_"),
                f"{where}: sample {base!r} lacks the phifi_ prefix")
    set_offending_line(None)
    for family in types:
        require(family in helps, f"{path}: {family} has # TYPE but no # HELP")
    return samples, types


def check_openmetrics(path, snapshot_path=None):
    samples, types = parse_openmetrics(path)
    for name in samples:
        base = name.split("{", 1)[0]
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[:-len(suffix)] in types:
                family = base[:-len(suffix)]
        require(family in types, f"{path}: sample {name!r} has no # TYPE")

    # Histogram invariants: cumulative non-decreasing buckets, +Inf last
    # and equal to _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [(name, value) for name, value in samples.items()
                   if name.startswith(f"{family}_bucket{{")]
        require(buckets, f"{path}: histogram {family} has no buckets")
        require(buckets[-1][0] == f'{family}_bucket{{le="+Inf"}}',
                f"{path}: {family}: last bucket is not le=\"+Inf\"")
        previous = 0.0
        for name, value in buckets:
            require(value >= previous,
                    f"{path}: {family}: cumulative bucket {name} decreased")
            previous = value
        require(buckets[-1][1] == samples.get(f"{family}_count"),
                f"{path}: {family}: +Inf bucket != _count")

    if snapshot_path is not None:
        with open(snapshot_path, encoding="utf-8") as stream:
            snapshot = json.load(stream)
        for name, value in snapshot["counters"].items():
            om = openmetrics_name(name) + "_total"
            require(samples.get(om) == value,
                    f"{om} = {samples.get(om)} but JSON counter "
                    f"{name!r} = {value}")
        for name, value in snapshot["gauges"].items():
            om = openmetrics_name(name)
            require(samples.get(om) == value,
                    f"{om} = {samples.get(om)} but JSON gauge "
                    f"{name!r} = {value}")
        for name, hist in snapshot["histograms"].items():
            family = openmetrics_name(name)
            cumulative = [value for key, value in samples.items()
                          if key.startswith(f"{family}_bucket{{")]
            disjoint = [b - a for a, b in
                        zip([0.0] + cumulative[:-1], cumulative)]
            require(disjoint == hist["counts"],
                    f"{family}: de-cumulated buckets {disjoint} != JSON "
                    f"counts {hist['counts']}")
            require(samples.get(f"{family}_count") == hist["count"],
                    f"{family}_count != JSON count")
        print("check_telemetry: openmetrics and metrics snapshot agree")
    print(f"check_telemetry: openmetrics OK: {path} "
          f"({len(samples)} samples, {len(types)} families)")


def check_profile(path):
    """Validates a latency-anatomy NDJSON stream (phifi_run --profile).
    Returns the number of profile records."""
    records = 0
    seen_attempts = set()
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            set_offending_line(line)
            if not line:
                fail(f"{where}: blank line in NDJSON stream")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{where}: unparseable record: {error}")
            require(isinstance(record, dict), f"{where}: not an object")
            if record.get("type") != "profile":
                continue  # forward compatibility
            check_fields(record, "profile", where)
            attempt = check_number(record, "attempt", where, minimum=0)
            # One record per committed attempt — within one process's
            # stream an attempt index never repeats.
            require(attempt not in seen_attempts,
                    f"{where}: duplicate profile record for attempt "
                    f"{attempt}")
            seen_attempts.add(attempt)
            check_string(record, "workload", where)
            check_string(record, "fork_mode", where, allowed=FORK_MODES)
            for key in PROFILE_PHASES_US:
                value = check_number(record, key, where, minimum=0)
                require(isinstance(value, int),
                        f"{where}: '{key}' = {value!r} is not an integer "
                        f"microsecond count")
            records += 1
    set_offending_line(None)
    require(records, f"{path}: no profile records")
    print(f"check_telemetry: profile OK: {path} ({records} records, "
          f"all attempts distinct)")
    return records


HISTORY_COUNTS = ("completed", "masked", "sdc", "due", "not_injected",
                  "trials_target", "seed", "jobs")
HISTORY_RATES = ("sdc_rate", "sdc_ci_lo", "sdc_ci_hi",
                 "due_rate", "due_ci_lo", "due_ci_hi")


def check_history(path):
    """Returns the list of campaign_summary records."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            set_offending_line(line)
            if not line:
                fail(f"{where}: blank line in NDJSON ledger")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{where}: unparseable record: {error}")
            if record.get("type") != "campaign_summary":
                continue  # forward compatibility
            check_fields(record, "history.campaign_summary", where)
            check_string(record, "workload", where)
            if record.get("run_id"):
                check_hex_id(record, "run_id", where)
            fingerprint = check_string(record, "fingerprint", where)
            require(len(fingerprint) == 16
                    and all(c in "0123456789abcdef" for c in fingerprint),
                    f"{where}: fingerprint {fingerprint!r} is not 16 hex "
                    f"digits")
            for key in HISTORY_COUNTS:
                check_number(record, key, where, minimum=0)
            split = (record["masked"] + record["sdc"] + record["due"])
            require(split == record["completed"],
                    f"{where}: masked+sdc+due = {split} != completed = "
                    f"{record['completed']}")
            for key in ("stopped_early", "interrupted", "aborted"):
                require(isinstance(record.get(key), bool),
                        f"{where}: '{key}' is not a bool")
            check_number(record, "elapsed_seconds", where, minimum=0)
            check_number(record, "trials_per_sec", where, minimum=0)
            for key in HISTORY_RATES:
                value = check_number(record, key, where, minimum=0)
                require(value <= 1.0,
                        f"{where}: '{key}' = {value} outside [0, 1]")
            require(record["sdc_ci_lo"] <= record["sdc_rate"]
                    <= record["sdc_ci_hi"],
                    f"{where}: sdc interval does not bracket sdc_rate")
            cells = record.get("cells")
            require(isinstance(cells, list), f"{where}: 'cells' not a list")
            for i, cell in enumerate(cells):
                cell_where = f"{where} cell[{i}]"
                check_fields(cell, "history.cell", cell_where)
                check_string(cell, "model", cell_where)
                check_string(cell, "category", cell_where)
                check_number(cell, "window", cell_where, minimum=0)
                total = sum(check_number(cell, key, cell_where, minimum=0)
                            for key in ("masked", "sdc", "due"))
                require(total > 0, f"{cell_where}: empty cell persisted")
                rate = check_number(cell, "sdc_rate", cell_where, minimum=0)
                require(rate <= 1.0,
                        f"{cell_where}: sdc_rate {rate} outside [0, 1]")
            records.append(record)
    set_offending_line(None)
    require(records, f"{path}: no campaign_summary records")
    print(f"check_telemetry: history OK: {path} ({len(records)} campaign "
          f"record(s))")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="NDJSON trial trace to validate")
    parser.add_argument("--metrics", help="JSON metrics snapshot to validate")
    parser.add_argument("--openmetrics",
                        help="OpenMetrics text exposition to validate "
                             "(cross-checked against --metrics when given)")
    parser.add_argument("--history",
                        help="--history campaign ledger to validate")
    parser.add_argument("--profile",
                        help="latency-anatomy NDJSON stream to validate "
                             "(cross-checked against --trace when given)")
    parser.add_argument("--schema",
                        help="phicheck-generated field table "
                             "(build/generated/telemetry_schema.py); "
                             "enables strict per-record field checking")
    args = parser.parse_args()
    if not any((args.trace, args.metrics, args.openmetrics, args.history,
                args.profile, args.schema)):
        parser.error("nothing to check: pass --trace, --metrics, "
                     "--openmetrics, --history, --profile and/or --schema")

    if args.schema:
        global _SCHEMA
        _SCHEMA = load_schema(args.schema)
        schema_self_check(_SCHEMA)

    trace = check_trace(args.trace) if args.trace else None
    counters = check_metrics(args.metrics) if args.metrics else None
    if args.openmetrics:
        check_openmetrics(args.openmetrics, snapshot_path=args.metrics)
    history = check_history(args.history) if args.history else None
    profile_records = check_profile(args.profile) if args.profile else None

    if trace is not None and profile_records is not None:
        # The profiler observes every committed attempt (NotInjected ones
        # included) and skips journal-replayed ones, exactly like the trace
        # writer — so a same-run pair must have equal record counts.
        trial_count = trace[0]
        require(profile_records == trial_count,
                f"profile has {profile_records} records but the trace has "
                f"{trial_count} trial records (every committed attempt "
                f"must be profiled exactly once)")
        print("check_telemetry: trace and profile agree")

    if trace is not None and counters is not None:
        trial_count, counts, _, fabric_counts, _ = trace
        # A coordinator's campaign.* counters aggregate worker lease
        # reports; its trace has no trial records to tally them against.
        for outcome, counter in (("Masked", "campaign.masked"),
                                 ("SDC", "campaign.sdc"),
                                 ("DUE", "campaign.due")):
            if counter in counters and trial_count > 0:
                require(counters[counter] == counts[outcome],
                        f"{counter} = {counters[counter]} but the trace "
                        f"tallies {counts[outcome]}")
        # The coordinator increments these counters at the same sites it
        # traces the matching lifecycle event, so a same-run pair must agree.
        for kind, counter in (("lease_grant", "fabric.leases_granted"),
                              ("lease_reclaim", "fabric.leases_reclaimed")):
            if counter in counters:
                require(counters[counter] == fabric_counts[kind],
                        f"{counter} = {counters[counter]} but the trace "
                        f"has {fabric_counts[kind]} {kind} events")
        print("check_telemetry: trace and metrics agree")
    if trace is not None and history is not None:
        trial_count, counts, end, fabric_counts, run_ids = trace
        latest = history[-1]
        if trial_count == 0 and sum(fabric_counts.values()) > 0:
            # Coordinator trace: no trial records, but the end record is
            # the exact fleet tally folded from per-attempt lease details.
            # The history here is a replay of the merged shard journals, so
            # equality proves the live fold == the post-campaign merge.
            require(end is not None,
                    "coordinator trace has no end record to cross-check")
            for key in ("completed", "masked", "sdc", "due"):
                require(latest[key] == end[key],
                        f"history.{key} = {latest[key]} but the "
                        f"coordinator's fleet tally says {end[key]}")
            print("check_telemetry: coordinator fleet tally and "
                  "merged-journal history agree")
        else:
            for outcome, key in (("Masked", "masked"), ("SDC", "sdc"),
                                 ("DUE", "due")):
                require(latest[key] == counts[outcome],
                        f"history.{key} = {latest[key]} but the trace "
                        f"tallies {counts[outcome]}")
            print("check_telemetry: trace and history agree")
        if run_ids and latest.get("run_id"):
            require(latest["run_id"] in run_ids,
                    f"history run_id {latest['run_id']!r} does not match "
                    f"the trace ({sorted(run_ids)})")


if __name__ == "__main__":
    main()

// phifi_run: the artifact's experiment workflow as a command-line tool.
//
//   $ phifi_run <config-file> [repetitions]
//   $ phifi_run <config-file> --resume     # continue a journaled campaign
//   $ phifi_run --template                 # print a config template
//
// Each repetition re-runs the configured campaign with a derived seed, as
// the CAROL-FI scripts did when the paper accumulated its >90k injections
// across batches.
//
// SIGINT/SIGTERM request a graceful stop: the in-flight trial finishes,
// the journal is flushed, and the resume command is printed. A second
// SIGINT falls through to the default handler (immediate exit) — the
// journal survives that too; only the in-flight trial is lost.
#include <csignal>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "cli/runner.hpp"
#include "util/log.hpp"

namespace {

std::atomic<bool> g_stop{false};

void request_stop(int) {
  g_stop.store(true, std::memory_order_relaxed);
  // Restore default disposition so a second signal exits immediately.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phifi;
  util::init_log_from_env();

  if (argc >= 2 && std::string(argv[1]) == "--template") {
    std::cout << cli::format_config(cli::RunnerConfig{});
    return 0;
  }
  if (argc < 2) {
    std::cerr << "usage: phifi_run <config-file> [repetitions] [--resume]\n"
              << "                 [--jobs <n>] [--trace-out <file>] "
                 "[--metrics-out <file>]\n"
              << "                 [--profile <file>]\n"
              << "                 [--metrics-format json|openmetrics]\n"
              << "                 [--progress <seconds>] "
                 "[--stop-ci-width <eps>]\n"
              << "                 [--history <file>] [--trial-fast-path]\n"
              << "                 [--coordinator <addr> "
                 "[--lease-ledger <file>]\n"
              << "                  [--lease-size <n>] "
                 "[--lease-timeout <sec>]]\n"
              << "                 [--connect <addr> "
                 "--shard-journal <file>]\n"
              << "       phifi_run --template\n"
              << "  --stop-ci-width  stop once the SDC-proportion 95% CI\n"
              << "                   half-width is <= eps (e.g. 0.005)\n"
              << "  --trial-fast-path\n"
                 "                   fork trials from a warm post-setup\n"
                 "                   image (fork-server fast path); tallies\n"
                 "                   stay bit-identical to the default path\n"
              << "  --profile        write one NDJSON latency-anatomy\n"
                 "                   record per committed trial (read with\n"
                 "                   phifi_parse --profile)\n"
              << "  --history        append a campaign summary record to\n"
              << "                   this NDJSON ledger (phifi_parse "
                 "--drift)\n"
              << "  --coordinator    run the fabric coordinator on this\n"
              << "                   address (unix:/path or tcp:host:port)\n"
              << "  --connect        run a fabric worker against that\n"
              << "                   coordinator (needs --shard-journal);\n"
              << "                   merge shards with phifi_merge\n"
              << "  --serve-metrics  coordinator: serve /metrics,\n"
                 "                   /campaign.json, /healthz on this\n"
                 "                   address while the campaign runs\n"
                 "                   (tcp:host:port or unix:/path)\n"
              << "  --stats-interval worker: seconds between STATS\n"
                 "                   snapshots to the coordinator (0 = "
                 "off)\n";
    return 2;
  }

  int repetitions = 1;
  bool resume = false;
  bool trial_fast_path = false;
  int jobs = 0;  // 0: leave the config file's value
  std::string trace_out;
  std::string profile_out;
  std::string metrics_out;
  std::string metrics_format;
  std::string history_out;
  std::string coordinator_addr;
  std::string connect_addr;
  std::string shard_journal;
  std::string lease_ledger;
  std::string serve_metrics;
  long lease_size = 0;            // 0: leave the config file's value
  double lease_timeout = -1.0;    // <0: leave the config file's value
  double stats_interval = -1.0;   // <0: leave the config file's value
  double progress_seconds = -1.0;  // <0: leave the config file's value
  double stop_ci_width = -1.0;     // <0: leave the config file's value
  const auto flag_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "phifi_run: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--trial-fast-path") {
      trial_fast_path = true;
    } else if (arg == "--jobs") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      jobs = std::atoi(value);
      if (jobs < 1) {
        std::cerr << "phifi_run: bad --jobs count '" << value << "'\n";
        return 2;
      }
    } else if (arg == "--trace-out") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      trace_out = value;
    } else if (arg == "--profile") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      profile_out = value;
    } else if (arg == "--metrics-out") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      metrics_out = value;
    } else if (arg == "--metrics-format") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      metrics_format = value;
      if (metrics_format != "json" && metrics_format != "openmetrics") {
        std::cerr << "phifi_run: --metrics-format must be 'json' or "
                     "'openmetrics'\n";
        return 2;
      }
    } else if (arg == "--history") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      history_out = value;
    } else if (arg == "--coordinator") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      coordinator_addr = value;
    } else if (arg == "--connect") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      connect_addr = value;
    } else if (arg == "--shard-journal") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      shard_journal = value;
    } else if (arg == "--lease-ledger") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      lease_ledger = value;
    } else if (arg == "--serve-metrics") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      serve_metrics = value;
    } else if (arg == "--stats-interval") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      stats_interval = std::atof(value);
      if (stats_interval < 0.0) {
        std::cerr << "phifi_run: bad --stats-interval '" << value << "'\n";
        return 2;
      }
    } else if (arg == "--lease-size") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      lease_size = std::atol(value);
      if (lease_size < 1) {
        std::cerr << "phifi_run: bad --lease-size '" << value << "'\n";
        return 2;
      }
    } else if (arg == "--lease-timeout") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      lease_timeout = std::atof(value);
      if (lease_timeout <= 0.0) {
        std::cerr << "phifi_run: bad --lease-timeout '" << value << "'\n";
        return 2;
      }
    } else if (arg == "--stop-ci-width") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      stop_ci_width = std::atof(value);
      if (stop_ci_width <= 0.0 || stop_ci_width >= 0.5) {
        std::cerr << "phifi_run: bad --stop-ci-width '" << value
                  << "' (need a proportion in (0, 0.5))\n";
        return 2;
      }
    } else if (arg == "--progress") {
      const char* value = flag_value(i);
      if (value == nullptr) return 2;
      progress_seconds = std::atof(value);
      if (progress_seconds <= 0.0) {
        std::cerr << "phifi_run: bad --progress interval '" << value << "'\n";
        return 2;
      }
    } else {
      repetitions = std::atoi(argv[i]);
      if (repetitions < 1) {
        std::cerr << "phifi_run: bad repetition count '" << arg << "'\n";
        return 2;
      }
    }
  }

  std::ifstream config_stream(argv[1]);
  if (!config_stream) {
    std::cerr << "phifi_run: cannot open '" << argv[1] << "'\n";
    return 2;
  }

  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);

  try {
    cli::RunnerConfig config = cli::parse_config(config_stream);
    if (resume) config.resume = true;
    if (trial_fast_path) config.trial_fast_path = true;
    if (jobs > 0) config.jobs = static_cast<unsigned>(jobs);
    if (!trace_out.empty()) config.trace_file = trace_out;
    if (!profile_out.empty()) config.profile_file = profile_out;
    if (!metrics_out.empty()) config.metrics_file = metrics_out;
    if (metrics_format == "json") {
      config.metrics_format = cli::MetricsFormat::kJson;
    } else if (metrics_format == "openmetrics") {
      config.metrics_format = cli::MetricsFormat::kOpenMetrics;
    }
    if (!history_out.empty()) config.history_file = history_out;
    if (stop_ci_width > 0.0) config.stop_ci_width = stop_ci_width;
    if (progress_seconds > 0.0) config.progress_seconds = progress_seconds;
    if (!coordinator_addr.empty()) config.fabric_listen = coordinator_addr;
    if (!connect_addr.empty()) config.fabric_connect = connect_addr;
    if (!shard_journal.empty()) config.fabric_shard = shard_journal;
    if (!lease_ledger.empty()) config.fabric_ledger = lease_ledger;
    if (lease_size > 0) {
      config.fabric_lease_size = static_cast<std::uint64_t>(lease_size);
    }
    if (lease_timeout > 0.0) {
      config.fabric_lease_timeout_seconds = lease_timeout;
    }
    if (!serve_metrics.empty()) config.fabric_serve_metrics = serve_metrics;
    if (stats_interval >= 0.0) config.fabric_stats_seconds = stats_interval;
    config.stop_flag = &g_stop;
    if (config.resume && config.journal_file.empty()) {
      std::cerr << "phifi_run: --resume requires 'journal_file' in the "
                   "config\n";
      return 2;
    }
    const bool fabric_role =
        !config.fabric_listen.empty() || !config.fabric_connect.empty();
    if (!config.fabric_serve_metrics.empty() &&
        config.fabric_listen.empty()) {
      std::cerr << "phifi_run: --serve-metrics requires --coordinator\n";
      return 2;
    }
    if (fabric_role) {
      if (!config.fabric_listen.empty() && !config.fabric_connect.empty()) {
        std::cerr << "phifi_run: --coordinator and --connect are mutually "
                     "exclusive\n";
        return 2;
      }
      if (!config.fabric_connect.empty() && config.fabric_shard.empty()) {
        std::cerr << "phifi_run: --connect requires --shard-journal\n";
        return 2;
      }
      if (repetitions > 1) {
        std::cerr << "phifi_run: repetitions and fabric roles do not mix "
                     "(run one campaign per fabric)\n";
        return 2;
      }
    }
    const std::string base_log = config.log_file;
    const std::string base_journal = config.journal_file;
    const std::string base_trace = config.trace_file;
    const std::string base_profile = config.profile_file;
    const std::string base_metrics = config.metrics_file;
    for (int rep = 0; rep < repetitions; ++rep) {
      if (repetitions > 1) {
        config.seed = config.seed + 0x9e3779b9ULL * (rep + 1);
        if (!base_log.empty()) {
          config.log_file = base_log + "." + std::to_string(rep);
        }
        if (!base_journal.empty()) {
          config.journal_file = base_journal + "." + std::to_string(rep);
        }
        if (!base_trace.empty()) {
          config.trace_file = base_trace + "." + std::to_string(rep);
        }
        if (!base_profile.empty()) {
          config.profile_file = base_profile + "." + std::to_string(rep);
        }
        if (!base_metrics.empty()) {
          config.metrics_file = base_metrics + "." + std::to_string(rep);
        }
        std::cout << "--- repetition " << (rep + 1) << "/" << repetitions
                  << " (seed " << config.seed << ") ---\n";
      }
      const cli::RunSummary summary = cli::run_from_config(config, std::cout);
      std::cout << "\n";
      if (summary.interrupted || summary.aborted) {
        if (!config.journal_file.empty()) {
          std::cout << (summary.interrupted ? "interrupted" : "aborted")
                    << "; completed trials are journaled. Resume with:\n"
                    << "  " << argv[0] << " " << argv[1] << " --resume\n";
        }
        return summary.interrupted ? 130 : 1;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "phifi_run: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

// phifi_run: the artifact's experiment workflow as a command-line tool.
//
//   $ phifi_run <config-file> [repetitions]
//   $ phifi_run --template            # print a config template
//
// Each repetition re-runs the configured campaign with a derived seed, as
// the CAROL-FI scripts did when the paper accumulated its >90k injections
// across batches.
#include <fstream>
#include <iostream>

#include "cli/runner.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  util::init_log_from_env();

  if (argc >= 2 && std::string(argv[1]) == "--template") {
    std::cout << cli::format_config(cli::RunnerConfig{});
    return 0;
  }
  if (argc < 2) {
    std::cerr << "usage: phifi_run <config-file> [repetitions]\n"
              << "       phifi_run --template\n";
    return 2;
  }

  std::ifstream config_stream(argv[1]);
  if (!config_stream) {
    std::cerr << "phifi_run: cannot open '" << argv[1] << "'\n";
    return 2;
  }

  try {
    cli::RunnerConfig config = cli::parse_config(config_stream);
    const int repetitions = argc > 2 ? std::atoi(argv[2]) : 1;
    const std::string base_log = config.log_file;
    for (int rep = 0; rep < repetitions; ++rep) {
      if (repetitions > 1) {
        config.seed = config.seed + 0x9e3779b9ULL * (rep + 1);
        if (!base_log.empty()) {
          config.log_file = base_log + "." + std::to_string(rep);
        }
        std::cout << "--- repetition " << (rep + 1) << "/" << repetitions
                  << " (seed " << config.seed << ") ---\n";
      }
      cli::run_from_config(config, std::cout);
      std::cout << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "phifi_run: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

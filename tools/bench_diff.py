#!/usr/bin/env python3
"""Compare two BENCH_*.json documents row by row — the CI perf gate.

    $ bench_diff.py baseline.json current.json [--threshold 0.5] [--json]

Each BENCH_*.json document (bench/bench_common.hpp's bench_doc) carries a
`bench` name, a `schema_version`, and a `points` array. Points are matched
between the two documents by their identity keys (workload / jobs /
stats_interval_seconds — whatever non-metric keys the point carries), and
only *relative* metrics are compared: speedups, overhead fractions, and
x-vs-baseline ratios. Absolute ms/trial and trials/s depend on the host
the bench ran on, so a committed baseline can only make portable claims
about ratios ("jobs=4 is >= 3x jobs=1", "profiler on is within noise of
off") — and those are exactly what this gate protects.

A relative metric regresses when it moves *against* the claim by more than
the noise threshold:

  - speedup / relative_to_off (higher is better): current < baseline * (1 - t)
  - overhead_fraction (lower is better): current > baseline + t

The threshold is deliberately generous (default 0.5 = 50% relative / +0.5
absolute overhead) because CI machines are noisy; the gate exists to catch
"the fast path stopped being fast" and "the profiler got expensive", not
2% jitter.

Exit codes: 0 = no regression, 1 = at least one regression, 2 = usage or
unreadable/incompatible documents.
"""

import argparse
import json
import sys

# Point keys that identify a row rather than measure it.
IDENTITY_KEYS = ("workload", "jobs", "stats_interval_seconds", "fork_mode")

# Relative metrics and their direction: "up" means higher is better.
RELATIVE_METRICS = {
    "speedup": "up",
    "speedup_telemetry_off": "up",
    "speedup_telemetry_on": "up",
    "relative_to_off": "up",
    "overhead_fraction": "down",
}


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"bench_diff: {path}: {error}\n")
        return None
    if not isinstance(doc, dict) or "points" not in doc:
        sys.stderr.write(f"bench_diff: {path}: not a BENCH_*.json document\n")
        return None
    return doc


def point_key(point):
    """Identity of one point: the non-metric keys, in a stable order."""
    return tuple(
        (key, point[key]) for key in IDENTITY_KEYS if key in point
    )


def key_label(key):
    return ", ".join(f"{name}={value}" for name, value in key) or "(only row)"


def compare(baseline, current, threshold):
    """Yields finding dicts; regression=True entries trip the gate."""
    if baseline.get("bench") != current.get("bench"):
        yield {
            "regression": True,
            "metric": "bench",
            "detail": (
                f"bench name mismatch: baseline is "
                f"'{baseline.get('bench')}', current is "
                f"'{current.get('bench')}'"
            ),
        }
        return
    if baseline.get("schema_version") != current.get("schema_version"):
        yield {
            "regression": True,
            "metric": "schema_version",
            "detail": (
                f"schema mismatch: baseline v{baseline.get('schema_version')}"
                f" vs current v{current.get('schema_version')}"
            ),
        }
        return

    base_points = {point_key(p): p for p in baseline["points"]}
    for point in current["points"]:
        key = point_key(point)
        base = base_points.pop(key, None)
        if base is None:
            yield {
                "regression": False,
                "metric": "coverage",
                "detail": f"new point not in baseline: {key_label(key)}",
            }
            continue
        for metric, direction in RELATIVE_METRICS.items():
            if metric not in base or metric not in point:
                continue
            before = float(base[metric])
            after = float(point[metric])
            if direction == "up":
                regressed = after < before * (1.0 - threshold)
                moved = (
                    f"{metric} fell {before:.3f} -> {after:.3f} "
                    f"(allowed >= {before * (1.0 - threshold):.3f})"
                )
            else:
                regressed = after > before + threshold
                moved = (
                    f"{metric} rose {before:.3f} -> {after:.3f} "
                    f"(allowed <= {before + threshold:.3f})"
                )
            yield {
                "regression": regressed,
                "metric": metric,
                "point": key_label(key),
                "detail": moved,
            }
    for key in base_points:
        yield {
            "regression": True,
            "metric": "coverage",
            "detail": f"baseline point missing from current: {key_label(key)}",
        }


def main():
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json documents; exit 1 on regression."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="noise allowance: relative drop for speedups, absolute rise "
        "for overhead fractions (default 0.5)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args()
    if args.threshold <= 0.0:
        sys.stderr.write("bench_diff: --threshold must be positive\n")
        return 2

    baseline = load_doc(args.baseline)
    current = load_doc(args.current)
    if baseline is None or current is None:
        return 2

    findings = list(compare(baseline, current, args.threshold))
    regressions = [f for f in findings if f["regression"]]

    if args.as_json:
        print(
            json.dumps(
                {
                    "bench": current.get("bench"),
                    "threshold": args.threshold,
                    "regressed": bool(regressions),
                    "findings": findings,
                }
            )
        )
    else:
        name = current.get("bench", "?")
        for finding in findings:
            tag = "REGRESSION" if finding["regression"] else "ok"
            where = finding.get("point", "")
            print(
                f"[{tag}] {name}"
                + (f" [{where}]" if where else "")
                + f": {finding['detail']}"
            )
        checked = sum(1 for f in findings if f["metric"] in RELATIVE_METRICS)
        print(
            f"bench_diff: {name}: {checked} relative metrics checked, "
            f"{len(regressions)} regression(s), threshold {args.threshold}"
        )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

// phifi_parse: the artifact's parser-scripts analog. Reads one or more
// per-trial CSV logs written by phifi_run (or Campaign + TrialLogWriter),
// aggregates them, and prints the outcome/model/window/category tables —
// so stored campaigns can be analyzed or merged without re-running
// anything.
//
//   $ phifi_parse <log.csv> [more.csv ...]
#include <fstream>
#include <iostream>

#include "analysis/pvf.hpp"
#include "core/trial_log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  if (argc < 2) {
    std::cerr << "usage: phifi_parse <log.csv> [more.csv ...]\n";
    return 2;
  }

  std::vector<fi::TrialLogEntry> entries;
  for (int i = 1; i < argc; ++i) {
    std::ifstream stream(argv[i]);
    if (!stream) {
      std::cerr << "phifi_parse: cannot open '" << argv[i] << "'\n";
      return 2;
    }
    try {
      auto batch = fi::TrialLogReader::read(stream);
      entries.insert(entries.end(), batch.begin(), batch.end());
    } catch (const std::exception& error) {
      std::cerr << "phifi_parse: " << argv[i] << ": " << error.what()
                << "\n";
      return 1;
    }
  }

  unsigned windows = 1;
  for (const auto& entry : entries) {
    windows = std::max(windows, entry.window + 1);
  }
  const fi::CampaignResult result =
      fi::TrialLogReader::aggregate(entries, windows);

  util::Table outcomes("Aggregated outcomes (" +
                       std::to_string(entries.size()) + " trials)");
  outcomes.set_header({"slice", "injections", "masked", "sdc", "due"});
  auto add_row = [&outcomes](const std::string& label,
                             const fi::OutcomeTally& tally) {
    outcomes.add_row({label, std::to_string(tally.total()),
                      util::fmt_percent(tally.masked_rate()),
                      util::fmt_percent(tally.sdc_rate()),
                      util::fmt_percent(tally.due_rate())});
  };
  add_row("overall", result.overall);
  for (fi::FaultModel model : fi::kAllFaultModels) {
    add_row(std::string("model ") + std::string(to_string(model)),
            result.by_model[static_cast<std::size_t>(model)]);
  }
  for (unsigned w = 0; w < windows; ++w) {
    add_row("window " + std::to_string(w + 1), result.by_window[w]);
  }
  for (const auto& [category, tally] : result.by_category) {
    add_row("category " + category, tally);
  }
  outcomes.print_text(std::cout);
  return 0;
}

// phifi_parse: the artifact's parser-scripts analog. Reads one or more
// per-trial CSV logs written by phifi_run (or Campaign + TrialLogWriter),
// aggregates them, and prints the outcome/model/window/category tables —
// so stored campaigns can be analyzed or merged without re-running
// anything. With --from-journal it reads binary write-ahead journals
// instead, so a campaign's results can be re-derived from the journal
// alone (e.g. after a crash, without a CSV log ever having been written).
// With --from-trace it reads the NDJSON telemetry trace, rebuilding the
// Fig. 6 PVF-per-time-window and Sec. 6 criticality tables from the
// observability stream — which must agree with the journal-derived counts
// for the same campaign. --json renders every table as one JSON document
// so CI and notebooks can diff results.
//
// With --drift it compares the latest record of two --history ledgers with
// per-cell two-proportion z-tests and exits 3 when any slice moved
// significantly — the CI reliability-regression gate.
//
// With --profile it reads the NDJSON latency-anatomy stream phifi_run
// --profile writes and renders the per-workload, per-phase percentile
// table (count, p50, p95, p99, mean) from the folded log2 histograms —
// the same fold the fleet coordinator applies, so the numbers agree.
//
//   $ phifi_parse [--json] <log.csv> [more.csv ...]
//   $ phifi_parse [--json] --from-journal <campaign.jnl> [more.jnl ...]
//   $ phifi_parse [--json] --from-trace <campaign.trace> [more ...]
//   $ phifi_parse [--json] --profile <campaign.profile> [more ...]
//   $ phifi_parse [--json] --drift <baseline.ndjson> <current.ndjson>
//                 [--alpha <a>]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/drift.hpp"
#include "analysis/pvf.hpp"
#include "analysis/trace_analysis.hpp"
#include "core/campaign_journal.hpp"
#include "core/trial_log.hpp"
#include "telemetry/history.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using phifi::util::json::Value;

/// Loads journals and aggregates them through the same accumulate_trial the
/// live campaign uses. Returns the trial count via `trials`.
int aggregate_journals(const std::vector<std::string>& files,
                       phifi::fi::CampaignResult* result,
                       std::size_t* trials) {
  using namespace phifi;
  unsigned windows = 1;
  std::vector<fi::JournalContents> journals;
  for (const std::string& file : files) {
    try {
      journals.push_back(fi::read_journal(file));
      if (journals.back().dropped_bytes > 0) {
        std::cerr << "phifi_parse: " << file << ": dropped "
                  << journals.back().dropped_bytes
                  << " bytes of torn tail\n";
      }
      windows = std::max(windows, journals.back().header.time_windows);
    } catch (const std::exception& error) {
      std::cerr << "phifi_parse: " << file << ": " << error.what() << "\n";
      return 1;
    }
  }
  result->time_windows = windows;
  result->by_window.resize(windows);
  for (const fi::JournalContents& journal : journals) {
    if (!result->workload.empty() &&
        journal.header.workload != result->workload) {
      std::cerr << "phifi_parse: refusing to merge journals from different "
                   "workloads ('"
                << result->workload << "' vs '" << journal.header.workload
                << "')\n";
      return 1;
    }
    result->workload = journal.header.workload;
    // Within one journal, sort by attempt index and drop duplicates (a
    // resumed campaign can re-append an attempt whose first write survived
    // a torn tail) so the tallies are order-independent. Across files no
    // dedup applies: separate journals are separate campaigns.
    std::vector<fi::JournalRecord> records = journal.records;
    std::stable_sort(records.begin(), records.end(),
                     [](const fi::JournalRecord& a,
                        const fi::JournalRecord& b) {
                       return a.attempt_index < b.attempt_index;
                     });
    const fi::JournalRecord* previous = nullptr;
    for (const fi::JournalRecord& record : records) {
      if (previous != nullptr &&
          previous->attempt_index == record.attempt_index) {
        std::cerr << "phifi_parse: skipping duplicate of attempt "
                  << record.attempt_index << "\n";
        continue;
      }
      previous = &record;
      fi::accumulate_trial(*result, record.trial);
      ++*trials;
    }
  }
  return 0;
}

/// Loads NDJSON traces and rebuilds the tallies via analysis::accumulate_trace.
int aggregate_traces(const std::vector<std::string>& files,
                     phifi::fi::CampaignResult* result, std::size_t* trials) {
  using namespace phifi;
  for (const std::string& file : files) {
    try {
      const telemetry::TraceContents contents =
          telemetry::read_trace_file(file);
      if (contents.dropped_bytes > 0) {
        std::cerr << "phifi_parse: " << file << ": dropped "
                  << contents.dropped_bytes << " bytes of torn tail\n";
      }
      analysis::accumulate_trace(*result, contents);
      *trials += contents.trials.size();
    } catch (const std::exception& error) {
      std::cerr << "phifi_parse: " << file << ": " << error.what() << "\n";
      return 1;
    }
  }
  return 0;
}

Value tally_json(const phifi::fi::OutcomeTally& tally) {
  Value entry = Value::object();
  entry["injections"] = tally.total();
  entry["masked"] = tally.masked;
  entry["sdc"] = tally.sdc;
  entry["due"] = tally.due;
  entry["masked_rate"] = tally.masked_rate();
  entry["sdc_rate"] = tally.sdc_rate();
  entry["due_rate"] = tally.due_rate();
  return entry;
}

void print_json(const phifi::fi::CampaignResult& result, std::size_t trials,
                const std::string& source) {
  using namespace phifi;
  Value root = Value::object();
  root["source"] = source;
  root["workload"] = result.workload;
  root["trials"] = static_cast<std::uint64_t>(trials);
  root["not_injected"] = result.not_injected;
  root["overall"] = tally_json(result.overall);
  Value by_model = Value::object();
  for (fi::FaultModel model : fi::kAllFaultModels) {
    by_model[std::string(to_string(model))] =
        tally_json(result.by_model[static_cast<std::size_t>(model)]);
  }
  root["by_model"] = std::move(by_model);
  Value by_window = Value::array();
  for (unsigned w = 0; w < result.time_windows; ++w) {
    Value entry = tally_json(result.by_window[w]);
    entry["window"] = w + 1;
    entry["sdc_pvf"] = analysis::sdc_pvf(result.by_window[w]).point;
    entry["due_pvf"] = analysis::due_pvf(result.by_window[w]).point;
    by_window.push_back(std::move(entry));
  }
  root["by_window"] = std::move(by_window);
  Value by_category = Value::object();
  for (const auto& [category, tally] : result.by_category) {
    by_category[category] = tally_json(tally);
  }
  root["by_category"] = std::move(by_category);
  Value by_frame = Value::object();
  for (const auto& [frame, tally] : result.by_frame) {
    by_frame[frame] = tally_json(tally);
  }
  root["by_frame"] = std::move(by_frame);
  std::cout << root.dump() << "\n";
}

void print_text(const phifi::fi::CampaignResult& result, std::size_t trials,
                const std::string& source) {
  using namespace phifi;
  util::Table outcomes(
      "Aggregated outcomes (" + std::to_string(trials) + " trials" +
      (source == "csv" ? "" : ", from " + source) +
      (result.workload.empty() ? "" : ", " + result.workload) + ")");
  outcomes.set_header({"slice", "injections", "masked", "sdc", "due"});
  auto add_row = [&outcomes](const std::string& label,
                             const fi::OutcomeTally& tally) {
    outcomes.add_row({label, std::to_string(tally.total()),
                      util::fmt_percent(tally.masked_rate()),
                      util::fmt_percent(tally.sdc_rate()),
                      util::fmt_percent(tally.due_rate())});
  };
  add_row("overall", result.overall);
  for (fi::FaultModel model : fi::kAllFaultModels) {
    add_row(std::string("model ") + std::string(to_string(model)),
            result.by_model[static_cast<std::size_t>(model)]);
  }
  for (unsigned w = 0; w < result.time_windows; ++w) {
    add_row("window " + std::to_string(w + 1), result.by_window[w]);
  }
  for (const auto& [category, tally] : result.by_category) {
    add_row("category " + category, tally);
  }
  outcomes.print_text(std::cout);
}

std::string fmt_double(double value, int decimals) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

/// Loads the *latest* record of a --history ledger (the record the most
/// recent campaign appended).
int load_latest_history(const std::string& file,
                        phifi::telemetry::HistoryRecord* record) {
  using namespace phifi;
  try {
    const std::vector<telemetry::HistoryRecord> records =
        telemetry::read_history_file(file);
    if (records.empty()) {
      std::cerr << "phifi_parse: " << file << ": no campaign records\n";
      return 1;
    }
    *record = records.back();
  } catch (const std::exception& error) {
    std::cerr << "phifi_parse: " << file << ": " << error.what() << "\n";
    return 1;
  }
  return 0;
}

/// --drift: exit 0 = statistically quiet, 3 = significant movement.
int run_drift(const std::string& baseline_file,
              const std::string& current_file, double alpha, bool json) {
  using namespace phifi;
  telemetry::HistoryRecord baseline;
  telemetry::HistoryRecord current;
  if (load_latest_history(baseline_file, &baseline) != 0) return 1;
  if (load_latest_history(current_file, &current) != 0) return 1;

  analysis::DriftReport report;
  try {
    report = analysis::compute_drift(baseline, current, alpha);
  } catch (const std::exception& error) {
    std::cerr << "phifi_parse: " << error.what() << "\n";
    return 1;
  }

  if (json) {
    Value root = Value::object();
    root["workload"] = report.workload;
    root["alpha"] = report.alpha;
    root["baseline_revision"] = baseline.git_revision;
    root["current_revision"] = current.git_revision;
    root["any_significant"] = report.any_significant;
    Value entries = Value::array();
    for (const analysis::DriftEntry& entry : report.entries) {
      Value row = Value::object();
      row["slice"] = entry.slice;
      row["baseline_events"] = entry.baseline_events;
      row["baseline_trials"] = entry.baseline_trials;
      row["current_events"] = entry.current_events;
      row["current_trials"] = entry.current_trials;
      row["baseline_rate"] = entry.baseline_rate;
      row["current_rate"] = entry.current_rate;
      row["z"] = entry.z;
      row["p_value"] = entry.p_value;
      row["significant"] = entry.significant;
      entries.push_back(std::move(row));
    }
    root["entries"] = std::move(entries);
    Value unmatched = Value::array();
    for (const std::string& cell : report.unmatched_cells) {
      unmatched.push_back(cell);
    }
    root["unmatched_cells"] = std::move(unmatched);
    std::cout << root.dump() << "\n";
  } else {
    util::Table table("PVF drift - " + report.workload + " (alpha " +
                      fmt_double(report.alpha, 3) + ")");
    table.set_header(
        {"slice", "baseline", "current", "z", "p-value", "verdict"});
    for (const analysis::DriftEntry& entry : report.entries) {
      table.add_row({entry.slice,
                     util::fmt_percent(entry.baseline_rate) + " (" +
                         std::to_string(entry.baseline_events) + "/" +
                         std::to_string(entry.baseline_trials) + ")",
                     util::fmt_percent(entry.current_rate) + " (" +
                         std::to_string(entry.current_events) + "/" +
                         std::to_string(entry.current_trials) + ")",
                     fmt_double(entry.z, 2), fmt_double(entry.p_value, 4),
                     entry.significant ? "DRIFT" : "ok"});
    }
    table.print_text(std::cout);
    for (const std::string& cell : report.unmatched_cells) {
      std::cout << "note: cell " << cell << " not compared\n";
    }
    std::cout << (report.any_significant
                      ? "verdict: significant PVF movement detected\n"
                      : "verdict: no significant movement\n");
  }
  return report.any_significant ? 3 : 0;
}

/// --profile: fold per-trial latency records into per-workload histograms
/// and render the phase percentile table.
int run_profile(const std::vector<std::string>& files, bool json) {
  using namespace phifi;
  // Folding by workload keeps mixed files (e.g. merged fleet shards over
  // different workloads) readable; within one campaign there is one key.
  std::map<std::string, telemetry::ProfileSnapshot> by_workload;
  for (const std::string& file : files) {
    try {
      const telemetry::ProfileContents contents =
          telemetry::read_profile_file(file);
      if (contents.dropped_bytes > 0) {
        std::cerr << "phifi_parse: " << file << ": dropped "
                  << contents.dropped_bytes << " bytes of torn tail\n";
      }
      for (const telemetry::TrialProfile& trial : contents.trials) {
        telemetry::ProfileSnapshot& snapshot = by_workload[trial.workload];
        for (std::size_t p = 0; p < telemetry::kProfilePhaseCount; ++p) {
          snapshot.phases[p].observe(trial.phase_us[p]);
        }
      }
    } catch (const std::exception& error) {
      std::cerr << "phifi_parse: " << file << ": " << error.what() << "\n";
      return 1;
    }
  }
  if (by_workload.empty()) {
    std::cerr << "phifi_parse: no profile records\n";
    return 1;
  }
  if (json) {
    Value root = Value::object();
    root["source"] = std::string("profile");
    Value workloads = Value::object();
    for (const auto& [workload, snapshot] : by_workload) {
      Value entry = Value::object();
      entry["trials"] = snapshot.trials();
      Value phases = Value::array();
      for (std::size_t p = 0; p < telemetry::kProfilePhaseCount; ++p) {
        const telemetry::ProfilePhaseHist& hist = snapshot.phases[p];
        Value row = Value::object();
        row["phase"] = std::string(
            to_string(static_cast<telemetry::ProfilePhase>(p)));
        row["count"] = hist.count;
        row["sum_us"] = hist.sum_us;
        row["mean_ms"] = hist.mean_ms();
        row["p50_ms"] = telemetry::profile_percentile_ms(hist, 50);
        row["p95_ms"] = telemetry::profile_percentile_ms(hist, 95);
        row["p99_ms"] = telemetry::profile_percentile_ms(hist, 99);
        phases.push_back(std::move(row));
      }
      entry["phases"] = std::move(phases);
      workloads[workload] = std::move(entry);
    }
    root["workloads"] = std::move(workloads);
    std::cout << root.dump() << "\n";
  } else {
    for (const auto& [workload, snapshot] : by_workload) {
      util::Table table("Trial latency anatomy - " +
                        (workload.empty() ? std::string("(unknown)")
                                          : workload) +
                        " (" + std::to_string(snapshot.trials()) +
                        " trials)");
      table.set_header(
          {"phase", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"});
      for (std::size_t p = 0; p < telemetry::kProfilePhaseCount; ++p) {
        const telemetry::ProfilePhaseHist& hist = snapshot.phases[p];
        table.add_row(
            {std::string(to_string(static_cast<telemetry::ProfilePhase>(p))),
             std::to_string(hist.count),
             fmt_double(telemetry::profile_percentile_ms(hist, 50), 3),
             fmt_double(telemetry::profile_percentile_ms(hist, 95), 3),
             fmt_double(telemetry::profile_percentile_ms(hist, 99), 3),
             fmt_double(hist.mean_ms(), 3)});
      }
      table.print_text(std::cout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phifi;

  bool json = false;
  std::string source = "csv";
  double alpha = 0.05;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--from-journal") {
      source = "journal";
    } else if (arg == "--from-trace") {
      source = "trace";
    } else if (arg == "--profile") {
      source = "profile";
    } else if (arg == "--drift") {
      source = "drift";
    } else if (arg == "--alpha") {
      if (i + 1 >= argc) {
        std::cerr << "phifi_parse: --alpha needs a value\n";
        return 2;
      }
      alpha = std::atof(argv[++i]);
      if (alpha <= 0.0 || alpha >= 1.0) {
        std::cerr << "phifi_parse: --alpha must be in (0, 1)\n";
        return 2;
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (source == "drift" && files.size() != 2)) {
    std::cerr << "usage: phifi_parse [--json] <log.csv> [more.csv ...]\n"
              << "       phifi_parse [--json] --from-journal <campaign.jnl> "
                 "[more ...]\n"
              << "       phifi_parse [--json] --from-trace <campaign.trace> "
                 "[more ...]\n"
              << "       phifi_parse [--json] --profile <campaign.profile> "
                 "[more ...]\n"
              << "       phifi_parse [--json] --drift <baseline.ndjson> "
                 "<current.ndjson> [--alpha <a>]\n"
              << "--profile renders the per-workload phase latency table "
                 "from phifi_run --profile output\n"
              << "--drift compares the latest campaign record of two "
                 "--history ledgers;\nexit 3 = significant PVF movement\n";
    return 2;
  }
  if (source == "drift") {
    return run_drift(files[0], files[1], alpha, json);
  }
  if (source == "profile") {
    return run_profile(files, json);
  }

  fi::CampaignResult result;
  std::size_t trials = 0;
  if (source == "journal") {
    const int status = aggregate_journals(files, &result, &trials);
    if (status != 0) return status;
  } else if (source == "trace") {
    const int status = aggregate_traces(files, &result, &trials);
    if (status != 0) return status;
  } else {
    std::vector<fi::TrialLogEntry> entries;
    for (const std::string& file : files) {
      std::ifstream stream(file);
      if (!stream) {
        std::cerr << "phifi_parse: cannot open '" << file << "'\n";
        return 2;
      }
      try {
        auto batch = fi::TrialLogReader::read(stream);
        entries.insert(entries.end(), batch.begin(), batch.end());
      } catch (const std::exception& error) {
        std::cerr << "phifi_parse: " << file << ": " << error.what() << "\n";
        return 1;
      }
    }
    unsigned windows = 1;
    for (const auto& entry : entries) {
      windows = std::max(windows, entry.window + 1);
    }
    result = fi::TrialLogReader::aggregate(entries, windows);
    trials = entries.size();
  }

  if (json) {
    print_json(result, trials, source);
  } else {
    print_text(result, trials, source);
  }
  return 0;
}

// phifi_parse: the artifact's parser-scripts analog. Reads one or more
// per-trial CSV logs written by phifi_run (or Campaign + TrialLogWriter),
// aggregates them, and prints the outcome/model/window/category tables —
// so stored campaigns can be analyzed or merged without re-running
// anything. With --from-journal it reads binary write-ahead journals
// instead, so a campaign's results can be re-derived from the journal
// alone (e.g. after a crash, without a CSV log ever having been written).
//
//   $ phifi_parse <log.csv> [more.csv ...]
//   $ phifi_parse --from-journal <campaign.jnl> [more.jnl ...]
#include <fstream>
#include <iostream>

#include "analysis/pvf.hpp"
#include "core/campaign_journal.hpp"
#include "core/trial_log.hpp"
#include "util/table.hpp"

namespace {

/// Loads journals and aggregates them through the same accumulate_trial the
/// live campaign uses. Returns the trial count via `trials`.
int aggregate_journals(int argc, char** argv, phifi::fi::CampaignResult* result,
                       std::size_t* trials) {
  using namespace phifi;
  unsigned windows = 1;
  std::vector<fi::JournalContents> journals;
  for (int i = 2; i < argc; ++i) {
    try {
      journals.push_back(fi::read_journal(argv[i]));
      if (journals.back().dropped_bytes > 0) {
        std::cerr << "phifi_parse: " << argv[i] << ": dropped "
                  << journals.back().dropped_bytes
                  << " bytes of torn tail\n";
      }
      windows = std::max(windows, journals.back().header.time_windows);
    } catch (const std::exception& error) {
      std::cerr << "phifi_parse: " << argv[i] << ": " << error.what() << "\n";
      return 1;
    }
  }
  result->time_windows = windows;
  result->by_window.resize(windows);
  for (const fi::JournalContents& journal : journals) {
    if (!result->workload.empty() &&
        journal.header.workload != result->workload) {
      std::cerr << "phifi_parse: refusing to merge journals from different "
                   "workloads ('"
                << result->workload << "' vs '" << journal.header.workload
                << "')\n";
      return 1;
    }
    result->workload = journal.header.workload;
    for (const fi::JournalRecord& record : journal.records) {
      fi::accumulate_trial(*result, record.trial);
      ++*trials;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phifi;
  if (argc < 2) {
    std::cerr << "usage: phifi_parse <log.csv> [more.csv ...]\n"
              << "       phifi_parse --from-journal <campaign.jnl> [more "
                 "...]\n";
    return 2;
  }

  fi::CampaignResult result;
  std::size_t trials = 0;
  const bool from_journal = std::string(argv[1]) == "--from-journal";
  if (from_journal) {
    if (argc < 3) {
      std::cerr << "phifi_parse: --from-journal needs at least one file\n";
      return 2;
    }
    const int status = aggregate_journals(argc, argv, &result, &trials);
    if (status != 0) return status;
  } else {
    std::vector<fi::TrialLogEntry> entries;
    for (int i = 1; i < argc; ++i) {
      std::ifstream stream(argv[i]);
      if (!stream) {
        std::cerr << "phifi_parse: cannot open '" << argv[i] << "'\n";
        return 2;
      }
      try {
        auto batch = fi::TrialLogReader::read(stream);
        entries.insert(entries.end(), batch.begin(), batch.end());
      } catch (const std::exception& error) {
        std::cerr << "phifi_parse: " << argv[i] << ": " << error.what()
                  << "\n";
        return 1;
      }
    }
    unsigned windows = 1;
    for (const auto& entry : entries) {
      windows = std::max(windows, entry.window + 1);
    }
    result = fi::TrialLogReader::aggregate(entries, windows);
    trials = entries.size();
  }

  util::Table outcomes(
      "Aggregated outcomes (" + std::to_string(trials) + " trials" +
      (from_journal ? ", from journal" : "") +
      (result.workload.empty() ? "" : ", " + result.workload) + ")");
  outcomes.set_header({"slice", "injections", "masked", "sdc", "due"});
  auto add_row = [&outcomes](const std::string& label,
                             const fi::OutcomeTally& tally) {
    outcomes.add_row({label, std::to_string(tally.total()),
                      util::fmt_percent(tally.masked_rate()),
                      util::fmt_percent(tally.sdc_rate()),
                      util::fmt_percent(tally.due_rate())});
  };
  add_row("overall", result.overall);
  for (fi::FaultModel model : fi::kAllFaultModels) {
    add_row(std::string("model ") + std::string(to_string(model)),
            result.by_model[static_cast<std::size_t>(model)]);
  }
  for (unsigned w = 0; w < result.time_windows; ++w) {
    add_row("window " + std::to_string(w + 1), result.by_window[w]);
  }
  for (const auto& [category, tally] : result.by_category) {
    add_row("category " + category, tally);
  }
  outcomes.print_text(std::cout);
  return 0;
}

#include "model.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace phicheck {

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",        "return",
      "sizeof", "catch",  "alignof", "decltype",     "static_assert",
      "throw",  "new",    "delete", "co_return",     "assert",
  };
  return kw;
}

bool is_stop_token(const Token& t) {
  if (t.kind == TokKind::kString || t.kind == TokKind::kNumber) return true;
  if (t.kind == TokKind::kPunct) {
    const std::string& p = t.text;
    return p == ";" || p == "}" || p == "{" || p == "=" || p == "(" ||
           p == "[" || p == "]";
  }
  if (t.kind == TokKind::kIdent) {
    return t.text == "struct" || t.text == "class" || t.text == "union" ||
           t.text == "enum" || t.text == "namespace" || t.text == "return" ||
           t.text == "do" || t.text == "else" || t.text == "extern";
  }
  return false;
}

/// Walks back from tokens[open] == "{" looking for the ")" that closes a
/// parameter list; handles constructor init lists by hopping over
/// `: member(init), member(init)` groups. Returns the function name, or ""
/// when this brace is not a function body.
std::string function_name_before(const std::vector<Token>& tokens,
                                 std::size_t open) {
  std::size_t k = open;
  int steps = 0;
  while (k > 0 && ++steps < 64) {
    --k;
    const Token& t = tokens[k];
    if (t.kind == TokKind::kPunct && t.text == ")") {
      // Match back to "(".
      int depth = 1;
      std::size_t p = k;
      while (p > 0 && depth > 0) {
        --p;
        if (tokens[p].kind == TokKind::kPunct) {
          if (tokens[p].text == ")") ++depth;
          if (tokens[p].text == "(") --depth;
        }
      }
      if (depth != 0 || p == 0) return "";
      const Token& before = tokens[p - 1];
      if (before.kind != TokKind::kIdent) return "";  // lambda, operator, cast
      if (control_keywords().count(before.text) != 0 || before.text == "if" ||
          before.text == "for" || before.text == "while" ||
          before.text == "switch" || before.text == "catch") {
        return "";
      }
      // Constructor init list: `Name(args) : member_(x) {` — the ")" we
      // found belongs to `member_(x)`; hop over the group and keep looking.
      if (p >= 2 && tokens[p - 2].kind == TokKind::kPunct &&
          (tokens[p - 2].text == ":" || tokens[p - 2].text == ",")) {
        k = p - 2;
        continue;
      }
      std::string name = before.text;
      if (p >= 2 && tokens[p - 2].kind == TokKind::kPunct &&
          tokens[p - 2].text == "~") {
        name = "~" + name;
      }
      return name;
    }
    if (is_stop_token(t)) return "";
    // Otherwise: trailing qualifiers (const, noexcept, override, ...),
    // trailing return types, template closers — keep walking.
  }
  return "";
}

void extract_calls(const std::vector<Token>& tokens, FunctionDef& fn) {
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    const Token& t = tokens[i];
    const Token& next = tokens[i + 1];
    if (next.kind != TokKind::kPunct || next.text != "(") continue;
    if (t.kind == TokKind::kIdent) {
      if (control_keywords().count(t.text) != 0) continue;
      const Token& prev = tokens[i - 1];
      const bool member = prev.kind == TokKind::kPunct &&
                          (prev.text == "." || prev.text == "->");
      if (!member && prev.kind == TokKind::kIdent) continue;  // declaration
      if (!member && prev.kind == TokKind::kPunct && prev.text == ">") {
        continue;  // `Type<T> name(` declaration
      }
      fn.calls.push_back({t.text, member, t.line, i});
    } else if (t.kind == TokKind::kPunct && t.text == ">") {
      // Templated call `name<T...>(...)`: find the matching "<".
      int depth = 1;
      std::size_t p = i;
      while (p > fn.body_begin && depth > 0) {
        --p;
        if (tokens[p].kind == TokKind::kPunct) {
          if (tokens[p].text == ">") ++depth;
          if (tokens[p].text == "<") --depth;
        }
      }
      if (depth != 0 || p <= fn.body_begin) continue;
      const Token& callee = tokens[p - 1];
      if (callee.kind != TokKind::kIdent ||
          control_keywords().count(callee.text) != 0) {
        continue;
      }
      const Token& prev = tokens[p - 2];
      const bool member = prev.kind == TokKind::kPunct &&
                          (prev.text == "." || prev.text == "->");
      if (!member && prev.kind == TokKind::kIdent) continue;  // declaration
      fn.calls.push_back({callee.text, member, callee.line, p - 1});
    }
  }
}

void extract_members(const std::vector<Token>& tokens, StructDef& s) {
  std::size_t i = s.body_begin + 1;
  while (i < s.body_end) {
    const Token& t = tokens[i];
    // Access specifiers.
    if (t.kind == TokKind::kIdent &&
        (t.text == "public" || t.text == "protected" || t.text == "private") &&
        i + 1 < s.body_end && tokens[i + 1].text == ":") {
      i += 2;
      continue;
    }
    // Collect one declaration run up to ";" at this depth.
    std::size_t j = i;
    int depth = 0;
    bool has_paren = false;
    while (j < s.body_end) {
      const Token& u = tokens[j];
      if (u.kind == TokKind::kPunct) {
        if (u.text == "{" || u.text == "(") {
          ++depth;
          if (u.text == "(") has_paren = true;
        } else if (u.text == "}" || u.text == ")") {
          --depth;
        } else if (u.text == ";" && depth == 0) {
          break;
        }
      }
      ++j;
    }
    if (j >= s.body_end) break;
    const std::size_t stmt_end = j;  // index of ";"
    const Token& first = tokens[i];
    const bool skip =
        has_paren || first.kind != TokKind::kIdent ||
        first.text == "static" || first.text == "using" ||
        first.text == "typedef" || first.text == "friend" ||
        first.text == "template" || first.text == "struct" ||
        first.text == "class" || first.text == "enum";
    if (!skip && stmt_end > i) {
      // Declarator: `...type... name ;` or `...type... name [ N ] ;` or
      // with `= init` before the ";".
      std::size_t decl_end = stmt_end;
      for (std::size_t k = i; k < stmt_end; ++k) {
        if (tokens[k].kind == TokKind::kPunct && tokens[k].text == "=") {
          decl_end = k;
          break;
        }
      }
      StructMember m;
      std::size_t name_at = decl_end;  // will move to the member name
      std::size_t back = decl_end - 1;
      if (tokens[back].kind == TokKind::kPunct && tokens[back].text == "]") {
        m.is_array = true;
        while (back > i && tokens[back].text != "[") --back;
        --back;  // ident before "["
      }
      if (tokens[back].kind == TokKind::kIdent) {
        m.name = tokens[back].text;
        m.line = tokens[back].line;
        name_at = back;
        std::ostringstream type;
        for (std::size_t k = i; k < name_at; ++k) {
          if (k > i) type << " ";
          type << tokens[k].text;
          if (tokens[k].kind == TokKind::kIdent && tokens[k].text == "atomic") {
            m.is_atomic = true;
          }
          if (tokens[k].kind == TokKind::kPunct && tokens[k].text == "*") {
            m.is_pointer = true;
          }
        }
        m.type_text = type.str();
        if (!m.type_text.empty()) s.members.push_back(std::move(m));
      }
    }
    i = stmt_end + 1;
  }
}

}  // namespace

std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

SourceFile model_file(std::string path, const std::string& text) {
  SourceFile out;
  out.lexed = lex(std::move(path), text);
  const std::vector<Token>& tokens = out.lexed.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::kPunct && t.text == "{") {
      const std::string name = function_name_before(tokens, i);
      if (!name.empty()) {
        FunctionDef fn;
        fn.name = name;
        fn.line = t.line;
        fn.body_begin = i;
        fn.body_end = match_brace(tokens, i);
        extract_calls(tokens, fn);
        out.functions.push_back(std::move(fn));
      }
    }
    if (t.kind == TokKind::kIdent && (t.text == "struct" || t.text == "class") &&
        i + 1 < tokens.size() && tokens[i + 1].kind == TokKind::kIdent) {
      // Find "{" (definition) or ";" (forward declaration) ahead.
      std::size_t j = i + 2;
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        ++j;
      }
      if (j < tokens.size() && tokens[j].text == "{") {
        StructDef s;
        s.name = tokens[i + 1].text;
        s.line = tokens[i + 1].line;
        s.body_begin = j;
        s.body_end = match_brace(tokens, j);
        extract_members(tokens, s);
        out.structs.push_back(std::move(s));
      }
    }
  }
  return out;
}

Codebase load_codebase(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  Codebase cb;
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) continue;
    if (fs::is_regular_file(root)) {
      paths.emplace_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream stream(path);
    std::ostringstream text;
    text << stream.rdbuf();
    cb.files.push_back(model_file(path.generic_string(), text.str()));
  }
  for (const SourceFile& file : cb.files) {
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind == TokKind::kIdent && tokens[i].text == "enum") {
        std::size_t j = i + 1;
        if (tokens[j].kind == TokKind::kIdent &&
            (tokens[j].text == "class" || tokens[j].text == "struct")) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
          cb.enums.emplace(tokens[j].text, tokens[j].line);
          // Full definition: collect enumerators between "{" and its match.
          // Skip over an underlying-type spec (`: std::uint8_t`); a ";" first
          // means forward declaration.
          std::size_t k = j + 1;
          while (k < tokens.size() && tokens[k].text != "{" &&
                 tokens[k].text != ";") {
            ++k;
          }
          if (k < tokens.size() && tokens[k].text == "{") {
            EnumDef def;
            def.name = tokens[j].text;
            def.file = file.lexed.path;
            def.line = tokens[j].line;
            const std::size_t close = match_brace(tokens, k);
            std::size_t p = k + 1;
            while (p < close) {
              if (tokens[p].kind == TokKind::kIdent &&
                  (p == k + 1 || tokens[p - 1].text == ",")) {
                def.enumerators.push_back(tokens[p].text);
                // Skip the (optional) initializer up to the next "," at
                // enum-body depth; initializers may contain parens.
                int depth = 0;
                while (p < close) {
                  const Token& u = tokens[p];
                  if (u.kind == TokKind::kPunct) {
                    if (u.text == "(" || u.text == "{") ++depth;
                    if (u.text == ")" || u.text == "}") --depth;
                    if (u.text == "," && depth == 0) break;
                  }
                  ++p;
                }
              }
              ++p;
            }
            cb.enum_defs.push_back(std::move(def));
          }
        }
      }
    }
  }
  return cb;
}

const FunctionDef* Codebase::find_function(const std::string& name,
                                           const SourceFile** file) const {
  for (const SourceFile& f : files) {
    for (const FunctionDef& fn : f.functions) {
      if (fn.name == name) {
        if (file != nullptr) *file = &f;
        return &fn;
      }
    }
  }
  return nullptr;
}

std::vector<std::pair<const SourceFile*, const FunctionDef*>>
Codebase::find_functions(const std::string& name) const {
  std::vector<std::pair<const SourceFile*, const FunctionDef*>> out;
  for (const SourceFile& f : files) {
    for (const FunctionDef& fn : f.functions) {
      if (fn.name == name) out.emplace_back(&f, &fn);
    }
  }
  return out;
}

const FunctionDef* function_below(const SourceFile& file, int ann_line,
                                  int window) {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : file.functions) {
    if (fn.line < ann_line || fn.line - ann_line > window) continue;
    if (best == nullptr || fn.line < best->line) best = &fn;
  }
  return best;
}

const FunctionDef* enclosing_function(const SourceFile& file, int line) {
  const std::vector<Token>& tokens = file.lexed.tokens;
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : file.functions) {
    if (fn.body_end >= tokens.size()) continue;
    const int begin = tokens[fn.body_begin].line;
    const int end = tokens[fn.body_end].line;
    if (line < begin || line > end) continue;
    // Innermost wins: function bodies nest only via lambdas/local classes,
    // whose braces never model as separate functions, so the latest-starting
    // candidate is the tightest.
    if (best == nullptr || begin > tokens[best->body_begin].line) best = &fn;
  }
  return best;
}

}  // namespace phicheck

// signal-safety: walks the call graph reachable from every registered
// signal handler and flags anything outside the curated async-signal-safe
// allowlist. A fault-injection supervisor lives and dies by its SIGINT/
// SIGTERM handlers: one malloc or stdio call in that path and a campaign
// interrupt can deadlock inside the allocator the injected child just
// corrupted the parent's view of.
#include <fstream>
#include <set>
#include <sstream>

#include "checks.hpp"

namespace phicheck {

namespace {

struct Allowlist {
  std::set<std::string> functions;  // free functions (POSIX safe set + curated)
  std::set<std::string> methods;    // `.name(` member calls (atomic ops)
};

Allowlist load_allowlist(const std::string& path) {
  Allowlist out;
  std::ifstream stream(path);
  std::string line;
  while (std::getline(stream, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string word;
    while (words >> word) {
      if (word[0] == '.') {
        out.methods.insert(word.substr(1));
      } else {
        out.functions.insert(word);
      }
    }
  }
  return out;
}

/// Known-unsafe even though defined in this codebase: the logging layer
/// allocates (ostringstream) and writes via stdio. Listing them here means
/// the walker flags the *intent* at the first call instead of descending
/// into implementation details.
const std::set<std::string>& deny_list() {
  static const std::set<std::string> deny = {
      "log_debug", "log_info",  "log_warn", "log_error", "log_line",
      "LogStream", "malloc",    "calloc",   "realloc",   "free",
      "printf",    "fprintf",   "snprintf", "sprintf",   "puts",
      "fputs",     "fopen",     "fclose",   "fflush",    "exit",
      "make_unique", "make_shared",
  };
  return deny;
}

/// Identifiers whose mere appearance in a handler-reachable body is a
/// finding (stream objects and lock types are used without call syntax).
const std::set<std::string>& banned_idents() {
  static const std::set<std::string> banned = {
      "cout", "cerr", "clog", "endl", "lock_guard", "unique_lock",
      "scoped_lock", "mutex", "ostringstream", "stringstream",
  };
  return banned;
}

struct Walker {
  const Codebase& cb;
  const Allowlist& allow;
  std::vector<Finding>& findings;
  std::set<std::string> visited;

  void walk(const std::string& handler, const SourceFile& file,
            const FunctionDef& fn, const std::string& chain) {
    if (!visited.insert(fn.name).second) return;
    // Banned identifiers anywhere in the body.
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = file.lexed.tokens[i];
      if (t.kind == TokKind::kIdent && banned_idents().count(t.text) != 0 &&
          !file.lexed.allows("signal-safety", t.line)) {
        findings.push_back(
            {file.lexed.path, t.line, "signal-safety",
             "'" + t.text + "' used in code reachable from signal handler '" +
                 handler + "' (via " + chain + ")"});
      }
      if (t.kind == TokKind::kIdent && t.text == "new" &&
          !file.lexed.allows("signal-safety", t.line)) {
        findings.push_back({file.lexed.path, t.line, "signal-safety",
                            "heap allocation ('new') reachable from signal "
                            "handler '" + handler + "' (via " + chain + ")"});
      }
    }
    for (const CallSite& call : fn.calls) {
      if (call.member) {
        if (allow.methods.count(call.name) != 0) continue;
      } else {
        if (allow.functions.count(call.name) != 0) continue;
      }
      if (deny_list().count(call.name) != 0) {
        if (!file.lexed.allows("signal-safety", call.line)) {
          findings.push_back(
              {file.lexed.path, call.line, "signal-safety",
               "call to '" + call.name +
                   "' is not async-signal-safe; reachable from signal "
                   "handler '" + handler + "' (via " + chain + ")"});
        }
        continue;
      }
      const SourceFile* callee_file = nullptr;
      const FunctionDef* callee = cb.find_function(call.name, &callee_file);
      if (callee != nullptr) {
        walk(handler, *callee_file, *callee, chain + " -> " + call.name);
        continue;
      }
      if (!file.lexed.allows("signal-safety", call.line)) {
        findings.push_back(
            {file.lexed.path, call.line, "signal-safety",
             std::string(call.member ? "member call '." : "call to '") +
                 call.name +
                 "' is not on the async-signal-safe allowlist; reachable "
                 "from signal handler '" + handler + "' (via " + chain + ")"});
      }
    }
  }
};

/// Handler names registered in `file` via signal()/std::signal() second
/// argument or sa_handler/sa_sigaction assignment.
std::vector<std::string> find_handlers(const SourceFile& file) {
  std::vector<std::string> handlers;
  const std::vector<Token>& tokens = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::kIdent && t.text == "signal" &&
        tokens[i + 1].text == "(") {
      // Second top-level argument.
      int depth = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        const Token& u = tokens[j];
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "(") ++depth;
        if (u.text == ")") {
          if (--depth == 0) break;
        }
        if (u.text == "," && depth == 1) {
          std::size_t a = j + 1;
          // Skip qualification (std::, ::).
          while (a + 1 < tokens.size() && tokens[a + 1].text == "::") a += 2;
          if (a < tokens.size() && tokens[a].kind == TokKind::kIdent &&
              tokens[a].text != "SIG_DFL" && tokens[a].text != "SIG_IGN" &&
              tokens[a].text != "nullptr") {
            handlers.push_back(tokens[a].text);
          }
          break;
        }
      }
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "sa_handler" || t.text == "sa_sigaction") &&
        tokens[i + 1].text == "=" && i + 2 < tokens.size()) {
      std::size_t a = i + 2;
      while (a + 1 < tokens.size() && tokens[a + 1].text == "::") a += 2;
      if (tokens[a].kind == TokKind::kIdent && tokens[a].text != "SIG_DFL" &&
          tokens[a].text != "SIG_IGN") {
        handlers.push_back(tokens[a].text);
      }
    }
  }
  return handlers;
}

}  // namespace

std::vector<Finding> check_signal_safety(const Codebase& cb,
                                         const std::string& allowlist_path) {
  std::vector<Finding> findings;
  const Allowlist allow = load_allowlist(allowlist_path);
  for (const SourceFile& file : cb.files) {
    for (const std::string& handler : find_handlers(file)) {
      const SourceFile* def_file = nullptr;
      const FunctionDef* def = cb.find_function(handler, &def_file);
      if (def == nullptr) {
        findings.push_back(
            {file.lexed.path, 0, "signal-safety",
             "signal handler '" + handler +
                 "' is registered here but its definition was not found in "
                 "the scanned roots"});
        continue;
      }
      Walker walker{cb, allow, findings, {}};
      walker.walk(handler, *def_file, *def, handler);
    }
  }
  return findings;
}

}  // namespace phicheck

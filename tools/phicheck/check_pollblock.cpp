// poll-loop checker: nothing reachable from a `phicheck:poll-loop` root may
// call into the blocking set (sleeps, fsync, blocking waits, unbounded file
// reads, ...) unless the call site carries `phicheck:blocking-ok(reason)`.
//
// The coordinator's event loop is single-threaded by design
// (docs/STATIC_ANALYSIS.md): one blocked syscall stalls every worker's
// heartbeats, lease grants, and the scrape endpoint at once. The deliberate
// exceptions (the lease-ledger fsync that buys crash durability) must say so
// in-line, with a reason, where the call happens.
//
// Resolution is name-based and deliberately conservative: every definition of
// a called name is walked (`Codebase::find_functions`), because a lexical
// tool that guesses a single receiver type silently under-approximates.
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "model.hpp"

namespace phicheck {

namespace {

const std::set<std::string>& blocking_calls() {
  // Raw syscalls plus the util::io wrappers that front them — matching the
  // wrapper names keeps the finding (and its blocking-ok annotation) at the
  // caller's line, where the blocking decision actually lives.
  static const std::set<std::string> names = {
      "sleep",      "usleep",   "nanosleep", "sleep_for", "sleep_until",
      "fsync",      "fdatasync", "system",   "popen",     "pclose",
      "wait",       "waitpid",  "wait4",     "waitid",    "connect",
      "getaddrinfo", "read",    "fread",     "fgets",     "read_some",
      "read_to_end",
  };
  return names;
}

/// True when the call line (or the line above) carries a
/// `phicheck:blocking-ok(reason)` annotation or an allow(poll-loop).
bool blocking_ok(const SourceFile& file, int line) {
  if (file.lexed.allows("poll-loop", line)) return true;
  for (const Annotation& ann : file.lexed.annotations) {
    if (ann.line != line && ann.line != line - 1) continue;
    if (ann.directive.rfind("blocking-ok(", 0) == 0) return true;
  }
  return false;
}

/// Names of every function annotated `phicheck:fork-child-entry` anywhere
/// in the codebase. These bodies run in a forked child (or grandchild)
/// process, so nothing they do can block the parent's poll loop — the walk
/// must not descend into them, or the fork-server topology (a poll loop
/// that launches trials through a template process) drowns in false
/// positives from the children's deliberate blocking reads and waits.
std::set<std::string> child_entry_names(const Codebase& cb) {
  std::set<std::string> names;
  for (const SourceFile& file : cb.files) {
    for (const Annotation& ann : file.lexed.annotations) {
      if (ann.directive != "fork-child-entry") continue;
      const FunctionDef* fn = function_below(file, ann.line, 5);
      if (fn != nullptr) names.insert(fn->name);
    }
  }
  return names;
}

struct Walker {
  const Codebase& cb;
  const std::set<std::string>& child_entries;
  std::vector<Finding>& findings;
  std::set<const FunctionDef*> visited;

  void walk(const SourceFile& file, const FunctionDef& fn,
            const std::string& chain) {
    if (!visited.insert(&fn).second) return;
    for (const CallSite& call : fn.calls) {
      if (blocking_calls().count(call.name) != 0) {
        if (!blocking_ok(file, call.line)) {
          std::ostringstream msg;
          msg << "blocking call '" << call.name
              << "' reachable from poll loop (" << chain << " -> " << call.name
              << "); annotate phicheck:blocking-ok(reason) if deliberate";
          findings.push_back(
              {file.lexed.path, call.line, "poll-loop", msg.str()});
        }
        // The call site owns the blocking decision: whether annotated or
        // just reported, don't descend into the wrapper and re-flag its
        // interior (util::io wrappers would otherwise fire twice).
        continue;
      }
      // A fork-child entry point executes in its own process: its blocking
      // behavior is the child's business, not the poll loop's.
      if (child_entries.count(call.name) != 0) continue;
      for (const auto& [callee_file, callee] : cb.find_functions(call.name)) {
        walk(*callee_file, *callee, chain + " -> " + call.name);
      }
    }
  }
};

}  // namespace

std::vector<Finding> check_poll_loop(const Codebase& cb) {
  std::vector<Finding> findings;
  const std::set<std::string> child_entries = child_entry_names(cb);
  for (const SourceFile& file : cb.files) {
    for (const Annotation& ann : file.lexed.annotations) {
      if (ann.directive != "poll-loop") continue;
      const FunctionDef* root = function_below(file, ann.line, 12);
      if (root == nullptr) {
        findings.push_back(
            {file.lexed.path, ann.line, "poll-loop",
             "phicheck:poll-loop annotation does not precede a function "
             "definition"});
        continue;
      }
      // Fresh visited set per root so overlapping call trees still report
      // against every annotated loop.
      Walker walker{cb, child_entries, findings, {}};
      walker.walk(file, *root, root->name);
    }
  }
  return findings;
}

}  // namespace phicheck

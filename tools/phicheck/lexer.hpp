// Minimal C++ lexer for phicheck.
//
// phicheck is a project-specific linter, not a compiler: it needs token
// streams, line numbers, and the `// phicheck:` annotation comments — not a
// full grammar. Comments and literals are consumed correctly (so banned
// identifiers inside strings never fire), everything else is a flat token
// sequence the checkers pattern-match over.
#pragma once

#include <string>
#include <vector>

namespace phicheck {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// One `phicheck:<directive> [args...]` comment. Example:
///   // phicheck:shm-pod phifi::fi::PhaseRecord size=40
/// parses to {line, "shm-pod", "phifi::fi::PhaseRecord size=40"}.
struct Annotation {
  int line = 0;
  std::string directive;
  std::string args;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;

  /// True when an `allow(<checker>)` annotation sits on `line` or the line
  /// above it — the inline suppression mechanism (docs/STATIC_ANALYSIS.md).
  [[nodiscard]] bool allows(const std::string& checker, int line) const;
};

/// Tokenizes `text`. Handles //, /* */, string/char literals (including
/// raw strings and escape sequences), preprocessor lines as plain tokens.
LexedFile lex(std::string path, const std::string& text);

}  // namespace phicheck

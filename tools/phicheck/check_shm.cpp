// shm-pod: every struct that crosses the fork shared-memory channel is
// annotated `// phicheck:shm-pod <qualified-name> size=<N> [atomic]` at its
// definition. The checker lexically vets the members (no pointers, no
// allocating std types, nested struct types must themselves be annotated)
// and emits a generated header of static_asserts — standard layout,
// trivially copyable (lock-free atomics instead, for the `atomic` header
// struct), and a sizeof pin — that is compiled into the core library, so
// accidental layout drift fails the build instead of corrupting trials.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "checks.hpp"

namespace phicheck {

namespace {

struct ShmStruct {
  std::string qualified;   ///< e.g. phifi::fi::PhaseRecord
  std::string tail;        ///< PhaseRecord
  long size = -1;          ///< size= pin; -1 when missing
  bool atomic_ok = false;  ///< `atomic` flag: lock-free asserts, no copyable
  std::string file;
  int line = 0;
  const StructDef* def = nullptr;
  const SourceFile* source = nullptr;
};

const std::set<std::string>& fundamental_types() {
  static const std::set<std::string> ok = {
      "bool",          "char",     "signed",        "unsigned", "short",
      "int",           "long",     "float",         "double",   "size_t",
      "int8_t",        "int16_t",  "int32_t",       "int64_t",  "uint8_t",
      "uint16_t",      "uint32_t", "uint64_t",      "intptr_t", "uintptr_t",
      "ptrdiff_t",     "wchar_t",  "char8_t",       "char16_t", "char32_t",
      "std::int8_t",   "byte",
  };
  return ok;
}

const std::set<std::string>& forbidden_type_words() {
  static const std::set<std::string> bad = {
      "string", "vector",    "map",      "unordered_map", "set",
      "list",   "unique_ptr", "shared_ptr", "function",   "string_view",
      "span",   "optional",  "variant",  "any",           "deque",
  };
  return bad;
}

std::string tail_name(const std::string& qualified) {
  const std::size_t at = qualified.rfind("::");
  return at == std::string::npos ? qualified : qualified.substr(at + 2);
}

/// Last identifier of the member's type text — the tag name for user types
/// ("PhaseRecord phases[32]" -> "PhaseRecord", "std :: uint64_t" ->
/// "uint64_t").
std::string type_tag(const std::string& type_text) {
  std::istringstream words(type_text);
  std::string word;
  std::string last;
  while (words >> word) {
    if (word == "const" || word == "volatile" || word == "::" ||
        word == "struct") {
      continue;
    }
    last = word;
  }
  return last;
}

}  // namespace

std::vector<Finding> check_shm_pod(const Codebase& cb,
                                   const std::string& emit_path) {
  std::vector<Finding> findings;
  std::vector<ShmStruct> structs;

  for (const SourceFile& file : cb.files) {
    for (const Annotation& ann : file.lexed.annotations) {
      if (ann.directive != "shm-pod") continue;
      ShmStruct s;
      s.file = file.lexed.path;
      s.line = ann.line;
      s.source = &file;
      std::istringstream words(ann.args);
      std::string word;
      words >> s.qualified;
      while (words >> word) {
        if (word.rfind("size=", 0) == 0) {
          s.size = std::stol(word.substr(5));
        } else if (word == "atomic") {
          s.atomic_ok = true;
        } else {
          findings.push_back({s.file, ann.line, "shm-pod",
                              "unknown shm-pod annotation argument '" + word +
                                  "'"});
        }
      }
      if (s.qualified.empty()) {
        findings.push_back({s.file, ann.line, "shm-pod",
                            "shm-pod annotation needs a qualified type name"});
        continue;
      }
      s.tail = tail_name(s.qualified);
      // The annotated struct definition must follow within a few lines.
      for (const StructDef& def : file.structs) {
        if (def.name == s.tail && def.line >= ann.line &&
            def.line - ann.line <= 3) {
          s.def = &def;
          break;
        }
      }
      if (s.def == nullptr) {
        findings.push_back(
            {s.file, ann.line, "shm-pod",
             "no struct '" + s.tail +
                 "' definition found directly below the shm-pod annotation"});
        continue;
      }
      if (s.size < 0) {
        findings.push_back(
            {s.file, s.def->line, "shm-pod",
             "shm-pod '" + s.qualified +
                 "' is missing a size= pin (add size=<sizeof> so layout "
                 "drift breaks the build)"});
      }
      structs.push_back(s);
    }
  }

  std::set<std::string> annotated_tails;
  for (const ShmStruct& s : structs) annotated_tails.insert(s.tail);

  for (const ShmStruct& s : structs) {
    for (const StructMember& m : s.def->members) {
      if (s.source->lexed.allows("shm-pod", m.line)) continue;
      if (m.is_pointer) {
        findings.push_back(
            {s.file, m.line, "shm-pod",
             "pointer member '" + m.name + "' in shared-memory struct '" +
                 s.qualified + "' (pointers do not survive the process "
                 "boundary)"});
        continue;
      }
      const std::string tag = type_tag(m.type_text);
      if (forbidden_type_words().count(tag) != 0) {
        findings.push_back(
            {s.file, m.line, "shm-pod",
             "member '" + m.name + "' of type '" + tag +
                 "' allocates; it cannot live in the shared-memory struct '" +
                 s.qualified + "'"});
        continue;
      }
      if (m.is_atomic) {
        if (!s.atomic_ok) {
          findings.push_back(
              {s.file, m.line, "shm-pod",
               "atomic member '" + m.name + "' in '" + s.qualified +
                   "' — add the `atomic` flag to its shm-pod annotation "
                   "(trivially-copyable is replaced by lock-free asserts)"});
        }
        continue;
      }
      if (fundamental_types().count(tag) != 0) continue;
      if (cb.enums.count(tag) != 0) continue;
      if (annotated_tails.count(tag) != 0) continue;
      findings.push_back(
          {s.file, m.line, "shm-pod",
           "member '" + m.name + "' of '" + s.qualified + "' has type '" +
               tag + "' which is neither fundamental, an enum, nor a "
               "phicheck:shm-pod annotated struct"});
    }
  }

  if (!emit_path.empty() && findings.empty()) {
    std::sort(structs.begin(), structs.end(),
              [](const ShmStruct& a, const ShmStruct& b) {
                return a.qualified < b.qualified;
              });
    std::ostringstream out;
    out << "// GENERATED by `phicheck --emit-shm-asserts` — do not edit.\n"
        << "// Compile-time guards for every struct that crosses the fork\n"
        << "// shared-memory channel (see docs/STATIC_ANALYSIS.md).\n"
        << "#pragma once\n\n"
        << "#include <atomic>\n#include <cstddef>\n#include <type_traits>\n\n";
    std::set<std::string> includes;
    for (const ShmStruct& s : structs) {
      const std::size_t at = s.file.rfind("src/");
      if (at == std::string::npos) {
        findings.push_back(
            {s.file, s.line, "shm-pod",
             "shm-pod struct '" + s.qualified +
                 "' is not defined under src/; the generated assert header "
                 "cannot include its definition"});
        continue;
      }
      includes.insert(s.file.substr(at + 4));
    }
    for (const std::string& inc : includes) {
      out << "#include \"" << inc << "\"\n";
    }
    out << "\n";
    for (const ShmStruct& s : structs) {
      const std::string& q = s.qualified;
      out << "static_assert(std::is_standard_layout_v<" << q << ">,\n"
          << "              \"" << q << " crosses the shared-memory channel "
          << "and must stay standard-layout\");\n";
      if (s.atomic_ok) {
        for (const StructMember& m : s.def->members) {
          if (!m.is_atomic) continue;
          out << "static_assert(decltype(" << q << "::" << m.name
              << ")::is_always_lock_free,\n"
              << "              \"" << q << "::" << m.name
              << " must be lock-free: it is shared between the supervisor "
              << "and the forked trial\");\n";
        }
      } else {
        out << "static_assert(std::is_trivially_copyable_v<" << q << ">,\n"
            << "              \"" << q << " crosses the shared-memory "
            << "channel and must stay trivially copyable\");\n";
      }
      out << "static_assert(std::is_trivially_destructible_v<" << q << ">,\n"
          << "              \"" << q << " lives in a raw mmap; nothing runs "
          << "its destructor\");\n";
      if (s.size >= 0) {
        out << "static_assert(sizeof(" << q << ") == " << s.size << ",\n"
            << "              \"shared-memory layout drift: sizeof(" << q
            << ") changed; update the size= pin in its phicheck:shm-pod "
            << "annotation to acknowledge the new layout\");\n";
      }
      out << "\n";
    }
    if (findings.empty()) {
      if (emit_path == "-") {
        std::cout << out.str();
      } else {
        std::error_code ec;
        const auto parent = std::filesystem::path(emit_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent, ec);
        std::ofstream stream(emit_path);
        stream << out.str();
        if (!stream) {
          findings.push_back({emit_path, 0, "shm-pod",
                              "failed to write generated assert header"});
        }
      }
    }
  }
  return findings;
}

}  // namespace phicheck

// phicheck: the project's static analyzer (docs/STATIC_ANALYSIS.md).
//
//   phicheck --root src --root tools
//            --allowlist tools/phicheck/signal_allowlist.txt
//            --policy tools/phicheck/atomics_policy.txt
//            --ndjson-schema tools/phicheck/ndjson_schema.txt
//            [--check signal,fork,shm,atomics,poll-loop,eintr,durability,
//                     enum-switch,ndjson]
//            [--emit-shm-asserts <path|->]
//            [--emit-ndjson-schema <path|->]
//            [--json <path|->]
//
// Exit 0: clean. Exit 1: findings (printed as `file:line: [checker] msg`).
// Exit 2: usage / configuration error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: phicheck --root <dir> [--root <dir>...]\n"
         "                [--check signal,fork,shm,atomics,poll-loop,eintr,\n"
         "                         durability,enum-switch,ndjson]\n"
         "                [--allowlist <signal_allowlist.txt>]\n"
         "                [--policy <atomics_policy.txt>]\n"
         "                [--ndjson-schema <ndjson_schema.txt>]\n"
         "                [--emit-shm-asserts <path|->]\n"
         "                [--emit-ndjson-schema <path|->]\n"
         "                [--json <path|->]\n";
  return 2;
}

std::string json_escape(const std::string& text) {
  std::ostringstream out;
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c; break;
    }
  }
  return out.str();
}

/// Machine-readable findings report for the CI artifact (--json).
void write_json(const std::vector<phicheck::Finding>& findings,
                std::size_t files_scanned, const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const phicheck::Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"checker\": \""
        << json_escape(f.checker) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  if (path == "-") {
    std::cout << out.str();
    return;
  }
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  std::ofstream stream(target);
  stream << out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phicheck;
  std::vector<std::string> roots;
  std::vector<std::string> checks = {"signal",    "fork",        "shm",
                                     "atomics",   "poll-loop",   "eintr",
                                     "durability", "enum-switch", "ndjson"};
  std::string allowlist;
  std::string policy;
  std::string emit_shm;
  std::string ndjson_schema;
  std::string emit_ndjson;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      roots.emplace_back(v);
    } else if (arg == "--check") {
      const char* v = value();
      if (v == nullptr) return usage();
      checks.clear();
      std::istringstream list(v);
      std::string item;
      while (std::getline(list, item, ',')) checks.push_back(item);
    } else if (arg == "--allowlist") {
      const char* v = value();
      if (v == nullptr) return usage();
      allowlist = v;
    } else if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return usage();
      policy = v;
    } else if (arg == "--emit-shm-asserts") {
      const char* v = value();
      if (v == nullptr) return usage();
      emit_shm = v;
    } else if (arg == "--ndjson-schema") {
      const char* v = value();
      if (v == nullptr) return usage();
      ndjson_schema = v;
    } else if (arg == "--emit-ndjson-schema") {
      const char* v = value();
      if (v == nullptr) return usage();
      emit_ndjson = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage();
      json_path = v;
    } else {
      std::cerr << "phicheck: unknown argument '" << arg << "'\n";
      return usage();
    }
  }
  if (roots.empty()) return usage();
  const auto enabled = [&](const std::string& name) {
    return std::find(checks.begin(), checks.end(), name) != checks.end();
  };
  if (enabled("signal") && allowlist.empty()) {
    std::cerr << "phicheck: the signal checker needs --allowlist\n";
    return 2;
  }
  if (enabled("atomics") && policy.empty()) {
    std::cerr << "phicheck: the atomics checker needs --policy\n";
    return 2;
  }

  const Codebase cb = load_codebase(roots);
  if (cb.files.empty()) {
    std::cerr << "phicheck: no C++ sources found under the given roots\n";
    return 2;
  }

  std::vector<Finding> findings;
  const auto append = [&findings](std::vector<Finding> more) {
    findings.insert(findings.end(), more.begin(), more.end());
  };
  if (enabled("signal")) append(check_signal_safety(cb, allowlist));
  if (enabled("fork")) append(check_fork_safety(cb));
  if (enabled("shm")) append(check_shm_pod(cb, emit_shm));
  if (enabled("atomics")) append(check_atomics(cb, policy));
  if (enabled("poll-loop")) append(check_poll_loop(cb));
  if (enabled("eintr")) append(check_eintr(cb));
  if (enabled("durability")) append(check_durability(cb));
  if (enabled("enum-switch")) append(check_enum_switch(cb));
  if (enabled("ndjson")) {
    append(check_ndjson_schema(cb, ndjson_schema, emit_ndjson));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.message == b.message;
                             }),
                 findings.end());
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.checker << "] "
              << f.message << "\n";
  }
  if (!json_path.empty()) write_json(findings, cb.files.size(), json_path);
  if (findings.empty()) {
    std::cerr << "phicheck: OK (" << cb.files.size() << " files scanned)\n";
    return 0;
  }
  std::cerr << "phicheck: " << findings.size() << " finding(s) across "
            << cb.files.size() << " files scanned\n";
  return 1;
}

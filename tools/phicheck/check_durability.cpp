// durability checker: verifies the crash-consistency contract between the
// lease ledger and the wire protocol via paired markers —
//
//   ledger_append(...);        // phicheck:durable-before(grant)
//   conn.link->send(grant);    // phicheck:wire-after(grant)
//
// For every tag, each wire-after site must be *dominated* by a
// durable-before site: same function, durable first, and the durable
// statement's innermost enclosing block must still be open where the send
// happens (so no path reaches the send without passing the append). Absent
// goto, that lexical condition is sound: an exception or early return
// between the two skips the send, which is the safe direction — a lease
// recorded but never announced is re-granted on replay, while an announced
// lease that was never recorded double-runs trials after a crash.
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "model.hpp"

namespace phicheck {

namespace {

struct Marker {
  const SourceFile* file = nullptr;
  int line = 0;                  ///< annotation line
  std::size_t anchor = 0;        ///< token index of the marked statement
  const FunctionDef* fn = nullptr;
};

/// Extracts "tag" from a directive like "durable-before(tag)".
std::string tag_of(const std::string& directive, const std::string& prefix) {
  if (directive.rfind(prefix + "(", 0) != 0) return "";
  const std::size_t open = prefix.size() + 1;
  const std::size_t close = directive.find(')', open);
  if (close == std::string::npos) return "";
  return directive.substr(open, close - open);
}

/// First token on the annotation's line (trailing comment) or the next line
/// (comment above the statement); tokens.size() when neither exists.
std::size_t anchor_token(const SourceFile& file, int ann_line) {
  const std::vector<Token>& tokens = file.lexed.tokens;
  for (int want : {ann_line, ann_line + 1}) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].line == want) return i;
    }
  }
  return tokens.size();
}

bool line_mentions(const SourceFile& file, int line,
                   const std::set<std::string>& idents) {
  for (const Token& t : file.lexed.tokens) {
    if (t.line == line && t.kind == TokKind::kIdent &&
        idents.count(t.text) != 0) {
      return true;
    }
  }
  return false;
}

/// Token index of the "{" opening the innermost block that contains `anchor`
/// within `fn`'s body.
std::size_t innermost_block(const SourceFile& file, const FunctionDef& fn,
                            std::size_t anchor) {
  const std::vector<Token>& tokens = file.lexed.tokens;
  std::vector<std::size_t> stack;
  for (std::size_t i = fn.body_begin; i <= anchor && i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "{") stack.push_back(i);
    if (tokens[i].text == "}" && !stack.empty()) stack.pop_back();
  }
  return stack.empty() ? fn.body_begin : stack.back();
}

bool resolve(const SourceFile& file, const Annotation& ann, Marker& out,
             std::vector<Finding>& findings) {
  out.file = &file;
  out.line = ann.line;
  out.anchor = anchor_token(file, ann.line);
  if (out.anchor >= file.lexed.tokens.size()) {
    findings.push_back({file.lexed.path, ann.line, "durability",
                        "phicheck:" + ann.directive +
                            " is not attached to a statement"});
    return false;
  }
  const int stmt_line = file.lexed.tokens[out.anchor].line;
  out.fn = enclosing_function(file, stmt_line);
  if (out.fn == nullptr) {
    findings.push_back({file.lexed.path, ann.line, "durability",
                        "phicheck:" + ann.directive +
                            " marker sits outside any function body"});
    return false;
  }
  return true;
}

}  // namespace

std::vector<Finding> check_durability(const Codebase& cb) {
  std::vector<Finding> findings;
  std::map<std::string, std::vector<Marker>> durables;
  std::map<std::string, std::vector<Marker>> wires;

  static const std::set<std::string> durable_idents = {
      "append", "ledger_append", "sync", "fsync", "fdatasync", "write_frame"};
  static const std::set<std::string> wire_idents = {"send", "send_frame"};

  for (const SourceFile& file : cb.files) {
    for (const Annotation& ann : file.lexed.annotations) {
      const std::string d_tag = tag_of(ann.directive, "durable-before");
      const std::string w_tag = tag_of(ann.directive, "wire-after");
      if (d_tag.empty() && w_tag.empty()) continue;
      Marker m;
      if (!resolve(file, ann, m, findings)) continue;
      const int stmt_line = file.lexed.tokens[m.anchor].line;
      if (!d_tag.empty()) {
        if (!line_mentions(file, stmt_line, durable_idents)) {
          findings.push_back(
              {file.lexed.path, ann.line, "durability",
               "durable-before(" + d_tag +
                   ") marker is not on an append/sync/fsync statement"});
          continue;
        }
        durables[d_tag].push_back(m);
      } else {
        if (!line_mentions(file, stmt_line, wire_idents)) {
          findings.push_back({file.lexed.path, ann.line, "durability",
                              "wire-after(" + w_tag +
                                  ") marker is not on a send statement"});
          continue;
        }
        wires[w_tag].push_back(m);
      }
    }
  }

  for (const auto& [tag, sites] : durables) {
    if (wires.count(tag) == 0) {
      for (const Marker& m : sites) {
        findings.push_back({m.file->lexed.path, m.line, "durability",
                            "durable-before(" + tag +
                                ") has no matching wire-after(" + tag + ")"});
      }
    }
  }
  for (const auto& [tag, sites] : wires) {
    const auto durable_it = durables.find(tag);
    for (const Marker& wire : sites) {
      if (durable_it == durables.end()) {
        findings.push_back({wire.file->lexed.path, wire.line, "durability",
                            "wire-after(" + tag +
                                ") has no matching durable-before(" + tag +
                                ")"});
        continue;
      }
      bool dominated = false;
      for (const Marker& durable : durable_it->second) {
        if (durable.file != wire.file || durable.fn != wire.fn) continue;
        if (durable.anchor >= wire.anchor) continue;
        const std::size_t block =
            innermost_block(*durable.file, *durable.fn, durable.anchor);
        const std::size_t block_end =
            match_brace(durable.file->lexed.tokens, block);
        if (wire.anchor < block_end) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        std::ostringstream msg;
        msg << "wire-after(" << tag << ") is not dominated by durable-before("
            << tag
            << "): the durable append must precede the send in the same or "
               "an enclosing block of the same function";
        findings.push_back(
            {wire.file->lexed.path, wire.line, "durability", msg.str()});
      }
    }
  }
  return findings;
}

}  // namespace phicheck

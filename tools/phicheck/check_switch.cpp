// enum-switch checker: a switch over an enum annotated
// `phicheck:exhaustive-switch` must name every enumerator, or annotate its
// default with `phicheck:allow(enum-switch)`.
//
// -Wswitch already errors (under CI's -Werror) on a defaultless switch that
// misses an enumerator; the gap this checker closes is switches WITH a
// default, which silently swallow enumerators added later. That matters here
// because the wire protocol (MsgType), the ledger (LedgerKind), and the
// outcome taxonomy (Outcome/DueKind) all grow with the paper reproduction —
// a default that quietly drops a new frame type is a protocol bug that no
// compiler warning will ever surface. A default alongside a full enumerator
// list is fine (decode paths cast raw bytes, so out-of-range needs a home).
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "model.hpp"

namespace phicheck {

namespace {

struct AnnotatedEnum {
  const EnumDef* def = nullptr;
  std::set<std::string> enumerators;
};

struct SwitchInfo {
  int line = 0;
  std::set<std::string> labels;
  /// Enum-name qualifier seen in the labels (`MsgType::kHello` -> "MsgType").
  /// Empty for unqualified labels (plain enums, `using enum`).
  std::string qualifier;
  bool has_default = false;
  int default_line = 0;
};

/// Parses the switch whose "switch" keyword is at `kw`; returns false when
/// the token pattern is not a braced switch body.
bool parse_switch(const std::vector<Token>& tokens, std::size_t kw,
                  SwitchInfo& out) {
  std::size_t i = kw + 1;
  if (i >= tokens.size() || tokens[i].text != "(") return false;
  int depth = 0;
  while (i < tokens.size()) {
    if (tokens[i].kind == TokKind::kPunct) {
      if (tokens[i].text == "(") ++depth;
      if (tokens[i].text == ")" && --depth == 0) break;
    }
    ++i;
  }
  ++i;
  if (i >= tokens.size() || tokens[i].text != "{") return false;
  const std::size_t open = i;
  const std::size_t close = match_brace(tokens, open);
  out.line = tokens[kw].line;
  int body_depth = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    const Token& t = tokens[j];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++body_depth;
      if (t.text == "}") --body_depth;
      continue;
    }
    if (t.kind != TokKind::kIdent || body_depth != 0) continue;
    if (t.text == "default") {
      out.has_default = true;
      out.default_line = t.line;
    } else if (t.text == "case") {
      // Label is the last identifier before the ":" (handles Qual::kName);
      // the identifier before a "::" is the enum-name qualifier, which pins
      // attribution (EstimatorOutcome::kSdc must never match Outcome).
      std::string label;
      std::size_t k = j + 1;
      while (k < close && tokens[k].text != ":") {
        if (tokens[k].kind == TokKind::kIdent) {
          label = tokens[k].text;
        } else if (tokens[k].text == "::" && !label.empty()) {
          out.qualifier = label;
        }
        ++k;
      }
      if (!label.empty()) out.labels.insert(label);
      j = k;
    }
  }
  return true;
}

}  // namespace

std::vector<Finding> check_enum_switch(const Codebase& cb) {
  std::vector<Finding> findings;
  std::vector<AnnotatedEnum> annotated;
  for (const SourceFile& file : cb.files) {
    for (const Annotation& ann : file.lexed.annotations) {
      if (ann.directive != "exhaustive-switch") continue;
      const EnumDef* match = nullptr;
      for (const EnumDef& def : cb.enum_defs) {
        if (def.file != file.lexed.path) continue;
        if (def.line < ann.line || def.line - ann.line > 3) continue;
        if (match == nullptr || def.line < match->line) match = &def;
      }
      if (match == nullptr) {
        findings.push_back(
            {file.lexed.path, ann.line, "enum-switch",
             "phicheck:exhaustive-switch annotation does not precede an enum "
             "definition"});
        continue;
      }
      AnnotatedEnum entry;
      entry.def = match;
      entry.enumerators.insert(match->enumerators.begin(),
                               match->enumerators.end());
      annotated.push_back(std::move(entry));
    }
  }
  if (annotated.empty()) return findings;

  for (const SourceFile& file : cb.files) {
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (const FunctionDef& fn : file.functions) {
      for (std::size_t i = fn.body_begin; i < fn.body_end && i < tokens.size();
           ++i) {
        if (tokens[i].kind != TokKind::kIdent || tokens[i].text != "switch") {
          continue;
        }
        SwitchInfo sw;
        if (!parse_switch(tokens, i, sw) || sw.labels.empty()) continue;
        // Attribution: a label qualifier (`MsgType::kHello`) names the enum
        // outright — a switch qualified with an unannotated enum's name is
        // never checked, even if its labels happen to collide with an
        // annotated enum's (EstimatorOutcome::kSdc vs Outcome::kSdc).
        // Unqualified labels fall back to overlap, but only when *every*
        // label is an enumerator of the candidate.
        const AnnotatedEnum* best = nullptr;
        if (!sw.qualifier.empty()) {
          for (const AnnotatedEnum& cand : annotated) {
            if (cand.def->name == sw.qualifier) {
              best = &cand;
              break;
            }
          }
        } else {
          std::size_t best_overlap = 0;
          for (const AnnotatedEnum& cand : annotated) {
            const bool all = std::all_of(
                sw.labels.begin(), sw.labels.end(),
                [&](const std::string& label) {
                  return cand.enumerators.count(label) != 0;
                });
            if (all && sw.labels.size() > best_overlap) {
              best_overlap = sw.labels.size();
              best = &cand;
            }
          }
        }
        if (best == nullptr) continue;
        std::vector<std::string> missing;
        for (const std::string& e : best->def->enumerators) {
          if (sw.labels.count(e) == 0) missing.push_back(e);
        }
        if (missing.empty()) continue;
        if (sw.has_default &&
            file.lexed.allows("enum-switch", sw.default_line)) {
          continue;
        }
        std::ostringstream msg;
        msg << "switch over '" << best->def->name << "' in '" << fn.name
            << "' does not name enumerator(s):";
        for (const std::string& e : missing) msg << " " << e;
        msg << "; name them or annotate the default with "
               "phicheck:allow(enum-switch)";
        findings.push_back(
            {file.lexed.path, sw.line, "enum-switch", msg.str()});
      }
    }
  }
  return findings;
}

}  // namespace phicheck

// atomics: audits every explicit atomic operation in the scanned roots
// against the per-variable policies declared in atomics_policy.txt. The
// telemetry registry and the shared channel lean on a mixed relaxed /
// release-acquire discipline; this checker makes that discipline a declared,
// reviewed artifact instead of 60+ call sites of tribal knowledge. An
// atomic op on a variable with no policy line, an op kind the policy does
// not declare, or a memory_order outside the declared set are all findings.
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "checks.hpp"

namespace phicheck {

namespace {

const std::set<std::string>& atomic_ops() {
  static const std::set<std::string> ops = {
      "store",     "load",      "exchange",  "fetch_add", "fetch_sub",
      "fetch_or",  "fetch_and", "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong",
  };
  return ops;
}

/// compare_exchange_weak/strong collapse to "cas" in the policy file.
std::string policy_op(const std::string& op) {
  return op.rfind("compare_exchange", 0) == 0 ? "cas" : op;
}

struct PolicyEntry {
  std::string file_suffix;
  std::string var;
  std::map<std::string, std::set<std::string>> allowed;  // op -> orders
};

struct Policy {
  std::vector<PolicyEntry> entries;
  std::vector<Finding> parse_findings;
};

Policy load_policy(const std::string& path) {
  Policy policy;
  std::ifstream stream(path);
  if (!stream) {
    policy.parse_findings.push_back(
        {path, 0, "atomics", "cannot open atomics policy file"});
    return policy;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    PolicyEntry entry;
    if (!(words >> entry.file_suffix >> entry.var)) continue;  // blank line
    std::string spec;
    while (words >> spec) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        policy.parse_findings.push_back(
            {path, lineno, "atomics",
             "bad op spec '" + spec + "' (expected op=order[,order...])"});
        continue;
      }
      const std::string op = spec.substr(0, eq);
      std::set<std::string>& orders = entry.allowed[op];
      std::istringstream list(spec.substr(eq + 1));
      std::string order;
      while (std::getline(list, order, ',')) orders.insert(order);
    }
    if (entry.allowed.empty()) {
      policy.parse_findings.push_back(
          {path, lineno, "atomics",
           "policy line for '" + entry.var + "' declares no operations"});
      continue;
    }
    policy.entries.push_back(std::move(entry));
  }
  return policy;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const PolicyEntry* find_entry(const Policy& policy, const std::string& file,
                              const std::string& var) {
  for (const PolicyEntry& entry : policy.entries) {
    if (entry.var == var && ends_with(file, entry.file_suffix)) return &entry;
  }
  return nullptr;
}

std::string join(const std::set<std::string>& words) {
  std::string out;
  for (const std::string& word : words) {
    if (!out.empty()) out += ",";
    out += word;
  }
  return out;
}

/// Name of the object the member op is applied to: handles `var.op(`,
/// `ptr->op(`, `arr[i].op(`, `obj.field.op(`. Returns "" when the
/// expression is too complex to attribute (itself a finding: the policy is
/// per-variable, so ops must be attributable).
std::string attribute_var(const std::vector<Token>& tokens, std::size_t dot) {
  std::size_t k = dot;  // token before "." / "->"
  if (k == 0) return "";
  --k;
  if (tokens[k].kind == TokKind::kPunct && tokens[k].text == "]") {
    int depth = 1;
    while (k > 0 && depth > 0) {
      --k;
      if (tokens[k].text == "]") ++depth;
      if (tokens[k].text == "[") --depth;
    }
    if (k == 0) return "";
    --k;
  }
  return tokens[k].kind == TokKind::kIdent ? tokens[k].text : "";
}

}  // namespace

std::vector<Finding> check_atomics(const Codebase& cb,
                                   const std::string& policy_path) {
  const Policy policy = load_policy(policy_path);
  std::vector<Finding> findings = policy.parse_findings;

  for (const SourceFile& file : cb.files) {
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokKind::kIdent || atomic_ops().count(t.text) == 0) {
        continue;
      }
      if (tokens[i + 1].text != "(") continue;
      const Token& before = tokens[i - 1];
      if (before.kind != TokKind::kPunct ||
          (before.text != "." && before.text != "->")) {
        continue;
      }
      const int line = t.line;
      if (file.lexed.allows("atomics", line)) continue;
      const std::string var = attribute_var(tokens, i - 1);
      if (var.empty()) {
        findings.push_back(
            {file.lexed.path, line, "atomics",
             "atomic op '" + t.text + "' on an expression the checker cannot "
             "attribute to a variable; simplify or suppress"});
        continue;
      }
      // Collect memory_order arguments inside this call.
      std::set<std::string> orders;
      int depth = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].kind == TokKind::kPunct) {
          if (tokens[j].text == "(") ++depth;
          if (tokens[j].text == ")" && --depth == 0) break;
        }
        if (tokens[j].kind != TokKind::kIdent) continue;
        const std::string& word = tokens[j].text;
        if (word.rfind("memory_order_", 0) == 0) {
          orders.insert(word.substr(13));
        } else if (word == "memory_order" && j + 2 < tokens.size() &&
                   tokens[j + 1].text == "::") {
          orders.insert(tokens[j + 2].text);
        }
      }
      if (orders.empty()) orders.insert("implicit");

      const PolicyEntry* entry = find_entry(policy, file.lexed.path, var);
      if (entry == nullptr) {
        findings.push_back(
            {file.lexed.path, line, "atomics",
             "atomic op '" + var + "." + t.text + "' has no declared policy; "
             "add a line for it to atomics_policy.txt"});
        continue;
      }
      const auto op_it = entry->allowed.find(policy_op(t.text));
      if (op_it == entry->allowed.end()) {
        findings.push_back(
            {file.lexed.path, line, "atomics",
             "op '" + t.text + "' on '" + var + "' is not declared by its "
             "policy (declared ops: " +
                 [&] {
                   std::set<std::string> ops;
                   for (const auto& [op, _] : entry->allowed) ops.insert(op);
                   return join(ops);
                 }() +
                 ")"});
        continue;
      }
      for (const std::string& order : orders) {
        if (op_it->second.count(order) == 0) {
          findings.push_back(
              {file.lexed.path, line, "atomics",
               "memory_order '" + order + "' on '" + var + "." + t.text +
                   "' violates its declared policy (allowed: " +
                   join(op_it->second) + ")"});
        }
      }
    }
  }
  return findings;
}

}  // namespace phicheck

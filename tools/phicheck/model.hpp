// Source model phicheck's checkers share: files, function definitions,
// struct definitions with parsed members, call sites, and the call graph.
// All extraction is heuristic token-pattern matching — deliberate for a
// dependency-free in-tree tool — and the fixture tests under
// tests/phicheck_fixtures/ pin the behaviour the checkers rely on.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace phicheck {

/// A call site inside a function body. `name` is the unqualified callee
/// (`util::log_info` -> "log_info"); `member` is true for `x.f()` / `x->f()`.
struct CallSite {
  std::string name;
  bool member = false;
  int line = 0;
  std::size_t token_index = 0;
};

struct FunctionDef {
  std::string name;        ///< unqualified
  int line = 0;            ///< line of the body's opening brace
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  std::vector<CallSite> calls;
};

struct StructMember {
  std::string type_text;   ///< joined type tokens, e.g. "std::atomic<std::uint32_t>"
  std::string name;
  bool is_array = false;
  bool is_atomic = false;
  bool is_pointer = false;
  int line = 0;
};

struct StructDef {
  std::string name;        ///< unqualified tag name
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<StructMember> members;
};

struct SourceFile {
  LexedFile lexed;
  std::vector<FunctionDef> functions;
  std::vector<StructDef> structs;
};

/// One enum definition with its enumerators — what the enum-switch checker
/// walks to demand exhaustiveness.
struct EnumDef {
  std::string name;  ///< unqualified tag name
  std::string file;
  int line = 0;
  std::vector<std::string> enumerators;
};

struct Codebase {
  std::vector<SourceFile> files;
  /// All enum tag names seen anywhere (enum / enum class) — the shm checker
  /// treats them as POD-safe member types.
  std::map<std::string, int> enums;
  /// Full enum definitions (tag + enumerator list), in file order.
  std::vector<EnumDef> enum_defs;

  /// First definition of `name` across all files, or nullptr.
  [[nodiscard]] const FunctionDef* find_function(const std::string& name,
                                                 const SourceFile** file) const;

  /// Every definition of `name` across all files. Name-based resolution is
  /// deliberately conservative: a call-graph walker that cannot see types
  /// must follow all same-named candidates or it silently under-approximates.
  [[nodiscard]] std::vector<std::pair<const SourceFile*, const FunctionDef*>>
  find_functions(const std::string& name) const;
};

/// The function whose body's opening brace sits on `ann_line` or within
/// `window` lines below it — how `phicheck:<directive>` annotations bind to
/// the function they precede. Returns nullptr when none qualifies.
const FunctionDef* function_below(const SourceFile& file, int ann_line,
                                  int window);

/// The innermost function whose body spans `line`, or nullptr.
const FunctionDef* enclosing_function(const SourceFile& file, int line);

/// Lexes and models one already-read file.
SourceFile model_file(std::string path, const std::string& text);

/// Recursively loads every .cpp/.hpp/.h/.cc under each root.
Codebase load_codebase(const std::vector<std::string>& roots);

/// Token index of the brace matching tokens[open] (which must be "{");
/// returns tokens.size() when unbalanced.
std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open);

}  // namespace phicheck

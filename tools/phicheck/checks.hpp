// The phicheck checkers (docs/STATIC_ANALYSIS.md):
//   signal-safety    calls reachable from registered signal handlers must be
//                    on the async-signal-safe allowlist
//   fork-safety      no heap / stdio / locking between fork() and the
//                    phicheck:fork-workload-entry marker in the child
//   shm-pod          structs crossing the shared-memory channel are POD with
//                    pinned sizes; emits the generated static_assert header
//   atomics          every explicit memory_order use matches the per-variable
//                    policy declared in atomics_policy.txt
//   poll-loop        no blocking call reachable from a phicheck:poll-loop
//                    root unless annotated phicheck:blocking-ok(reason)
//   eintr            direct interruptible syscalls must live inside a
//                    phicheck:eintr-helper function or carry allow(eintr)
//   durability       paired phicheck:durable-before(tag) / wire-after(tag)
//                    markers: the append+fsync must dominate the send
//   enum-switch      switches over phicheck:exhaustive-switch enums name
//                    every enumerator or annotate the default
//   ndjson-schema    field sets written by phicheck:ndjson-writer functions
//                    match ndjson_schema.txt; emits the Python field table
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace phicheck {

struct Finding {
  std::string file;
  int line = 0;
  std::string checker;
  std::string message;
};

std::vector<Finding> check_signal_safety(const Codebase& cb,
                                         const std::string& allowlist_path);

std::vector<Finding> check_fork_safety(const Codebase& cb);

/// When `emit_path` is non-empty and the checker finds no violations, writes
/// the generated shm_layout_asserts header there ("-" for stdout).
std::vector<Finding> check_shm_pod(const Codebase& cb,
                                   const std::string& emit_path);

std::vector<Finding> check_atomics(const Codebase& cb,
                                   const std::string& policy_path);

std::vector<Finding> check_poll_loop(const Codebase& cb);

std::vector<Finding> check_eintr(const Codebase& cb);

std::vector<Finding> check_durability(const Codebase& cb);

std::vector<Finding> check_enum_switch(const Codebase& cb);

/// `schema_path` is the ndjson_schema.txt spec. When `emit_path` is non-empty
/// and the checker finds no violations, writes the generated Python field
/// table there ("-" for stdout). With an empty `schema_path` the checker
/// reports any ndjson-writer annotation as unverifiable.
std::vector<Finding> check_ndjson_schema(const Codebase& cb,
                                         const std::string& schema_path,
                                         const std::string& emit_path);

}  // namespace phicheck

// The four phicheck checkers (docs/STATIC_ANALYSIS.md):
//   signal-safety    calls reachable from registered signal handlers must be
//                    on the async-signal-safe allowlist
//   fork-safety      no heap / stdio / locking between fork() and the
//                    phicheck:fork-workload-entry marker in the child
//   shm-pod          structs crossing the shared-memory channel are POD with
//                    pinned sizes; emits the generated static_assert header
//   atomics          every explicit memory_order use matches the per-variable
//                    policy declared in atomics_policy.txt
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace phicheck {

struct Finding {
  std::string file;
  int line = 0;
  std::string checker;
  std::string message;
};

std::vector<Finding> check_signal_safety(const Codebase& cb,
                                         const std::string& allowlist_path);

std::vector<Finding> check_fork_safety(const Codebase& cb);

/// When `emit_path` is non-empty and the checker finds no violations, writes
/// the generated shm_layout_asserts header there ("-" for stdout).
std::vector<Finding> check_shm_pod(const Codebase& cb,
                                   const std::string& emit_path);

std::vector<Finding> check_atomics(const Codebase& cb,
                                   const std::string& policy_path);

}  // namespace phicheck

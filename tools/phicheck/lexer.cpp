#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace phicheck {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Records any `phicheck:<directive> args` found inside a comment body.
void scan_comment(const std::string& body, int line, LexedFile& out) {
  const std::string key = "phicheck:";
  std::size_t at = body.find(key);
  if (at == std::string::npos) return;
  std::size_t i = at + key.size();
  Annotation ann;
  ann.line = line;
  while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) {
    ann.directive += body[i++];
  }
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
    ++i;
  }
  std::size_t end = body.find('\n', i);
  if (end == std::string::npos) end = body.size();
  ann.args = body.substr(i, end - i);
  while (!ann.args.empty() &&
         std::isspace(static_cast<unsigned char>(ann.args.back()))) {
    ann.args.pop_back();
  }
  out.annotations.push_back(std::move(ann));
}

}  // namespace

bool LexedFile::allows(const std::string& checker, int line) const {
  const std::string want = "allow(" + checker + ")";
  for (const Annotation& ann : annotations) {
    if (ann.directive == want && (ann.line == line || ann.line == line - 1)) {
      return true;
    }
  }
  return false;
}

LexedFile lex(std::string path, const std::string& text) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  const auto peek = [&](std::size_t ahead) -> char {
    return i + ahead < n ? text[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(text.substr(i + 2, end - i - 2), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = text.substr(i + 2, end - i - 2);
      scan_comment(body, line, out);
      for (char b : body) {
        if (b == '\n') ++line;
      }
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && text[d] != '(') delim += text[d++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, d);
      if (end == std::string::npos) end = n;
      const int start_line = line;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      out.tokens.push_back({TokKind::kString, "<raw>", start_line});
      i = end == n ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar,
           text.substr(i, j + 1 - i), line});
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       (text[j] == '\'' && j + 1 < n && ident_char(text[j + 1])))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; fuse the two-char tokens the checkers care about.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    if (c == '=' && peek(1) == '=') {
      out.tokens.push_back({TokKind::kPunct, "==", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace phicheck

// eintr checker: every direct call to an interruptible syscall must live
// inside a function annotated `phicheck:eintr-helper` (whose body must
// actually reference EINTR) or carry `phicheck:allow(eintr)` with a reason.
//
// The campaign supervisor forwards SIGINT/SIGTERM and reaps children with
// SIGCHLD in flight, so every read/write/poll/accept in the fleet runs with
// signals arriving. A missed EINTR retry shows up as a spurious campaign
// abort — indistinguishable from a DUE in the results, which is exactly the
// class of injector bug the methodology cannot tolerate. Routing through the
// helpers in src/util/posix_io.cpp keeps the retry logic in one place.
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "model.hpp"

namespace phicheck {

namespace {

const std::set<std::string>& interruptible_calls() {
  static const std::set<std::string> names = {
      "read", "write", "waitpid", "poll", "accept", "connect", "send", "recv",
  };
  return names;
}

/// True for `Foo::bar(...)` class/namespace-qualified calls — those are
/// project statics, not raw syscalls. Global-qualified `::read(...)` has no
/// identifier before its "::" and stays in scope.
bool class_qualified(const std::vector<Token>& tokens, std::size_t call_index) {
  if (call_index < 2) return false;
  const Token& prev = tokens[call_index - 1];
  if (prev.kind != TokKind::kPunct || prev.text != "::") return false;
  const Token& scope = tokens[call_index - 2];
  if (scope.kind != TokKind::kIdent) return false;
  // `return ::read(...)` is a global-qualified syscall, not Foo::read —
  // keywords never name a scope.
  static const std::set<std::string> keywords = {
      "return", "case", "else", "do", "goto", "throw", "new", "delete",
      "co_return", "co_yield", "co_await",
  };
  return keywords.count(scope.text) == 0;
}

bool body_references(const SourceFile& file, const FunctionDef& fn,
                     const std::string& ident) {
  const std::vector<Token>& tokens = file.lexed.tokens;
  for (std::size_t i = fn.body_begin; i < fn.body_end && i < tokens.size();
       ++i) {
    if (tokens[i].kind == TokKind::kIdent && tokens[i].text == ident) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> check_eintr(const Codebase& cb) {
  std::vector<Finding> findings;
  for (const SourceFile& file : cb.files) {
    // Functions this file declares as EINTR-retry helpers.
    std::set<const FunctionDef*> helpers;
    for (const Annotation& ann : file.lexed.annotations) {
      if (ann.directive != "eintr-helper") continue;
      const FunctionDef* fn = function_below(file, ann.line, 12);
      if (fn == nullptr) {
        findings.push_back(
            {file.lexed.path, ann.line, "eintr",
             "phicheck:eintr-helper annotation does not precede a function "
             "definition"});
        continue;
      }
      if (!body_references(file, *fn, "EINTR")) {
        findings.push_back(
            {file.lexed.path, fn->line, "eintr",
             "'" + fn->name +
                 "' is annotated phicheck:eintr-helper but its body never "
                 "checks EINTR"});
        continue;
      }
      helpers.insert(fn);
    }
    for (const FunctionDef& fn : file.functions) {
      for (const CallSite& call : fn.calls) {
        if (interruptible_calls().count(call.name) == 0) continue;
        if (call.member) continue;  // stream.read(...) etc.
        if (class_qualified(file.lexed.tokens, call.token_index)) continue;
        if (helpers.count(&fn) != 0) continue;
        if (file.lexed.allows("eintr", call.line)) continue;
        std::ostringstream msg;
        msg << "direct call to interruptible '" << call.name << "' in '"
            << fn.name
            << "' outside an eintr-helper; route through util::io "
               "(src/util/posix_io.hpp) or annotate phicheck:allow(eintr)";
        findings.push_back({file.lexed.path, call.line, "eintr", msg.str()});
      }
    }
  }
  return findings;
}

}  // namespace phicheck

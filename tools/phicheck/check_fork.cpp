// fork-safety: between fork() and the child's workload entry point the
// child may only touch async-fork-safe state. The supervisor forks with the
// campaign process single-threaded, but the invariant "no heap, no stdio,
// no locks before the workload entry" is what keeps that comment true as
// the code grows — a post-fork malloc under a multi-threaded parent is a
// latent deadlock that manifests as a spurious DUE.
//
// Conventions enforced:
//   * the `if (pid == 0)` branch after fork() may only call functions
//     annotated `// phicheck:fork-child-entry` (or _exit/exec*),
//   * inside a child-entry function, everything before the
//     `// phicheck:fork-workload-entry` marker is checked against the
//     banned set (heap, stdio, locking); after the marker the workload owns
//     the process and anything goes.
#include <climits>
#include <set>

#include "checks.hpp"

namespace phicheck {

namespace {

const std::set<std::string>& banned_calls() {
  static const std::set<std::string> banned = {
      "malloc",  "calloc",  "realloc", "free",     "strdup",   "printf",
      "fprintf", "sprintf", "snprintf", "vfprintf", "puts",    "fputs",
      "fwrite",  "fread",   "fopen",   "freopen",  "fclose",   "fflush",
      "setvbuf", "fdopen",  "popen",   "system",   "make_unique",
      "make_shared",
  };
  return banned;
}

const std::set<std::string>& banned_methods() {
  static const std::set<std::string> banned = {"lock", "unlock", "try_lock"};
  return banned;
}

const std::set<std::string>& banned_idents() {
  static const std::set<std::string> banned = {
      "cout", "cerr", "clog", "lock_guard", "unique_lock", "scoped_lock",
      "mutex",
  };
  return banned;
}

const std::set<std::string>& exec_like() {
  static const std::set<std::string> ok = {
      "_exit", "_Exit", "execve", "execv", "execvp", "execl", "execlp",
      "execle", "abort",
  };
  return ok;
}

/// Function names in `file` annotated with `directive` (annotation sits at
/// most 5 lines above the function body's opening brace).
std::set<std::string> annotated_functions(const SourceFile& file,
                                          const std::string& directive) {
  std::set<std::string> out;
  for (const Annotation& ann : file.lexed.annotations) {
    if (ann.directive != directive) continue;
    const FunctionDef* best = nullptr;
    for (const FunctionDef& fn : file.functions) {
      if (fn.line >= ann.line && fn.line - ann.line <= 5 &&
          (best == nullptr || fn.line < best->line)) {
        best = &fn;
      }
    }
    if (best != nullptr) out.insert(best->name);
  }
  return out;
}

/// Checks one child-entry function: banned constructs before the
/// fork-workload-entry marker (or the whole body when no marker).
void check_child_entry(const SourceFile& file, const FunctionDef& fn,
                       std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.lexed.tokens;
  int boundary = INT_MAX;
  const int body_first = tokens[fn.body_begin].line;
  const int body_last = tokens[fn.body_end].line;
  for (const Annotation& ann : file.lexed.annotations) {
    if (ann.directive == "fork-workload-entry" && ann.line >= body_first &&
        ann.line <= body_last) {
      boundary = ann.line;
      break;
    }
  }
  const auto report = [&](int line, const std::string& what) {
    if (file.lexed.allows("fork-safety", line)) return;
    findings.push_back(
        {file.lexed.path, line, "fork-safety",
         what + " between fork() and the workload entry point in child-entry "
                "function '" + fn.name + "'"});
  };
  for (const CallSite& call : fn.calls) {
    if (call.line >= boundary) continue;
    if (call.member ? banned_methods().count(call.name) != 0
                    : banned_calls().count(call.name) != 0) {
      report(call.line, "call to '" + call.name + "' (" +
                            (call.member ? "locking" : "heap/stdio") + ")");
    }
  }
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& t = tokens[i];
    if (t.line >= boundary || t.kind != TokKind::kIdent) continue;
    if (t.text == "new") {
      report(t.line, "heap allocation ('new')");
    } else if (banned_idents().count(t.text) != 0) {
      report(t.line, "use of '" + t.text + "'");
    }
  }
}

}  // namespace

std::vector<Finding> check_fork_safety(const Codebase& cb) {
  std::vector<Finding> findings;
  for (const SourceFile& file : cb.files) {
    const std::set<std::string> entries =
        annotated_functions(file, "fork-child-entry");
    const std::vector<Token>& tokens = file.lexed.tokens;
    for (const FunctionDef& fn : file.functions) {
      for (const CallSite& call : fn.calls) {
        if (call.member || call.name != "fork") continue;
        // `var = fork()` / `var = ::fork()`: recover the result variable.
        std::size_t back = call.token_index;
        if (back > 0 && tokens[back - 1].text == "::") --back;
        std::string var;
        if (back >= 2 && tokens[back - 1].text == "=" &&
            tokens[back - 2].kind == TokKind::kIdent) {
          var = tokens[back - 2].text;
        }
        if (var.empty()) {
          findings.push_back(
              {file.lexed.path, call.line, "fork-safety",
               "fork() result is not assigned to a variable; the checker "
               "cannot find the child branch (use `pid = fork(); if (pid == "
               "0) ...`)"});
          continue;
        }
        // Locate `if (var == 0)` and its child block.
        bool found_branch = false;
        for (std::size_t i = call.token_index; i + 5 < fn.body_end; ++i) {
          if (tokens[i].text == "if" && tokens[i + 1].text == "(" &&
              tokens[i + 2].text == var && tokens[i + 3].text == "==" &&
              tokens[i + 4].text == "0" && tokens[i + 5].text == ")") {
            found_branch = true;
            std::size_t block_begin = i + 6;
            std::size_t block_end;
            if (tokens[block_begin].text == "{") {
              block_end = match_brace(tokens, block_begin);
            } else {
              block_end = block_begin;
              while (block_end < fn.body_end && tokens[block_end].text != ";") {
                ++block_end;
              }
            }
            for (const CallSite& child_call : fn.calls) {
              if (child_call.token_index <= block_begin ||
                  child_call.token_index >= block_end) {
                continue;
              }
              if (entries.count(child_call.name) != 0 ||
                  exec_like().count(child_call.name) != 0 ||
                  file.lexed.allows("fork-safety", child_call.line)) {
                continue;
              }
              findings.push_back(
                  {file.lexed.path, child_call.line, "fork-safety",
                   "child branch of fork() calls '" + child_call.name +
                       "', which is not annotated phicheck:fork-child-entry "
                       "(and is not _exit/exec*)"});
            }
            // Double-fork (fork-server) topology: when a child-entry
            // function itself forks, its child branch must end the
            // grandchild — last statement a call to an entry or
            // _exit/exec* function with nothing after it. A branch that
            // falls through resumes the template's serve loop in the
            // grandchild, and two processes start consuming commands.
            if (entries.count(fn.name) != 0 &&
                !file.lexed.allows("fork-safety", tokens[i].line)) {
              const CallSite* last = nullptr;
              for (const CallSite& child_call : fn.calls) {
                if (child_call.token_index >= block_begin &&
                    child_call.token_index <= block_end &&
                    (last == nullptr ||
                     child_call.token_index > last->token_index)) {
                  last = &child_call;
                }
              }
              bool terminates =
                  last != nullptr && (entries.count(last->name) != 0 ||
                                      exec_like().count(last->name) != 0);
              if (terminates) {
                std::size_t after = last->token_index;
                while (after < block_end && tokens[after].text != "(") {
                  ++after;
                }
                int depth = 0;
                for (; after <= block_end; ++after) {
                  if (tokens[after].text == "(") {
                    ++depth;
                  } else if (tokens[after].text == ")" && --depth == 0) {
                    ++after;
                    break;
                  }
                }
                for (; after <= block_end; ++after) {
                  if (tokens[after].text != ";" &&
                      tokens[after].text != "}") {
                    terminates = false;
                    break;
                  }
                }
              }
              if (!terminates) {
                findings.push_back(
                    {file.lexed.path, tokens[i].line, "fork-safety",
                     "fork-server '" + fn.name +
                         "' forks a grandchild whose branch can fall "
                         "through into the serve loop; end the child "
                         "branch with a call to a fork-child-entry or "
                         "_exit/exec* function"});
              }
            }
            break;
          }
        }
        if (!found_branch && !file.lexed.allows("fork-safety", call.line)) {
          findings.push_back(
              {file.lexed.path, call.line, "fork-safety",
               "no `if (" + var + " == 0)` child branch found after fork()"});
        }
      }
    }
    for (const FunctionDef& fn : file.functions) {
      if (entries.count(fn.name) != 0) {
        check_child_entry(file, fn, findings);
      }
    }
  }
  return findings;
}

}  // namespace phicheck

// phifi_top: live terminal dashboard for a fabric campaign, fed by the
// coordinator's scrape endpoint (--serve-metrics).
//
//   $ phifi_top tcp:127.0.0.1:9090 [--interval <sec>] [--once]
//
// Polls /campaign.json and redraws an ANSI view of the fleet: exact
// tallies at the contiguous fold frontier, estimator confidence
// intervals, lease health, and one row per worker (live or dead).
// --once prints a single frame with no escape codes (script-friendly).
// Exit codes: 0 clean (q/EOF/--once), 1 endpoint unreachable on first
// poll, 2 usage.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fabric/protocol.hpp"
#include "util/json.hpp"

namespace {

using phifi::util::json::Value;

/// One-shot HTTP GET against the scrape endpoint; empty string on any
/// transport failure (caller decides whether that is fatal).
// phicheck:eintr-helper deadline-bounded poll loop; EINTR just re-ticks
std::string fetch(const phifi::fabric::Address& address,
                  const std::string& route) {
  int fd = -1;
  try {
    fd = phifi::fabric::connect_to(address);
  } catch (const std::runtime_error&) {
    return "";
  }
  if (fd < 0) return "";
  const std::string request = "GET " + route + " HTTP/1.1\r\n\r\n";
  std::size_t sent = 0;
  std::string response;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;
    }
    ::usleep(2000);
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

std::string bar(double fraction, int width) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out;
  for (int i = 0; i < width; ++i) out += i < filled ? '#' : '.';
  return out;
}

std::string seconds_label(double seconds) {
  char buffer[32];
  if (seconds >= 3600.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1fs", seconds);
  }
  return buffer;
}

/// Renders one frame from a parsed /campaign.json document. `ansi`
/// enables color; the layout is identical either way.
std::string render(const Value& doc, bool ansi) {
  const char* bold = ansi ? "\x1b[1m" : "";
  const char* dim = ansi ? "\x1b[2m" : "";
  const char* red = ansi ? "\x1b[31m" : "";
  const char* green = ansi ? "\x1b[32m" : "";
  const char* yellow = ansi ? "\x1b[33m" : "";
  const char* reset = ansi ? "\x1b[0m" : "";

  const double completed = doc.number_or("completed", 0.0);
  const double target = doc.number_or("trials_target", 0.0);
  const double fraction = target > 0.0 ? completed / target : 0.0;

  std::ostringstream out;
  out << bold << "phifi fleet" << reset << "  run " << dim
      << doc.string_or("run_id", "?") << reset << "  up "
      << seconds_label(doc.number_or("uptime_seconds", 0.0));
  if (doc.bool_or("stopped_early", false)) {
    out << "  " << yellow << "[stopped early: CI target met]" << reset;
  }
  out << "\n";

  char line[160];
  std::snprintf(line, sizeof(line), "  [%s] %.0f / %.0f trials (%.1f%%)\n",
                bar(fraction, 40).c_str(), completed, target,
                100.0 * fraction);
  out << line;

  std::snprintf(line, sizeof(line),
                "  masked %-8.0f sdc %-8.0f due %-8.0f not-injected %.0f\n",
                doc.number_or("masked", 0.0), doc.number_or("sdc", 0.0),
                doc.number_or("due", 0.0),
                doc.number_or("not_injected", 0.0));
  out << line;

  if (doc.find("sdc_rate") != nullptr) {
    std::snprintf(line, sizeof(line),
                  "  P(SDC) %.4f [%.4f, %.4f]   P(DUE) %.4f [%.4f, %.4f]\n",
                  doc.number_or("sdc_rate", 0.0),
                  doc.number_or("sdc_ci_lo", 0.0),
                  doc.number_or("sdc_ci_hi", 0.0),
                  doc.number_or("due_rate", 0.0),
                  doc.number_or("due_ci_lo", 0.0),
                  doc.number_or("due_ci_hi", 0.0));
    out << line;
    if (doc.find("eta_trials_to_stop") != nullptr) {
      std::snprintf(line, sizeof(line),
                    "  ~%.0f more trials until the CI stop width\n",
                    doc.number_or("eta_trials_to_stop", 0.0));
      out << line;
    }
  } else {
    out << dim << "  waiting for first worker snapshot\n" << reset;
  }

  const Value* leases = doc.find("leases");
  if (leases != nullptr) {
    std::snprintf(line, sizeof(line),
                  "  leases: %.0f granted, %.0f reclaimed, %.0f out\n",
                  leases->number_or("granted", 0.0),
                  leases->number_or("reclaimed", 0.0),
                  leases->number_or("outstanding", 0.0));
    out << line;
  }

  const Value* workers = doc.find("workers");
  out << "\n  " << bold
      << "worker        status  lag     lease           trials/s  executed"
         "  p95 run"
      << reset << "\n";
  if (workers != nullptr) {
    for (const Value& row : workers->as_array()) {
      const bool live = row.string_or("status", "") == "live";
      std::string lease = "-";
      if (row.find("lease") != nullptr) {
        std::snprintf(line, sizeof(line), "#%.0f [%.0f,%.0f)",
                      row.number_or("lease", 0.0),
                      row.number_or("lease_begin", 0.0),
                      row.number_or("lease_end", 0.0));
        lease = line;
      }
      // p95 of the run phase from the worker's latency snapshot; absent
      // unless the worker runs with --profile.
      std::string p95_run = "-";
      if (row.find("p95_run_ms") != nullptr) {
        std::snprintf(line, sizeof(line), "%.1fms",
                      row.number_or("p95_run_ms", 0.0));
        p95_run = line;
      }
      char id_hex[24];
      std::snprintf(id_hex, sizeof(id_hex), "%012llx",
                    static_cast<unsigned long long>(
                        row.number_or("id", 0.0)));
      std::snprintf(line, sizeof(line),
                    "  %-12s  %s%-6s%s  %-6s  %-14s  %8.1f  %8.0f  %7s\n",
                    id_hex, live ? green : red, live ? "live" : "dead",
                    reset,
                    seconds_label(row.number_or("lag_seconds", 0.0)).c_str(),
                    lease.c_str(), row.number_or("trials_per_sec", 0.0),
                    row.number_or("executed", 0.0), p95_run.c_str());
      out << line;
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec;
  double interval = 1.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval") {
      if (i + 1 >= argc) {
        std::cerr << "phifi_top: --interval needs a value\n";
        return 2;
      }
      try {
        interval = std::stod(argv[++i]);
      } catch (const std::exception&) {
        interval = -1.0;
      }
      if (interval <= 0.0) {
        std::cerr << "phifi_top: --interval must be a positive number\n";
        return 2;
      }
    } else if (arg == "--once") {
      once = true;
    } else if (spec.empty()) {
      spec = arg;
    } else {
      std::cerr << "phifi_top: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (spec.empty()) {
    std::cerr << "usage: phifi_top <tcp:host:port|unix:path> "
                 "[--interval <sec>] [--once]\n";
    return 2;
  }

  phifi::fabric::Address address;
  try {
    address = phifi::fabric::parse_address(spec);
  } catch (const std::runtime_error& error) {
    std::cerr << "phifi_top: " << error.what() << "\n";
    return 2;
  }

  bool ever_connected = false;
  while (true) {
    const std::string body = fetch(address, "/campaign.json");
    if (body.empty()) {
      if (!ever_connected) {
        std::cerr << "phifi_top: no response from " << spec << "\n";
        return 1;
      }
      // Coordinator wound down between polls: campaign over, exit clean.
      std::cout << "phifi_top: endpoint gone, campaign finished\n";
      return 0;
    }
    Value doc;
    try {
      doc = phifi::util::json::parse(body);
    } catch (const std::runtime_error&) {
      // Torn response; retry on the next tick.
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      continue;
    }
    ever_connected = true;
    if (once) {
      std::cout << render(doc, /*ansi=*/false);
      return 0;
    }
    std::cout << "\x1b[2J\x1b[H" << render(doc, /*ansi=*/true)
              << "\x1b[2m  refresh " << interval << "s — ctrl-c to quit"
              << "\x1b[0m\n"
              << std::flush;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

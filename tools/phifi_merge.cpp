// phifi_merge: fold fabric worker shard journals back into the single
// journal a --jobs 1 run would have written.
//
//   $ phifi_merge <config-file> --out <merged.jnl> [--allow-torn-tail]
//                 <shard.jnl> [<shard.jnl> ...]
//
// The merged journal replays like any other: point the config's
// journal_file at it and run `phifi_run <config> --resume` to rebuild
// tallies, estimator state, and the history record — then gate with
// `phifi_parse --drift` against a --jobs 1 baseline. Exit codes: 0 merged,
// 1 merge refused (gap / fingerprint mismatch / torn shard), 2 usage.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/config.hpp"
#include "core/supervisor.hpp"
#include "fabric/merge.hpp"
#include "util/log.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace phifi;
  util::init_log_from_env();

  std::string config_path;
  fabric::MergeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "phifi_merge: --out needs a value\n";
        return 2;
      }
      options.out_path = argv[++i];
    } else if (arg == "--allow-torn-tail") {
      options.allow_torn_tail = true;
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      options.shards.push_back(arg);
    }
  }
  if (config_path.empty() || options.out_path.empty() ||
      options.shards.empty()) {
    std::cerr << "usage: phifi_merge <config-file> --out <merged.jnl> "
                 "[--allow-torn-tail] <shard.jnl>...\n";
    return 2;
  }

  try {
    std::ifstream config_stream(config_path);
    if (!config_stream) {
      std::cerr << "phifi_merge: cannot open '" << config_path << "'\n";
      return 2;
    }
    const cli::RunnerConfig config = cli::parse_config(config_stream);
    const fi::WorkloadFactory factory = work::find_workload(config.workload);
    if (factory == nullptr) {
      std::cerr << "phifi_merge: unknown workload '" << config.workload
                << "'\n";
      return 2;
    }
    // The fingerprint covers time_windows, which only the instantiated
    // workload knows — prepare the golden copy exactly as phifi_run does.
    fi::TrialSupervisor supervisor(factory, config.supervisor_config());
    supervisor.prepare_golden();

    const fabric::MergeSummary summary =
        fabric::merge_shards(config.campaign_config(),
                             supervisor.workload_name(),
                             supervisor.time_windows(), options);
    std::cout << "phifi_merge: " << summary.merged << " records -> '"
              << options.out_path << "' (" << summary.shard_records
              << " read from " << options.shards.size() << " shards, "
              << summary.duplicates << " duplicates, " << summary.overshoot
              << " past the boundary)\n"
              << "  injected " << summary.injected << ": masked "
              << summary.overall.masked << ", sdc " << summary.overall.sdc
              << ", due " << summary.overall.due
              << (summary.stopped_early ? " [stopped early: CI target]"
                                        : "")
              << "\n";
  } catch (const std::exception& error) {
    std::cerr << "phifi_merge: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

// Structured trial tracing: one NDJSON record per event, the injector's
// machine-readable primary output (the FINJ/ZOFI model).
//
// A campaign writes, alongside the binary write-ahead journal, a trace
// whose records carry everything the paper's timing/phase analyses need —
// when each trial forked, where and when the fault was injected (site,
// fault model, code portion, execution-time fraction), which workload
// phases ran, and how the outcome was classified — all with monotonic
// timestamps relative to campaign and trial start. phifi_parse
// --from-trace reconstructs the Fig. 6 PVF-per-time-window and Sec. 6
// per-portion criticality tables from this stream alone.
//
// Durability mirrors the journal: records are appended a line at a time;
// a crash can tear at most the final line, which the reader drops (and
// reports) instead of failing. The telemetry layer is deliberately
// decoupled from core types: records are plain strings/numbers, and the
// campaign does the enum-to-string mapping, so this library depends only
// on phifi_util.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace phifi::telemetry {

/// One timed sub-interval of a trial ("fork", "run", "classify").
/// Timestamps are milliseconds from the trial's own start, monotonic.
struct TraceSpan {
  std::string name;
  double t0_ms = 0.0;
  double t1_ms = 0.0;
};

/// One workload phase transition observed inside the trial child.
struct TracePhase {
  std::string name;
  double fraction = 0.0;  ///< execution progress when the phase began
  double t_ms = 0.0;      ///< ms from child start, monotonic
};

/// Everything traced about one trial attempt.
struct TrialTrace {
  std::uint64_t attempt = 0;
  std::string outcome;       ///< "Masked" / "SDC" / "DUE" / "NotInjected"
  std::string due_kind;      ///< "none" / "crash" / ...
  bool injected = false;
  std::string model;         ///< fault model name
  std::string site;          ///< corrupted variable
  std::string category;      ///< code portion (Sec. 6 criticality key)
  std::string frame;         ///< "global" / "worker"
  std::int32_t worker = -1;  ///< injection frame's device worker, not a slot
  /// Scheduler slot the trial ran in (0 in single-worker campaigns).
  unsigned slot = 0;
  double progress_fraction = 0.0;  ///< time-window fraction (Fig. 6)
  unsigned window = 0;
  double seconds = 0.0;
  std::uint64_t heartbeats = 0;
  bool escalated_kill = false;
  /// How the trial child came into existence: "legacy" (cold start),
  /// "warm" (re-forked from the campaign's post-setup image), or
  /// "template" (re-forked by a per-slot fork-server process).
  std::string fork_mode = "legacy";
  /// Seconds from trial start until the child existed (the fork span;
  /// on the fast path this is the amortized cost the mode pays per trial).
  double fork_seconds = 0.0;
  /// True when the trial paid no workload setup anywhere on its critical
  /// path (warm trials always; template trials except the one that
  /// (re)spawned the template; legacy trials never).
  bool setup_skipped = false;
  double ts_ms = 0.0;  ///< trial start, ms from campaign start (monotonic)
  std::vector<TraceSpan> spans;
  std::vector<TracePhase> phases;
};

/// Campaign-level metadata, the first record of every trace.
struct TraceCampaign {
  std::string workload;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  std::string policy;
  std::vector<std::string> models;
  unsigned time_windows = 1;
  bool resumed = false;
  /// Worker slots the campaign scheduled trials into (--jobs). With more
  /// than one, trial ts_ms values may be non-monotonic: records commit in
  /// attempt order, not launch order.
  unsigned jobs = 1;
};

/// One fabric (coordinator) event: worker membership or a lease
/// transition. String-typed kind, like every other trace field, so the
/// telemetry layer stays decoupled from fabric types. Kinds:
/// "worker_join", "worker_leave", "lease_grant", "lease_adopt",
/// "lease_done", "lease_reclaim".
struct TraceFabricEvent {
  std::string kind;
  std::uint64_t worker = 0;
  std::uint64_t lease = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;     ///< lease range end (exclusive)
  std::uint64_t injected = 0;
  double ts_ms = 0.0;  ///< ms from campaign start, monotonic
};

/// Campaign-level summary, the final record of a complete trace.
struct TraceEnd {
  std::uint64_t completed = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  std::uint64_t not_injected = 0;
  bool interrupted = false;
  bool aborted = false;
  /// Sequential stopping (--stop-ci-width) ended the campaign before the
  /// configured trial count.
  bool stopped_early = false;
  /// Wall-clock ms from campaign (trace-writer) start to the end record.
  double elapsed_ms = 0.0;
  /// DUE breakdown by kind ("crash", "hang", ...), counting this run's
  /// segment like the tallies above. Kinds with zero count are omitted.
  std::map<std::string, std::uint64_t> due_kinds;
};

/// Appends NDJSON records to a file. Each record is flushed to the OS as
/// one write, so a crash tears at most the final line.
class TraceWriter {
 public:
  /// `truncate` starts a fresh trace; otherwise appends (resume).
  explicit TraceWriter(const std::string& path, bool truncate = true);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void campaign(const TraceCampaign& header);
  void trial(const TrialTrace& trial);
  void fabric(const TraceFabricEvent& event);
  void end(const TraceEnd& end);

  /// Correlation context stamped into every subsequent record (docs/
  /// FLEET_OBSERVABILITY.md): `run_id` identifies one campaign run across
  /// every process that served it; `worker_id`/`lease_id` tie a worker's
  /// records to the coordinator's grant/reclaim events. An empty run id or
  /// a zero worker/lease id clears the field.
  void set_run_id(const std::string& run_id);
  void set_worker(std::uint64_t worker_id);
  void set_lease(std::uint64_t lease_id);

  /// Forces buffered records to disk.
  void sync();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

  /// Milliseconds since this writer was created (the campaign clock that
  /// stamps TrialTrace::ts_ms), monotonic.
  [[nodiscard]] double now_ms() const;

 private:
  void write_line(util::json::Value record);

  int fd_ = -1;
  std::uint64_t records_ = 0;
  std::uint64_t t0_ns_ = 0;
  std::string run_id_;
  std::uint64_t worker_id_ = 0;
  std::uint64_t lease_id_ = 0;
};

/// Parsed trace: raw JSON values, plus the decoded trial records.
struct TraceContents {
  util::json::Value campaign;       ///< null if the trace lacks a header
  std::vector<TrialTrace> trials;
  /// Fabric (coordinator) event records, as raw JSON, in stream order.
  std::vector<util::json::Value> fabric;
  util::json::Value end;            ///< null while a campaign is running
  /// Bytes of torn/unparseable tail dropped during the load (0 = clean).
  std::uint64_t dropped_bytes = 0;
};

/// Loads a trace stream/file. A torn or corrupt tail is dropped and
/// reported via dropped_bytes; everything before it is returned. Throws
/// std::runtime_error only if the file cannot be opened.
TraceContents read_trace(std::istream& is);
TraceContents read_trace_file(const std::string& path);

/// (De)serialization of single records, exposed for tests and tools.
util::json::Value trial_to_json(const TrialTrace& trial);
TrialTrace trial_from_json(const util::json::Value& record);

}  // namespace phifi::telemetry

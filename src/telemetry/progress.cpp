#include "telemetry/progress.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "telemetry/estimator.hpp"

namespace phifi::telemetry {

namespace {

std::uint64_t counter_value(const MetricsRegistry& registry,
                            const std::string& name) {
  const Counter* counter = registry.find_counter(name);
  return counter == nullptr ? 0 : counter->value();
}

std::string fmt1(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", value);
  return buffer;
}

std::string fmt_eta(double seconds) {
  // "--": not computable yet (no throughput sample), the cold-start case.
  if (!std::isfinite(seconds) || seconds < 0.0) return "--";
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buffer[32];
  if (total >= 3600) {
    std::snprintf(buffer, sizeof buffer, "%lluh%02llum",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>((total % 3600) / 60));
  } else if (total >= 60) {
    std::snprintf(buffer, sizeof buffer, "%llum%02llus",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  } else {
    std::snprintf(buffer, sizeof buffer, "%llus",
                  static_cast<unsigned long long>(total));
  }
  return buffer;
}

}  // namespace

ProgressEmitter::ProgressEmitter(const MetricsRegistry& registry,
                                 std::ostream& out, double interval_seconds)
    : registry_(&registry),
      out_(&out),
      interval_seconds_(interval_seconds),
      start_(Clock::now()),
      last_emit_(start_),
      last_sample_(start_) {}

void ProgressEmitter::set_estimator(const CampaignEstimator* estimator,
                                    double target_half_width) {
  estimator_ = estimator;
  target_half_width_ = target_half_width;
}

std::string ProgressEmitter::render() const {
  const std::uint64_t completed =
      counter_value(*registry_, "campaign.completed");
  const std::uint64_t target = static_cast<std::uint64_t>(
      registry_->find_gauge("campaign.trials_target") != nullptr
          ? registry_->find_gauge("campaign.trials_target")->value()
          : 0.0);
  const std::uint64_t masked = counter_value(*registry_, "campaign.masked");
  const std::uint64_t sdc = counter_value(*registry_, "campaign.sdc");
  const std::uint64_t due = counter_value(*registry_, "campaign.due");
  const std::uint64_t total = masked + sdc + due;

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start_).count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
  const double remaining =
      target > completed ? static_cast<double>(target - completed) : 0.0;
  const double eta_seconds = rate > 0.0 ? remaining / rate : -1.0;

  const auto percent = [total](std::uint64_t n) {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(n) /
                            static_cast<double>(total);
  };

  std::string line = "[progress] " + std::to_string(completed) + "/" +
                     std::to_string(target) + " trials, " + fmt1(rate) +
                     "/s, ETA " + fmt_eta(eta_seconds);

  // Fabric (coordinator) view: the campaign.completed counter is fed the
  // aggregate of every worker's reports, so the rate and ETA above are
  // already fabric-wide trials/s — this just makes the fan-out visible.
  const Gauge* workers_live = registry_->find_gauge("fabric.workers_live");
  if (workers_live != nullptr) {
    const Gauge* leased = registry_->find_gauge("fabric.leases_outstanding");
    line += " | workers: " +
            std::to_string(
                static_cast<std::uint64_t>(workers_live->value())) +
            " live / " +
            std::to_string(static_cast<std::uint64_t>(
                leased != nullptr ? leased->value() : 0.0)) +
            " leased";
  }

  if (completed == 0 || total == 0) {
    // Cold start: nothing completed yet (or the registry has no campaign
    // counters at all) — an all-zero outcome split would be misleading.
    // On a fabric coordinator the first numbers arrive with the first
    // worker report, so say that instead of implying local execution.
    return line + (workers_live != nullptr
                       ? " | waiting for first worker snapshot"
                       : " | waiting for first completed trial");
  }
  line += " | masked " + fmt1(percent(masked)) + "% sdc " +
          fmt1(percent(sdc)) + "% due " + fmt1(percent(due)) + "%";

  // Live estimate: SDC proportion with its Wilson half-width, and — when
  // chasing a target precision — the projected trials/time to reach it.
  if (estimator_ != nullptr && estimator_->total() > 0) {
    const util::Interval sdc_ci = estimator_->sdc_interval();
    line += " | sdc " + fmt1(100.0 * sdc_ci.point) + "% ±" +
            fmt1(100.0 * sdc_ci.half_width());
    if (target_half_width_ > 0.0) {
      const std::uint64_t more =
          estimator_->trials_to_half_width(target_half_width_);
      line += " | ETA to ±" + fmt1(100.0 * target_half_width_) + "%: ";
      if (more == 0) {
        line += "reached";
      } else {
        line += std::to_string(more) + " trials";
        if (rate > 0.0) {
          line +=
              " (~" + fmt_eta(static_cast<double>(more) / rate) + ")";
        }
      }
    }
  }

  // DUE-kind breakdown, only for kinds actually seen.
  static const char* kKinds[] = {"crash", "abnormal-exit", "hang",
                                 "rlimit", "stall"};
  std::string kinds;
  for (const char* kind : kKinds) {
    const std::uint64_t n =
        counter_value(*registry_, std::string("campaign.due.") + kind);
    if (n == 0) continue;
    if (!kinds.empty()) kinds += " ";
    kinds += std::string(kind) + ":" + std::to_string(n);
  }
  if (!kinds.empty()) line += " (" + kinds + ")";
  return line;
}

void ProgressEmitter::tick() {
  const auto now = Clock::now();
  if (std::chrono::duration<double>(now - last_emit_).count() <
      interval_seconds_) {
    return;
  }
  last_emit_ = now;
  emit_now();
}

void ProgressEmitter::emit_now() {
  *out_ << render() << std::endl;  // flush: progress must be visible live
  ++emitted_;
}

}  // namespace phifi::telemetry

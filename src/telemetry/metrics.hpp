// Campaign metrics registry: counters, gauges, fixed-bucket histograms.
//
// The paper's analyses need more than an end-of-run tally: throughput and
// outcome mix while a 90k-injection campaign runs, trial-latency and
// watchdog-behaviour distributions afterwards. The registry is the single
// sink the supervisor, the campaign loop, and phi::Counters feed; the live
// progress emitter and the --metrics-out JSON snapshot both read it.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (values live in node-based maps), so hot paths hold a
// pointer and never repeat the name lookup. All mutation is relaxed
// atomics: exact totals matter, cross-metric ordering does not.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace phifi::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: observations land in the first bucket whose
/// upper edge is >= the value; values above the last edge land in the
/// overflow bucket. Edges are set at creation and never change, so
/// observe() is lock-free.
class Histogram {
 public:
  /// `upper_edges` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_edges() const {
    return edges_;
  }
  /// Bucket i counts observations in (edges[i-1], edges[i]]; the last
  /// index (== upper_edges().size()) is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_total() const { return edges_.size() + 1; }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  /// Get-or-create by name. The returned reference stays valid for the
  /// registry's lifetime. Re-requesting an existing histogram ignores the
  /// edges argument (first creation wins).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_edges);

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const;

  /// Point-in-time JSON snapshot:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"upper_edges": [...], "counts": [...],
  ///                          "count": n, "sum": s, "mean": m}, ...}}
  [[nodiscard]] util::json::Value snapshot() const;

  /// Prometheus / OpenMetrics text exposition of the same state, suitable
  /// for the node-exporter textfile collector. Names are prefixed with
  /// `phifi_` and sanitized (every non-[a-zA-Z0-9_] becomes `_`); counters
  /// get the `_total` suffix; histograms render *cumulative* `_bucket`
  /// series with `le` labels (the internal per-bucket counts are
  /// disjoint), plus `_sum` and `_count`. Each family carries `# HELP` and
  /// `# TYPE` lines and the document ends with `# EOF`.
  [[nodiscard]] std::string render_openmetrics() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Canonical latency bucket edges (milliseconds), 1ms..30s, roughly
/// logarithmic — shared by trial latency and watchdog metrics so
/// dashboards can overlay them.
std::vector<double> default_latency_edges_ms();

/// Bucket edges (milliseconds) for the watchdog poll-interval histogram;
/// finer at the sub-millisecond end where the adaptive poll spends its
/// near-completion phase.
std::vector<double> watchdog_poll_edges_ms();

}  // namespace phifi::telemetry

// Trial latency anatomy profiler: where does a trial's wall-clock go?
//
// The ROADMAP's gating metric is masked-trial throughput, and the fork-
// server fast path moved per-trial time between phases without any
// instrument saying *where*. The profiler records, per committed trial,
// the duration of every phase of the trial pipeline — fork/re-fork,
// workload setup/reset, site selection + injection, run, classification
// (golden diff or in-place memfd verdict), reorder-buffer wait, journal
// append, and the batched fsync flush — into fixed-bucket log2 histograms.
//
// Discipline mirrors the campaign estimator (estimator.hpp): the snapshot
// holds only integer counts and integer microsecond sums, fold() is pure
// element-wise addition (associative + commutative), and percentiles are
// derived from the bucket counts with integer rank arithmetic — so the
// coordinator's fold of per-worker snapshots is bit-identical to the
// profile a --jobs 1 run of the same trials would accumulate.
//
// Like the tracer, the profiler is opt-in with a nullptr fast path: no
// profiler pointer in CampaignConfig means the commit path does not even
// read a clock for it. With a pointer but no file, it accumulates
// histograms without a single syscall or allocation per trial; with a
// file it additionally appends one NDJSON `profile` record per committed
// trial (torn-tail drop semantics shared with the tracer).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace phifi::telemetry {

/// The trial pipeline's phase taxonomy (docs/PROFILING.md). Order is the
/// wire and storage order; kFlush is last because it is batch-scoped (the
/// cost lands on the trial whose commit triggered the flush, zero
/// elsewhere).
enum class ProfilePhase : unsigned {
  kFork = 0,  ///< fork / warm re-fork / template dispatch, to child running
  kSetup,     ///< workload setup or reset inside the trial child
  kInject,    ///< site registration + flip-engine arming in the child
  kRun,       ///< workload execution (child run loop)
  kClassify,  ///< golden diff (parent) or in-place memfd verdict (child)
  kRobWait,   ///< reorder-buffer wait from reap to in-order commit
  kJournal,   ///< write-ahead journal append for this trial
  kFlush,     ///< batched journal fsync charged to the triggering trial
};

inline constexpr std::size_t kProfilePhaseCount = 8;

[[nodiscard]] std::string_view to_string(ProfilePhase phase);

/// Parses a phase name; returns false on an unknown name.
[[nodiscard]] bool profile_phase_from_name(std::string_view name,
                                           ProfilePhase* phase);

/// log2 bucket count: bucket i (i >= 1) holds durations in
/// [2^(i-1), 2^i) microseconds, bucket 0 holds exactly 0 us, and the
/// last bucket absorbs everything >= 2^46 us (~2.2 years — unreachable).
inline constexpr std::size_t kProfileBuckets = 48;

/// Maps a duration in microseconds to its bucket index.
[[nodiscard]] std::size_t profile_bucket_index(std::uint64_t us);

/// Inclusive upper edge of a bucket, in microseconds (0 for bucket 0).
[[nodiscard]] std::uint64_t profile_bucket_edge_us(std::size_t bucket);

/// One phase's histogram: integer counts only, so fold order never
/// changes the result.
struct ProfilePhaseHist {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::array<std::uint64_t, kProfileBuckets> buckets{};

  void observe(std::uint64_t us) {
    ++count;
    sum_us += us;
    ++buckets[profile_bucket_index(us)];
  }

  [[nodiscard]] double mean_ms() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_us) /
                            (1000.0 * static_cast<double>(count));
  }

  bool operator==(const ProfilePhaseHist&) const = default;
};

/// Percentile from bucket counts, reported as the inclusive upper edge of
/// the bucket holding the target rank, in milliseconds. Integer rank
/// arithmetic (rank = ceil(count * pct / 100)) over integer counts: the
/// value depends only on the folded counts, never on fold order.
[[nodiscard]] double profile_percentile_ms(const ProfilePhaseHist& hist,
                                           unsigned pct);

/// The foldable profile state: one histogram per phase.
struct ProfileSnapshot {
  std::array<ProfilePhaseHist, kProfilePhaseCount> phases{};

  [[nodiscard]] ProfilePhaseHist& phase(ProfilePhase p) {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const ProfilePhaseHist& phase(ProfilePhase p) const {
    return phases[static_cast<std::size_t>(p)];
  }

  /// Element-wise integer addition — associative and commutative, so a
  /// fleet fold over per-worker snapshots in any grouping equals the
  /// jobs=1 accumulation bit for bit.
  void fold(const ProfileSnapshot& other);

  /// Total committed trials (every phase observes once per trial, so any
  /// phase's count works; kRun is the canonical one).
  [[nodiscard]] std::uint64_t trials() const {
    return phase(ProfilePhase::kRun).count;
  }

  bool operator==(const ProfileSnapshot&) const = default;
};

/// One committed trial's phase durations — what the campaign commit path
/// hands the profiler and what one NDJSON `profile` record carries.
struct TrialProfile {
  std::uint64_t attempt = 0;
  std::string workload;
  std::string fork_mode = "legacy";
  std::array<std::uint64_t, kProfilePhaseCount> phase_us{};

  [[nodiscard]] std::uint64_t& us(ProfilePhase p) {
    return phase_us[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t us(ProfilePhase p) const {
    return phase_us[static_cast<std::size_t>(p)];
  }
};

/// Converts a non-negative duration in seconds to whole microseconds.
[[nodiscard]] std::uint64_t profile_us_from_seconds(double seconds);

/// The profiler the campaign commit path feeds. Single-writer by design
/// (the commit point is single-threaded even at --jobs N), like the
/// estimator.
class TrialProfiler {
 public:
  /// Accumulate-only profiler: no file, no syscalls on the trial path.
  TrialProfiler() = default;

  /// Accumulates and appends one NDJSON record per trial to `path`.
  /// `truncate=false` appends (resumed campaigns keep their history).
  explicit TrialProfiler(const std::string& path, bool truncate = true);
  ~TrialProfiler();

  TrialProfiler(const TrialProfiler&) = delete;
  TrialProfiler& operator=(const TrialProfiler&) = delete;

  /// Workload name stamped onto records whose TrialProfile left it empty.
  void set_workload(std::string workload);

  /// Observes one committed trial: every phase lands in its histogram,
  /// and (file-backed only) one `profile` record is appended.
  void trial(const TrialProfile& profile);

  [[nodiscard]] ProfileSnapshot snapshot() const { return accumulated_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] bool writing() const { return fd_ >= 0; }

  /// Flushes the record file (campaign end / segment boundary).
  void sync();

 private:
  ProfileSnapshot accumulated_;
  std::string workload_;
  int fd_ = -1;
  std::uint64_t records_ = 0;
};

/// JSON codecs for the STATS wire (fabric/stats.cpp embeds the snapshot in
/// the worker heartbeat payload) and for tests. Buckets are encoded
/// sparsely ({"<index>": count, ...}) to keep heartbeat frames small.
[[nodiscard]] util::json::Value profile_snapshot_to_json(
    const ProfileSnapshot& snapshot);
[[nodiscard]] ProfileSnapshot profile_snapshot_from_json(
    const util::json::Value& value);

/// JSON form of one trial's record (the NDJSON line body).
[[nodiscard]] util::json::Value trial_profile_to_json(
    const TrialProfile& profile);
[[nodiscard]] TrialProfile trial_profile_from_json(
    const util::json::Value& record);

/// A parsed profile stream (phifi_parse --profile, check_telemetry.py's
/// C++-side mirror in tests).
struct ProfileContents {
  std::vector<TrialProfile> trials;
  std::size_t dropped_bytes = 0;  ///< torn/corrupt tail, dropped like trace
};

ProfileContents read_profile(std::istream& is);
ProfileContents read_profile_file(const std::string& path);

}  // namespace phifi::telemetry

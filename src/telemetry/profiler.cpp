#include "telemetry/profiler.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <utility>

#include "util/posix_io.hpp"

namespace phifi::telemetry {

namespace {

constexpr std::string_view kPhaseNames[kProfilePhaseCount] = {
    "fork", "setup", "inject", "run", "classify", "rob_wait", "journal",
    "flush"};

}  // namespace

std::string_view to_string(ProfilePhase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

bool profile_phase_from_name(std::string_view name, ProfilePhase* phase) {
  for (std::size_t i = 0; i < kProfilePhaseCount; ++i) {
    if (kPhaseNames[i] == name) {
      *phase = static_cast<ProfilePhase>(i);
      return true;
    }
  }
  return false;
}

std::size_t profile_bucket_index(std::uint64_t us) {
  if (us == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(us));
  return width < kProfileBuckets ? width : kProfileBuckets - 1;
}

std::uint64_t profile_bucket_edge_us(std::size_t bucket) {
  if (bucket == 0) return 0;
  return (std::uint64_t{1} << bucket) - 1;
}

double profile_percentile_ms(const ProfilePhaseHist& hist, unsigned pct) {
  if (hist.count == 0) return 0.0;
  // rank = ceil(count * pct / 100), all integer: fold-order independent.
  const std::uint64_t rank = (hist.count * pct + 99) / 100;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kProfileBuckets; ++i) {
    seen += hist.buckets[i];
    if (seen >= rank) {
      return static_cast<double>(profile_bucket_edge_us(i)) / 1000.0;
    }
  }
  return static_cast<double>(profile_bucket_edge_us(kProfileBuckets - 1)) /
         1000.0;
}

void ProfileSnapshot::fold(const ProfileSnapshot& other) {
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    phases[p].count += other.phases[p].count;
    phases[p].sum_us += other.phases[p].sum_us;
    for (std::size_t b = 0; b < kProfileBuckets; ++b) {
      phases[p].buckets[b] += other.phases[p].buckets[b];
    }
  }
}

std::uint64_t profile_us_from_seconds(double seconds) {
  if (!(seconds > 0.0)) return 0;  // NaN and negatives clamp to zero
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

TrialProfiler::TrialProfiler(const std::string& path, bool truncate) {
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("TrialProfiler: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
}

TrialProfiler::~TrialProfiler() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void TrialProfiler::set_workload(std::string workload) {
  workload_ = std::move(workload);
}

// phicheck:ndjson-writer(profile) record
util::json::Value trial_profile_to_json(const TrialProfile& profile) {
  util::json::Value record = util::json::Value::object();
  record["type"] = "profile";
  record["attempt"] = profile.attempt;
  record["workload"] = profile.workload;
  record["fork_mode"] = profile.fork_mode;
  record["fork_us"] = profile.us(ProfilePhase::kFork);
  record["setup_us"] = profile.us(ProfilePhase::kSetup);
  record["inject_us"] = profile.us(ProfilePhase::kInject);
  record["run_us"] = profile.us(ProfilePhase::kRun);
  record["classify_us"] = profile.us(ProfilePhase::kClassify);
  record["rob_wait_us"] = profile.us(ProfilePhase::kRobWait);
  record["journal_us"] = profile.us(ProfilePhase::kJournal);
  record["flush_us"] = profile.us(ProfilePhase::kFlush);
  return record;
}

TrialProfile trial_profile_from_json(const util::json::Value& record) {
  TrialProfile profile;
  profile.attempt =
      static_cast<std::uint64_t>(record.number_or("attempt", 0.0));
  profile.workload = record.string_or("workload", "");
  profile.fork_mode = record.string_or("fork_mode", "legacy");
  const auto us = [&record](const char* key) {
    return static_cast<std::uint64_t>(record.number_or(key, 0.0));
  };
  profile.us(ProfilePhase::kFork) = us("fork_us");
  profile.us(ProfilePhase::kSetup) = us("setup_us");
  profile.us(ProfilePhase::kInject) = us("inject_us");
  profile.us(ProfilePhase::kRun) = us("run_us");
  profile.us(ProfilePhase::kClassify) = us("classify_us");
  profile.us(ProfilePhase::kRobWait) = us("rob_wait_us");
  profile.us(ProfilePhase::kJournal) = us("journal_us");
  profile.us(ProfilePhase::kFlush) = us("flush_us");
  return profile;
}

void TrialProfiler::trial(const TrialProfile& profile) {
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    accumulated_.phases[p].observe(profile.phase_us[p]);
  }
  if (fd_ < 0) return;  // accumulate-only: no syscalls, no allocations
  util::json::Value record = trial_profile_to_json(profile);
  if (profile.workload.empty() && !workload_.empty()) {
    record["workload"] = workload_;
  }
  std::string line = record.dump();
  line += '\n';
  // One write per record, like the tracer: a crash tears at most the
  // final line, which readers drop.
  if (!util::io::write_fully(fd_, line.data(), line.size())) {
    throw std::runtime_error(std::string("TrialProfiler: write failed: ") +
                             std::strerror(errno));
  }
  ++records_;
}

void TrialProfiler::sync() {
  // phicheck:blocking-ok(explicit flush API called at campaign end, not from the event loop; reached via same-name 'sync' union)
  if (fd_ >= 0) ::fsync(fd_);
}

// phicheck:ndjson-writer(stats.profile_phase) entry
util::json::Value profile_snapshot_to_json(const ProfileSnapshot& snapshot) {
  util::json::Value phases = util::json::Value::array();
  for (std::size_t p = 0; p < kProfilePhaseCount; ++p) {
    const ProfilePhaseHist& hist = snapshot.phases[p];
    util::json::Value entry = util::json::Value::object();
    entry["phase"] = std::string(kPhaseNames[p]);
    entry["count"] = hist.count;
    entry["sum_us"] = hist.sum_us;
    util::json::Value buckets = util::json::Value::object();
    for (std::size_t b = 0; b < kProfileBuckets; ++b) {
      if (hist.buckets[b] > 0) {
        buckets[std::to_string(b)] = hist.buckets[b];
      }
    }
    entry["buckets"] = std::move(buckets);
    phases.push_back(std::move(entry));
  }
  util::json::Value out = util::json::Value::object();
  out["phases"] = std::move(phases);
  return out;
}

ProfileSnapshot profile_snapshot_from_json(const util::json::Value& value) {
  ProfileSnapshot snapshot;
  const util::json::Value* phases = value.find("phases");
  if (phases == nullptr || !phases->is_array()) return snapshot;
  for (const util::json::Value& entry : phases->as_array()) {
    ProfilePhase phase;
    if (!profile_phase_from_name(entry.string_or("phase", ""), &phase)) {
      continue;  // unknown phase name: forward compatibility, skip
    }
    ProfilePhaseHist& hist = snapshot.phases[static_cast<std::size_t>(phase)];
    hist.count = static_cast<std::uint64_t>(entry.number_or("count", 0.0));
    hist.sum_us = static_cast<std::uint64_t>(entry.number_or("sum_us", 0.0));
    if (const util::json::Value* buckets = entry.find("buckets");
        buckets != nullptr && buckets->is_object()) {
      for (const auto& [index, count] : buckets->as_object()) {
        const unsigned long bucket = std::strtoul(index.c_str(), nullptr, 10);
        if (bucket < kProfileBuckets) {
          hist.buckets[bucket] =
              static_cast<std::uint64_t>(count.as_double());
        }
      }
    }
  }
  return snapshot;
}

ProfileContents read_profile(std::istream& is) {
  ProfileContents contents;
  std::string line;
  while (true) {
    const bool got_line = static_cast<bool>(std::getline(is, line));
    if (!got_line) break;
    const bool complete = !is.eof();
    util::json::Value record;
    bool parsed = false;
    try {
      record = util::json::parse(line);
      parsed = record.is_object();
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) {
      // Torn or corrupt line: drop it and the rest of the stream, exactly
      // like the trace reader.
      contents.dropped_bytes += line.size() + (complete ? 1 : 0);
      std::string rest;
      while (std::getline(is, rest)) {
        contents.dropped_bytes += rest.size() + (is.eof() ? 0 : 1);
      }
      break;
    }
    if (record.string_or("type", "") == "profile") {
      contents.trials.push_back(trial_profile_from_json(record));
    }
    // Unknown record types are skipped: forward compatibility.
  }
  return contents;
}

ProfileContents read_profile_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw std::runtime_error("read_profile: cannot open '" + path + "'");
  }
  return read_profile(stream);
}

}  // namespace phifi::telemetry

// Streaming campaign statistics: live outcome proportions with Wilson
// score intervals, overall and per (fault model × time window × code
// portion) cell, plus a projection of how many more trials are needed to
// reach a target precision.
//
// The paper's headline tables rest on >90,000 injections; the operator of
// such a campaign wants to know *now* how tight the estimates are and when
// the run can stop. The estimator is fed from Campaign::run's commit point
// — the same deterministic, attempt-ordered stream the journal and trace
// see — so its state is bit-identical for any --jobs value and across
// resumes. Like the rest of the telemetry layer it knows nothing about
// core enums: the campaign hands it strings and indices. Single-writer by
// construction (only the commit point feeds it), so no atomics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "util/statistics.hpp"

namespace phifi::telemetry {

class MetricsRegistry;

/// Outcome class of one committed, injected trial as the estimator sees
/// it. NotInjected attempts never reach the estimator: they do not change
/// any proportion.
enum class EstimatorOutcome { kMasked, kSdc, kDue };

/// One estimation cell: fault model × execution-time window × code-portion
/// category (the paper's Fig. 5 / Fig. 6 / Sec. 6 axes respectively).
struct EstimatorCellKey {
  std::string model;
  unsigned window = 0;
  std::string category;

  [[nodiscard]] friend bool operator<(const EstimatorCellKey& a,
                                      const EstimatorCellKey& b) {
    return std::tie(a.model, a.window, a.category) <
           std::tie(b.model, b.window, b.category);
  }
  [[nodiscard]] friend bool operator==(const EstimatorCellKey& a,
                                       const EstimatorCellKey& b) {
    return std::tie(a.model, a.window, a.category) ==
           std::tie(b.model, b.window, b.category);
  }
};

struct EstimatorCounts {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;

  [[nodiscard]] std::uint64_t total() const { return masked + sdc + due; }
};

/// Point-in-time view of one cell with its Wilson intervals.
struct CellEstimate {
  EstimatorCellKey key;
  EstimatorCounts counts;
  util::Interval sdc;  ///< Wilson interval on the cell's SDC proportion
  util::Interval due;  ///< Wilson interval on the cell's DUE proportion
};

/// Plain-counts view of an estimator: the overall tally plus every
/// populated cell, in deterministic key order. Snapshots are what workers
/// ship to the coordinator; because they hold only integer counts, folding
/// them is associative and commutative, and an estimator rebuilt from any
/// fold order is bit-identical (intervals included) to one fed the same
/// trials directly.
struct EstimatorSnapshot {
  EstimatorCounts overall;
  std::vector<std::pair<EstimatorCellKey, EstimatorCounts>> cells;
};

class CampaignEstimator {
 public:
  /// `confidence` is the two-sided level of every interval (0.95 matches
  /// the paper's reporting).
  explicit CampaignEstimator(double confidence = 0.95);

  /// Folds one committed trial in. Must be called in attempt-commit order
  /// (the campaign's deterministic serialization point); cells are only
  /// accounted when the fault actually landed (`injected`), mirroring
  /// fi::accumulate_trial's by_category gating.
  void record(EstimatorOutcome outcome, const std::string& model,
              unsigned window, const std::string& category, bool injected);

  [[nodiscard]] std::uint64_t total() const { return overall_.total(); }
  [[nodiscard]] const EstimatorCounts& counts() const { return overall_; }
  [[nodiscard]] double confidence() const { return confidence_; }

  /// Wilson interval on the overall SDC / DUE / Masked proportion.
  [[nodiscard]] util::Interval sdc_interval() const;
  [[nodiscard]] util::Interval due_interval() const;
  [[nodiscard]] util::Interval masked_interval() const;

  /// Additional trials projected to shrink the SDC-proportion CI
  /// half-width to `eps`, from the planning formula n = z²·p̃(1−p̃)/eps²
  /// with p̃ the Wilson center (never exactly 0 or 1, so the projection
  /// stays finite before the first SDC). Returns 0 once the current
  /// half-width is already <= eps.
  [[nodiscard]] std::uint64_t trials_to_half_width(double eps) const;

  /// All populated cells in deterministic (model, window, category) order.
  [[nodiscard]] std::vector<CellEstimate> cells() const;

  /// Copies the current counts out as a foldable snapshot.
  [[nodiscard]] EstimatorSnapshot snapshot() const;

  /// Adds another estimator's counts into this one. Integer addition only,
  /// so fold order never changes the result.
  void fold(const EstimatorSnapshot& snapshot);

  /// Exports the current estimates as gauges:
  ///   campaign.est.sdc_rate / .sdc_ci_lo / .sdc_ci_hi  (overall, same
  ///   for due) and campaign.est.cell.<model>.w<window>.<category>.
  ///   {sdc_rate,sdc_ci_lo,sdc_ci_hi,trials}. Rates are proportions in
  ///   [0,1]; the OpenMetrics renderer exposes them verbatim.
  void publish(MetricsRegistry& metrics) const;

 private:
  double confidence_;
  EstimatorCounts overall_;
  std::map<EstimatorCellKey, EstimatorCounts> cells_;
};

}  // namespace phifi::telemetry

#include "telemetry/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>

#include "util/posix_io.hpp"

namespace phifi::telemetry {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, bool truncate)
    : t0_ns_(monotonic_ns()) {
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("TraceWriter: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
}

TraceWriter::~TraceWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

double TraceWriter::now_ms() const {
  return static_cast<double>(monotonic_ns() - t0_ns_) / 1e6;
}

void TraceWriter::set_run_id(const std::string& run_id) { run_id_ = run_id; }

void TraceWriter::set_worker(std::uint64_t worker_id) {
  worker_id_ = worker_id;
}

void TraceWriter::set_lease(std::uint64_t lease_id) { lease_id_ = lease_id; }

// phicheck:ndjson-writer(trace.context) record
void TraceWriter::write_line(util::json::Value record) {
  if (!run_id_.empty()) record["run_id"] = run_id_;
  if (worker_id_ != 0) record["worker_id"] = worker_id_;
  if (lease_id_ != 0) record["lease_id"] = lease_id_;
  std::string line = record.dump();
  line += '\n';
  // One write per record: a crash tears at most the final line, which the
  // reader drops like the journal drops a torn binary record.
  if (!util::io::write_fully(fd_, line.data(), line.size())) {
    throw std::runtime_error(std::string("TraceWriter: write failed: ") +
                             std::strerror(errno));
  }
  ++records_;
}

// phicheck:ndjson-writer(trace.campaign) record
void TraceWriter::campaign(const TraceCampaign& header) {
  util::json::Value record = util::json::Value::object();
  record["type"] = "campaign";
  record["schema"] = 1;
  record["workload"] = header.workload;
  record["trials"] = header.trials;
  record["seed"] = header.seed;
  record["policy"] = header.policy;
  util::json::Value models = util::json::Value::array();
  for (const std::string& model : header.models) models.push_back(model);
  record["models"] = std::move(models);
  record["time_windows"] = header.time_windows;
  record["resumed"] = header.resumed;
  record["jobs"] = header.jobs;
  write_line(record);
}

// phicheck:ndjson-writer(trace.trial) record
util::json::Value trial_to_json(const TrialTrace& trial) {
  util::json::Value record = util::json::Value::object();
  record["type"] = "trial";
  record["attempt"] = trial.attempt;
  record["outcome"] = trial.outcome;
  record["due_kind"] = trial.due_kind;
  record["injected"] = trial.injected;
  record["model"] = trial.model;
  record["site"] = trial.site;
  record["category"] = trial.category;
  record["frame"] = trial.frame;
  record["worker"] = static_cast<std::int64_t>(trial.worker);
  record["slot"] = trial.slot;
  record["progress_fraction"] = trial.progress_fraction;
  record["window"] = trial.window;
  record["seconds"] = trial.seconds;
  record["heartbeats"] = trial.heartbeats;
  record["escalated_kill"] = trial.escalated_kill;
  record["fork_mode"] = trial.fork_mode;
  record["fork_seconds"] = trial.fork_seconds;
  record["setup_skipped"] = trial.setup_skipped;
  record["ts_ms"] = trial.ts_ms;
  util::json::Value spans = util::json::Value::array();
  for (const TraceSpan& span : trial.spans) {
    util::json::Value entry = util::json::Value::object();
    entry["name"] = span.name;
    entry["t0_ms"] = span.t0_ms;
    entry["t1_ms"] = span.t1_ms;
    spans.push_back(std::move(entry));
  }
  record["spans"] = std::move(spans);
  util::json::Value phases = util::json::Value::array();
  for (const TracePhase& phase : trial.phases) {
    util::json::Value entry = util::json::Value::object();
    entry["name"] = phase.name;
    entry["fraction"] = phase.fraction;
    entry["t_ms"] = phase.t_ms;
    phases.push_back(std::move(entry));
  }
  record["phases"] = std::move(phases);
  return record;
}

TrialTrace trial_from_json(const util::json::Value& record) {
  TrialTrace trial;
  trial.attempt =
      static_cast<std::uint64_t>(record.number_or("attempt", 0.0));
  trial.outcome = record.string_or("outcome", "");
  trial.due_kind = record.string_or("due_kind", "none");
  trial.injected = record.bool_or("injected", false);
  trial.model = record.string_or("model", "");
  trial.site = record.string_or("site", "");
  trial.category = record.string_or("category", "");
  trial.frame = record.string_or("frame", "global");
  trial.worker = static_cast<std::int32_t>(record.number_or("worker", -1.0));
  trial.slot = static_cast<unsigned>(record.number_or("slot", 0.0));
  trial.progress_fraction = record.number_or("progress_fraction", 0.0);
  trial.window = static_cast<unsigned>(record.number_or("window", 0.0));
  trial.seconds = record.number_or("seconds", 0.0);
  trial.heartbeats =
      static_cast<std::uint64_t>(record.number_or("heartbeats", 0.0));
  trial.escalated_kill = record.bool_or("escalated_kill", false);
  trial.fork_mode = record.string_or("fork_mode", "legacy");
  trial.fork_seconds = record.number_or("fork_seconds", 0.0);
  trial.setup_skipped = record.bool_or("setup_skipped", false);
  trial.ts_ms = record.number_or("ts_ms", 0.0);
  if (const util::json::Value* spans = record.find("spans");
      spans != nullptr && spans->is_array()) {
    for (const util::json::Value& entry : spans->as_array()) {
      trial.spans.push_back({entry.string_or("name", ""),
                             entry.number_or("t0_ms", 0.0),
                             entry.number_or("t1_ms", 0.0)});
    }
  }
  if (const util::json::Value* phases = record.find("phases");
      phases != nullptr && phases->is_array()) {
    for (const util::json::Value& entry : phases->as_array()) {
      trial.phases.push_back({entry.string_or("name", ""),
                              entry.number_or("fraction", 0.0),
                              entry.number_or("t_ms", 0.0)});
    }
  }
  return trial;
}

void TraceWriter::trial(const TrialTrace& trial) {
  write_line(trial_to_json(trial));
}

// phicheck:ndjson-writer(trace.fabric) record
void TraceWriter::fabric(const TraceFabricEvent& event) {
  util::json::Value record = util::json::Value::object();
  record["type"] = "fabric";
  record["kind"] = event.kind;
  record["worker"] = event.worker;
  record["lease"] = event.lease;
  record["begin"] = event.begin;
  record["end"] = event.end;
  record["injected"] = event.injected;
  record["ts_ms"] = event.ts_ms;
  write_line(record);
}

// phicheck:ndjson-writer(trace.end) record
void TraceWriter::end(const TraceEnd& end) {
  util::json::Value record = util::json::Value::object();
  record["type"] = "end";
  record["completed"] = end.completed;
  record["masked"] = end.masked;
  record["sdc"] = end.sdc;
  record["due"] = end.due;
  record["not_injected"] = end.not_injected;
  record["interrupted"] = end.interrupted;
  record["aborted"] = end.aborted;
  record["stopped_early"] = end.stopped_early;
  record["elapsed_ms"] = end.elapsed_ms;
  util::json::Value kinds = util::json::Value::object();
  for (const auto& [kind, count] : end.due_kinds) {
    if (count > 0) kinds[kind] = count;
  }
  record["due_kinds"] = std::move(kinds);
  write_line(record);
}

void TraceWriter::sync() {
  // phicheck:blocking-ok(explicit flush API called at campaign end / segment boundaries, not from the event loop; the walk reaches it via same-name 'sync' union)
  if (fd_ >= 0) ::fsync(fd_);
}

TraceContents read_trace(std::istream& is) {
  TraceContents contents;
  std::string line;
  while (true) {
    const bool got_line = static_cast<bool>(std::getline(is, line));
    if (!got_line) break;
    // A line without the trailing newline (getline at EOF) may be a torn
    // final write; treat unparseable content the same way the journal
    // treats a checksum-corrupt tail — drop it and everything after.
    const bool complete = !is.eof();
    util::json::Value record;
    bool parsed = false;
    try {
      record = util::json::parse(line);
      parsed = record.is_object();
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) {
      contents.dropped_bytes += line.size() + (complete ? 1 : 0);
      // Drop the remainder of the stream too: a corrupt middle line means
      // everything after it is untrustworthy, mirroring journal semantics.
      std::string rest;
      while (std::getline(is, rest)) {
        contents.dropped_bytes += rest.size() + (is.eof() ? 0 : 1);
      }
      break;
    }
    const std::string type = record.string_or("type", "");
    if (type == "campaign") {
      contents.campaign = std::move(record);
    } else if (type == "trial") {
      contents.trials.push_back(trial_from_json(record));
    } else if (type == "fabric") {
      contents.fabric.push_back(std::move(record));
    } else if (type == "end") {
      contents.end = std::move(record);
    }
    // Unknown record types are skipped, not fatal: forward compatibility.
  }
  return contents;
}

TraceContents read_trace_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw std::runtime_error("read_trace: cannot open '" + path + "'");
  }
  return read_trace(stream);
}

}  // namespace phifi::telemetry

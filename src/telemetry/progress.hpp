// Live campaign progress: periodic one-line status renders so a
// 90k-injection run is not a black box while it executes.
//
// The emitter samples the metrics registry the campaign loop feeds
// (campaign.completed / campaign.masked / ... / due.<kind>) and renders
// throughput, ETA, the outcome split, and the DUE-kind breakdown. It is
// time-gated: tick() is cheap to call per trial and only renders once per
// interval, so enabling progress costs nothing measurable.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"

namespace phifi::telemetry {

class CampaignEstimator;

class ProgressEmitter {
 public:
  /// Renders to `out` at most once per `interval_seconds`.
  ProgressEmitter(const MetricsRegistry& registry, std::ostream& out,
                  double interval_seconds = 2.0);

  /// Attaches the campaign's estimator (not owned, must outlive the
  /// emitter). When set, every line carries the live SDC estimate with
  /// its Wilson half-width (`sdc 18.1% ±0.8`); with a positive
  /// `target_half_width` (the --stop-ci-width EPS, a proportion) the line
  /// also projects the trials and time to reach it
  /// ("ETA to ±0.5%: 1234 trials (~3m20s)").
  void set_estimator(const CampaignEstimator* estimator,
                     double target_half_width = 0.0);

  /// Called per completed trial; renders when the interval has elapsed.
  void tick();

  /// Renders unconditionally (the final line of a campaign).
  void emit_now();

  /// One rendered status line, exposed for tests.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  using Clock = std::chrono::steady_clock;

  const MetricsRegistry* registry_;
  const CampaignEstimator* estimator_ = nullptr;
  double target_half_width_ = 0.0;
  std::ostream* out_;
  double interval_seconds_;
  Clock::time_point start_;
  Clock::time_point last_emit_;
  std::uint64_t last_completed_ = 0;
  Clock::time_point last_sample_;
  std::uint64_t emitted_ = 0;
};

}  // namespace phifi::telemetry

#include "telemetry/history.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <stdexcept>

#include "util/posix_io.hpp"

namespace phifi::telemetry {

namespace {

/// Fingerprints are full 64-bit hashes; JSON numbers are doubles and lose
/// integer precision above 2^53, so the fingerprint travels as hex text.
std::string fingerprint_to_hex(std::uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

std::uint64_t fingerprint_from_hex(const std::string& text) {
  if (text.empty()) return 0;
  try {
    return std::stoull(text, nullptr, 16);
  } catch (const std::exception&) {
    return 0;
  }
}

}  // namespace

// phicheck:ndjson-writer(history.campaign_summary) value
// phicheck:ndjson-writer(history.cell) entry
util::json::Value history_to_json(const HistoryRecord& record) {
  util::json::Value value = util::json::Value::object();
  value["type"] = "campaign_summary";
  value["schema"] = 1;
  value["workload"] = record.workload;
  if (!record.run_id.empty()) value["run_id"] = record.run_id;
  value["fingerprint"] = fingerprint_to_hex(record.fingerprint);
  value["git_revision"] = record.git_revision;
  value["seed"] = record.seed;
  value["jobs"] = record.jobs;
  value["trials_target"] = record.trials_target;
  value["completed"] = record.completed;
  value["masked"] = record.masked;
  value["sdc"] = record.sdc;
  value["due"] = record.due;
  value["not_injected"] = record.not_injected;
  value["stopped_early"] = record.stopped_early;
  value["interrupted"] = record.interrupted;
  value["aborted"] = record.aborted;
  value["elapsed_seconds"] = record.elapsed_seconds;
  value["trials_per_sec"] = record.trials_per_sec;
  value["sdc_rate"] = record.sdc_rate;
  value["sdc_ci_lo"] = record.sdc_ci_lo;
  value["sdc_ci_hi"] = record.sdc_ci_hi;
  value["due_rate"] = record.due_rate;
  value["due_ci_lo"] = record.due_ci_lo;
  value["due_ci_hi"] = record.due_ci_hi;
  util::json::Value cells = util::json::Value::array();
  for (const HistoryCell& cell : record.cells) {
    util::json::Value entry = util::json::Value::object();
    entry["model"] = cell.model;
    entry["window"] = cell.window;
    entry["category"] = cell.category;
    entry["masked"] = cell.masked;
    entry["sdc"] = cell.sdc;
    entry["due"] = cell.due;
    entry["sdc_rate"] = cell.sdc_rate;
    entry["sdc_ci_lo"] = cell.sdc_ci_lo;
    entry["sdc_ci_hi"] = cell.sdc_ci_hi;
    cells.push_back(std::move(entry));
  }
  value["cells"] = std::move(cells);
  return value;
}

HistoryRecord history_from_json(const util::json::Value& value) {
  HistoryRecord record;
  record.workload = value.string_or("workload", "");
  record.run_id = value.string_or("run_id", "");
  record.fingerprint = fingerprint_from_hex(value.string_or("fingerprint", ""));
  record.git_revision = value.string_or("git_revision", "");
  record.seed = static_cast<std::uint64_t>(value.number_or("seed", 0.0));
  record.jobs = static_cast<unsigned>(value.number_or("jobs", 1.0));
  record.trials_target =
      static_cast<std::uint64_t>(value.number_or("trials_target", 0.0));
  record.completed =
      static_cast<std::uint64_t>(value.number_or("completed", 0.0));
  record.masked = static_cast<std::uint64_t>(value.number_or("masked", 0.0));
  record.sdc = static_cast<std::uint64_t>(value.number_or("sdc", 0.0));
  record.due = static_cast<std::uint64_t>(value.number_or("due", 0.0));
  record.not_injected =
      static_cast<std::uint64_t>(value.number_or("not_injected", 0.0));
  record.stopped_early = value.bool_or("stopped_early", false);
  record.interrupted = value.bool_or("interrupted", false);
  record.aborted = value.bool_or("aborted", false);
  record.elapsed_seconds = value.number_or("elapsed_seconds", 0.0);
  record.trials_per_sec = value.number_or("trials_per_sec", 0.0);
  record.sdc_rate = value.number_or("sdc_rate", 0.0);
  record.sdc_ci_lo = value.number_or("sdc_ci_lo", 0.0);
  record.sdc_ci_hi = value.number_or("sdc_ci_hi", 0.0);
  record.due_rate = value.number_or("due_rate", 0.0);
  record.due_ci_lo = value.number_or("due_ci_lo", 0.0);
  record.due_ci_hi = value.number_or("due_ci_hi", 0.0);
  if (const util::json::Value* cells = value.find("cells");
      cells != nullptr && cells->is_array()) {
    for (const util::json::Value& entry : cells->as_array()) {
      HistoryCell cell;
      cell.model = entry.string_or("model", "");
      cell.window = static_cast<unsigned>(entry.number_or("window", 0.0));
      cell.category = entry.string_or("category", "");
      cell.masked =
          static_cast<std::uint64_t>(entry.number_or("masked", 0.0));
      cell.sdc = static_cast<std::uint64_t>(entry.number_or("sdc", 0.0));
      cell.due = static_cast<std::uint64_t>(entry.number_or("due", 0.0));
      cell.sdc_rate = entry.number_or("sdc_rate", 0.0);
      cell.sdc_ci_lo = entry.number_or("sdc_ci_lo", 0.0);
      cell.sdc_ci_hi = entry.number_or("sdc_ci_hi", 0.0);
      record.cells.push_back(std::move(cell));
    }
  }
  return record;
}

void append_history(const std::string& path, const HistoryRecord& record) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("append_history: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::string line = history_to_json(record).dump();
  line += '\n';
  if (!util::io::write_fully(fd, line.data(), line.size())) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error(std::string("append_history: write failed: ") +
                             std::strerror(saved));
  }
  ::fsync(fd);
  ::close(fd);
}

std::vector<HistoryRecord> read_history_file(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw std::runtime_error("read_history: cannot open '" + path + "'");
  }
  std::vector<HistoryRecord> records;
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    util::json::Value value;
    try {
      value = util::json::parse(line);
    } catch (const std::exception&) {
      break;  // torn tail: keep everything before it, like the trace reader
    }
    if (!value.is_object()) break;
    // Unknown record types are skipped (forward compatibility).
    if (value.string_or("type", "campaign_summary") != "campaign_summary") {
      continue;
    }
    records.push_back(history_from_json(value));
  }
  return records;
}

std::string run_id_to_hex(std::uint64_t run_id) {
  return fingerprint_to_hex(run_id);
}

std::uint64_t generate_run_id() {
  std::random_device device;
  std::uint64_t id = (static_cast<std::uint64_t>(device()) << 32) ^
                     static_cast<std::uint64_t>(device());
  id ^= static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  // 0 means "unknown" everywhere the id travels; never hand it out.
  return id == 0 ? 1 : id;
}

std::string git_describe() {
  // popen (not raw fork): this runs once per campaign from the runner,
  // never from the supervisor's fork-child path.
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buffer[128] = {};
  std::string out;
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  const int status = ::pclose(pipe);
  if (status != 0) return "";
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

}  // namespace phifi::telemetry

// Longitudinal campaign ledger: one NDJSON record appended per completed
// campaign, so reliability can be tracked *across* builds the way the
// telemetry trace tracks it within one run.
//
// Each record carries the campaign's identity (workload, config
// fingerprint, git describe of the injector build), its outcome tallies,
// the per-cell estimates with confidence intervals, and throughput.
// phifi_parse --drift compares two such records with per-cell
// two-proportion z-tests — the CI reliability-regression gate.
//
// Durability follows the trace: one write(2) per record, append-only, so
// the reader can drop a torn tail without losing history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace phifi::telemetry {

/// One estimation cell's tallies and SDC interval as persisted. Rates are
/// proportions in [0,1] (multiply by 100 for the paper's PVF percent).
struct HistoryCell {
  std::string model;
  unsigned window = 0;
  std::string category;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  double sdc_rate = 0.0;
  double sdc_ci_lo = 0.0;
  double sdc_ci_hi = 0.0;
};

/// One campaign summary appended to the --history ledger.
struct HistoryRecord {
  std::string workload;
  std::string run_id;             ///< 16-hex correlation id ("" = unknown)
  std::uint64_t fingerprint = 0;  ///< campaign_fingerprint of the config
  std::string git_revision;       ///< `git describe` of the build ("" = n/a)
  std::uint64_t seed = 0;
  unsigned jobs = 1;
  std::uint64_t trials_target = 0;
  std::uint64_t completed = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  std::uint64_t not_injected = 0;
  bool stopped_early = false;  ///< --stop-ci-width fired
  bool interrupted = false;
  bool aborted = false;
  double elapsed_seconds = 0.0;
  double trials_per_sec = 0.0;
  double sdc_rate = 0.0;
  double sdc_ci_lo = 0.0;
  double sdc_ci_hi = 0.0;
  double due_rate = 0.0;
  double due_ci_lo = 0.0;
  double due_ci_hi = 0.0;
  std::vector<HistoryCell> cells;
};

util::json::Value history_to_json(const HistoryRecord& record);
HistoryRecord history_from_json(const util::json::Value& record);

/// Appends one record to the NDJSON ledger at `path` (created if absent).
/// One write(2) per record; throws std::runtime_error on I/O failure.
void append_history(const std::string& path, const HistoryRecord& record);

/// Loads a ledger. A torn or unparseable tail is dropped (records before
/// it are returned); throws only if the file cannot be opened.
std::vector<HistoryRecord> read_history_file(const std::string& path);

/// `git describe --always --dirty` of the current working tree, or "" when
/// git is unavailable or the tree is not a repository. Runs a child
/// process; call once per campaign, never on a hot path.
std::string git_describe();

/// Renders a 64-bit run id as the canonical 16-hex-digit correlation
/// string stamped into traces, journals, and history records.
std::string run_id_to_hex(std::uint64_t run_id);

/// Draws a fresh non-zero 64-bit run id (random_device mixed with the
/// wall clock). Called once per campaign launch, never on a hot path.
std::uint64_t generate_run_id();

}  // namespace phifi::telemetry

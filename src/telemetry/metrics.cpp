#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace phifi::telemetry {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  if (edges_.empty()) {
    throw std::runtime_error("Histogram: needs at least one bucket edge");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::runtime_error("Histogram: edges must be strictly ascending");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - edges_.begin());  // overflow -> size()
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_edges) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_edges));
  }
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

util::json::Value MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::json::Value root = util::json::Value::object();
  util::json::Value counters = util::json::Value::object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  util::json::Value gauges = util::json::Value::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->value();
  }
  util::json::Value histograms = util::json::Value::object();
  for (const auto& [name, histogram] : histograms_) {
    util::json::Value entry = util::json::Value::object();
    util::json::Value edges = util::json::Value::array();
    for (const double edge : histogram->upper_edges()) edges.push_back(edge);
    util::json::Value counts = util::json::Value::array();
    for (std::size_t i = 0; i < histogram->bucket_total(); ++i) {
      counts.push_back(histogram->bucket_count(i));
    }
    entry["upper_edges"] = std::move(edges);
    entry["counts"] = std::move(counts);
    entry["count"] = histogram->count();
    entry["sum"] = histogram->sum();
    entry["mean"] = histogram->mean();
    histograms[name] = std::move(entry);
  }
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return root;
}

namespace {

/// `phifi_` + the name with every non-[a-zA-Z0-9_] byte replaced by `_`
/// (dots and dashes in the registry's dotted names are not legal in the
/// exposition format). The prefix guarantees a legal first character.
std::string openmetrics_name(const std::string& name) {
  std::string out = "phifi_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string openmetrics_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0.0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void render_family(std::string& out, const std::string& name,
                   const std::string& type, const std::string& help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string MetricsRegistry::render_openmetrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string om = openmetrics_name(name) + "_total";
    render_family(out, om, "counter", "phifi counter " + name);
    out += om + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string om = openmetrics_name(name);
    render_family(out, om, "gauge", "phifi gauge " + name);
    out += om + " " + openmetrics_number(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string om = openmetrics_name(name);
    render_family(out, om, "histogram", "phifi histogram " + name);
    // The exposition format wants cumulative buckets; the registry stores
    // disjoint per-bucket counts.
    std::uint64_t cumulative = 0;
    const std::vector<double>& edges = histogram->upper_edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      cumulative += histogram->bucket_count(i);
      out += om + "_bucket{le=\"" + openmetrics_number(edges[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += histogram->bucket_count(edges.size());  // overflow bucket
    out += om + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += om + "_sum " + openmetrics_number(histogram->sum()) + "\n";
    out += om + "_count " + std::to_string(histogram->count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::vector<double> default_latency_edges_ms() {
  return {1.0,    2.0,    5.0,    10.0,   20.0,    50.0,   100.0,
          200.0,  500.0,  1000.0, 2000.0, 5000.0,  10000.0, 30000.0};
}

std::vector<double> watchdog_poll_edges_ms() {
  return {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0};
}

}  // namespace phifi::telemetry

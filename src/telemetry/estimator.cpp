#include "telemetry/estimator.hpp"

#include <cmath>

#include "telemetry/metrics.hpp"

namespace phifi::telemetry {

CampaignEstimator::CampaignEstimator(double confidence)
    : confidence_(confidence) {}

void CampaignEstimator::record(EstimatorOutcome outcome,
                               const std::string& model, unsigned window,
                               const std::string& category, bool injected) {
  const auto bump = [outcome](EstimatorCounts& counts) {
    switch (outcome) {
      case EstimatorOutcome::kMasked: ++counts.masked; break;
      case EstimatorOutcome::kSdc: ++counts.sdc; break;
      case EstimatorOutcome::kDue: ++counts.due; break;
    }
  };
  bump(overall_);
  if (injected) {
    bump(cells_[EstimatorCellKey{model, window, category}]);
  }
}

util::Interval CampaignEstimator::sdc_interval() const {
  return util::wilson_interval(overall_.sdc, overall_.total(), confidence_);
}

util::Interval CampaignEstimator::due_interval() const {
  return util::wilson_interval(overall_.due, overall_.total(), confidence_);
}

util::Interval CampaignEstimator::masked_interval() const {
  return util::wilson_interval(overall_.masked, overall_.total(),
                               confidence_);
}

std::uint64_t CampaignEstimator::trials_to_half_width(double eps) const {
  if (eps <= 0.0) return 0;
  const std::uint64_t n = overall_.total();
  if (n > 0 && sdc_interval().half_width() <= eps) return 0;
  // Plan with the Wilson center p̃ = (x + z²/2) / (n + z²): shrunk toward
  // 1/2, never exactly 0 or 1, so the projection is meaningful even before
  // the first SDC is observed.
  const double z = util::normal_quantile_two_sided(confidence_);
  const double shrink =
      (static_cast<double>(overall_.sdc) + z * z / 2.0) /
      (static_cast<double>(n) + z * z);
  const double needed = z * z * shrink * (1.0 - shrink) / (eps * eps);
  const double remaining = needed - static_cast<double>(n);
  if (remaining <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::ceil(remaining));
}

std::vector<CellEstimate> CampaignEstimator::cells() const {
  std::vector<CellEstimate> out;
  out.reserve(cells_.size());
  for (const auto& [key, counts] : cells_) {
    CellEstimate estimate;
    estimate.key = key;
    estimate.counts = counts;
    estimate.sdc =
        util::wilson_interval(counts.sdc, counts.total(), confidence_);
    estimate.due =
        util::wilson_interval(counts.due, counts.total(), confidence_);
    out.push_back(std::move(estimate));
  }
  return out;
}

EstimatorSnapshot CampaignEstimator::snapshot() const {
  EstimatorSnapshot out;
  out.overall = overall_;
  out.cells.reserve(cells_.size());
  for (const auto& [key, counts] : cells_) {
    out.cells.emplace_back(key, counts);
  }
  return out;
}

void CampaignEstimator::fold(const EstimatorSnapshot& snapshot) {
  overall_.masked += snapshot.overall.masked;
  overall_.sdc += snapshot.overall.sdc;
  overall_.due += snapshot.overall.due;
  for (const auto& [key, counts] : snapshot.cells) {
    EstimatorCounts& cell = cells_[key];
    cell.masked += counts.masked;
    cell.sdc += counts.sdc;
    cell.due += counts.due;
  }
}

void CampaignEstimator::publish(MetricsRegistry& metrics) const {
  const util::Interval sdc = sdc_interval();
  const util::Interval due = due_interval();
  metrics.gauge("campaign.est.trials")
      .set(static_cast<double>(overall_.total()));
  metrics.gauge("campaign.est.sdc_rate").set(sdc.point);
  metrics.gauge("campaign.est.sdc_ci_lo").set(sdc.lo);
  metrics.gauge("campaign.est.sdc_ci_hi").set(sdc.hi);
  metrics.gauge("campaign.est.due_rate").set(due.point);
  metrics.gauge("campaign.est.due_ci_lo").set(due.lo);
  metrics.gauge("campaign.est.due_ci_hi").set(due.hi);
  for (const CellEstimate& cell : cells()) {
    const std::string prefix = "campaign.est.cell." + cell.key.model + ".w" +
                               std::to_string(cell.key.window) + "." +
                               cell.key.category + ".";
    metrics.gauge(prefix + "trials")
        .set(static_cast<double>(cell.counts.total()));
    metrics.gauge(prefix + "sdc_rate").set(cell.sdc.point);
    metrics.gauge(prefix + "sdc_ci_lo").set(cell.sdc.lo);
    metrics.gauge(prefix + "sdc_ci_hi").set(cell.sdc.hi);
    metrics.gauge(prefix + "due_rate").set(cell.due.point);
  }
}

}  // namespace phifi::telemetry

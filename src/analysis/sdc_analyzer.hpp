// Per-SDC deep analysis plugged into a campaign as a TrialObserver.
//
// For every SDC trial it diffs the trial output against the golden copy and
// accumulates: the spatial pattern tally (Fig. 2's SDC breakdown), the
// tolerance curve inputs (Fig. 3), and corrupted-element statistics
// (Sec. 4.3's "less than 10% of corrupted executions have a single wrong
// element").
#pragma once

#include "analysis/compare.hpp"
#include "analysis/spatial.hpp"
#include "analysis/tolerance.hpp"
#include "core/campaign.hpp"
#include "core/supervisor.hpp"
#include "util/statistics.hpp"

namespace phifi::analysis {

class SdcAnalyzer {
 public:
  explicit SdcAnalyzer(const fi::TrialSupervisor& supervisor)
      : supervisor_(&supervisor) {}

  /// The campaign observer; the analyzer must outlive the campaign run.
  [[nodiscard]] fi::TrialObserver observer() {
    return [this](const fi::TrialResult& trial,
                  std::span<const std::byte> output) {
      if (trial.outcome != fi::Outcome::kSdc) return;
      inspect(output);
    };
  }

  /// Direct entry point for callers that manage trials themselves.
  void inspect(std::span<const std::byte> output);

  [[nodiscard]] const PatternTally& patterns() const { return patterns_; }
  [[nodiscard]] const ToleranceAnalysis& tolerance() const {
    return tolerance_;
  }
  [[nodiscard]] const util::RunningStats& corrupted_elements() const {
    return corrupted_elements_;
  }
  [[nodiscard]] std::size_t sdc_count() const { return sdc_count_; }

  /// Fraction of SDCs corrupting exactly one output element.
  [[nodiscard]] double single_element_fraction() const {
    return sdc_count_ == 0 ? 0.0
                           : static_cast<double>(single_element_sdcs_) /
                                 static_cast<double>(sdc_count_);
  }

 private:
  const fi::TrialSupervisor* supervisor_;
  PatternTally patterns_;
  ToleranceAnalysis tolerance_;
  util::RunningStats corrupted_elements_;
  std::size_t sdc_count_ = 0;
  std::size_t single_element_sdcs_ = 0;
};

}  // namespace phifi::analysis

#include "analysis/checkpoint_model.hpp"

#include <cmath>

namespace phifi::analysis {

double checkpoint_waste(double interval_seconds, double mtbf_seconds,
                        double checkpoint_cost_seconds) {
  if (interval_seconds <= 0.0 || mtbf_seconds <= 0.0 ||
      checkpoint_cost_seconds < 0.0) {
    return 1.0;
  }
  const double period = interval_seconds + checkpoint_cost_seconds;
  // Checkpoint overhead + expected rework after a failure (half a period
  // on average), both as fractions of machine time.
  const double waste =
      checkpoint_cost_seconds / period + period / (2.0 * mtbf_seconds);
  return waste >= 1.0 ? 1.0 : waste;
}

CheckpointPlan optimal_checkpoint(double mtbf_seconds,
                                  double checkpoint_cost_seconds) {
  CheckpointPlan plan;
  if (mtbf_seconds <= 0.0 || checkpoint_cost_seconds <= 0.0) {
    plan.waste_fraction = 1.0;
    return plan;
  }
  const double d = checkpoint_cost_seconds;
  const double m = mtbf_seconds;
  // Daly's higher-order optimum; reduces to Young's sqrt(2 d M) - d for
  // d << M.
  const double ratio = d / (2.0 * m);
  double interval = std::sqrt(2.0 * d * m) *
                        (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
                    d;
  if (interval < d) interval = d;  // pathological regime: cost ~ MTBF
  plan.interval_seconds = interval;
  plan.waste_fraction = checkpoint_waste(interval, m, d);
  return plan;
}

double machine_mtbf_seconds(double fit, double boards) {
  if (fit <= 0.0 || boards <= 0.0) return 0.0;
  const double machine_fit = fit * boards;
  return 1e9 / machine_fit * 3600.0;
}

}  // namespace phifi::analysis

// Program Vulnerability Factor helpers (Fig. 5/6).
//
// PVF here follows the paper's usage: the percentage of injected faults
// that produce a given outcome (SDC or DUE), overall or conditioned on a
// fault model / time window / code portion. Confidence intervals use the
// Normal (Wald) approximation the paper quotes.
#pragma once

#include "core/campaign.hpp"
#include "util/statistics.hpp"

namespace phifi::analysis {

/// PVF as a percentage with a 95% Wald interval.
inline util::Interval pvf_percent(std::uint64_t events, std::uint64_t trials,
                                  double confidence = 0.95) {
  util::Interval p = util::wald_interval(events, trials, confidence);
  return {.point = p.point * 100.0, .lo = p.lo * 100.0, .hi = p.hi * 100.0};
}

inline util::Interval sdc_pvf(const fi::OutcomeTally& tally) {
  return pvf_percent(tally.sdc, tally.total());
}

inline util::Interval due_pvf(const fi::OutcomeTally& tally) {
  return pvf_percent(tally.due, tally.total());
}

inline util::Interval masked_pvf(const fi::OutcomeTally& tally) {
  return pvf_percent(tally.masked, tally.total());
}

}  // namespace phifi::analysis

#include "analysis/tolerance.hpp"

namespace phifi::analysis {

std::size_t ToleranceAnalysis::sdc_at(double tolerance) const {
  std::size_t count = 0;
  for (double e : max_errors_) {
    if (e > tolerance) ++count;
  }
  return count;
}

double ToleranceAnalysis::remaining_fraction(double tolerance) const {
  if (max_errors_.empty()) return 1.0;
  return static_cast<double>(sdc_at(tolerance)) /
         static_cast<double>(max_errors_.size());
}

std::vector<double> ToleranceAnalysis::default_tolerances() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10, 0.15};
}

}  // namespace phifi::analysis

#include "analysis/trace_analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace phifi::analysis {

namespace {

fi::Outcome outcome_from_string(const std::string& name) {
  if (name == "Masked") return fi::Outcome::kMasked;
  if (name == "SDC") return fi::Outcome::kSdc;
  if (name == "DUE") return fi::Outcome::kDue;
  if (name == "NotInjected") return fi::Outcome::kNotInjected;
  throw std::runtime_error("trace: unknown outcome '" + name + "'");
}

/// Model index by name; -1 for a name no campaign writes (forward
/// compatibility: such trials still count in overall/window tallies).
int model_index(const std::string& name) {
  for (fi::FaultModel model : fi::kAllFaultModels) {
    if (name == to_string(model)) return static_cast<int>(model);
  }
  return -1;
}

}  // namespace

void accumulate_trace(fi::CampaignResult& result,
                      const telemetry::TraceContents& contents) {
  std::string workload;
  unsigned windows = 0;
  if (contents.campaign.is_object()) {
    workload = contents.campaign.string_or("workload", "");
    windows = static_cast<unsigned>(
        contents.campaign.number_or("time_windows", 0.0));
  }
  if (windows == 0) {
    for (const telemetry::TrialTrace& trial : contents.trials) {
      windows = std::max(windows, trial.window + 1);
    }
    if (windows == 0) windows = 1;
  }
  if (!result.workload.empty() && !workload.empty() &&
      result.workload != workload) {
    throw std::runtime_error("trace: refusing to merge traces from '" +
                             result.workload + "' and '" + workload + "'");
  }
  if (result.workload.empty()) result.workload = workload;
  result.time_windows = std::max(result.time_windows, windows);
  if (result.by_window.size() < result.time_windows) {
    result.by_window.resize(result.time_windows);
  }

  // Order-independent aggregation: multi-worker campaigns commit records
  // in attempt order, but a resumed trace can repeat an attempt (traced,
  // then lost from the journal's torn tail, then re-run). Sort by attempt
  // and keep the LAST record of each — the re-run is the one the journal
  // agrees with.
  std::vector<telemetry::TrialTrace> trials = contents.trials;
  std::stable_sort(trials.begin(), trials.end(),
                   [](const telemetry::TrialTrace& a,
                      const telemetry::TrialTrace& b) {
                     return a.attempt < b.attempt;
                   });
  std::vector<telemetry::TrialTrace> unique;
  unique.reserve(trials.size());
  for (telemetry::TrialTrace& trial : trials) {
    if (!unique.empty() && unique.back().attempt == trial.attempt) {
      unique.back() = std::move(trial);
    } else {
      unique.push_back(std::move(trial));
    }
  }

  // Mirrors fi::accumulate_trial so trace- and journal-derived tallies can
  // never disagree by construction, only by data loss.
  for (const telemetry::TrialTrace& trial : unique) {
    result.total_seconds += trial.seconds;
    ++result.attempts;
    const fi::Outcome outcome = outcome_from_string(trial.outcome);
    if (outcome == fi::Outcome::kNotInjected) {
      ++result.not_injected;
      continue;
    }
    result.overall.add(outcome);
    if (outcome == fi::Outcome::kDue) {
      ++result.due_kinds[trial.due_kind];
    }
    const int model = model_index(trial.model);
    if (model >= 0) {
      result.by_model[static_cast<std::size_t>(model)].add(outcome);
    }
    if (trial.window < result.by_window.size()) {
      result.by_window[trial.window].add(outcome);
    }
    if (trial.injected) {
      result.by_category[trial.category].add(outcome);
      result.by_frame[trial.frame].add(outcome);
    }
  }
}

fi::CampaignResult aggregate_trace(const telemetry::TraceContents& contents) {
  fi::CampaignResult result;
  accumulate_trace(result, contents);
  return result;
}

}  // namespace phifi::analysis

// Checkpoint-interval economics (Sec. 6's argument that lowering the DUE
// rate of critical portions "can allow lowering the frequency of
// checkpointing techniques").
//
// Young's first-order model with Daly's refinement: for a machine with
// mean time between failures M and checkpoint cost d, the optimal
// checkpoint interval is about sqrt(2 d M) (Young) with Daly's higher-order
// correction, and the expected fraction of machine time lost to
// checkpointing plus recomputation ("waste") at interval t is
//     waste(t) = d / (t + d) + (t + d) / (2 M).
// Feeding the measured DUE FIT rates through this model turns a hardening
// result (fewer DUEs) into an operations result (longer intervals, less
// waste), which is how the paper frames the benefit.
#pragma once

namespace phifi::analysis {

struct CheckpointPlan {
  double interval_seconds = 0.0;  ///< optimal compute time between checkpoints
  double waste_fraction = 0.0;    ///< machine time lost at that interval
};

/// Expected waste fraction when checkpointing every `interval_seconds` of
/// compute on a machine with `mtbf_seconds` and `checkpoint_cost_seconds`.
/// Returns 1.0 (everything lost) for degenerate inputs (interval or MTBF
/// not positive, or cost >= MTBF regime where no interval helps).
double checkpoint_waste(double interval_seconds, double mtbf_seconds,
                        double checkpoint_cost_seconds);

/// Young/Daly optimal interval and its waste. `mtbf_seconds` and
/// `checkpoint_cost_seconds` must be positive.
CheckpointPlan optimal_checkpoint(double mtbf_seconds,
                                  double checkpoint_cost_seconds);

/// Machine MTBF in seconds for `boards` devices failing at `fit` each.
double machine_mtbf_seconds(double fit, double boards);

}  // namespace phifi::analysis

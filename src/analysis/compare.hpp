// Typed output comparison: which elements differ and by how much.
//
// The beam study (Sec. 4) classifies an execution as SDC on *any* bit
// mismatch, then re-examines the corrupted elements' relative errors for the
// imprecise-computing analysis (Fig. 3) and their positions for the spatial
// analysis (Fig. 2). This module produces all three views from the golden
// and observed byte buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/workload_api.hpp"

namespace phifi::analysis {

struct Comparison {
  std::size_t total_elements = 0;
  /// Flat indices of mismatching elements.
  std::vector<std::size_t> mismatch_indices;
  /// Relative error per mismatch (parallel to mismatch_indices). NaN or
  /// infinite observed values, and nonzero disagreement against a zero
  /// golden value, report +infinity.
  std::vector<double> relative_errors;
  bool any_non_finite = false;

  [[nodiscard]] std::size_t mismatch_count() const {
    return mismatch_indices.size();
  }
  [[nodiscard]] bool matches() const { return mismatch_indices.empty(); }

  /// Largest relative error across mismatches (0 if none).
  [[nodiscard]] double max_relative_error() const;

  /// Number of elements whose relative error exceeds `tolerance`
  /// (tolerance is a fraction: 0.005 = 0.5%).
  [[nodiscard]] std::size_t count_above(double tolerance) const;

  /// True if the execution still counts as an SDC when output values within
  /// `tolerance` relative error are accepted (Sec. 4.4).
  [[nodiscard]] bool is_sdc_at(double tolerance) const {
    return count_above(tolerance) > 0;
  }
};

/// Element-wise comparison of two equally-typed buffers. Buffers of unequal
/// size compare as fully mismatched beyond the common prefix.
Comparison compare_outputs(std::span<const std::byte> golden,
                           std::span<const std::byte> observed,
                           fi::ElementType type);

/// Relative error |observed - golden| / |golden| with the conventions above.
double relative_error(double golden, double observed);

}  // namespace phifi::analysis

#include "analysis/drift.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

#include "util/statistics.hpp"

namespace phifi::analysis {

namespace {

using CellKey = std::tuple<std::string, unsigned, std::string>;

DriftEntry compare_slice(const std::string& slice, std::uint64_t base_events,
                         std::uint64_t base_trials, std::uint64_t cur_events,
                         std::uint64_t cur_trials, double alpha) {
  DriftEntry entry;
  entry.slice = slice;
  entry.baseline_events = base_events;
  entry.baseline_trials = base_trials;
  entry.current_events = cur_events;
  entry.current_trials = cur_trials;
  entry.baseline_rate =
      base_trials == 0 ? 0.0
                       : static_cast<double>(base_events) /
                             static_cast<double>(base_trials);
  entry.current_rate =
      cur_trials == 0 ? 0.0
                      : static_cast<double>(cur_events) /
                            static_cast<double>(cur_trials);
  // Signed so "current minus baseline": positive z = rate went up.
  const util::TwoProportionTest test =
      util::two_proportion_z_test(cur_events, cur_trials, base_events,
                                  base_trials);
  entry.z = test.z;
  entry.p_value = test.p_value;
  entry.significant = entry.p_value < alpha;
  return entry;
}

}  // namespace

DriftReport compute_drift(const telemetry::HistoryRecord& baseline,
                          const telemetry::HistoryRecord& current,
                          double alpha) {
  if (!baseline.workload.empty() && !current.workload.empty() &&
      baseline.workload != current.workload) {
    throw std::runtime_error("drift: refusing to compare workloads '" +
                             baseline.workload + "' and '" +
                             current.workload + "'");
  }
  DriftReport report;
  report.workload =
      baseline.workload.empty() ? current.workload : baseline.workload;
  report.alpha = alpha;

  const std::uint64_t base_n = baseline.completed;
  const std::uint64_t cur_n = current.completed;
  report.entries.push_back(
      compare_slice("sdc", baseline.sdc, base_n, current.sdc, cur_n, alpha));
  report.entries.push_back(
      compare_slice("due", baseline.due, base_n, current.due, cur_n, alpha));

  std::map<CellKey, const telemetry::HistoryCell*> base_cells;
  for (const telemetry::HistoryCell& cell : baseline.cells) {
    base_cells[{cell.model, cell.window, cell.category}] = &cell;
  }
  std::map<CellKey, const telemetry::HistoryCell*> cur_cells;
  for (const telemetry::HistoryCell& cell : current.cells) {
    cur_cells[{cell.model, cell.window, cell.category}] = &cell;
  }
  const auto cell_name = [](const CellKey& key) {
    return std::get<0>(key) + "/w" + std::to_string(std::get<1>(key)) + "/" +
           std::get<2>(key);
  };
  for (const auto& [key, base] : base_cells) {
    const auto it = cur_cells.find(key);
    if (it == cur_cells.end()) {
      report.unmatched_cells.push_back(cell_name(key) + " (baseline only)");
      continue;
    }
    const telemetry::HistoryCell* cur = it->second;
    const std::uint64_t base_total = base->masked + base->sdc + base->due;
    const std::uint64_t cur_total = cur->masked + cur->sdc + cur->due;
    report.entries.push_back(compare_slice(cell_name(key) + " sdc",
                                           base->sdc, base_total, cur->sdc,
                                           cur_total, alpha));
  }
  for (const auto& [key, cur] : cur_cells) {
    if (base_cells.find(key) == base_cells.end()) {
      report.unmatched_cells.push_back(cell_name(key) + " (current only)");
    }
  }
  for (const DriftEntry& entry : report.entries) {
    if (entry.significant) report.any_significant = true;
  }
  return report;
}

}  // namespace phifi::analysis

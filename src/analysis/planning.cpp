#include "analysis/planning.hpp"

#include <cassert>
#include <cmath>

namespace phifi::analysis {

double worst_case_half_width(std::uint64_t trials, double confidence) {
  if (trials == 0) return 1.0;
  const double z = util::normal_quantile_two_sided(confidence);
  return z * 0.5 / std::sqrt(static_cast<double>(trials));
}

std::uint64_t required_trials(double half_width, double confidence) {
  assert(half_width > 0.0);
  const double z = util::normal_quantile_two_sided(confidence);
  const double n = z / (2.0 * half_width);
  return static_cast<std::uint64_t>(std::ceil(n * n));
}

std::uint64_t required_errors(double relative_half_width, double confidence) {
  assert(relative_half_width > 0.0);
  const double z = util::normal_quantile_two_sided(confidence);
  const double k = z / relative_half_width;
  return static_cast<std::uint64_t>(std::ceil(k * k));
}

double chi_squared_p_value(double statistic, unsigned dof) {
  if (dof == 0) return 1.0;
  if (statistic <= 0.0) return 1.0;
  // Wilson-Hilferty: (X^2/k)^(1/3) is approximately normal with mean
  // 1 - 2/(9k) and variance 2/(9k).
  const double k = static_cast<double>(dof);
  const double variance = 2.0 / (9.0 * k);
  const double z = (std::cbrt(statistic / k) - (1.0 - variance)) /
                   std::sqrt(variance);
  return 1.0 - util::normal_cdf(z);
}

double two_proportion_p_value(std::uint64_t events_a, std::uint64_t trials_a,
                              std::uint64_t events_b,
                              std::uint64_t trials_b) {
  if (trials_a == 0 || trials_b == 0) return 1.0;
  const double na = static_cast<double>(trials_a);
  const double nb = static_cast<double>(trials_b);
  const double pa = static_cast<double>(events_a) / na;
  const double pb = static_cast<double>(events_b) / nb;
  const double pooled =
      static_cast<double>(events_a + events_b) / (na + nb);
  const double variance = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
  if (variance <= 0.0) return pa == pb ? 1.0 : 0.0;
  const double z = std::fabs(pa - pb) / std::sqrt(variance);
  return 2.0 * (1.0 - util::normal_cdf(z));
}

}  // namespace phifi::analysis

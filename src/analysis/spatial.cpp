#include "analysis/spatial.hpp"

#include <algorithm>

namespace phifi::analysis {

double PatternTally::fraction(ErrorPattern pattern) const {
  const std::size_t classified = total() - count(ErrorPattern::kNone);
  if (classified == 0) return 0.0;
  return static_cast<double>(count(pattern)) /
         static_cast<double>(classified);
}

ErrorPattern classify_pattern(std::span<const std::size_t> indices,
                              const util::Shape& shape) {
  if (indices.empty()) return ErrorPattern::kNone;
  if (indices.size() == 1) return ErrorPattern::kSingle;

  // Bounding box of the corrupted coordinates.
  util::Coord lo{~std::size_t{0}, ~std::size_t{0}, ~std::size_t{0}};
  util::Coord hi{0, 0, 0};
  for (std::size_t flat : indices) {
    const util::Coord c = util::unflatten(shape, flat);
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  const std::size_t ex = hi.x - lo.x + 1;
  const std::size_t ey = hi.y - lo.y + 1;
  const std::size_t ez = hi.z - lo.z + 1;
  const int spread_dims = (ex > 1) + (ey > 1) + (ez > 1);

  // All errors share a row, column, or pillar: a line, whatever its length.
  if (spread_dims <= 1) return ErrorPattern::kLine;

  const double count = static_cast<double>(indices.size());
  if (spread_dims == 2) {
    const double box = static_cast<double>(ex) * static_cast<double>(ey) *
                       static_cast<double>(ez);  // one extent is 1
    return (count / box >= kSquareFillThreshold) ? ErrorPattern::kSquare
                                                 : ErrorPattern::kRandom;
  }
  const double box = static_cast<double>(ex) * static_cast<double>(ey) *
                     static_cast<double>(ez);
  return (count / box >= kCubicFillThreshold) ? ErrorPattern::kCubic
                                              : ErrorPattern::kRandom;
}

}  // namespace phifi::analysis

// FIT-rate arithmetic (Sec. 4.1).
//
// A beam campaign observes `errors` outcomes over an accumulated fluence
// (neutrons/cm^2). The device cross section is sigma = errors / fluence
// (cm^2); scaling by the natural sea-level flux (~13 n/cm^2/h, JESD89A,
// the figure the paper uses) and 1e9 hours gives the Failure-In-Time rate.
// MTBF is the reciprocal; machine-level rates scale linearly with the
// number of boards (Sec. 4.2's Trinity/exascale extrapolations).
#pragma once

#include <cstdint>

#include "util/statistics.hpp"

namespace phifi::analysis {

/// Reference sea-level neutron flux, n/(cm^2 h) (JESD89A, NYC).
inline constexpr double kSeaLevelFlux = 13.0;

struct FitEstimate {
  std::uint64_t errors = 0;
  double fluence = 0.0;        ///< n/cm^2
  double cross_section = 0.0;  ///< cm^2
  double fit = 0.0;            ///< failures per 1e9 device-hours
  double fit_lo = 0.0;         ///< 95% CI (Poisson on the error count)
  double fit_hi = 0.0;

  [[nodiscard]] double mtbf_hours() const {
    return fit <= 0.0 ? 0.0 : 1e9 / fit;
  }
};

/// Computes FIT with a Poisson confidence interval on the error count.
FitEstimate fit_from_counts(std::uint64_t errors, double fluence,
                            double flux = kSeaLevelFlux,
                            double confidence = 0.95);

/// Mean time between events, in days, for a machine of `boards` devices
/// each failing at `fit`.
double machine_mtbf_days(double fit, double boards);

}  // namespace phifi::analysis

#include "analysis/sdc_analyzer.hpp"

namespace phifi::analysis {

void SdcAnalyzer::inspect(std::span<const std::byte> output) {
  const Comparison comparison = compare_outputs(
      supervisor_->golden(), output, supervisor_->output_type());
  if (comparison.matches()) return;  // defensive; caller said SDC
  ++sdc_count_;
  if (comparison.mismatch_count() == 1) ++single_element_sdcs_;
  corrupted_elements_.add(static_cast<double>(comparison.mismatch_count()));
  patterns_.add(classify_pattern(comparison.mismatch_indices,
                                 supervisor_->output_shape()));
  tolerance_.add_sdc(comparison.max_relative_error());
}

}  // namespace phifi::analysis

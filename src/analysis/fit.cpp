#include "analysis/fit.hpp"

namespace phifi::analysis {

FitEstimate fit_from_counts(std::uint64_t errors, double fluence, double flux,
                            double confidence) {
  FitEstimate estimate;
  estimate.errors = errors;
  estimate.fluence = fluence;
  if (fluence <= 0.0) return estimate;
  estimate.cross_section = static_cast<double>(errors) / fluence;
  estimate.fit = estimate.cross_section * flux * 1e9;
  const util::Interval count_ci = util::poisson_interval(errors, confidence);
  estimate.fit_lo = count_ci.lo / fluence * flux * 1e9;
  estimate.fit_hi = count_ci.hi / fluence * flux * 1e9;
  return estimate;
}

double machine_mtbf_days(double fit, double boards) {
  if (fit <= 0.0 || boards <= 0.0) return 0.0;
  const double machine_fit = fit * boards;
  const double hours = 1e9 / machine_fit;
  return hours / 24.0;
}

}  // namespace phifi::analysis

// Campaign planning statistics (Sec. 6's opening claim: "at least 10,000
// faults ... sufficient to guarantee the worst case statistical error bars
// at 95% confidence level to be at most 1.96%", and Sec. 4.2's ">=100
// SDC/DUE for <=10% intervals").
//
// Both claims are instances of the same two planning rules implemented
// here: the binomial worst-case half-width z*sqrt(p(1-p)/n) maximized at
// p=1/2, and the Poisson relative half-width ~ z/sqrt(k). The campaign
// planner answers "how many trials / errors do I need" before burning beam
// time, and the significance helpers decide whether two measured PVFs
// actually differ.
#pragma once

#include <cstdint>

#include "util/statistics.hpp"

namespace phifi::analysis {

/// Worst-case (p = 1/2) half-width of a binomial proportion estimate from
/// `trials` samples, as a fraction (0.0196 = 1.96%).
double worst_case_half_width(std::uint64_t trials, double confidence = 0.95);

/// Trials needed so the worst-case half-width is at most `half_width`:
/// n = ceil((z / 2h)^2). 10,000 trials bound the half-width at 0.98%; the
/// paper's quoted "1.96%" corresponds to the looser z/sqrt(n) bound (see
/// the planning tests for both checkpoints).
std::uint64_t required_trials(double half_width, double confidence = 0.95);

/// Observed error events needed so the Poisson rate estimate's relative
/// half-width is at most `relative_half_width` (the paper's "more than 100
/// SDC/DUE for intervals below 10% of the value").
std::uint64_t required_errors(double relative_half_width,
                              double confidence = 0.95);

/// Upper-tail p-value of a chi-squared statistic with `dof` degrees of
/// freedom (Wilson-Hilferty normal approximation; adequate for dof >= 1
/// at the 3-digit precision significance tests need).
double chi_squared_p_value(double statistic, unsigned dof);

/// Two-proportion z-test p-value (two-sided) for sdc/due rate comparisons
/// between two campaigns (e.g. baseline vs hardened).
double two_proportion_p_value(std::uint64_t events_a, std::uint64_t trials_a,
                              std::uint64_t events_b, std::uint64_t trials_b);

}  // namespace phifi::analysis

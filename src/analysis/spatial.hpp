// Spatial classification of corrupted outputs (Sec. 4.3, Fig. 2).
//
// The paper buckets every SDC by the geometry of its wrong elements:
//   single — exactly one wrong value;
//   line   — multiple wrong values confined to one row or one column;
//   square — wrong values spanning two dimensions in a coherent block;
//   cubic  — wrong values spanning three dimensions coherently (only
//            possible for 3D outputs, i.e. LavaMD);
//   random — multiple wrong values with no clear pattern.
// "Coherent block" is made precise here with a bounding-box fill-density
// rule (see classify_pattern); the thresholds are documented constants and
// exercised by the property tests.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "util/array_view.hpp"

namespace phifi::analysis {

enum class ErrorPattern : int {
  kNone = 0,
  kSingle = 1,
  kLine = 2,
  kSquare = 3,
  kCubic = 4,
  kRandom = 5,
};

constexpr std::string_view to_string(ErrorPattern pattern) {
  switch (pattern) {
    case ErrorPattern::kNone: return "none";
    case ErrorPattern::kSingle: return "single";
    case ErrorPattern::kLine: return "line";
    case ErrorPattern::kSquare: return "square";
    case ErrorPattern::kCubic: return "cubic";
    case ErrorPattern::kRandom: return "random";
  }
  return "?";
}

inline constexpr int kPatternCount = 6;

/// Minimum fraction of a 2D bounding box that must be corrupted for the
/// cluster to count as "square" rather than "random".
inline constexpr double kSquareFillThreshold = 0.25;
/// Same for a 3D bounding box ("cubic").
inline constexpr double kCubicFillThreshold = 0.10;

/// Classifies the mismatch positions (flat indices into `shape`).
ErrorPattern classify_pattern(std::span<const std::size_t> indices,
                              const util::Shape& shape);

/// Per-pattern counters for aggregating a campaign.
struct PatternTally {
  std::size_t counts[kPatternCount] = {};

  void add(ErrorPattern pattern) {
    ++counts[static_cast<int>(pattern)];
  }
  [[nodiscard]] std::size_t count(ErrorPattern pattern) const {
    return counts[static_cast<int>(pattern)];
  }
  [[nodiscard]] std::size_t total() const {
    std::size_t sum = 0;
    for (std::size_t c : counts) sum += c;
    return sum;
  }
  /// Fraction of classified SDCs (excludes kNone) with the given pattern.
  [[nodiscard]] double fraction(ErrorPattern pattern) const;
};

}  // namespace phifi::analysis

// Campaign tallies reconstructed from the NDJSON trial trace alone.
//
// The trace (src/telemetry/trace.hpp) is the injector's machine-readable
// primary output; this module folds its trial records back into the same
// CampaignResult shape the live campaign accumulates, so the Fig. 6
// PVF-per-time-window table and the Sec. 6 per-portion criticality table
// can be rebuilt from the trace and cross-checked against journal-derived
// counts (phifi_parse --from-trace does exactly that).
#pragma once

#include "core/campaign.hpp"
#include "telemetry/trace.hpp"

namespace phifi::analysis {

/// Folds the traced trials into CampaignResult tallies, mirroring
/// fi::accumulate_trial: NotInjected attempts count as retries, outcomes
/// land in overall / by-model / by-window / by-category / by-frame.
/// Workload and window count come from the trace's campaign header when
/// present, else the window count is inferred from the trial records.
/// Throws std::runtime_error on an outcome string no campaign writes.
fi::CampaignResult aggregate_trace(const telemetry::TraceContents& contents);

/// Merges another trace into an existing aggregate (multi-batch parses).
/// Workloads must match; throws on a mismatch.
void accumulate_trace(fi::CampaignResult& result,
                      const telemetry::TraceContents& contents);

}  // namespace phifi::analysis

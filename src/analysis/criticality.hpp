// Per-code-portion criticality (Sec. 6) and mitigation advice (Sec. 6.1).
//
// CAROL-FI's purpose is to tell the developer which source-level portions,
// once corrupted, are most likely to hurt — so hardening can be selective.
// This module turns a campaign's per-category tallies into the ranked
// criticality tables of Sec. 6 and maps each category profile to the
// mitigation the paper discusses (ABFT / residue checks / selective DWC /
// RMT / checkpoint tuning).
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace phifi::analysis {

struct CategoryCriticality {
  std::string category;
  std::uint64_t injections = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  double sdc_rate = 0.0;     ///< conditional: P(SDC | fault in category)
  double due_rate = 0.0;     ///< conditional: P(DUE | fault in category)
  double injection_share = 0.0;  ///< fraction of all injections
  /// Contribution to the overall error rate:
  /// injection_share * (sdc_rate + due_rate).
  double error_contribution = 0.0;
};

/// One row per category, ranked by error_contribution (most critical
/// first). Categories with fewer than `min_injections` samples are dropped.
std::vector<CategoryCriticality> criticality_table(
    const fi::CampaignResult& result, std::uint64_t min_injections = 10);

/// Sec. 6.1-style mitigation recommendation for a category profile.
/// `algebraic` marks matrix-algebra workloads where residue/ABFT apply.
std::string recommend_mitigation(const CategoryCriticality& row,
                                 bool algebraic);

}  // namespace phifi::analysis

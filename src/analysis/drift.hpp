// Cross-campaign reliability drift: did this build's PVF move versus the
// baseline?
//
// Two --history ledger records are compared with pooled two-proportion
// z-tests — overall SDC and DUE proportions plus every (fault model ×
// time window × code portion) cell present in both — and each slice is
// flagged when its two-sided p-value clears the significance level. Two
// same-seed campaigns produce bit-identical tallies (z = 0 everywhere), so
// CI runs the drift gate between its jobs=1 and jobs=2 smoke campaigns as
// a determinism check, and between builds as a reliability-regression
// gate, the statistical counterpart of a perf gate.
#pragma once

#include <string>
#include <vector>

#include "telemetry/history.hpp"

namespace phifi::analysis {

/// One compared slice (overall proportion or one cell).
struct DriftEntry {
  std::string slice;  ///< "sdc", "due", or "Model/w2/category sdc"
  std::uint64_t baseline_events = 0;
  std::uint64_t baseline_trials = 0;
  std::uint64_t current_events = 0;
  std::uint64_t current_trials = 0;
  double baseline_rate = 0.0;
  double current_rate = 0.0;
  double z = 0.0;        ///< signed: positive = current rate is higher
  double p_value = 1.0;  ///< two-sided
  bool significant = false;
};

struct DriftReport {
  std::string workload;
  double alpha = 0.05;
  std::vector<DriftEntry> entries;
  /// Cells present in only one record (skipped, listed for transparency —
  /// a vanished cell can itself be a regression signal).
  std::vector<std::string> unmatched_cells;
  bool any_significant = false;
};

/// Compares two ledger records. Throws std::runtime_error when the records
/// describe different workloads (a drift verdict would be meaningless).
/// `alpha` is the two-sided significance level per slice; no multiple-
/// comparison correction is applied (see docs/OBSERVATORY.md).
DriftReport compute_drift(const telemetry::HistoryRecord& baseline,
                          const telemetry::HistoryRecord& current,
                          double alpha = 0.05);

}  // namespace phifi::analysis

#include "analysis/criticality.hpp"

#include <algorithm>

namespace phifi::analysis {

std::vector<CategoryCriticality> criticality_table(
    const fi::CampaignResult& result, std::uint64_t min_injections) {
  std::uint64_t total_injections = 0;
  for (const auto& [category, tally] : result.by_category) {
    total_injections += tally.total();
  }
  std::vector<CategoryCriticality> rows;
  for (const auto& [category, tally] : result.by_category) {
    if (tally.total() < min_injections) continue;
    CategoryCriticality row;
    row.category = category;
    row.injections = tally.total();
    row.sdc = tally.sdc;
    row.due = tally.due;
    row.sdc_rate = tally.sdc_rate();
    row.due_rate = tally.due_rate();
    row.injection_share =
        total_injections == 0
            ? 0.0
            : static_cast<double>(tally.total()) /
                  static_cast<double>(total_injections);
    row.error_contribution = row.injection_share * (row.sdc_rate + row.due_rate);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const CategoryCriticality& a, const CategoryCriticality& b) {
              return a.error_contribution > b.error_contribution;
            });
  return rows;
}

std::string recommend_mitigation(const CategoryCriticality& row,
                                 bool algebraic) {
  const bool due_heavy = row.due_rate > row.sdc_rate * 1.25;
  const bool sdc_heavy = row.sdc_rate > row.due_rate * 1.25;
  const bool low_impact = (row.sdc_rate + row.due_rate) < 0.10;

  if (low_impact) {
    return "low criticality: rely on the algorithm's natural masking; "
           "no dedicated hardening needed";
  }
  if (row.category == "control") {
    return "selective duplication-with-comparison of the replicated loop "
           "control variables; residue check on index updates (cheap, "
           "catches logic faults ECC cannot)";
  }
  if (row.category == "constant") {
    return "replicate the few read-only constants and compare before use; "
           "negligible overhead for a large DUE-rate reduction";
  }
  if (row.category == "mesh.sort") {
    return "sort-specific single-element correction (Argyrides et al.) plus "
           "a post-sort order audit; highest-priority portion for SDCs";
  }
  if (row.category == "mesh.tree") {
    return "bounds-check child links during descent and apply redundant "
           "multithreading to tree construction; dominant DUE source";
  }
  if (algebraic && (row.category == "matrix" || sdc_heavy)) {
    return "ABFT checksums (detects and corrects single/line errors in "
           "O(1)) or mod-3/mod-15 residue checks on the matrix operations";
  }
  if (due_heavy) {
    return "control-flow checking and watchdog-assisted checkpoint/restart; "
           "faults here crash rather than corrupt";
  }
  return "modular replication (duplication-with-comparison) of this "
         "portion, or full RMT if the footprint is too large to duplicate "
         "selectively";
}

}  // namespace phifi::analysis

#include "analysis/compare.hpp"

#include <cmath>
#include <cstring>

namespace phifi::analysis {

double Comparison::max_relative_error() const {
  double max_err = 0.0;
  for (double e : relative_errors) {
    if (e > max_err) max_err = e;
  }
  return max_err;
}

std::size_t Comparison::count_above(double tolerance) const {
  std::size_t count = 0;
  for (double e : relative_errors) {
    if (e > tolerance) ++count;
  }
  return count;
}

double relative_error(double golden, double observed) {
  if (!std::isfinite(observed)) {
    return std::numeric_limits<double>::infinity();
  }
  if (golden == observed) return 0.0;
  if (golden == 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(observed - golden) / std::fabs(golden);
}

namespace {

template <typename T>
Comparison compare_typed(std::span<const std::byte> golden,
                         std::span<const std::byte> observed) {
  Comparison result;
  const std::size_t n_golden = golden.size() / sizeof(T);
  const std::size_t n_observed = observed.size() / sizeof(T);
  const std::size_t common = std::min(n_golden, n_observed);
  result.total_elements = std::max(n_golden, n_observed);

  const auto* g = reinterpret_cast<const T*>(golden.data());
  const auto* o = reinterpret_cast<const T*>(observed.data());
  for (std::size_t i = 0; i < common; ++i) {
    // Bitwise comparison, as in the beam setup: any bit mismatch is an
    // error (this also catches -0.0 vs 0.0 and NaN payload changes).
    if (std::memcmp(&g[i], &o[i], sizeof(T)) == 0) continue;
    const double gv = static_cast<double>(g[i]);
    const double ov = static_cast<double>(o[i]);
    result.mismatch_indices.push_back(i);
    result.relative_errors.push_back(relative_error(gv, ov));
    if constexpr (std::is_floating_point_v<T>) {
      if (!std::isfinite(ov)) result.any_non_finite = true;
    }
  }
  for (std::size_t i = common; i < result.total_elements; ++i) {
    result.mismatch_indices.push_back(i);
    result.relative_errors.push_back(
        std::numeric_limits<double>::infinity());
  }
  return result;
}

}  // namespace

Comparison compare_outputs(std::span<const std::byte> golden,
                           std::span<const std::byte> observed,
                           fi::ElementType type) {
  switch (type) {
    case fi::ElementType::kF32: return compare_typed<float>(golden, observed);
    case fi::ElementType::kF64: return compare_typed<double>(golden, observed);
    case fi::ElementType::kI32:
      return compare_typed<std::int32_t>(golden, observed);
    case fi::ElementType::kI64:
      return compare_typed<std::int64_t>(golden, observed);
  }
  return {};
}

}  // namespace phifi::analysis

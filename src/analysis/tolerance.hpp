// Imprecise-computing analysis (Sec. 4.4, Fig. 3).
//
// Each SDC execution is summarized by the largest relative error among its
// corrupted output elements. Accepting a tolerance t reclassifies every SDC
// whose worst element is within t as acceptable; the SDC FIT rate scales by
// the fraction that remains. The paper sweeps t from 0.1% to 15%.
#pragma once

#include <span>
#include <vector>

namespace phifi::analysis {

class ToleranceAnalysis {
 public:
  /// Records one SDC execution's worst relative error.
  void add_sdc(double max_relative_error) {
    max_errors_.push_back(max_relative_error);
  }

  [[nodiscard]] std::size_t total_sdc() const { return max_errors_.size(); }

  /// SDCs that still exceed the tolerance (remain errors).
  [[nodiscard]] std::size_t sdc_at(double tolerance) const;

  /// Fraction of the zero-tolerance SDC count that remains at `tolerance`;
  /// multiplying the SDC FIT by this gives the tolerant FIT. 1.0 when no
  /// SDCs were recorded.
  [[nodiscard]] double remaining_fraction(double tolerance) const;

  /// FIT reduction in percent, the paper's Fig. 3 y-axis.
  [[nodiscard]] double reduction_percent(double tolerance) const {
    return (1.0 - remaining_fraction(tolerance)) * 100.0;
  }

  /// The paper's sweep: 0.1% to 15%.
  static std::vector<double> default_tolerances();

 private:
  std::vector<double> max_errors_;
};

}  // namespace phifi::analysis

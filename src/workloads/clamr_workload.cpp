#include "workloads/clamr_workload.hpp"

#include <algorithm>

namespace phifi::work {

Clamr::Clamr(clamr::MeshParams params, unsigned steps, unsigned workers,
             bool hardened)
    : WorkloadBase(hardened ? "CLAMR+guards" : "CLAMR", /*time_windows=*/9,
                   workers),
      params_(params),
      steps_(steps),
      hardened_(hardened),
      mesh_(params),
      tree_(params.fine_size(),
            static_cast<std::size_t>(params.fine_size()) *
                params.fine_size()),
      sort_(static_cast<std::size_t>(params.fine_size()) *
            params.fine_size()) {
  key_scratch_.resize(mesh_.capacity());
  raster_.resize(static_cast<std::size_t>(params_.fine_size()) *
                 params_.fine_size());
  tree_.set_safe_mode(hardened_);
}

bool Clamr::sort_is_valid(std::size_t cells) {
  const auto perm = sort_.perm();
  const auto keys = sort_.keys();
  if (perm.size() != cells) return false;
  audit_seen_.assign(cells, 0);
  for (std::size_t r = 0; r < cells; ++r) {
    const std::int32_t cell = perm[r];
    if (cell < 0 || static_cast<std::size_t>(cell) >= cells) return false;
    if (audit_seen_[static_cast<std::size_t>(cell)]) return false;
    audit_seen_[static_cast<std::size_t>(cell)] = 1;
    if (r > 0 && keys[r - 1] > keys[r]) return false;
  }
  return true;
}

void Clamr::setup(std::uint64_t input_seed) {
  util::Rng rng(input_seed ^ 0xc1a32);
  init_amplitude_ = static_cast<float>(rng.uniform(0.4, 0.6));

  // Serial dry run to learn the per-step cell counts (= progress weights).
  mesh_.init_dam_break(init_amplitude_);
  step_cells_.assign(steps_, 0);
  total_ticks_ = 0;
  for (unsigned s = 0; s < steps_; ++s) {
    step_cells_[s] = mesh_.cell_count();
    advance_step(nullptr,
                 [this](std::uint64_t weight) { total_ticks_ += weight; });
  }

  // Reset to the initial condition for the measured run.
  mesh_.init_dam_break(init_amplitude_);
  reset_control();
}

void Clamr::advance_step(phi::Device* device, const TickFn& tick) {
  const std::size_t cells = mesh_.cell_count();
  // Phase tick weights, scaled to one tick per cell in the compute phase.
  // Shares approximate measured phase costs: sort ~25% spread over its
  // merge passes, tree ~10%, regrid ~15%.
  const std::uint64_t w_pass =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cells) / 40);
  const std::uint64_t w_tree =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cells) / 10);
  const std::uint64_t w_regrid =
      std::max<std::uint64_t>(1, 3 * static_cast<std::uint64_t>(cells) / 20);

  // (1) Sort: compute each cell's Z-order key and sort. Ticks fire after
  // every merge pass, so injections land while the scratch buffers are
  // live. The resulting permutation (rank -> cell) stays live through the
  // compute and regrid phases below — it is the mesh's "index" structure,
  // and corrupting it mid-step sends the solver to a wild cell (the
  // paper's Sort criticality).
  mesh_.compute_keys(key_scratch_.span());
  sort_.sort({key_scratch_.data(), cells},
             tick ? std::function<void()>([&] { tick(w_pass); })
                  : std::function<void()>());
  if (hardened_ && !sort_is_valid(cells)) {
    // Post-sort audit (Sec. 6.1): the order is reconstructible from the
    // cell geometry, so a corrupted sort is repaired by redoing it.
    mesh_.compute_keys(key_scratch_.span());
    sort_.sort({key_scratch_.data(), cells});
    if (!sort_is_valid(cells)) {
      throw std::runtime_error("CLAMR sort audit failed after retry");
    }
  }
  const std::int32_t* perm = sort_.perm().data();

  // (2) Tree: rebuild the point-location quadtree.
  mesh_.build_tree(tree_);
  if (tick) tick(w_tree);

  // (3) Compute: one Lax-Friedrichs step over all cells, visited in rank
  // order through the live permutation.
  if (device != nullptr) {
    // Per-step prologue: every hardware thread's rank bounds are written
    // before the sweep starts, so corrupting a thread's bounds before it
    // runs is consumed rather than overwritten.
    device->launch(workers(), [&, cells](phi::WorkerCtx& ctx) {
      phi::ControlBlock& cb = control(ctx.worker);
      const auto [begin, end] =
          phi::Device::partition(cells, ctx.worker, ctx.num_workers);
      cb.set(s_begin_, static_cast<std::int64_t>(begin));
      cb.set(s_end_, static_cast<std::int64_t>(end));
      cb.set(s_ncells_, static_cast<std::int64_t>(cells));
    });
    device->launch(workers(), [&, cells](phi::WorkerCtx& ctx) {
      phi::ControlBlock& cb = control(ctx.worker);
      for (cb.set(s_cell_, cb.get(s_begin_)); cb.get(s_cell_) < cb.get(s_end_);
           cb.add(s_cell_, 1)) {
        // Hardened sweep clamps the rank and the mapped cell: corruption of
        // the bounds or the live permutation degrades to skipped work
        // instead of a wild access.
        if (hardened_) {
          const std::int64_t rank = cb.get(s_cell_);
          if (rank < 0 || rank >= static_cast<std::int64_t>(cells)) break;
          const std::int32_t mapped = perm[rank];
          if (mapped < 0 || static_cast<std::size_t>(mapped) >= cells) {
            if (tick) tick(1);
            continue;
          }
        }
        const auto cell = static_cast<std::size_t>(
            perm[cb.get(s_cell_)]);
        mesh_.compute_cell(tree_, cell);
        // Per-cell ticks keep injections landing *inside* the step, while
        // the sort permutation and tree links are live — where the paper's
        // Sort/Tree criticality comes from.
        if (tick) tick(1);
      }
      const std::uint64_t computed =
          cb.get(s_end_) > cb.get(s_begin_)
              ? static_cast<std::uint64_t>(cb.get(s_end_) - cb.get(s_begin_))
              : 0;
      ctx.counters->add_flops(computed * 30);
      // Per cell: 4 neighbors x (h,u,v) + own geometry in, (h,u,v) out.
      ctx.counters->add_bytes_read(computed * 60);
      ctx.counters->add_bytes_written(computed * 12);
    });
  } else {
    for (std::size_t r = 0; r < cells; ++r) {
      mesh_.compute_cell(tree_, static_cast<std::size_t>(perm[r]));
      if (tick) tick(1);
    }
  }
  mesh_.swap_state();

  // (4) Regrid on the updated state (geometry unchanged, tree still
  // valid), walking cells in Z-order through the same live permutation.
  mesh_.regrid(tree_, sort_.perm());
  if (tick) tick(w_regrid);
}

void Clamr::run(phi::Device& device, fi::ProgressTracker& progress) {
  const TickFn tick = [&progress](std::uint64_t weight) {
    progress.tick(weight);
  };
  // One phase across all timesteps (the phase log is bounded; per-window
  // fractions resolve timing inside the loop), one for the output raster.
  progress.enter_phase("timestep-loop");
  for (unsigned s = 0; s < steps_; ++s) {
    control(0).set(s_step_, s);
    advance_step(&device, tick);
  }
  progress.enter_phase("rasterize");
  mesh_.rasterize(raster_.span());
}

void Clamr::register_sites(fi::SiteRegistry& registry) {
  // The arrays are preallocated for the fully refined worst case; the mesh
  // only ever uses a prefix. Register the *live* extent (the dry run in
  // setup() measured the peak cell count) so injections model faults in
  // allocated-and-used memory, as in the real application.
  std::size_t peak = static_cast<std::size_t>(params_.base_size) *
                     params_.base_size;
  for (std::uint64_t c : step_cells_) {
    peak = std::max(peak, static_cast<std::size_t>(c));
  }
  const std::size_t live =
      std::min(mesh_.capacity(), peak + peak / 4 + 16);
  const std::size_t live_nodes =
      std::min(tree_.node_capacity(), live * 2 + 64);

  // Mesh state and geometry ("others" in the paper's mesh split).
  registry.add_global_array<float>("mesh_h", "mesh.other",
                                   mesh_.h_buffer().first(live));
  registry.add_global_array<float>("mesh_u", "mesh.other",
                                   mesh_.u_buffer().first(live));
  registry.add_global_array<float>("mesh_v", "mesh.other",
                                   mesh_.v_buffer().first(live));
  registry.add_global_array<float>("mesh_h_new", "mesh.other",
                                   mesh_.hn_buffer().first(live));
  registry.add_global_array<float>("mesh_u_new", "mesh.other",
                                   mesh_.un_buffer().first(live));
  registry.add_global_array<float>("mesh_v_new", "mesh.other",
                                   mesh_.vn_buffer().first(live));
  registry.add_global_array<std::int32_t>("mesh_x", "mesh.other",
                                          mesh_.x_buffer().first(live));
  registry.add_global_array<std::int32_t>("mesh_y", "mesh.other",
                                          mesh_.y_buffer().first(live));
  registry.add_global_array<std::int32_t>("mesh_depth", "mesh.other",
                                          mesh_.depth_buffer().first(live));
  registry.add_global_array<std::int32_t>("regrid_marks", "mesh.other",
                                          mesh_.marks_buffer().first(live));
  registry.add_global_array<float>("output_raster", "mesh.other",
                                   raster_.span());

  // Sort machinery.
  registry.add_global_array<std::uint32_t>("sort_keys", "mesh.sort",
                                           sort_.key_buffer().first(live));
  registry.add_global_array<std::int32_t>("sort_perm", "mesh.sort",
                                          sort_.perm_buffer().first(live));
  registry.add_global_array<std::uint32_t>(
      "sort_scratch_keys", "mesh.sort",
      sort_.scratch_key_buffer().first(live));
  registry.add_global_array<std::int32_t>(
      "sort_scratch_perm", "mesh.sort",
      sort_.scratch_perm_buffer().first(live));

  // Tree machinery.
  registry.add_global_array<std::int32_t>(
      "tree_children", "mesh.tree",
      tree_.children_buffer().first(live_nodes * 4));
  registry.add_global_array<std::int32_t>("tree_leaves", "mesh.tree",
                                          tree_.leaf_buffer().first(
                                              live_nodes));

  // Physics constants.
  clamr::MeshParams& p = mesh_.mutable_params();
  registry.add_global_scalar("dt", "constant", p.dt);
  registry.add_global_scalar("wave_speed2", "constant", p.wave_speed2);
  registry.add_global_scalar("refine_threshold", "constant",
                             p.refine_threshold);
  registry.add_global_scalar("coarsen_threshold", "constant",
                             p.coarsen_threshold);

  register_control_sites(registry);
}

std::span<const std::byte> Clamr::output_bytes() const {
  return {reinterpret_cast<const std::byte*>(raster_.data()),
          raster_.size() * sizeof(float)};
}

}  // namespace phifi::work

// Hardened benchmark variants — the paper's future work (Sec. 7: "we plan
// to implement the mitigation techniques based on the radiation and fault
// injection analysis, then validate them with ... fault injection
// campaigns"), implemented for the three benchmarks whose Sec. 6 analyses
// give the clearest prescriptions:
//
//   * DGEMM + ABFT  — Huang-Abraham checksums captured before the multiply;
//     after the kernel the product is audited and single/line/pairable
//     corruption is repaired in place. Unrepairable damage raises a clean
//     abort, converting would-be SDCs into detected errors (DUEs).
//   * HotSpot + DWC — the RC-model constants are TMR-protected and the
//     replicated per-thread control bounds are refreshed (scrubbed) every
//     iteration, targeting exactly the "constants and control variables"
//     criticality the paper reports.
//   * CLAMR hardened — bounds-checked Tree descent, a post-Sort audit that
//     re-sorts on inconsistency, and rank clamping in the solver sweep,
//     the Sec. 6.1 recommendations for the Sort/Tree portions.
//
// The added protection state (checksums, TMR copies) is registered as
// injection sites like everything else: hardening hardware also gets hit.
#pragma once

#include <memory>
#include <optional>

#include "mitigation/abft.hpp"
#include "mitigation/dwc.hpp"
#include "workloads/clamr_workload.hpp"
#include "workloads/dgemm.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lavamd.hpp"

namespace phifi::work {

/// Raised by hardened variants when protection detects unrepairable
/// corruption; the trial child converts it into a clean abort (DUE).
class HardeningDetected : public std::runtime_error {
 public:
  explicit HardeningDetected(const std::string& what)
      : std::runtime_error("hardening detected unrecoverable fault: " +
                           what) {}
};

class AbftDgemm : public Dgemm {
 public:
  explicit AbftDgemm(std::size_t n = 96, unsigned workers = kKncWorkers);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;

  /// Report of the last run's audit (empty before the first run).
  [[nodiscard]] const std::optional<mitigation::AbftReport>& last_report()
      const {
    return last_report_;
  }

 private:
  std::unique_ptr<mitigation::AbftGemm> abft_;
  std::optional<mitigation::AbftReport> last_report_;
};

/// LavaMD under redundant execution — Sec. 6's verdict that LavaMD's
/// exposed memory is too large for selective hardening, leaving "a generic
/// technique, like modular replication ... which may consume up to twice
/// the execution time". The kernel runs twice; a mismatch between the two
/// force arrays is a detected error (clean abort -> DUE instead of SDC).
/// Input-array corruption that precedes both runs is computed identically
/// twice and stays undetected — the known blind spot of replication.
class RmtLavaMd : public LavaMd {
 public:
  explicit RmtLavaMd(std::size_t boxes_per_dim = 3,
                     std::size_t particles_per_box = 16,
                     unsigned workers = kKncWorkers);

  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  /// Both executions tick progress, so the denominator doubles.
  [[nodiscard]] std::uint64_t total_steps() const override {
    return 2 * LavaMd::total_steps();
  }

 private:
  std::vector<double> first_pass_;
};

std::unique_ptr<fi::Workload> make_abft_dgemm();
std::unique_ptr<fi::Workload> make_hardened_hotspot();
std::unique_ptr<fi::Workload> make_hardened_clamr();
std::unique_ptr<fi::Workload> make_rmt_lavamd();

}  // namespace phifi::work

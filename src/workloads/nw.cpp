#include "workloads/nw.hpp"

#include <algorithm>

namespace phifi::work {

Nw::Nw(std::size_t length, unsigned workers)
    : WorkloadBase("NW", /*time_windows=*/4, workers), length_(length) {}

void Nw::setup(std::uint64_t input_seed) {
  util::Rng rng(input_seed ^ 0x4e57);
  const std::size_t cols = length_ + 1;
  score_.resize(cols * cols);
  seq1_.resize(length_);
  seq2_.resize(length_);
  blosum_.resize(kAlphabet * kAlphabet);
  for (auto& v : seq1_.span()) {
    v = static_cast<std::int32_t>(rng.below(kAlphabet));
  }
  for (auto& v : seq2_.span()) {
    v = static_cast<std::int32_t>(rng.below(kAlphabet));
  }
  // BLOSUM-like substitution scores: positive diagonal, mildly negative
  // off-diagonal, symmetric.
  for (std::size_t a = 0; a < kAlphabet; ++a) {
    for (std::size_t b = a; b < kAlphabet; ++b) {
      const std::int32_t s =
          (a == b) ? static_cast<std::int32_t>(4 + rng.below(5))
                   : static_cast<std::int32_t>(rng.range(-4, 1));
      blosum_[a * kAlphabet + b] = s;
      blosum_[b * kAlphabet + a] = s;
    }
  }
  gap_penalty_ = 2;
  // Boundary conditions: leading row/column pay cumulative gap penalties.
  const std::size_t n = cols;
  for (std::size_t i = 0; i < n; ++i) {
    score_[i * n] = -static_cast<std::int32_t>(i) * gap_penalty_;
    score_[i] = -static_cast<std::int32_t>(i) * gap_penalty_;
  }
  ptr_score_ = score_.data();
  ptr_seq1_ = seq1_.data();
  ptr_seq2_ = seq2_.data();
  ptr_blosum_ = blosum_.data();
  reset_control();
}

void Nw::run(phi::Device& device, fi::ProgressTracker& progress) {
  const std::size_t cols = length_ + 1;
  std::int32_t* const volatile* pscore = &ptr_score_;
  const std::int32_t* const volatile* pseq1 = &ptr_seq1_;
  const std::int32_t* const volatile* pseq2 = &ptr_seq2_;
  const std::int32_t* const volatile* pblosum = &ptr_blosum_;

  // Prologue: matrix stride and gap penalty are loop-invariant; each
  // hardware thread's copies are written once and stay live all run.
  progress.enter_phase("setup-bounds");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    cb.set(s_cols_, static_cast<std::int64_t>(cols));
    cb.set(s_penalty_, gap_penalty_);
  });
  progress.enter_phase("wavefront");

  // Wavefront over anti-diagonals d = i + j (1-based matrix coordinates):
  // cells on one diagonal depend only on the two previous diagonals, so a
  // diagonal is one bulk-synchronous launch.
  for (std::size_t d = 2; d <= 2 * length_; ++d) {
    const std::size_t i_lo = d > length_ + 1 ? d - length_ : 1;
    const std::size_t i_hi = std::min(d - 1, length_);  // inclusive
    const std::size_t count = i_hi - i_lo + 1;

    device.launch(workers(), [&](phi::WorkerCtx& ctx) {
      phi::ControlBlock& cb = control(ctx.worker);
      const auto [begin, end] =
          phi::Device::partition(count, ctx.worker, ctx.num_workers);
      if (begin >= end) return;
      std::int32_t* score = *pscore;
      const std::int32_t* seq1 = *pseq1;
      const std::int32_t* seq2 = *pseq2;
      const std::int32_t* blosum = *pblosum;
      cb.set(s_diag_, static_cast<std::int64_t>(d));
      cb.set(s_begin_, static_cast<std::int64_t>(i_lo + begin));
      cb.set(s_end_, static_cast<std::int64_t>(i_lo + end));

      for (cb.set(s_i_, cb.get(s_begin_)); cb.get(s_i_) < cb.get(s_end_);
           cb.add(s_i_, 1)) {
        const std::int64_t i = cb.get(s_i_);
        const std::int64_t j = cb.get(s_diag_) - i;
        const std::int64_t nc = cb.get(s_cols_);
        const std::int32_t penalty =
            static_cast<std::int32_t>(cb.get(s_penalty_));
        // Runtime substitution lookup: the sequence values index the
        // substitution matrix, as in the Rodinia kernel.
        const std::int32_t sim =
            blosum[seq1[i - 1] * static_cast<std::int64_t>(kAlphabet) +
                   seq2[j - 1]];
        const std::int32_t diag = score[(i - 1) * nc + (j - 1)] + sim;
        const std::int32_t up = score[(i - 1) * nc + j] - penalty;
        const std::int32_t left = score[i * nc + (j - 1)] - penalty;
        score[i * nc + j] = std::max(diag, std::max(up, left));
      }
      ctx.counters->add_flops(4 * (end - begin));
      ctx.counters->add_bytes_read(4 * sizeof(std::int32_t) * (end - begin));
      ctx.counters->add_bytes_written(sizeof(std::int32_t) * (end - begin));
      progress.tick(end - begin);  // in-launch ticks: injections land
                                   // while the wavefront state is live
    });
  }
}

void Nw::register_sites(fi::SiteRegistry& registry) {
  registry.add_global_array<std::int32_t>("score_matrix", "matrix",
                                          score_.span());
  registry.add_global_array<std::int32_t>("sequence_1", "matrix",
                                          seq1_.span());
  registry.add_global_array<std::int32_t>("sequence_2", "matrix",
                                          seq2_.span());
  registry.add_global_array<std::int32_t>("blosum", "matrix", blosum_.span());
  registry.add_global_scalar("gap_penalty", "constant", gap_penalty_);
  registry.add_global_scalar("ptr_score", "pointer", ptr_score_);
  registry.add_global_scalar("ptr_seq1", "pointer", ptr_seq1_);
  registry.add_global_scalar("ptr_seq2", "pointer", ptr_seq2_);
  registry.add_global_scalar("ptr_blosum", "pointer", ptr_blosum_);
  register_control_sites(registry);
}

std::int32_t Nw::alignment_score() const {
  const std::size_t cols = length_ + 1;
  return score_[cols * cols - 1];
}

std::span<const std::byte> Nw::output_bytes() const {
  return {reinterpret_cast<const std::byte*>(score_.data()),
          score_.size() * sizeof(std::int32_t)};
}

}  // namespace phifi::work

// LavaMD: N-body particle interactions within a cut-off radius (Rodinia).
//
// Particles live in a 3D grid of boxes; each particle interacts with every
// particle in its home box and the 26 surrounding boxes. The dominant
// injection targets are the charge and position ("distance") arrays, which
// are orders of magnitude larger than the rest of the state — the paper
// (Sec. 6) attributes 57% of LavaMD's SDCs to them. This is the only
// benchmark with a 3D output, hence the only one that can show the cubic
// error pattern of Fig. 2.
#pragma once

#include <cstdint>
#include <vector>

#include "util/array_view.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class LavaMd : public WorkloadBase {
 public:
  /// `boxes_per_dim` boxes in each dimension, `particles_per_box` each.
  explicit LavaMd(std::size_t boxes_per_dim = 3,
                  std::size_t particles_per_box = 16,
                  unsigned workers = kKncWorkers);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  /// Output is the per-particle force 4-vectors, laid out so the box grid's
  /// z/y structure is visible to the spatial classifier: depth = boxes in z,
  /// height = boxes in y, width = boxes in x * particles * 4 components.
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = nb_ * ppb_ * 4, .height = nb_, .depth = nb_};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF64;
  }
  [[nodiscard]] std::uint64_t total_steps() const override {
    return box_count();
  }

  [[nodiscard]] std::size_t box_count() const { return nb_ * nb_ * nb_; }
  [[nodiscard]] std::size_t particle_count() const {
    return box_count() * ppb_;
  }
  [[nodiscard]] std::span<const double> forces() const { return fv_.span(); }

 private:
  std::size_t nb_;
  std::size_t ppb_;
  util::AlignedBuffer<double> rv_;  // positions+velocity term, 4 per particle
  util::AlignedBuffer<double> qv_;  // charges, 1 per particle
  util::AlignedBuffer<double> fv_;  // forces, 4 per particle (output)
  /// Flattened neighbor lists: for each box, 27 slots of box indices
  /// (-1-padded). Mirrors Rodinia's box_str neighbor arrays.
  util::AlignedBuffer<std::int64_t> neighbors_;
  util::AlignedBuffer<std::int64_t> neighbor_counts_;
  double alpha_ = 0.5;
  // Base pointers, re-read per box (corruptible frame variables).
  const double* ptr_rv_ = nullptr;
  const double* ptr_qv_ = nullptr;
  double* ptr_fv_ = nullptr;
  const std::int64_t* ptr_neighbors_ = nullptr;
  const std::int64_t* ptr_neighbor_counts_ = nullptr;

  phi::ControlSlot s_box_ = declare_slot("box");
  phi::ControlSlot s_nbr_ = declare_slot("neighbor");
  phi::ControlSlot s_i_ = declare_slot("i");
  phi::ControlSlot s_j_ = declare_slot("j");
  phi::ControlSlot s_begin_ = declare_slot("box_begin");
  phi::ControlSlot s_end_ = declare_slot("box_end");
  phi::ControlSlot s_ppb_ = declare_slot("particles_per_box");
};

}  // namespace phifi::work

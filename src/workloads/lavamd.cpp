#include "workloads/lavamd.hpp"

#include <cmath>

namespace phifi::work {

LavaMd::LavaMd(std::size_t boxes_per_dim, std::size_t particles_per_box,
               unsigned workers)
    : WorkloadBase("LavaMD", /*time_windows=*/4, workers),
      nb_(boxes_per_dim),
      ppb_(particles_per_box) {}

void LavaMd::setup(std::uint64_t input_seed) {
  util::Rng rng(input_seed ^ 0x1a7a);
  const std::size_t particles = particle_count();
  rv_.resize(particles * 4);
  qv_.resize(particles);
  fv_.resize(particles * 4);
  neighbors_.resize(box_count() * 27);
  neighbor_counts_.resize(box_count());

  // Particles are placed inside their own box (unit box edge) so the
  // cut-off structure of the original benchmark is preserved.
  for (std::size_t bz = 0; bz < nb_; ++bz) {
    for (std::size_t by = 0; by < nb_; ++by) {
      for (std::size_t bx = 0; bx < nb_; ++bx) {
        const std::size_t box = (bz * nb_ + by) * nb_ + bx;
        for (std::size_t p = 0; p < ppb_; ++p) {
          const std::size_t particle = box * ppb_ + p;
          rv_[particle * 4 + 0] = static_cast<double>(bx) + rng.uniform();
          rv_[particle * 4 + 1] = static_cast<double>(by) + rng.uniform();
          rv_[particle * 4 + 2] = static_cast<double>(bz) + rng.uniform();
          rv_[particle * 4 + 3] = rng.uniform(0.1, 1.0);
          qv_[particle] = rng.uniform(0.1, 1.0);
        }
      }
    }
  }

  // Neighbor lists: the box itself plus every box within one step in each
  // dimension (no periodic wrap), -1-padded to 27 entries.
  for (std::size_t bz = 0; bz < nb_; ++bz) {
    for (std::size_t by = 0; by < nb_; ++by) {
      for (std::size_t bx = 0; bx < nb_; ++bx) {
        const std::size_t box = (bz * nb_ + by) * nb_ + bx;
        std::size_t count = 0;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::int64_t nz = static_cast<std::int64_t>(bz) + dz;
              const std::int64_t ny = static_cast<std::int64_t>(by) + dy;
              const std::int64_t nx = static_cast<std::int64_t>(bx) + dx;
              if (nz < 0 || ny < 0 || nx < 0 ||
                  nz >= static_cast<std::int64_t>(nb_) ||
                  ny >= static_cast<std::int64_t>(nb_) ||
                  nx >= static_cast<std::int64_t>(nb_)) {
                continue;
              }
              neighbors_[box * 27 + count++] = (nz * nb_ + ny) * nb_ + nx;
            }
          }
        }
        neighbor_counts_[box] = static_cast<std::int64_t>(count);
        for (std::size_t pad = count; pad < 27; ++pad) {
          neighbors_[box * 27 + pad] = -1;
        }
      }
    }
  }
  alpha_ = 0.5;
  ptr_rv_ = rv_.data();
  ptr_qv_ = qv_.data();
  ptr_fv_ = fv_.data();
  ptr_neighbors_ = neighbors_.data();
  ptr_neighbor_counts_ = neighbor_counts_.data();
  reset_control();
}

void LavaMd::run(phi::Device& device, fi::ProgressTracker& progress) {
  const double* const volatile* prv = &ptr_rv_;
  const double* const volatile* pqv = &ptr_qv_;
  double* const volatile* pfv = &ptr_fv_;
  const std::int64_t* const volatile* pneighbors = &ptr_neighbors_;
  const std::int64_t* const volatile* pcounts = &ptr_neighbor_counts_;
  const volatile double* alpha = &alpha_;

  // Prologue: box partition and particles-per-box are loop-invariant; each
  // hardware thread's copies are written once and stay live all run.
  progress.enter_phase("setup-bounds");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    const auto [begin, end] =
        phi::Device::partition(box_count(), ctx.worker, ctx.num_workers);
    cb.set(s_begin_, static_cast<std::int64_t>(begin));
    cb.set(s_end_, static_cast<std::int64_t>(end));
    cb.set(s_ppb_, static_cast<std::int64_t>(ppb_));
  });

  progress.enter_phase("force-kernel");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    if (cb.get(s_begin_) >= cb.get(s_end_)) return;

    for (cb.set(s_box_, cb.get(s_begin_)); cb.get(s_box_) < cb.get(s_end_);
         cb.add(s_box_, 1)) {
      const double* rv = *prv;
      const double* qv = *pqv;
      double* fv = *pfv;
      const std::int64_t* neighbors = *pneighbors;
      const std::int64_t* neighbor_counts = *pcounts;
      const std::int64_t box = cb.get(s_box_);
      const std::int64_t ppb = cb.get(s_ppb_);
      const double a2 = (*alpha) * (*alpha);

      for (cb.set(s_i_, box * ppb); cb.get(s_i_) < (box + 1) * ppb;
           cb.add(s_i_, 1)) {
        const std::int64_t i = cb.get(s_i_);
        const double xi = rv[i * 4 + 0];
        const double yi = rv[i * 4 + 1];
        const double zi = rv[i * 4 + 2];
        const double vi = rv[i * 4 + 3];
        double fx = 0.0;
        double fy = 0.0;
        double fz = 0.0;
        double fw = 0.0;

        for (cb.set(s_nbr_, 0); cb.get(s_nbr_) < neighbor_counts[box];
             cb.add(s_nbr_, 1)) {
          const std::int64_t nbr_box = neighbors[box * 27 + cb.get(s_nbr_)];
          for (cb.set(s_j_, nbr_box * ppb);
               cb.get(s_j_) < (nbr_box + 1) * ppb; cb.add(s_j_, 1)) {
            const std::int64_t j = cb.get(s_j_);
            const double dx = xi - rv[j * 4 + 0];
            const double dy = yi - rv[j * 4 + 1];
            const double dz = zi - rv[j * 4 + 2];
            const double d2 = dx * dx + dy * dy + dz * dz;
            const double u2 = a2 * d2;
            const double vij = std::exp(-u2);
            const double fs = (vi + rv[j * 4 + 3]) * 2.0 * vij;
            const double q = qv[j];
            fw += q * vij;
            fx += q * fs * dx;
            fy += q * fs * dy;
            fz += q * fs * dz;
          }
        }
        fv[i * 4 + 0] = fx;
        fv[i * 4 + 1] = fy;
        fv[i * 4 + 2] = fz;
        fv[i * 4 + 3] = fw;
        const auto pairs =
            static_cast<std::uint64_t>(neighbor_counts[box]) * ppb;
        ctx.counters->add_flops(pairs * 20);
        // Per pair: neighbor position 4-vector + charge.
        ctx.counters->add_bytes_read(pairs * 5 * sizeof(double));
        ctx.counters->add_bytes_written(4 * sizeof(double));
      }
      progress.tick();
    }
  });
}

void LavaMd::register_sites(fi::SiteRegistry& registry) {
  registry.add_global_array<double>("positions", "distance", rv_.span());
  registry.add_global_array<double>("charges", "charge", qv_.span());
  registry.add_global_array<double>("forces", "force", fv_.span());
  registry.add_global_array<std::int64_t>("neighbor_list", "box",
                                          neighbors_.span());
  registry.add_global_array<std::int64_t>("neighbor_counts", "box",
                                          neighbor_counts_.span());
  registry.add_global_scalar("alpha", "constant", alpha_);
  registry.add_global_scalar("ptr_positions", "pointer", ptr_rv_);
  registry.add_global_scalar("ptr_charges", "pointer", ptr_qv_);
  registry.add_global_scalar("ptr_forces", "pointer", ptr_fv_);
  registry.add_global_scalar("ptr_neighbors", "pointer", ptr_neighbors_);
  registry.add_global_scalar("ptr_neighbor_counts", "pointer",
                             ptr_neighbor_counts_);
  register_control_sites(registry);
}

std::span<const std::byte> LavaMd::output_bytes() const {
  return {reinterpret_cast<const std::byte*>(fv_.data()),
          fv_.size() * sizeof(double)};
}

}  // namespace phifi::work

// CLAMR mini-app: shallow-water wave propagation on an adaptive mesh.
//
// The DOE mini-app the paper uses as its LANL-representative workload
// (Sec. 3.2). Each timestep: (1) Sort — re-order cells along the Z-order
// curve; (2) Tree — rebuild the quadtree used for cross-level neighbor
// lookup; (3) compute — a Lax-Friedrichs shallow-water step over all cells
// in parallel; (4) regrid — refine/coarsen on the h gradient. The cell
// count rises as the wave front expands and falls as it dissipates, which
// reproduces the paper's "sensitivity peaks when active cells peak"
// time-window result (window 3 of 9, Fig. 6). Sites are categorized as
// mesh.sort / mesh.tree / mesh.other to reproduce the Sec. 6 criticality
// split.
#pragma once

#include <functional>
#include <vector>

#include "util/array_view.hpp"
#include "workloads/clamr/amr_mesh.hpp"
#include "workloads/clamr/cell_sort.hpp"
#include "workloads/clamr/quadtree.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class Clamr : public WorkloadBase {
 public:
  /// `hardened` enables the Sec. 6.1 mitigations for the Sort and Tree
  /// portions: bounds-checked quadtree descent, a post-sort audit that
  /// re-sorts on inconsistency (aborting cleanly if the retry also fails),
  /// and rank clamping in the solver sweep.
  explicit Clamr(clamr::MeshParams params = {}, unsigned steps = 27,
                 unsigned workers = kKncWorkers, bool hardened = false);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  [[nodiscard]] util::Shape output_shape() const override {
    const std::size_t fine = params_.fine_size();
    return {.width = fine, .height = fine};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF32;
  }
  [[nodiscard]] std::uint64_t total_steps() const override {
    return total_ticks_;
  }

  [[nodiscard]] const clamr::AmrMesh& mesh() const { return mesh_; }
  /// Cell count per step observed during the setup dry run.
  [[nodiscard]] std::span<const std::uint64_t> step_cells() const {
    return step_cells_;
  }

 private:
  /// Advances one timestep, reporting progress through `tick` (may be
  /// empty). Ticks are spread over the Sort, Tree, compute, and regrid
  /// phases in proportion to their cost so injections land inside every
  /// phase; the same code path serves the serial dry run (device == null),
  /// which is how total_steps() is measured exactly.
  using TickFn = std::function<void(std::uint64_t)>;
  void advance_step(phi::Device* device, const TickFn& tick);

  /// True if the live sort output is a valid permutation of [0, cells) in
  /// non-decreasing key order (the hardened post-sort audit).
  [[nodiscard]] bool sort_is_valid(std::size_t cells);

  clamr::MeshParams params_;
  unsigned steps_;
  bool hardened_ = false;
  std::vector<std::uint8_t> audit_seen_;  // audit scratch, unregistered
  clamr::AmrMesh mesh_;
  clamr::Quadtree tree_;
  clamr::CellSort sort_;
  util::AlignedBuffer<std::uint32_t> key_scratch_;
  util::AlignedBuffer<float> raster_;
  float init_amplitude_ = 0.5f;

  // Per-step progress weights measured by a serial dry run in setup(); the
  // cost of a step is proportional to its live cell count, and these make
  // progress fraction track wall time closely (Fig. 6 windows).
  std::vector<std::uint64_t> step_cells_;
  std::uint64_t total_ticks_ = 0;

  phi::ControlSlot s_cell_ = declare_slot("cell");
  phi::ControlSlot s_begin_ = declare_slot("cell_begin");
  phi::ControlSlot s_end_ = declare_slot("cell_end");
  phi::ControlSlot s_step_ = declare_slot("step");
  phi::ControlSlot s_ncells_ = declare_slot("ncells");
};

}  // namespace phifi::work

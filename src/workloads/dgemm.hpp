// DGEMM: double-precision dense matrix multiply, C += alpha * A x B.
//
// The paper's compute-bound benchmark (Sec. 3.2). Parallelized over rows of
// C across the 228 logical hardware threads. Each worker keeps nine integer
// loop-control variables in its control block — the same "nine loop control
// variables ... each of the 228 threads allocates those nine integers"
// structure whose replicated footprint the paper identifies as the source of
// DGEMM's control-variable criticality (Sec. 6).
#pragma once

#include "util/array_view.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class Dgemm : public WorkloadBase {
 public:
  explicit Dgemm(std::size_t n = 96, unsigned workers = kKncWorkers);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;
  bool reset() override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = n_, .height = n_};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF64;
  }
  [[nodiscard]] std::uint64_t total_steps() const override { return n_; }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::span<const double> a() const { return a_.span(); }
  [[nodiscard]] std::span<const double> b() const { return b_.span(); }
  [[nodiscard]] std::span<double> c() { return c_.span(); }

 private:
  std::size_t n_;
  util::AlignedBuffer<double> a_;
  util::AlignedBuffer<double> b_;
  util::AlignedBuffer<double> c_;
  double alpha_ = 1.0;
  // Base-pointer variables, re-read from memory each row: corrupting one
  // (as CAROL-FI does when it picks a pointer from the frame) sends the
  // kernel into wild memory — the paper's dominant matrix-fault DUE path.
  const double* ptr_a_ = nullptr;
  const double* ptr_b_ = nullptr;
  double* ptr_c_ = nullptr;

  // The nine per-worker loop-control variables.
  phi::ControlSlot s_i_ = declare_slot("i");
  phi::ControlSlot s_j_ = declare_slot("j");
  phi::ControlSlot s_k_ = declare_slot("k");
  phi::ControlSlot s_row_begin_ = declare_slot("row_begin");
  phi::ControlSlot s_row_end_ = declare_slot("row_end");
  phi::ControlSlot s_n_ = declare_slot("n");
  phi::ControlSlot s_lda_ = declare_slot("lda");
  phi::ControlSlot s_a_row_ = declare_slot("a_row");
  phi::ControlSlot s_c_row_ = declare_slot("c_row");
};

}  // namespace phifi::work

#include "workloads/hotspot.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace phifi::work {

HotSpot::HotSpot(std::size_t rows, std::size_t cols, unsigned iterations,
                 unsigned workers, bool hardened)
    : WorkloadBase(hardened ? "HotSpot+DWC" : "HotSpot", /*time_windows=*/5,
                   workers),
      rows_(rows),
      cols_(cols),
      iterations_(iterations),
      hardened_(hardened) {}

float* HotSpot::constant_by_index(std::size_t index) {
  float* constants[kConstantCount] = {&rx_inv_, &ry_inv_, &rz_inv_,
                                      &step_div_cap_, &amb_temp_};
  return constants[index];
}

void HotSpot::scrub_constants() {
  // TMR vote per constant; a corrupted live value (or one corrupted shadow
  // copy) is repaired. Three-way shadow disagreement is unrecoverable and
  // becomes a detected error (clean abort -> DUE).
  for (std::size_t i = 0; i < kConstantCount; ++i) {
    const std::uint32_t good = shadows_[i].get();  // throws on 3-way split
    float* live = constant_by_index(i);
    if (util::float_bits(*live) != good) {
      *live = util::bits_to_float(good);
    }
  }
}

void HotSpot::write_worker_bounds(phi::Device& device) {
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    const auto [begin, end] =
        phi::Device::partition(rows_, ctx.worker, ctx.num_workers);
    cb.set(s_row_begin_, static_cast<std::int64_t>(begin));
    cb.set(s_row_end_, static_cast<std::int64_t>(end));
    cb.set(s_ncols_, static_cast<std::int64_t>(cols_));
    cb.set(s_nrows_, static_cast<std::int64_t>(rows_));
  });
}

void HotSpot::setup(std::uint64_t input_seed) {
  rebuild_thermal_state(input_seed);
}

void HotSpot::rebuild_thermal_state(std::uint64_t input_seed) {
  input_seed_ = input_seed;
  util::Rng rng(input_seed ^ 0x407590);
  temp_[0].resize(rows_ * cols_);
  temp_[1].resize(rows_ * cols_);
  power_.resize(rows_ * cols_);
  for (std::size_t i = 0; i < rows_ * cols_; ++i) {
    temp_[0][i] = 323.0f + static_cast<float>(rng.uniform(0.0, 1.0));
    power_[i] = static_cast<float>(rng.uniform(0.0, 0.5));
  }
  // Normalized RC constants (step/Cap folded to 1). Chosen so the explicit
  // update is stable: step_div_cap * (2*rx_inv + 2*ry_inv + rz_inv) < 1.
  // Only the relative magnitudes matter for the error-attenuation behaviour
  // the paper analyses (lateral diffusion ~4x stronger than the vertical
  // sink, as in the Rodinia constants).
  rx_inv_ = 0.1f;
  ry_inv_ = 0.1f;
  rz_inv_ = 0.05f;
  step_div_cap_ = 1.0f;
  amb_temp_ = 80.0f;
  final_buffer_ = iterations_ % 2;
  ptr_tin_ = temp_[0].data();
  ptr_tout_ = temp_[1].data();
  ptr_power_ = power_.data();
  if (hardened_) {
    for (std::size_t i = 0; i < kConstantCount; ++i) {
      shadows_[i].set(util::float_bits(*constant_by_index(i)));
    }
  }
  reset_control();
}

bool HotSpot::reset() {
  // run() ping-pongs through both temperature buffers and swaps the
  // tin/tout pointers, so restoring the post-setup image means zeroing the
  // scratch buffer (value-initialized by the first resize, untouched by
  // setup) and replaying the setup body from the stored seed.
  std::fill(temp_[1].span().begin(), temp_[1].span().end(), 0.0f);
  rebuild_thermal_state(input_seed_);
  return true;
}

void HotSpot::run(phi::Device& device, fi::ProgressTracker& progress) {
  // Constants and buffer pointers re-read through volatile glvalues every
  // row so a corrupted constant or pointer poisons all subsequently
  // computed cells.
  const float* const volatile* ptin = &ptr_tin_;
  float* const volatile* ptout = &ptr_tout_;
  const float* const volatile* ppower = &ptr_power_;
  const volatile float* rx_inv = &rx_inv_;
  const volatile float* ry_inv = &ry_inv_;
  const volatile float* rz_inv = &rz_inv_;
  const volatile float* step_div_cap = &step_div_cap_;
  const volatile float* amb = &amb_temp_;

  // Prologue: the row partition and grid dimensions are loop-invariant
  // across all iterations, so each hardware thread's copies are written
  // once and stay live (= corruptible) for the whole run, as on the card.
  // The hardened variant deliberately removes that exposure by refreshing
  // (scrubbing) the bounds at every iteration.
  progress.enter_phase("setup-bounds");
  write_worker_bounds(device);

  // One phase for the whole iteration loop, not one per iteration: the
  // shared-channel phase log is bounded and the per-window fractions in
  // the trace already resolve timing inside the loop.
  progress.enter_phase("stencil");
  for (unsigned iter = 0; iter < iterations_; ++iter) {
    if (hardened_) {
      scrub_constants();
      if (iter != 0) write_worker_bounds(device);
    }
    ptr_tin_ = temp_[iter % 2].data();
    ptr_tout_ = temp_[(iter + 1) % 2].data();

    device.launch(workers(), [&](phi::WorkerCtx& ctx) {
      phi::ControlBlock& cb = control(ctx.worker);
      for (cb.set(s_row_, cb.get(s_row_begin_));
           cb.get(s_row_) < cb.get(s_row_end_); cb.add(s_row_, 1)) {
        const std::int64_t r = cb.get(s_row_);
        const float* tin = *ptin;
        float* tout = *ptout;
        const float* power = *ppower;
        const std::int64_t nc = cb.get(s_ncols_);
        const std::int64_t nr = cb.get(s_nrows_);
        const float k_rx = *rx_inv;
        const float k_ry = *ry_inv;
        const float k_rz = *rz_inv;
        const float k_step = *step_div_cap;
        const float k_amb = *amb;
        for (cb.set(s_col_, 0); cb.get(s_col_) < nc; cb.add(s_col_, 1)) {
          const std::int64_t c = cb.get(s_col_);
          cb.set(s_idx_, r * nc + c);
          const std::int64_t idx = cb.get(s_idx_);
          const float t = tin[idx];
          // Edge cells mirror themselves, as in the Rodinia kernel.
          const float t_w = (c > 0) ? tin[idx - 1] : t;
          const float t_e = (c < nc - 1) ? tin[idx + 1] : t;
          const float t_n = (r > 0) ? tin[idx - nc] : t;
          const float t_s = (r < nr - 1) ? tin[idx + nc] : t;
          const float delta =
              k_step * (power[idx] + (t_e + t_w - 2.0f * t) * k_rx +
                        (t_n + t_s - 2.0f * t) * k_ry + (k_amb - t) * k_rz);
          tout[idx] = t + delta;
        }
        ctx.counters->add_flops(12 * static_cast<std::uint64_t>(nc));
        ctx.counters->add_bytes_read(6 * nc * sizeof(float));
        ctx.counters->add_bytes_written(nc * sizeof(float));
        progress.tick();
      }
    });
  }
}

void HotSpot::register_sites(fi::SiteRegistry& registry) {
  registry.add_global_array<float>("temp_a", "matrix", temp_[0].span());
  registry.add_global_array<float>("temp_b", "matrix", temp_[1].span());
  registry.add_global_array<float>("power", "matrix", power_.span());
  registry.add_global_scalar("rx_inv", "constant", rx_inv_);
  registry.add_global_scalar("ry_inv", "constant", ry_inv_);
  registry.add_global_scalar("rz_inv", "constant", rz_inv_);
  registry.add_global_scalar("step_div_cap", "constant", step_div_cap_);
  registry.add_global_scalar("amb_temp", "constant", amb_temp_);
  registry.add_global_scalar("ptr_temp_in", "pointer", ptr_tin_);
  registry.add_global_scalar("ptr_temp_out", "pointer", ptr_tout_);
  registry.add_global_scalar("ptr_power", "pointer", ptr_power_);
  if (hardened_) {
    // The protection state is corruptible program state too.
    registry.add_global(
        "constant_shadows", "constant",
        {reinterpret_cast<std::byte*>(&shadows_[0]),
         sizeof(shadows_)},
        sizeof(std::uint32_t));
  }
  register_control_sites(registry);
}

std::span<const float> HotSpot::temperatures() const {
  return temp_[final_buffer_].span();
}

std::span<const std::byte> HotSpot::output_bytes() const {
  const auto& final_temp = temp_[final_buffer_];
  return {reinterpret_cast<const std::byte*>(final_temp.data()),
          final_temp.size() * sizeof(float)};
}

}  // namespace phifi::work

#include "workloads/dgemm.hpp"

namespace phifi::work {

Dgemm::Dgemm(std::size_t n, unsigned workers)
    : WorkloadBase("DGEMM", /*time_windows=*/5, workers), n_(n) {}

void Dgemm::setup(std::uint64_t input_seed) {
  util::Rng rng(input_seed ^ 0xd6e44);
  a_.resize(n_ * n_);
  b_.resize(n_ * n_);
  c_.resize(n_ * n_);
  // Positive inputs (HPL-style): every C element is bounded away from
  // zero, so per-element relative error is meaningful for the tolerance
  // analysis of Fig. 3.
  for (auto& v : a_.span()) v = rng.uniform(0.05, 1.0);
  for (auto& v : b_.span()) v = rng.uniform(0.05, 1.0);
  alpha_ = 1.0;
  ptr_a_ = a_.data();
  ptr_b_ = b_.data();
  ptr_c_ = c_.data();
  reset_control();
}

bool Dgemm::reset() {
  // A fault-free run() mutates only C (accumulator, zero after setup) and
  // the per-worker control blocks; A, B, alpha and the base pointers are
  // read-only. No reallocation, so registered site pointers stay valid.
  for (auto& v : c_.span()) v = 0.0;
  reset_control();
  return true;
}

void Dgemm::run(phi::Device& device, fi::ProgressTracker& progress) {
  // alpha and the base pointers are re-read per row through volatile
  // glvalues so a corrupted constant or pointer affects every row computed
  // after the flip.
  const volatile double* alpha = &alpha_;
  const double* const volatile* pa = &ptr_a_;
  const double* const volatile* pb = &ptr_b_;
  double* const volatile* pc = &ptr_c_;

  // Prologue: every hardware thread's loop-invariant control state (bounds,
  // strides) is written up front, as it is live for the whole kernel on the
  // real device. A corruption of any thread's bounds before that thread
  // runs is consumed, not overwritten.
  progress.enter_phase("setup-bounds");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    const auto [row_begin, row_end] =
        phi::Device::partition(n_, ctx.worker, ctx.num_workers);
    cb.set(s_row_begin_, static_cast<std::int64_t>(row_begin));
    cb.set(s_row_end_, static_cast<std::int64_t>(row_end));
    cb.set(s_n_, static_cast<std::int64_t>(n_));
    cb.set(s_lda_, static_cast<std::int64_t>(n_));
  });

  progress.enter_phase("gemm");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    phi::ControlBlock& cb = control(ctx.worker);
    for (cb.set(s_i_, cb.get(s_row_begin_)); cb.get(s_i_) < cb.get(s_row_end_);
         cb.add(s_i_, 1)) {
      const std::int64_t i = cb.get(s_i_);
      const double row_alpha = *alpha;
      const double* a = *pa;
      const double* b = *pb;
      double* c = *pc;
      cb.set(s_a_row_, i * cb.get(s_lda_));
      cb.set(s_c_row_, i * cb.get(s_lda_));
      for (cb.set(s_k_, 0); cb.get(s_k_) < cb.get(s_n_); cb.add(s_k_, 1)) {
        const std::int64_t k = cb.get(s_k_);
        const double aik = row_alpha * a[cb.get(s_a_row_) + k];
        const double* b_row = b + k * cb.get(s_lda_);
        double* c_row = c + cb.get(s_c_row_);
        for (cb.set(s_j_, 0); cb.get(s_j_) < cb.get(s_n_); cb.add(s_j_, 1)) {
          const std::int64_t j = cb.get(s_j_);
          c_row[j] += aik * b_row[j];
        }
      }
      ctx.counters->add_flops(2 * n_ * n_);
      progress.tick();
    }
  });
  // Unique data traffic (B stays cache-resident across rows): A and B read
  // once, C written once. This is what makes DGEMM compute-bound.
  device.counters().add_bytes_read(2 * n_ * n_ * sizeof(double));
  device.counters().add_bytes_written(n_ * n_ * sizeof(double));
}

void Dgemm::register_sites(fi::SiteRegistry& registry) {
  registry.add_global_array<double>("matrix_a", "matrix", a_.span());
  registry.add_global_array<double>("matrix_b", "matrix", b_.span());
  registry.add_global_array<double>("matrix_c", "matrix", c_.span());
  registry.add_global_scalar("alpha", "constant", alpha_);
  registry.add_global_scalar("ptr_a", "pointer", ptr_a_);
  registry.add_global_scalar("ptr_b", "pointer", ptr_b_);
  registry.add_global_scalar("ptr_c", "pointer", ptr_c_);
  register_control_sites(registry);
}

std::span<const std::byte> Dgemm::output_bytes() const {
  return {reinterpret_cast<const std::byte*>(c_.data()),
          c_.size() * sizeof(double)};
}

}  // namespace phifi::work

// HotSpot: iterative thermal simulation of a chip floorplan (Rodinia).
//
// Memory-bound stencil (Sec. 3.2): each iteration updates every cell's
// temperature from its four neighbors, its power draw, and the ambient sink.
// The open-system dissipation is what attenuates injected errors over the
// remaining iterations — the mechanism behind HotSpot's steep FIT-vs-
// tolerance curve (Fig. 3) and its low Single-model SDC PVF (Fig. 5a).
#pragma once

#include "mitigation/dwc.hpp"
#include "util/array_view.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class HotSpot : public WorkloadBase {
 public:
  /// `hardened` enables the Sec. 6.1 mitigation for HotSpot's critical
  /// portions: TMR on the RC constants plus per-iteration scrubbing
  /// (refresh) of the replicated per-thread control bounds. The TMR copies
  /// are themselves registered as injection sites.
  explicit HotSpot(std::size_t rows = 96, std::size_t cols = 96,
                   unsigned iterations = 48, unsigned workers = kKncWorkers,
                   bool hardened = false);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;
  bool reset() override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = cols_, .height = rows_};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF32;
  }
  /// One tick per row per iteration: injections land inside the sweep,
  /// while loop state and the ping-pong pointers are live.
  [[nodiscard]] std::uint64_t total_steps() const override {
    return static_cast<std::uint64_t>(iterations_) * rows_;
  }

  [[nodiscard]] std::span<const float> temperatures() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  unsigned iterations_;
  std::uint64_t input_seed_ = 0;  ///< stored by setup() for reset()
  util::AlignedBuffer<float> temp_[2];  // ping-pong buffers
  util::AlignedBuffer<float> power_;
  unsigned final_buffer_ = 0;

  // Physical constants of the RC thermal model (the paper found HotSpot's
  // constants and control variables to be its critical portions, Sec. 6).
  float rx_inv_ = 0.0f;
  float ry_inv_ = 0.0f;
  float rz_inv_ = 0.0f;
  float step_div_cap_ = 0.0f;
  float amb_temp_ = 0.0f;

  // Ping-pong buffer pointers, swapped each iteration and re-read per row;
  // registered as injection sites like any other frame variable.
  const float* ptr_tin_ = nullptr;
  float* ptr_tout_ = nullptr;
  const float* ptr_power_ = nullptr;

  // Hardening state (used only when hardened_): TMR shadows of the five
  // constants, stored as float bit patterns.
  bool hardened_ = false;
  static constexpr std::size_t kConstantCount = 5;
  mitigation::Tmr<std::uint32_t> shadows_[kConstantCount];

  void write_worker_bounds(phi::Device& device);
  void scrub_constants();
  float* constant_by_index(std::size_t index);
  /// Shared body of setup() and reset(): (re)builds the thermal state from
  /// the input seed. Same-size resize never reallocates, so on the reset()
  /// path every registered site pointer stays valid.
  void rebuild_thermal_state(std::uint64_t input_seed);

  phi::ControlSlot s_row_ = declare_slot("row");
  phi::ControlSlot s_col_ = declare_slot("col");
  phi::ControlSlot s_row_begin_ = declare_slot("row_begin");
  phi::ControlSlot s_row_end_ = declare_slot("row_end");
  phi::ControlSlot s_ncols_ = declare_slot("ncols");
  phi::ControlSlot s_nrows_ = declare_slot("nrows");
  phi::ControlSlot s_idx_ = declare_slot("idx");
};

}  // namespace phifi::work

#include "workloads/hardened.hpp"

#include <cstring>

namespace phifi::work {

AbftDgemm::AbftDgemm(std::size_t n, unsigned workers) : Dgemm(n, workers) {
  set_name("DGEMM+ABFT");
}

void AbftDgemm::setup(std::uint64_t input_seed) {
  Dgemm::setup(input_seed);
  // Checksums are captured from the pristine inputs, before any fault can
  // land; this is the O(n^2) encode step of Huang-Abraham.
  abft_ = std::make_unique<mitigation::AbftGemm>(a(), b(), n());
  last_report_.reset();
}

void AbftDgemm::run(phi::Device& device, fi::ProgressTracker& progress) {
  Dgemm::run(device, progress);
  progress.enter_phase("abft-check");
  last_report_ = abft_->check_and_correct(c());
  if (last_report_->uncorrectable) {
    // Detection without correction: abort cleanly, converting a silent
    // corruption into a detected error. A real deployment would trigger
    // recomputation here.
    throw HardeningDetected("ABFT checksum mismatch not correctable");
  }
}

void AbftDgemm::register_sites(fi::SiteRegistry& registry) {
  Dgemm::register_sites(registry);
  registry.add_global_array<double>("abft_row_sums", "constant",
                                    abft_->mutable_row_sums());
  registry.add_global_array<double>("abft_col_sums", "constant",
                                    abft_->mutable_col_sums());
}

RmtLavaMd::RmtLavaMd(std::size_t boxes_per_dim,
                     std::size_t particles_per_box, unsigned workers)
    : LavaMd(boxes_per_dim, particles_per_box, workers) {
  set_name("LavaMD+RMT");
}

void RmtLavaMd::run(phi::Device& device, fi::ProgressTracker& progress) {
  LavaMd::run(device, progress);
  const auto forces = LavaMd::forces();
  first_pass_.assign(forces.begin(), forces.end());
  progress.enter_phase("rmt-second-pass");
  LavaMd::run(device, progress);
  progress.enter_phase("rmt-compare");
  const auto second = LavaMd::forces();
  if (std::memcmp(first_pass_.data(), second.data(),
                  second.size() * sizeof(double)) != 0) {
    throw HardeningDetected("redundant LavaMD executions disagree");
  }
}

std::unique_ptr<fi::Workload> make_abft_dgemm() {
  return std::make_unique<AbftDgemm>();
}

std::unique_ptr<fi::Workload> make_hardened_hotspot() {
  return std::make_unique<HotSpot>(96, 96, 48, kKncWorkers,
                                   /*hardened=*/true);
}

std::unique_ptr<fi::Workload> make_rmt_lavamd() {
  return std::make_unique<RmtLavaMd>();
}

std::unique_ptr<fi::Workload> make_hardened_clamr() {
  return std::make_unique<Clamr>(clamr::MeshParams{}, 27, kKncWorkers,
                                 /*hardened=*/true);
}

}  // namespace phifi::work

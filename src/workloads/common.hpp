// Shared scaffolding for the six benchmarks.
//
// Each workload owns a per-logical-worker control-block array (the paper's
// replicated loop control variables; see phi/control_block.hpp) and
// registers both its data arrays and every used control slot of every
// worker as injection sites. Workload sizes are chosen so one trial runs in
// milliseconds: a fault-injection campaign is thousands of forked runs.
#pragma once

#include <string>
#include <vector>

#include "core/workload_api.hpp"
#include "phi/control_block.hpp"
#include "util/rng.hpp"

namespace phifi::work {

/// Logical hardware threads the benchmarks fan out to: 57 cores x 4 threads,
/// the 3120A's full complement. This count (not the host's core count) is
/// what determines how much replicated control state exists.
inline constexpr unsigned kKncWorkers = 228;

class WorkloadBase : public fi::Workload {
 public:
  WorkloadBase(std::string name, unsigned time_windows, unsigned workers)
      : name_(std::move(name)), windows_(time_windows), workers_(workers) {
    control_.resize(workers_);
  }

  [[nodiscard]] std::string_view name() const final { return name_; }
  [[nodiscard]] unsigned time_windows() const final { return windows_; }
  [[nodiscard]] unsigned workers() const { return workers_; }

 protected:
  /// Renames the workload (hardened variants tag themselves, e.g.
  /// "DGEMM+ABFT").
  void set_name(std::string name) { name_ = std::move(name); }

  /// The per-worker frame. Kernels index it with ctx.worker.
  [[nodiscard]] phi::ControlBlock& control(unsigned worker) {
    return control_[worker];
  }

  /// Declares a control slot used by this workload's kernels.
  phi::ControlSlot declare_slot(std::string_view slot_name) {
    return layout_.add(slot_name);
  }

  /// Registers every declared slot of every worker as a worker-frame site
  /// with the given category (the paper groups them as "control").
  void register_control_sites(fi::SiteRegistry& registry,
                              std::string category = "control") {
    for (unsigned w = 0; w < workers_; ++w) {
      for (std::size_t s = 0; s < layout_.count(); ++s) {
        registry.add_worker(static_cast<int>(w),
                            std::string(layout_.name(s)), category,
                            control_[w].slot_bytes(s), sizeof(std::int64_t));
      }
    }
  }

  void reset_control() {
    for (auto& block : control_) block.clear();
  }

 private:
  std::string name_;
  unsigned windows_;
  unsigned workers_;
  phi::ControlLayout layout_;
  std::vector<phi::ControlBlock> control_;
};

}  // namespace phifi::work

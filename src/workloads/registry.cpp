#include "workloads/registry.hpp"

#include <array>
#include <memory>

#include "workloads/clamr_workload.hpp"
#include "workloads/dgemm.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lavamd.hpp"
#include "workloads/lud.hpp"
#include "workloads/nw.hpp"

namespace phifi::work {

namespace {

std::unique_ptr<fi::Workload> make_clamr() {
  return std::make_unique<Clamr>();
}
std::unique_ptr<fi::Workload> make_dgemm() {
  return std::make_unique<Dgemm>();
}
std::unique_ptr<fi::Workload> make_hotspot() {
  return std::make_unique<HotSpot>();
}
std::unique_ptr<fi::Workload> make_lavamd() {
  return std::make_unique<LavaMd>();
}
std::unique_ptr<fi::Workload> make_lud() { return std::make_unique<Lud>(); }
std::unique_ptr<fi::Workload> make_nw() { return std::make_unique<Nw>(); }

constexpr std::array<WorkloadInfo, 6> kWorkloads = {{
    {"CLAMR", &make_clamr, true},
    {"DGEMM", &make_dgemm, true},
    {"HotSpot", &make_hotspot, true},
    {"LavaMD", &make_lavamd, true},
    {"LUD", &make_lud, true},
    {"NW", &make_nw, false},
}};

}  // namespace

std::span<const WorkloadInfo> all_workloads() { return kWorkloads; }

fi::WorkloadFactory find_workload(std::string_view name) {
  for (const WorkloadInfo& info : kWorkloads) {
    if (info.name == name) return info.factory;
  }
  return nullptr;
}

}  // namespace phifi::work

// Central registry of the six benchmarks with their default configurations,
// used by the campaign benches, examples, and the beam simulator.
#pragma once

#include <span>
#include <string_view>

#include "core/workload_api.hpp"

namespace phifi::work {

struct WorkloadInfo {
  std::string_view name;
  fi::WorkloadFactory factory;
  /// Whether the paper beam-tested it (NW is fault-injection-only).
  bool beam_tested;
};

/// All six benchmarks in the paper's order: CLAMR, DGEMM, HotSpot, LavaMD,
/// LUD, NW.
std::span<const WorkloadInfo> all_workloads();

/// Case-sensitive lookup by name; returns nullptr if unknown.
fi::WorkloadFactory find_workload(std::string_view name);

}  // namespace phifi::work

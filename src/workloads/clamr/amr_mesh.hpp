// The cell-based AMR mesh of the CLAMR mini-app.
//
// Cells tile a square domain; each cell is a quadrant at quadtree depth
// `depth` (the base grid sits at depth log2(base_size), refinement adds up
// to `max_refine` levels). State is a linearized shallow-water field
// (h, u, v) advanced with a Lax-Friedrichs step; neighbors across
// refinement levels are found through the Quadtree. Each timestep the mesh
// is re-sorted along the Z-order curve — coarsening depends on sibling
// adjacency in that order, the Sort/Tree structure the paper's criticality
// analysis targets.
//
// All arrays are preallocated at capacity (the fully refined mesh) and never
// reallocate, so injection-site pointers stay stable across regridding.
#pragma once

#include <cstdint>

#include "util/array_view.hpp"
#include "workloads/clamr/quadtree.hpp"

namespace phifi::work::clamr {

struct MeshParams {
  std::uint32_t base_size = 16;  ///< level-0 cells per edge (power of two)
  int max_refine = 2;            ///< extra refinement levels
  float wave_speed2 = 1.0f;      ///< g*H of the linearized equations
  float dt = 0.35f;              ///< timestep (fine cell width = 1)
  // Hysteresis chosen so the refined region tracks the expanding wave
  // front: the cell count peaks about a third into the run and then falls
  // as Lax-Friedrichs dissipation flattens the wave — the paper's "CLAMR
  // becomes more sensitive when the number of active cells reaches its
  // maximum" dynamic (Fig. 6, window 3 of 9).
  float refine_threshold = 0.04f;
  float coarsen_threshold = 0.015f;

  [[nodiscard]] std::uint32_t fine_size() const {
    return base_size << max_refine;
  }
  [[nodiscard]] int base_depth() const {
    int d = 0;
    while ((1u << d) < base_size) ++d;
    return d;
  }
};

class AmrMesh {
 public:
  explicit AmrMesh(MeshParams params);

  /// Resets to the base grid with a Gaussian water-column hump in the
  /// center (the dam-break / wave-propagation initial condition).
  void init_dam_break(float amplitude = 0.5f);

  [[nodiscard]] std::size_t cell_count() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const MeshParams& params() const { return params_; }

  /// Writes each cell's Z-order key (computed at fine resolution) into
  /// keys[0..cell_count).
  void compute_keys(std::span<std::uint32_t> keys) const;

  /// Reorders the cell arrays so that cell r is the cell previously at
  /// index perm[r]. perm must be a permutation of [0, cell_count).
  void apply_permutation(std::span<const std::int32_t> perm);

  /// Rebuilds `tree` from the current cells.
  void build_tree(Quadtree& tree) const;

  /// Advances one cell (by index) of the Lax-Friedrichs step, reading the
  /// current state and `tree`, writing the scratch state. Thread-safe for
  /// disjoint cells.
  void compute_cell(const Quadtree& tree, std::size_t cell);

  /// Publishes the scratch state computed by compute_cell as current.
  void swap_state();

  /// Refines/coarsens based on the current state's gradients, using `tree`
  /// for neighbor lookups and visiting cells in the Z-order given by
  /// `order` (rank -> cell index; empty means the arrays are already
  /// sorted). Enforces the 2:1 grading constraint (no cell ends up more
  /// than one level coarser than a face neighbor), as real CLAMR meshes
  /// do. The rebuilt arrays come out in Z-order, so regridding doubles as
  /// the reorder step. Returns the new cell count.
  std::size_t regrid(const Quadtree& tree,
                     std::span<const std::int32_t> order = {});

  /// True if every pair of face neighbors differs by at most one level.
  /// `tree` must be built from the current cells.
  [[nodiscard]] bool is_graded(const Quadtree& tree) const;

  /// Samples h onto the fine grid: out has fine_size^2 entries, row-major.
  void rasterize(std::span<float> out) const;

  /// Total water volume (h * area); conserved up to boundary effects.
  [[nodiscard]] double total_volume() const;

  // Raw arrays for injection-site registration (full capacity).
  [[nodiscard]] std::span<float> h_buffer() { return h_.span(); }
  [[nodiscard]] std::span<float> u_buffer() { return u_.span(); }
  [[nodiscard]] std::span<float> v_buffer() { return v_.span(); }
  [[nodiscard]] std::span<std::int32_t> x_buffer() { return x_.span(); }
  [[nodiscard]] std::span<std::int32_t> y_buffer() { return y_.span(); }
  [[nodiscard]] std::span<std::int32_t> depth_buffer() {
    return depth_.span();
  }
  [[nodiscard]] std::span<float> hn_buffer() { return hn_.span(); }
  [[nodiscard]] std::span<float> un_buffer() { return un_.span(); }
  [[nodiscard]] std::span<float> vn_buffer() { return vn_.span(); }
  [[nodiscard]] std::span<std::int32_t> marks_buffer() {
    return marks_.span();
  }
  /// Mutable access for constant-site registration (dt, thresholds, ...).
  [[nodiscard]] MeshParams& mutable_params() { return params_; }

  [[nodiscard]] std::span<const float> h() const {
    return {h_.data(), count_};
  }
  [[nodiscard]] std::span<const std::int32_t> depth() const {
    return {depth_.data(), count_};
  }
  [[nodiscard]] std::span<const std::int32_t> x() const {
    return {x_.data(), count_};
  }
  [[nodiscard]] std::span<const std::int32_t> y() const {
    return {y_.data(), count_};
  }

 private:
  /// Neighbor state at the four faces of cell `cell` (self at boundaries).
  struct Neighborhood {
    float h_e, h_w, h_n, h_s;
    float u_e, u_w, u_n, u_s;
    float v_e, v_w, v_n, v_s;
  };
  Neighborhood gather(const Quadtree& tree, std::size_t cell) const;

  MeshParams params_;
  std::size_t capacity_;
  std::size_t count_ = 0;

  // Cell geometry: quadrant coordinates at the cell's own depth.
  util::AlignedBuffer<std::int32_t> x_;
  util::AlignedBuffer<std::int32_t> y_;
  util::AlignedBuffer<std::int32_t> depth_;
  // State and Lax-Friedrichs scratch.
  util::AlignedBuffer<float> h_, u_, v_;
  util::AlignedBuffer<float> hn_, un_, vn_;
  /// Fine-grid sample points on the quarter positions of each face (two
  /// per face: a face can abut two finer neighbors), used by the grading
  /// pass and checker. Order: E, E, W, W, N, N, S, S.
  struct FacePoints {
    std::int64_t fx[8];
    std::int64_t fy[8];
  };
  [[nodiscard]] FacePoints face_points(std::size_t cell) const;

  // Regrid staging buffers, refine/coarsen marks, and the rank inverse
  // used by the grading pass.
  util::AlignedBuffer<std::int32_t> rx_, ry_, rdepth_, marks_;
  util::AlignedBuffer<std::int32_t> rank_of_cell_;
  util::AlignedBuffer<float> rh_, ru_, rv_;
};

}  // namespace phifi::work::clamr

#include "workloads/clamr/amr_mesh.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "workloads/clamr/zorder.hpp"

namespace phifi::work::clamr {

AmrMesh::AmrMesh(MeshParams params)
    : params_(params),
      capacity_(static_cast<std::size_t>(params.fine_size()) *
                params.fine_size()) {
  x_.resize(capacity_);
  y_.resize(capacity_);
  depth_.resize(capacity_);
  h_.resize(capacity_);
  u_.resize(capacity_);
  v_.resize(capacity_);
  hn_.resize(capacity_);
  un_.resize(capacity_);
  vn_.resize(capacity_);
  rx_.resize(capacity_);
  ry_.resize(capacity_);
  rdepth_.resize(capacity_);
  marks_.resize(capacity_);
  rank_of_cell_.resize(capacity_);
  rh_.resize(capacity_);
  ru_.resize(capacity_);
  rv_.resize(capacity_);
}

void AmrMesh::init_dam_break(float amplitude) {
  const std::uint32_t base = params_.base_size;
  const int depth = params_.base_depth();
  const float center = static_cast<float>(base) / 2.0f;
  const float sigma = static_cast<float>(base) / 16.0f;
  count_ = 0;
  for (std::uint32_t j = 0; j < base; ++j) {
    for (std::uint32_t i = 0; i < base; ++i) {
      const std::size_t c = count_++;
      x_[c] = static_cast<std::int32_t>(i);
      y_[c] = static_cast<std::int32_t>(j);
      depth_[c] = depth;
      const float dx = (static_cast<float>(i) + 0.5f) - center;
      const float dy = (static_cast<float>(j) + 0.5f) - center;
      h_[c] = 1.0f + amplitude * std::exp(-(dx * dx + dy * dy) /
                                          (2.0f * sigma * sigma));
      u_[c] = 0.0f;
      v_[c] = 0.0f;
    }
  }
}

void AmrMesh::compute_keys(std::span<std::uint32_t> keys) const {
  assert(keys.size() >= count_);
  const int fine_depth = params_.base_depth() + params_.max_refine;
  for (std::size_t c = 0; c < count_; ++c) {
    const int shift = fine_depth - depth_[c];
    keys[c] = morton_encode(static_cast<std::uint32_t>(x_[c]) << shift,
                            static_cast<std::uint32_t>(y_[c]) << shift);
  }
}

void AmrMesh::apply_permutation(std::span<const std::int32_t> perm) {
  assert(perm.size() >= count_);
  for (std::size_t r = 0; r < count_; ++r) {
    const std::int32_t c = perm[r];
    rx_[r] = x_[c];
    ry_[r] = y_[c];
    rdepth_[r] = depth_[c];
    rh_[r] = h_[c];
    ru_[r] = u_[c];
    rv_[r] = v_[c];
  }
  std::memcpy(x_.data(), rx_.data(), count_ * sizeof(std::int32_t));
  std::memcpy(y_.data(), ry_.data(), count_ * sizeof(std::int32_t));
  std::memcpy(depth_.data(), rdepth_.data(), count_ * sizeof(std::int32_t));
  std::memcpy(h_.data(), rh_.data(), count_ * sizeof(float));
  std::memcpy(u_.data(), ru_.data(), count_ * sizeof(float));
  std::memcpy(v_.data(), rv_.data(), count_ * sizeof(float));
}

void AmrMesh::build_tree(Quadtree& tree) const {
  tree.build({x_.data(), count_}, {y_.data(), count_},
             {depth_.data(), count_}, count_);
}

AmrMesh::FacePoints AmrMesh::face_points(std::size_t cell) const {
  const std::uint32_t fine = params_.fine_size();
  const std::int64_t w = fine >> depth_[cell];
  const std::int64_t ox = static_cast<std::int64_t>(x_[cell]) * w;
  const std::int64_t oy = static_cast<std::int64_t>(y_[cell]) * w;
  const std::int64_t q1 = w / 4;            // lower quarter offset
  const std::int64_t q3 = w - 1 - w / 4;    // upper quarter offset
  return {.fx = {ox + w, ox + w, ox - 1, ox - 1, ox + q1, ox + q3, ox + q1,
                 ox + q3},
          .fy = {oy + q1, oy + q3, oy + q1, oy + q3, oy + w, oy + w, oy - 1,
                 oy - 1}};
}

bool AmrMesh::is_graded(const Quadtree& tree) const {
  for (std::size_t c = 0; c < count_; ++c) {
    const FacePoints faces = face_points(c);
    for (int f = 0; f < 8; ++f) {
      const std::int32_t nb = tree.locate(faces.fx[f], faces.fy[f]);
      if (nb == Quadtree::kNull) continue;  // domain boundary
      if (std::abs(depth_[static_cast<std::size_t>(nb)] - depth_[c]) > 1) {
        return false;
      }
    }
  }
  return true;
}

AmrMesh::Neighborhood AmrMesh::gather(const Quadtree& tree,
                                      std::size_t cell) const {
  const std::uint32_t fine = params_.fine_size();
  const std::int64_t w = fine >> depth_[cell];
  const std::int64_t ox = static_cast<std::int64_t>(x_[cell]) * w;
  const std::int64_t oy = static_cast<std::int64_t>(y_[cell]) * w;
  const std::int64_t mx = ox + w / 2;
  const std::int64_t my = oy + w / 2;

  auto lookup = [&](std::int64_t fx, std::int64_t fy) -> std::int32_t {
    const std::int32_t nb = tree.locate(fx, fy);
    return nb == Quadtree::kNull ? static_cast<std::int32_t>(cell) : nb;
  };
  const std::int32_t e = lookup(ox + w, my);
  const std::int32_t wb = lookup(ox - 1, my);
  const std::int32_t n = lookup(mx, oy + w);
  const std::int32_t s = lookup(mx, oy - 1);
  return {.h_e = h_[e], .h_w = h_[wb], .h_n = h_[n], .h_s = h_[s],
          .u_e = u_[e], .u_w = u_[wb], .u_n = u_[n], .u_s = u_[s],
          .v_e = v_[e], .v_w = v_[wb], .v_n = v_[n], .v_s = v_[s]};
}

void AmrMesh::compute_cell(const Quadtree& tree, std::size_t cell) {
  const Neighborhood nb = gather(tree, cell);
  const float dx =
      static_cast<float>(params_.fine_size() >> depth_[cell]);
  const float lam = params_.dt / (2.0f * dx);
  const float c2 = params_.wave_speed2;
  // Lax-Friedrichs for the linearized shallow-water system
  //   h_t = -(u_x + v_y),  u_t = -c^2 h_x,  v_t = -c^2 h_y.
  hn_[cell] = 0.25f * (nb.h_e + nb.h_w + nb.h_n + nb.h_s) -
              lam * ((nb.u_e - nb.u_w) + (nb.v_n - nb.v_s));
  un_[cell] =
      0.25f * (nb.u_e + nb.u_w + nb.u_n + nb.u_s) - lam * c2 * (nb.h_e - nb.h_w);
  vn_[cell] =
      0.25f * (nb.v_e + nb.v_w + nb.v_n + nb.v_s) - lam * c2 * (nb.h_n - nb.h_s);
}

void AmrMesh::swap_state() {
  std::memcpy(h_.data(), hn_.data(), count_ * sizeof(float));
  std::memcpy(u_.data(), un_.data(), count_ * sizeof(float));
  std::memcpy(v_.data(), vn_.data(), count_ * sizeof(float));
}

std::size_t AmrMesh::regrid(const Quadtree& tree,
                            std::span<const std::int32_t> order) {
  const int base_depth = params_.base_depth();
  const int fine_depth = base_depth + params_.max_refine;

  // Rank -> cell index. No bounds checks on `order`: it is a registered
  // injection site, and a corrupted permutation entry must have its real
  // effect (a wild cell read), as in the instrumented application.
  auto cell_at = [this, order](std::size_t rank) -> std::size_t {
    return order.empty() ? rank : static_cast<std::size_t>(order[rank]);
  };

  // Gradient-based marks: 1 = refine, -1 = coarsen candidate, 0 = keep.
  // Indexed by rank, like the rebuild scan below.
  for (std::size_t r = 0; r < count_; ++r) {
    const std::size_t c = cell_at(r);
    const Neighborhood nb = gather(tree, c);
    const float grad = std::fabs(nb.h_e - nb.h_w) + std::fabs(nb.h_n - nb.h_s);
    std::int32_t mark = 0;
    if (grad > params_.refine_threshold && depth_[c] < fine_depth) {
      mark = 1;
    } else if (grad < params_.coarsen_threshold && depth_[c] > base_depth) {
      mark = -1;
    }
    marks_[r] = mark;
  }

  // 2:1 grading: no cell may end up more than one level coarser than a
  // face neighbor's post-regrid level. Violations are fixed by cancelling
  // coarsening first and force-refining if that is not enough; each sweep
  // can only raise marks, so the fixpoint terminates within max_refine+2
  // sweeps.
  for (std::size_t r = 0; r < count_; ++r) {
    rank_of_cell_[cell_at(r)] = static_cast<std::int32_t>(r);
  }
  bool changed = true;
  for (int sweep = 0; changed && sweep < params_.max_refine + 2; ++sweep) {
    changed = false;
    for (std::size_t r = 0; r < count_; ++r) {
      const std::size_t c = cell_at(r);
      const std::int32_t post_c = depth_[c] + marks_[r];
      std::int32_t max_neighbor_post = post_c;
      const FacePoints faces = face_points(c);
      for (int f = 0; f < 8; ++f) {
        const std::int32_t nb = tree.locate(faces.fx[f], faces.fy[f]);
        if (nb == Quadtree::kNull) continue;
        const std::int32_t rn = rank_of_cell_[static_cast<std::size_t>(nb)];
        const std::int32_t post_n =
            depth_[static_cast<std::size_t>(nb)] +
            marks_[static_cast<std::size_t>(rn)];
        max_neighbor_post = std::max(max_neighbor_post, post_n);
      }
      while (depth_[c] + marks_[r] < max_neighbor_post - 1 &&
             marks_[r] < 1 && depth_[c] + marks_[r] < fine_depth) {
        ++marks_[r];
        changed = true;
      }
    }
  }

  // Rebuild the cell list in Z-order: coarsen complete sibling groups
  // (contiguous in Z-order), refine marked cells, copy the rest.
  std::size_t out = 0;
  std::size_t r = 0;
  while (r < count_ && out < capacity_) {
    const std::size_t c = cell_at(r);
    // A sibling group: four rank-consecutive cells, same depth, same
    // parent, all marked for coarsening, first one is quadrant 0.
    if (marks_[r] == -1 && r + 3 < count_) {
      const std::int32_t d = depth_[c];
      bool group = (x_[c] % 2 == 0) && (y_[c] % 2 == 0);
      std::size_t sibling[4] = {c, 0, 0, 0};
      for (std::size_t s = 1; group && s < 4; ++s) {
        sibling[s] = cell_at(r + s);
        group = marks_[r + s] == -1 && depth_[sibling[s]] == d &&
                (x_[sibling[s]] >> 1) == (x_[c] >> 1) &&
                (y_[sibling[s]] >> 1) == (y_[c] >> 1);
      }
      if (group) {
        rx_[out] = x_[c] >> 1;
        ry_[out] = y_[c] >> 1;
        rdepth_[out] = d - 1;
        rh_[out] = 0.25f * (h_[sibling[0]] + h_[sibling[1]] +
                            h_[sibling[2]] + h_[sibling[3]]);
        ru_[out] = 0.25f * (u_[sibling[0]] + u_[sibling[1]] +
                            u_[sibling[2]] + u_[sibling[3]]);
        rv_[out] = 0.25f * (v_[sibling[0]] + v_[sibling[1]] +
                            v_[sibling[2]] + v_[sibling[3]]);
        out += 1;
        r += 4;
        continue;
      }
    }
    if (marks_[r] == 1 && out + 4 <= capacity_) {
      // Refine into four children, Z-order within the parent.
      for (int q = 0; q < 4; ++q) {
        rx_[out] = x_[c] * 2 + (q & 1);
        ry_[out] = y_[c] * 2 + (q >> 1);
        rdepth_[out] = depth_[c] + 1;
        rh_[out] = h_[c];
        ru_[out] = u_[c];
        rv_[out] = v_[c];
        ++out;
      }
      ++r;
      continue;
    }
    rx_[out] = x_[c];
    ry_[out] = y_[c];
    rdepth_[out] = depth_[c];
    rh_[out] = h_[c];
    ru_[out] = u_[c];
    rv_[out] = v_[c];
    ++out;
    ++r;
  }

  std::memcpy(x_.data(), rx_.data(), out * sizeof(std::int32_t));
  std::memcpy(y_.data(), ry_.data(), out * sizeof(std::int32_t));
  std::memcpy(depth_.data(), rdepth_.data(), out * sizeof(std::int32_t));
  std::memcpy(h_.data(), rh_.data(), out * sizeof(float));
  std::memcpy(u_.data(), ru_.data(), out * sizeof(float));
  std::memcpy(v_.data(), rv_.data(), out * sizeof(float));
  count_ = out;
  return count_;
}

void AmrMesh::rasterize(std::span<float> out) const {
  const std::uint32_t fine = params_.fine_size();
  assert(out.size() >= static_cast<std::size_t>(fine) * fine);
  for (std::size_t c = 0; c < count_; ++c) {
    const std::uint32_t w = fine >> depth_[c];
    const std::uint32_t ox = static_cast<std::uint32_t>(x_[c]) * w;
    const std::uint32_t oy = static_cast<std::uint32_t>(y_[c]) * w;
    for (std::uint32_t j = 0; j < w; ++j) {
      for (std::uint32_t i = 0; i < w; ++i) {
        const std::size_t px = ox + i;
        const std::size_t py = oy + j;
        if (px < fine && py < fine) out[py * fine + px] = h_[c];
      }
    }
  }
}

double AmrMesh::total_volume() const {
  double volume = 0.0;
  const std::uint32_t fine = params_.fine_size();
  for (std::size_t c = 0; c < count_; ++c) {
    const double w = static_cast<double>(fine >> depth_[c]);
    volume += static_cast<double>(h_[c]) * w * w;
  }
  return volume;
}

}  // namespace phifi::work::clamr

#include "workloads/clamr/quadtree.hpp"

#include <cassert>

namespace phifi::work::clamr {

Quadtree::Quadtree(std::uint32_t fine_size, std::size_t cell_capacity)
    : fine_size_(fine_size) {
  assert((fine_size & (fine_size - 1)) == 0 && "fine_size must be 2^k");
  // A full path per cell is the worst case; x2 headroom keeps rebuilds from
  // ever reallocating (site pointers must stay stable).
  const std::size_t node_capacity = cell_capacity * 2 + 64;
  children_.resize(node_capacity * 4);
  leaf_cell_.resize(node_capacity);
}

std::int32_t Quadtree::new_node() {
  assert(node_count_ < node_capacity());
  const auto node = static_cast<std::int32_t>(node_count_++);
  for (int q = 0; q < 4; ++q) children_[node * 4 + q] = kNull;
  leaf_cell_[node] = kNull;
  return node;
}

void Quadtree::build(std::span<const std::int32_t> cell_x,
                     std::span<const std::int32_t> cell_y,
                     std::span<const std::int32_t> cell_depth,
                     std::size_t count) {
  node_count_ = 0;
  cell_count_ = count;
  new_node();  // root
  for (std::size_t c = 0; c < count; ++c) {
    const auto depth = cell_depth[c];
    // Fine-grid corner of the cell's square.
    const std::uint32_t w = fine_size_ >> depth;
    std::uint32_t cx = static_cast<std::uint32_t>(cell_x[c]) * w;
    std::uint32_t cy = static_cast<std::uint32_t>(cell_y[c]) * w;

    std::int32_t node = 0;
    std::uint32_t node_size = fine_size_;
    std::uint32_t node_ox = 0;
    std::uint32_t node_oy = 0;
    for (std::int32_t d = 0; d < depth; ++d) {
      const std::uint32_t half = node_size / 2;
      const bool east = cx >= node_ox + half;
      const bool north = cy >= node_oy + half;
      const int q = (north ? 2 : 0) | (east ? 1 : 0);
      std::int32_t child = children_[node * 4 + q];
      if (child == kNull) {
        child = new_node();
        children_[node * 4 + q] = child;
      }
      if (east) node_ox += half;
      if (north) node_oy += half;
      node_size = half;
      node = child;
    }
    leaf_cell_[node] = static_cast<std::int32_t>(c);
  }
}

std::int32_t Quadtree::locate(std::int64_t fx, std::int64_t fy) const {
  if (fx < 0 || fy < 0 || fx >= static_cast<std::int64_t>(fine_size_) ||
      fy >= static_cast<std::int64_t>(fine_size_)) {
    return kNull;
  }
  std::int32_t node = 0;
  std::int64_t size = fine_size_;
  std::int64_t ox = 0;
  std::int64_t oy = 0;
  // Descent is depth-bounded: a corrupted child link may point anywhere, and
  // without the bound a cyclic link would hang every query.
  for (int d = 0; d < kMaxDescent; ++d) {
    if (safe_mode_ &&
        (node < 0 || static_cast<std::size_t>(node) >= node_count_)) {
      return kNull;  // corrupted link detected; caller degrades gracefully
    }
    const std::int32_t leaf = leaf_cell_[node];
    if (leaf != kNull) {
      if (safe_mode_ &&
          (leaf < 0 || static_cast<std::size_t>(leaf) >= cell_count_)) {
        return kNull;  // corrupted leaf payload
      }
      return leaf;
    }
    const std::int64_t half = size / 2;
    if (half == 0) return kNull;
    const bool east = fx >= ox + half;
    const bool north = fy >= oy + half;
    const int q = (north ? 2 : 0) | (east ? 1 : 0);
    const std::int32_t child = children_[node * 4 + q];
    if (child == kNull) return kNull;
    if (east) ox += half;
    if (north) oy += half;
    size = half;
    node = child;
  }
  return kNull;
}

}  // namespace phifi::work::clamr

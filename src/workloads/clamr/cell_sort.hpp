// The "Sort" portion of CLAMR: ordering cells by their Z-order key.
//
// Implemented as an explicit bottom-up merge sort over (key, index) pairs
// with its working buffers owned by this object so they can be registered
// as injection sites ("mesh.sort"). A corrupted key mis-orders the mesh
// (sibling groups break, coarsening goes wrong -> SDC); a corrupted
// permutation entry sends later passes to a wild cell index (-> DUE) —
// the two failure modes the paper measures for CLAMR's Sort (Sec. 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/array_view.hpp"

namespace phifi::work::clamr {

class CellSort {
 public:
  /// Allocates buffers for up to `capacity` cells.
  explicit CellSort(std::size_t capacity = 0) { reserve(capacity); }

  void reserve(std::size_t capacity) {
    keys_.resize(capacity);
    perm_.resize(capacity);
    scratch_keys_.resize(capacity);
    scratch_perm_.resize(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }

  /// Loads `count` keys (key[i] belongs to cell i) and sorts the implied
  /// permutation by key, stable. After the call, perm()[r] is the cell index
  /// of rank r. `pass_tick`, if set, is invoked after every merge pass so a
  /// fault-injection campaign can land flips *during* the sort, while the
  /// scratch buffers are live.
  void sort(std::span<const std::uint32_t> keys,
            const std::function<void()>& pass_tick = nullptr);

  [[nodiscard]] std::span<const std::uint32_t> keys() const {
    return {keys_.data(), count_};
  }
  [[nodiscard]] std::span<const std::int32_t> perm() const {
    return {perm_.data(), count_};
  }
  [[nodiscard]] std::size_t count() const { return count_; }

  /// Buffers for injection-site registration.
  [[nodiscard]] std::span<std::uint32_t> key_buffer() { return keys_.span(); }
  [[nodiscard]] std::span<std::int32_t> perm_buffer() { return perm_.span(); }
  [[nodiscard]] std::span<std::uint32_t> scratch_key_buffer() {
    return scratch_keys_.span();
  }
  [[nodiscard]] std::span<std::int32_t> scratch_perm_buffer() {
    return scratch_perm_.span();
  }

 private:
  void merge_pass(std::size_t width);

  util::AlignedBuffer<std::uint32_t> keys_;
  util::AlignedBuffer<std::int32_t> perm_;
  util::AlignedBuffer<std::uint32_t> scratch_keys_;
  util::AlignedBuffer<std::int32_t> scratch_perm_;
  std::size_t count_ = 0;
};

}  // namespace phifi::work::clamr

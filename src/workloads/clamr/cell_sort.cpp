#include "workloads/clamr/cell_sort.hpp"

#include <cassert>
#include <cstring>

namespace phifi::work::clamr {

void CellSort::sort(std::span<const std::uint32_t> keys,
                    const std::function<void()>& pass_tick) {
  assert(keys.size() <= capacity());
  count_ = keys.size();
  std::memcpy(keys_.data(), keys.data(), count_ * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < count_; ++i) {
    perm_[i] = static_cast<std::int32_t>(i);
  }
  for (std::size_t width = 1; width < count_; width *= 2) {
    merge_pass(width);
    if (pass_tick) pass_tick();
  }
}

void CellSort::merge_pass(std::size_t width) {
  const std::size_t n = count_;
  for (std::size_t lo = 0; lo < n; lo += 2 * width) {
    const std::size_t mid = std::min(lo + width, n);
    const std::size_t hi = std::min(lo + 2 * width, n);
    std::size_t a = lo;
    std::size_t b = mid;
    std::size_t out = lo;
    while (a < mid && b < hi) {
      // <= keeps the sort stable: equal keys retain cell-index order, which
      // keeps sibling groups deterministic for the coarsening pass.
      if (keys_[a] <= keys_[b]) {
        scratch_keys_[out] = keys_[a];
        scratch_perm_[out++] = perm_[a++];
      } else {
        scratch_keys_[out] = keys_[b];
        scratch_perm_[out++] = perm_[b++];
      }
    }
    while (a < mid) {
      scratch_keys_[out] = keys_[a];
      scratch_perm_[out++] = perm_[a++];
    }
    while (b < hi) {
      scratch_keys_[out] = keys_[b];
      scratch_perm_[out++] = perm_[b++];
    }
  }
  std::memcpy(keys_.data(), scratch_keys_.data(), n * sizeof(std::uint32_t));
  std::memcpy(perm_.data(), scratch_perm_.data(), n * sizeof(std::int32_t));
}

}  // namespace phifi::work::clamr

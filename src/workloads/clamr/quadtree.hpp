// The "Tree" portion of CLAMR: a quadtree for cell point-location.
//
// The mesh tiles a square domain; every AMR cell occupies one quadrant at
// its refinement depth. The tree is rebuilt each timestep from the current
// cell list and answers "which cell contains fine-grid point (x, y)?" —
// the query the solver uses to find face neighbors across refinement
// levels. Node storage is flat int32 arrays so the fault injector can
// corrupt child links ("mesh.tree"); a corrupted link sends a query into
// wild memory, the paper's dominant DUE source for CLAMR's Tree portion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/array_view.hpp"

namespace phifi::work::clamr {

class Quadtree {
 public:
  static constexpr std::int32_t kNull = -1;
  /// Hard bound on query descent; a corrupted child link can otherwise walk
  /// arbitrarily far. Deep enough for any legal tree (root + 16 levels).
  static constexpr int kMaxDescent = 24;

  /// `fine_size` is the finest-grid edge length (power of two). Capacity is
  /// the maximum number of cells the tree will index.
  Quadtree(std::uint32_t fine_size, std::size_t cell_capacity);

  /// Rebuilds the tree. Cell c covers the fine-grid square with corner
  /// (x[c]*w, y[c]*w) and edge w = fine_size >> depth[c], where depth is the
  /// cell's quadtree depth (0 = whole domain).
  void build(std::span<const std::int32_t> cell_x,
             std::span<const std::int32_t> cell_y,
             std::span<const std::int32_t> cell_depth, std::size_t count);

  /// Returns the index of the cell whose square contains (fx, fy), or kNull
  /// if the point is outside the domain / the tree is corrupted. By default
  /// no bounds are checked on child links (that is the point); in safe mode
  /// (the Sec. 6 "bounds-check child links during descent" mitigation) a
  /// corrupted link yields kNull instead of a wild read.
  [[nodiscard]] std::int32_t locate(std::int64_t fx, std::int64_t fy) const;

  /// Enables the hardened descent. Costs one compare per level.
  void set_safe_mode(bool safe) { safe_mode_ = safe; }
  [[nodiscard]] bool safe_mode() const { return safe_mode_; }

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t node_capacity() const { return leaf_cell_.size(); }
  [[nodiscard]] std::uint32_t fine_size() const { return fine_size_; }

  /// Raw arrays for injection-site registration.
  [[nodiscard]] std::span<std::int32_t> children_buffer() {
    return children_.span();
  }
  [[nodiscard]] std::span<std::int32_t> leaf_buffer() {
    return leaf_cell_.span();
  }

 private:
  std::int32_t new_node();

  std::uint32_t fine_size_;
  util::AlignedBuffer<std::int32_t> children_;   // 4 per node
  util::AlignedBuffer<std::int32_t> leaf_cell_;  // cell index or kNull
  std::size_t node_count_ = 0;
  std::size_t cell_count_ = 0;
  bool safe_mode_ = false;
};

}  // namespace phifi::work::clamr

// Morton (Z-order) keys for AMR cells.
//
// CLAMR orders its cells along a space-filling curve; sibling cells are
// contiguous in that order, which is what the coarsening pass relies on.
// Keys are computed at the finest-level resolution so cells of different
// refinement levels share one total order.
#pragma once

#include <cstdint>

namespace phifi::work::clamr {

/// Interleaves the low 16 bits of x and y: bit i of x lands at bit 2i,
/// bit i of y at bit 2i+1.
constexpr std::uint32_t morton_encode(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint32_t v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// Inverse of morton_encode.
constexpr void morton_decode(std::uint32_t key, std::uint32_t& x,
                             std::uint32_t& y) {
  auto collapse = [](std::uint32_t v) {
    v &= 0x55555555;
    v = (v | (v >> 1)) & 0x33333333;
    v = (v | (v >> 2)) & 0x0f0f0f0f;
    v = (v | (v >> 4)) & 0x00ff00ff;
    v = (v | (v >> 8)) & 0x0000ffff;
    return v;
  };
  x = collapse(key);
  y = collapse(key >> 1);
}

}  // namespace phifi::work::clamr

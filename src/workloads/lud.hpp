// LUD: in-place LU decomposition (Doolittle, no pivoting) of a dense
// single-precision matrix, as in the Rodinia suite.
//
// Dense linear algebra like DGEMM but with tighter row/column
// interdependencies: step k finalizes row k and column k, and every later
// element is updated at each step below its own pivot. Those dependencies
// are why mid-execution faults are the most critical (Fig. 6) and why LUD
// shows the highest SDC FIT under the beam (Fig. 2).
#pragma once

#include "util/array_view.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class Lud : public WorkloadBase {
 public:
  explicit Lud(std::size_t n = 96, unsigned workers = kKncWorkers);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = n_, .height = n_};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kF32;
  }
  /// Progress is ticked with weight (n-k)^2 per elimination step, matching
  /// the actual work, so time windows approximate wall-clock windows.
  [[nodiscard]] std::uint64_t total_steps() const override;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::span<const float> matrix() const { return a_.span(); }
  [[nodiscard]] std::span<const float> original() const {
    return original_.span();
  }

 private:
  std::size_t n_;
  util::AlignedBuffer<float> a_;         // decomposed in place
  util::AlignedBuffer<float> original_;  // kept for verification tests
  float* ptr_a_ = nullptr;  // base pointer, re-read per row (corruptible)

  phi::ControlSlot s_k_ = declare_slot("k");
  phi::ControlSlot s_i_ = declare_slot("i");
  phi::ControlSlot s_j_ = declare_slot("j");
  phi::ControlSlot s_begin_ = declare_slot("row_begin");
  phi::ControlSlot s_end_ = declare_slot("row_end");
  phi::ControlSlot s_n_ = declare_slot("n");
};

}  // namespace phifi::work

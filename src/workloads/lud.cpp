#include "workloads/lud.hpp"

namespace phifi::work {

Lud::Lud(std::size_t n, unsigned workers)
    : WorkloadBase("LUD", /*time_windows=*/4, workers), n_(n) {}

void Lud::setup(std::uint64_t input_seed) {
  util::Rng rng(input_seed ^ 0x10d);
  a_.resize(n_ * n_);
  original_.resize(n_ * n_);
  // Diagonally dominant so the factorization is stable without pivoting.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      a_[i * n_ + j] = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    a_[i * n_ + i] += static_cast<float>(n_);
  }
  for (std::size_t i = 0; i < n_ * n_; ++i) original_[i] = a_[i];
  ptr_a_ = a_.data();
  reset_control();
}

std::uint64_t Lud::total_steps() const {
  // One tick per updated row, weighted by its trailing length (n - k):
  // step k contributes (n-k-1)(n-k), ticked by the workers as they finish
  // rows so injections land inside the elimination step.
  std::uint64_t total = 0;
  for (std::size_t k = 0; k + 1 < n_; ++k) {
    total += (n_ - k - 1) * (n_ - k);
  }
  return total;
}

void Lud::run(phi::Device& device, fi::ProgressTracker& progress) {
  float* const volatile* pa = &ptr_a_;
  // Prologue: the leading dimension is loop-invariant; each hardware
  // thread's copy is written once and stays live for the whole run.
  progress.enter_phase("setup-bounds");
  device.launch(workers(), [&](phi::WorkerCtx& ctx) {
    control(ctx.worker).set(s_n_, static_cast<std::int64_t>(n_));
  });
  progress.enter_phase("factorize");
  for (std::size_t k = 0; k < n_; ++k) {
    // Step k: rows below the pivot scale their column-k entry and update
    // their trailing submatrix row. Row k and column k are final afterwards.
    const std::size_t remaining = n_ - k - 1;
    device.launch(workers(), [&, k](phi::WorkerCtx& ctx) {
      phi::ControlBlock& cb = control(ctx.worker);
      const auto [begin, end] =
          phi::Device::partition(remaining, ctx.worker, ctx.num_workers);
      cb.set(s_k_, static_cast<std::int64_t>(k));
      cb.set(s_begin_, static_cast<std::int64_t>(k + 1 + begin));
      cb.set(s_end_, static_cast<std::int64_t>(k + 1 + end));

      for (cb.set(s_i_, cb.get(s_begin_)); cb.get(s_i_) < cb.get(s_end_);
           cb.add(s_i_, 1)) {
        float* a = *pa;
        const std::int64_t i = cb.get(s_i_);
        const std::int64_t kk = cb.get(s_k_);
        const std::int64_t nn = cb.get(s_n_);
        const float pivot = a[kk * nn + kk];
        const float scale = a[i * nn + kk] / pivot;
        a[i * nn + kk] = scale;
        const float* pivot_row = a + kk * nn;
        float* row = a + i * nn;
        for (cb.set(s_j_, kk + 1); cb.get(s_j_) < nn; cb.add(s_j_, 1)) {
          const std::int64_t j = cb.get(s_j_);
          row[j] -= scale * pivot_row[j];
        }
        ctx.counters->add_flops(2 * (nn - kk));
        ctx.counters->add_bytes_read(2 * (nn - kk) * sizeof(float));
        ctx.counters->add_bytes_written((nn - kk) * sizeof(float));
        progress.tick(static_cast<std::uint64_t>(n_ - k));
      }
    });
  }
}

void Lud::register_sites(fi::SiteRegistry& registry) {
  registry.add_global_array<float>("matrix", "matrix", a_.span());
  registry.add_global_scalar("ptr_matrix", "pointer", ptr_a_);
  register_control_sites(registry);
}

std::span<const std::byte> Lud::output_bytes() const {
  return {reinterpret_cast<const std::byte*>(a_.data()),
          a_.size() * sizeof(float)};
}

}  // namespace phifi::work

// NW: Needleman-Wunsch global sequence alignment (Rodinia).
//
// Dynamic programming over an (L+1)x(L+1) int32 score matrix, filled along
// anti-diagonals. The similarity of two residues is looked up at runtime by
// indexing the substitution matrix with the sequence values — which is why
// Random/Double faults on the sequences produce wild reads (DUEs) while
// Zero faults mostly land on still-zero matrix cells and are masked, the
// model-dependent behaviour the paper reports for NW (Fig. 5, Sec. 6).
// NW is fault-injection-only in the paper (not beam tested).
#pragma once

#include <cstdint>

#include "util/array_view.hpp"
#include "workloads/common.hpp"

namespace phifi::work {

class Nw : public WorkloadBase {
 public:
  static constexpr std::size_t kAlphabet = 20;

  explicit Nw(std::size_t length = 192, unsigned workers = kKncWorkers);

  void setup(std::uint64_t input_seed) override;
  void run(phi::Device& device, fi::ProgressTracker& progress) override;
  void register_sites(fi::SiteRegistry& registry) override;

  [[nodiscard]] std::span<const std::byte> output_bytes() const override;
  [[nodiscard]] util::Shape output_shape() const override {
    return {.width = length_ + 1, .height = length_ + 1};
  }
  [[nodiscard]] fi::ElementType output_type() const override {
    return fi::ElementType::kI32;
  }
  [[nodiscard]] std::uint64_t total_steps() const override {
    return static_cast<std::uint64_t>(length_) * length_;
  }

  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] std::span<const std::int32_t> score() const {
    return score_.span();
  }
  /// Final alignment score (bottom-right cell).
  [[nodiscard]] std::int32_t alignment_score() const;

 private:
  std::size_t length_;
  util::AlignedBuffer<std::int32_t> score_;
  util::AlignedBuffer<std::int32_t> seq1_;
  util::AlignedBuffer<std::int32_t> seq2_;
  util::AlignedBuffer<std::int32_t> blosum_;  // kAlphabet x kAlphabet
  std::int32_t gap_penalty_ = 2;
  // Base pointers, re-read per diagonal chunk (corruptible frame variables).
  std::int32_t* ptr_score_ = nullptr;
  const std::int32_t* ptr_seq1_ = nullptr;
  const std::int32_t* ptr_seq2_ = nullptr;
  const std::int32_t* ptr_blosum_ = nullptr;

  phi::ControlSlot s_diag_ = declare_slot("diag");
  phi::ControlSlot s_i_ = declare_slot("i");
  phi::ControlSlot s_begin_ = declare_slot("cell_begin");
  phi::ControlSlot s_end_ = declare_slot("cell_end");
  phi::ControlSlot s_cols_ = declare_slot("cols");
  phi::ControlSlot s_penalty_ = declare_slot("penalty");
};

}  // namespace phifi::work

#include "phi/device_spec.hpp"

namespace phifi::phi {

DeviceSpec DeviceSpec::knights_corner_3120a() {
  DeviceSpec spec;
  spec.model = "Intel Xeon Phi 3120A (Knights Corner)";
  spec.physical_cores = 57;
  spec.threads_per_core = 4;
  spec.vector_bits = 512;
  spec.vector_registers_per_thread = 32;
  spec.l1_bytes_per_core = 64 * 1024;
  spec.l2_bytes_per_core = 512 * 1024;
  spec.dram_bytes = std::size_t{6} << 30;
  spec.process_nm = 22;
  spec.ecc_enabled = true;
  spec.clock_ghz = 1.1;
  return spec;
}

DeviceSpec DeviceSpec::test_device() {
  DeviceSpec spec;
  spec.model = "phifi test device";
  spec.physical_cores = 4;
  spec.threads_per_core = 2;
  spec.vector_bits = 128;
  spec.vector_registers_per_thread = 8;
  spec.l1_bytes_per_core = 16 * 1024;
  spec.l2_bytes_per_core = 64 * 1024;
  spec.dram_bytes = std::size_t{64} << 20;
  spec.process_nm = 22;
  spec.ecc_enabled = true;
  spec.clock_ghz = 1.0;
  return spec;
}

}  // namespace phifi::phi

#include "phi/device.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace phifi::phi {

// A tiny persistent pool. launch() publishes a Job (body + logical worker
// count); pool threads and the calling thread grab logical worker ids from
// an atomic ticket counter. Jobs are held by shared_ptr so a pool thread
// that wakes late can never touch a new job's tickets with an old body.
struct Device::Pool {
  struct Job {
    const std::function<void(unsigned)>* body = nullptr;
    unsigned total = 0;
    std::atomic<unsigned> next_ticket{0};
    std::atomic<unsigned> remaining{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
  };

  explicit Pool(unsigned threads) {
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void run(unsigned logical_workers,
           const std::function<void(unsigned)>& body) {
    if (logical_workers == 0) return;
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->total = logical_workers;
    job->remaining.store(logical_workers, std::memory_order_relaxed);
    {
      std::lock_guard lock(mutex_);
      job_ = job;
      ++generation_;
    }
    cv_.notify_all();
    drain(*job);  // the calling thread works too
    {
      // Wait until every logical worker completed; pool threads may still be
      // finishing their last ticket when our drain() runs out.
      std::unique_lock lock(mutex_);
      done_cv_.wait(lock, [&job] {
        return job->remaining.load(std::memory_order_acquire) == 0;
      });
      if (job_ == job) job_.reset();
    }
    if (job->first_error) std::rethrow_exception(job->first_error);
  }

 private:
  void worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this, seen_generation] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
      }
      if (job) drain(*job);
    }
  }

  void drain(Job& job) {
    while (true) {
      const unsigned ticket =
          job.next_ticket.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= job.total) break;
      try {
        (*job.body)(ticket);
      } catch (...) {
        std::lock_guard lock(job.error_mutex);
        if (!job.first_error) job.first_error = std::current_exception();
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(mutex_);  // pair with the waiter's predicate
        done_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

namespace {
unsigned default_os_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 4u);
}
}  // namespace

Device::Device(DeviceSpec spec, unsigned os_threads)
    : spec_(std::move(spec)),
      os_threads_(os_threads == 0 ? default_os_threads() : os_threads),
      control_blocks_(spec_.hardware_threads()),
      // The calling thread participates in every launch, so the pool only
      // needs os_threads_-1 extra threads.
      pool_(std::make_unique<Pool>(os_threads_ > 0 ? os_threads_ - 1 : 0)) {}

Device::~Device() = default;

ControlBlock& Device::control_block(unsigned worker) {
  assert(worker < control_blocks_.size());
  return control_blocks_[worker];
}

void Device::launch(unsigned workers,
                    const std::function<void(WorkerCtx&)>& body) {
  assert(workers <= spec_.hardware_threads());
  counters_.add_kernel_launch();
  counters_.add_logical_threads(workers);
  pool_->run(workers, [this, workers, &body](unsigned worker) {
    WorkerCtx ctx{.worker = worker,
                  .num_workers = workers,
                  .ctl = &control_blocks_[worker],
                  .counters = &counters_};
    body(ctx);
  });
}

void Device::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, WorkerCtx&)>& body) {
  const unsigned workers = spec_.hardware_threads();
  launch(workers, [count, workers, &body](WorkerCtx& ctx) {
    const auto [begin, end] = partition(count, ctx.worker, workers);
    if (begin < end) body(begin, end, ctx);
  });
}

std::pair<std::size_t, std::size_t> Device::partition(std::size_t count,
                                                      unsigned worker,
                                                      unsigned workers) {
  assert(workers > 0 && worker < workers);
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  const std::size_t begin = static_cast<std::size_t>(worker) * base +
                            std::min<std::size_t>(worker, extra);
  const std::size_t len = base + (worker < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace phifi::phi

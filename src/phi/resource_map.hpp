// Inventory of on-die state and its protection, for the radiation model.
//
// Sec. 2.1/3.1 of the paper: the 3120A's main storage structures (caches,
// register files, memory) are covered by MCA with SECDED ECC, while flip-
// flops in pipeline queues, logic gates, instruction dispatch units and the
// interconnect are unprotected — which is why the measured FIT is as high as
// 193 even with ECC enabled. The beam simulator samples strike targets
// proportionally to each resource's bit inventory times a per-class
// sensitivity, then filters through the protection scheme.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "phi/device_spec.hpp"

namespace phifi::phi {

enum class ResourceClass {
  kDram,            ///< on-board GDDR5 (excluded from the beam in the paper)
  kL2Cache,
  kL1Cache,
  kRegisterFile,    ///< scalar registers
  kVectorRegisters, ///< 512-bit vector register files
  kPipelineQueues,  ///< flip-flops in pipeline/store/load queues
  kDispatchLogic,   ///< instruction dispatch / decode logic
  kInterconnect,    ///< ring interconnect buffers and arbitration
};

enum class Protection {
  kSecded,  ///< single-error-correct, double-error-detect ECC
  kParity,  ///< detect-only
  kNone,
};

std::string_view to_string(ResourceClass cls);
std::string_view to_string(Protection protection);

struct Resource {
  ResourceClass cls;
  std::size_t bits = 0;
  Protection protection = Protection::kNone;
  /// Whether the resource sits in the beam spot. The paper kept the on-board
  /// DRAM out of the beam to focus on core reliability (Sec. 4.1).
  bool beam_exposed = true;
};

/// The per-device resource inventory.
class ResourceMap {
 public:
  /// Builds the inventory for a device spec. Cache/register sizes follow the
  /// spec directly; sequential/combinational logic bits are estimates scaled
  /// by core count (they are calibration knobs for the beam model, not
  /// claims about Intel's netlist).
  static ResourceMap for_spec(const DeviceSpec& spec);

  [[nodiscard]] std::span<const Resource> resources() const {
    return resources_;
  }

  [[nodiscard]] const Resource* find(ResourceClass cls) const;

  /// Total beam-exposed bits, optionally restricted to unprotected ones.
  [[nodiscard]] std::size_t exposed_bits(bool unprotected_only = false) const;

 private:
  std::vector<Resource> resources_;
};

}  // namespace phifi::phi

// Offload-style execution runtime emulating a many-thread coprocessor.
//
// The Knights Corner card runs kernels across up to 228 hardware threads.
// Reproducing the paper's reliability mechanisms does not require cycle
// accuracy; it requires the *software structure* of such a device:
//   * many logical hardware threads, each with private control state
//     (ControlBlock) that is replicated per thread and corruptible;
//   * shared arrays in device memory that all threads read/write;
//   * bulk-synchronous kernel launches.
// Logical hardware threads are multiplexed onto a small pool of OS threads
// (the host machine is much smaller than the card), which preserves all of
// the above while keeping a fault-injection trial cheap enough to run
// thousands of times.
//
// Restriction: a kernel body must not synchronize across logical workers
// (they may run sequentially on one OS thread). Express phases as separate
// launches, as offload programming models do.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "phi/control_block.hpp"
#include "phi/counters.hpp"
#include "phi/device_spec.hpp"

namespace phifi::phi {

class Device;

/// Everything a kernel body sees about the logical thread it runs on.
struct WorkerCtx {
  unsigned worker = 0;       ///< logical hardware-thread id
  unsigned num_workers = 1;  ///< logical threads in this launch
  ControlBlock* ctl = nullptr;
  Counters* counters = nullptr;

  [[nodiscard]] ControlBlock& control() const { return *ctl; }
};

class Device {
 public:
  /// Creates a device. `os_threads` is the size of the host thread pool
  /// backing the logical hardware threads; 0 picks a small default based on
  /// std::thread::hardware_concurrency().
  explicit Device(DeviceSpec spec = DeviceSpec::knights_corner_3120a(),
                  unsigned os_threads = 0);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] Counters& counters() { return counters_; }
  [[nodiscard]] unsigned os_threads() const { return os_threads_; }

  /// Per-logical-thread control block; valid for
  /// worker < spec().hardware_threads().
  [[nodiscard]] ControlBlock& control_block(unsigned worker);

  /// Runs `body` once per logical worker in [0, workers). Bulk-synchronous:
  /// returns after every logical worker finished. Exceptions thrown by the
  /// body are rethrown (first one wins) on the calling thread.
  void launch(unsigned workers, const std::function<void(WorkerCtx&)>& body);

  /// Block-partitions [0, count) across all hardware threads and invokes
  /// body(begin, end, ctx) per logical worker with a non-empty range.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, WorkerCtx&)>& body);

  /// Contiguous chunk of [0,count) owned by `worker` of `workers`.
  static std::pair<std::size_t, std::size_t> partition(std::size_t count,
                                                       unsigned worker,
                                                       unsigned workers);

 private:
  struct Pool;

  DeviceSpec spec_;
  unsigned os_threads_;
  Counters counters_;
  std::vector<ControlBlock> control_blocks_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace phifi::phi

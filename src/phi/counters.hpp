// Device performance counters.
//
// The paper characterizes benchmarks by arithmetic intensity (HotSpot is
// memory-bound, DGEMM compute-bound, Sec. 3.2/4.2) and uses that to explain
// FIT differences. Kernels report flops and bytes so the analysis layer can
// compute intensity; counters are relaxed atomics because exact totals, not
// ordering, are what matters.
#pragma once

#include <atomic>
#include <cstdint>

namespace phifi::phi {

struct CounterSnapshot {
  std::uint64_t flops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t logical_threads_run = 0;

  /// Total memory traffic (read + write), the denominator of intensity.
  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_read + bytes_written;
  }

  /// Flops per byte moved; 0 when no traffic was recorded.
  [[nodiscard]] double arithmetic_intensity() const {
    const std::uint64_t traffic = bytes_total();
    return traffic == 0 ? 0.0
                        : static_cast<double>(flops) /
                              static_cast<double>(traffic);
  }
};

class Counters {
 public:
  void add_flops(std::uint64_t n) {
    flops_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_bytes_read(std::uint64_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_bytes_written(std::uint64_t n) {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_kernel_launch() {
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_logical_threads(std::uint64_t n) {
    logical_threads_run_.fetch_add(n, std::memory_order_relaxed);
  }

  void reset() {
    flops_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    kernel_launches_.store(0, std::memory_order_relaxed);
    logical_threads_run_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] CounterSnapshot snapshot() const {
    return {.flops = flops_.load(std::memory_order_relaxed),
            .bytes_read = bytes_read_.load(std::memory_order_relaxed),
            .bytes_written = bytes_written_.load(std::memory_order_relaxed),
            .kernel_launches = kernel_launches_.load(std::memory_order_relaxed),
            .logical_threads_run =
                logical_threads_run_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> flops_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> kernel_launches_{0};
  std::atomic<std::uint64_t> logical_threads_run_{0};
};

}  // namespace phifi::phi

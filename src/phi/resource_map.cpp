#include "phi/resource_map.hpp"

namespace phifi::phi {

std::string_view to_string(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::kDram: return "DRAM";
    case ResourceClass::kL2Cache: return "L2";
    case ResourceClass::kL1Cache: return "L1";
    case ResourceClass::kRegisterFile: return "scalar-regs";
    case ResourceClass::kVectorRegisters: return "vector-regs";
    case ResourceClass::kPipelineQueues: return "pipeline-queues";
    case ResourceClass::kDispatchLogic: return "dispatch-logic";
    case ResourceClass::kInterconnect: return "interconnect";
  }
  return "?";
}

std::string_view to_string(Protection protection) {
  switch (protection) {
    case Protection::kSecded: return "SECDED";
    case Protection::kParity: return "parity";
    case Protection::kNone: return "none";
  }
  return "?";
}

ResourceMap ResourceMap::for_spec(const DeviceSpec& spec) {
  ResourceMap map;
  const std::size_t cores = spec.physical_cores;
  const std::size_t hw_threads = spec.hardware_threads();
  const Protection array_protection =
      spec.ecc_enabled ? Protection::kSecded : Protection::kNone;

  map.resources_ = {
      {.cls = ResourceClass::kDram,
       .bits = spec.dram_bytes * 8,
       .protection = array_protection,
       .beam_exposed = false},
      {.cls = ResourceClass::kL2Cache,
       .bits = spec.l2_bytes_total() * 8,
       .protection = array_protection},
      {.cls = ResourceClass::kL1Cache,
       .bits = spec.l1_bytes_total() * 8,
       .protection = spec.ecc_enabled ? Protection::kParity
                                      : Protection::kNone},
      {.cls = ResourceClass::kRegisterFile,
       // 16 architectural 64-bit integer registers per hardware thread.
       .bits = hw_threads * 16 * 64,
       .protection = array_protection},
      {.cls = ResourceClass::kVectorRegisters,
       .bits = spec.vector_register_bits_total(),
       .protection = array_protection},
      // Sequential (flip-flop) state in pipeline and memory-order queues:
      // rough per-core estimate for a short in-order pipeline with wide
      // vector datapaths. Unprotected, per the paper.
      {.cls = ResourceClass::kPipelineQueues,
       .bits = cores * 96 * 1024,
       .protection = Protection::kNone},
      // Decode/dispatch control state per core.
      {.cls = ResourceClass::kDispatchLogic,
       .bits = cores * 24 * 1024,
       .protection = Protection::kNone},
      // Ring-stop buffers and arbitration state per core slice.
      {.cls = ResourceClass::kInterconnect,
       .bits = cores * 32 * 1024,
       .protection = Protection::kNone},
  };
  return map;
}

const Resource* ResourceMap::find(ResourceClass cls) const {
  for (const Resource& r : resources_) {
    if (r.cls == cls) return &r;
  }
  return nullptr;
}

std::size_t ResourceMap::exposed_bits(bool unprotected_only) const {
  std::size_t total = 0;
  for (const Resource& r : resources_) {
    if (!r.beam_exposed) continue;
    if (unprotected_only && r.protection != Protection::kNone) continue;
    total += r.bits;
  }
  return total;
}

}  // namespace phifi::phi

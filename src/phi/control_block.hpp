// Per-logical-hardware-thread control block.
//
// The paper's key DGEMM finding (Sec. 6) is that loop control variables,
// although only a handful of integers in the source, are replicated once per
// hardware thread (228x on the 3120A) and therefore occupy enough memory to
// be hit often — and hits on them are severe. To reproduce that mechanism
// the runtime gives every *logical* hardware thread a ControlBlock of named
// 64-bit slots. Kernels keep their loop counters / bounds / pointers-as-
// indices in these slots, and all accesses go through volatile references so
// a concurrent bit-flip injected by the fault injector is actually observed
// by the running kernel instead of living only in a register.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace phifi::phi {

/// Handle to a named control slot; obtained from ControlLayout.
struct ControlSlot {
  std::size_t index = 0;
};

/// Names the slots a workload uses. Shared by all workers of one workload
/// (each worker has its own values, the *layout* is common).
class ControlLayout {
 public:
  static constexpr std::size_t kMaxSlots = 16;

  /// Registers a slot name and returns its handle. Names must be unique;
  /// at most kMaxSlots slots.
  ControlSlot add(std::string_view name) {
    assert(count_ < kMaxSlots);
    names_[count_] = name;
    return ControlSlot{count_++};
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::string_view name(std::size_t index) const {
    assert(index < count_);
    return names_[index];
  }

 private:
  std::array<std::string_view, kMaxSlots> names_{};
  std::size_t count_ = 0;
};

/// The per-worker storage. Values are read/written through volatile glvalues
/// so that the compiler re-loads them on every access: an injected corruption
/// takes effect at the next loop iteration, exactly like the GDB-level
/// memory corruption CAROL-FI performs.
class ControlBlock {
 public:
  [[nodiscard]] std::int64_t get(ControlSlot slot) const {
    return const_cast<const volatile std::int64_t&>(slots_[slot.index]);
  }
  void set(ControlSlot slot, std::int64_t value) {
    const_cast<volatile std::int64_t&>(slots_[slot.index]) = value;
  }
  /// Post-increment-style update returning the new value.
  std::int64_t add(ControlSlot slot, std::int64_t delta) {
    const std::int64_t next = get(slot) + delta;
    set(slot, next);
    return next;
  }

  /// Raw bytes of one slot, for injection-site registration.
  [[nodiscard]] std::span<std::byte> slot_bytes(std::size_t index) {
    return {reinterpret_cast<std::byte*>(&slots_[index]),
            sizeof(std::int64_t)};
  }

  void clear() { slots_.fill(0); }

 private:
  std::array<std::int64_t, ControlLayout::kMaxSlots> slots_{};
};

}  // namespace phifi::phi

// Static description of the emulated coprocessor.
//
// The paper's testbed is an Intel Xeon Phi 3120A ("Knights Corner"): 57
// in-order physical cores, 4 hardware threads per core, 32 512-bit vector
// registers per thread, 64 KB L1 + 512 KB L2 per core, 6 GB GDDR5, 22 nm,
// MCA with SECDED ECC on the main storage arrays (Sec. 3.1). The spec feeds
// (a) the offload runtime (how many logical hardware threads a kernel launch
// fans out to) and (b) the radiation sensitivity model (how many bits of each
// resource class exist and which are ECC-protected).
#pragma once

#include <cstddef>
#include <string>

namespace phifi::phi {

struct DeviceSpec {
  std::string model = "generic";
  unsigned physical_cores = 1;
  unsigned threads_per_core = 1;
  unsigned vector_bits = 128;
  unsigned vector_registers_per_thread = 16;
  std::size_t l1_bytes_per_core = 32 * 1024;
  std::size_t l2_bytes_per_core = 256 * 1024;
  std::size_t dram_bytes = std::size_t{1} << 30;
  unsigned process_nm = 22;
  bool ecc_enabled = true;
  /// Nominal core clock; only used for reporting, never for timing.
  double clock_ghz = 1.0;

  [[nodiscard]] unsigned hardware_threads() const {
    return physical_cores * threads_per_core;
  }
  [[nodiscard]] std::size_t l1_bytes_total() const {
    return l1_bytes_per_core * physical_cores;
  }
  [[nodiscard]] std::size_t l2_bytes_total() const {
    return l2_bytes_per_core * physical_cores;
  }
  [[nodiscard]] std::size_t vector_register_bits_total() const {
    return static_cast<std::size_t>(vector_bits) *
           vector_registers_per_thread * hardware_threads();
  }

  /// The paper's device: Xeon Phi 3120A, Knights Corner.
  static DeviceSpec knights_corner_3120a();

  /// A deliberately tiny device for fast unit tests.
  static DeviceSpec test_device();
};

}  // namespace phifi::phi

// Flip-script analog: selects where to inject and applies the fault model.
#pragma once

#include <cstdint>
#include <memory>

#include "core/fault_model.hpp"
#include "core/injection_site.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace phifi::fi {

/// How the engine picks a victim variable.
enum class SelectionPolicy : int {
  /// CAROL-FI's Flip-script order: pick a thread uniformly, pick one of its
  /// frames uniformly (the thread's local frame or the outer/global frame),
  /// pick a variable within the frame proportionally to its memory
  /// footprint, pick an element uniformly within the variable.
  kCarolFi = 0,
  /// Pick any element uniformly over all registered bytes (probability of a
  /// variable proportional to its size), like a raw memory-strike model.
  kBytesWeighted = 1,
  /// Beam-simulation targets: a strike in a data-path resource manifests in
  /// program data (global frame, bytes-weighted) ...
  kGlobalBytesWeighted = 2,
  /// ... while a strike in dispatch/pipeline control state manifests in a
  /// hardware thread's in-flight control variables (uniform worker frame).
  kWorkerFrameOnly = 3,
};

constexpr std::string_view to_string(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kCarolFi: return "carol-fi";
    case SelectionPolicy::kBytesWeighted: return "bytes-weighted";
    case SelectionPolicy::kGlobalBytesWeighted: return "global-bytes";
    case SelectionPolicy::kWorkerFrameOnly: return "worker-frame";
  }
  return "?";
}

/// Everything CAROL-FI logs about one injection (Sec. 5.1): the variable,
/// its frame/category, the fault model, what changed, and when it fired.
/// Fixed-size POD so it can travel through the shared-memory channel.
// phicheck:shm-pod phifi::fi::InjectionRecord size=152
struct InjectionRecord {
  bool injected = false;
  bool changed = false;  ///< at least one bit actually differs after the flip
  FaultModel model = FaultModel::kSingle;
  FrameKind frame = FrameKind::kGlobal;
  std::int32_t worker = -1;
  std::uint32_t site_index = 0;
  std::uint64_t element_index = 0;
  std::uint32_t burst_elements = 1;  ///< consecutive elements corrupted
  std::uint64_t flipped_bits[2] = {0, 0};
  std::uint32_t flipped_count = 0;
  double progress_fraction = 0.0;
  char site_name[48] = {};
  char category[32] = {};
};

class FlipEngine {
 public:
  FlipEngine(const SiteRegistry& registry, SelectionPolicy policy)
      : registry_(&registry), policy_(policy) {}

  /// Picks a victim per the policy and applies `model` to it in place,
  /// while the program may be running (that is the point). `burst` > 1
  /// applies the model to that many consecutive elements of the victim
  /// variable (clamped to its end) — the physical footprint of an upset in
  /// a 512-bit vector register or a cache line spans several program
  /// elements. Returns the log record; record.injected is false only if
  /// the registry is empty.
  InjectionRecord inject(FaultModel model, util::Rng& rng,
                         double progress_fraction, unsigned burst = 1);

 private:
  std::size_t select_site(util::Rng& rng);
  std::size_t select_carol_fi(util::Rng& rng);
  std::size_t select_bytes_weighted(util::Rng& rng, bool global_only = false);
  std::size_t select_worker_frame(util::Rng& rng);

  /// Scratch for the selection paths (frame index lists, weight tables) —
  /// rewound per inject() so selection never touches the heap after the
  /// first injection. Sized for the worst case, so allocate_span cannot
  /// fail mid-selection once created.
  util::BumpArena& scratch();

  const SiteRegistry* registry_;
  SelectionPolicy policy_;
  std::unique_ptr<util::BumpArena> arena_;
};

}  // namespace phifi::fi

// Fault-injection campaign: many supervised trials plus bookkeeping.
//
// The paper injects >=10,000 faults per benchmark, split across the four
// fault models, and reports (Fig. 4-6) outcome fractions overall, per fault
// model (PVF), and per execution-time window, plus per-code-portion
// criticality (Sec. 6). Campaign runs the trials and accumulates exactly
// those tallies; an optional observer sees each SDC trial's raw output for
// deeper analysis (spatial patterns, relative error) without coupling the
// core to the analysis layer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/campaign_journal.hpp"
#include "core/supervisor.hpp"
#include "telemetry/estimator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace phifi::fi {

struct CampaignConfig {
  /// Number of *injected* trials to run (NotInjected trials are retried and
  /// not counted; a retry cap guards against pathological workloads).
  std::size_t trials = 1000;
  std::uint64_t seed = 0xcab01ef1ULL;
  SelectionPolicy policy = SelectionPolicy::kCarolFi;
  /// Fault models to cycle through, in equal proportion.
  std::vector<FaultModel> models{FaultModel::kSingle, FaultModel::kDouble,
                                 FaultModel::kRandom, FaultModel::kZero};
  double earliest_fraction = 0.01;
  double latest_fraction = 0.99;
  std::size_t max_retry_factor = 3;  ///< retries allowed = factor * trials

  /// Worker slots: up to this many forked trials in flight at once
  /// (1 = classic sequential campaign). Trial seeds are indexed by attempt
  /// counter and completions commit in attempt order, so any jobs value —
  /// and any resume — produces bit-identical tallies. Not part of the
  /// journal fingerprint: a campaign may be resumed with a different jobs.
  unsigned jobs = 1;

  /// Sequential stopping: when > 0, the campaign ends early at the first
  /// attempt-order commit boundary where the Wilson CI half-width (95%) of
  /// the overall SDC proportion is <= this value. Evaluated only at the
  /// deterministic commit point — never on raw completion order — so
  /// --jobs 1 and --jobs N stop at the identical attempt with bit-identical
  /// tallies; in-flight attempts past the stop are killed uncommitted, like
  /// finish-line overshoot. Part of the journal fingerprint (a resume must
  /// stop where the original would have) and re-evaluated during replay.
  /// This is an engineering stop rule, not a hypothesis test: see
  /// docs/OBSERVATORY.md on repeated peeking.
  double stop_ci_width = 0.0;

  // ---- durability / supervision ----

  /// Write-ahead journal path ("" = no journal). Every trial attempt is
  /// appended as it completes, so a killed campaign can be resumed.
  std::string journal_path;
  /// Resume from an existing journal at journal_path: replay its records
  /// into the tallies (in attempt-index order, duplicates dropped) and
  /// continue from the next unseen attempt index. Trial seeds derive from
  /// (campaign seed, attempt index), so a resumed campaign is bit-identical
  /// to an uninterrupted one. Rejected (throws) if the journal's config
  /// fingerprint does not match.
  bool resume = false;
  JournalFsync journal_fsync = JournalFsync::kEveryRecord;
  /// Group-commit knobs, used only with JournalFsync::kBatch.
  JournalBatchPolicy journal_batch;
  /// Cooperative stop: checked between trials. When it becomes true the
  /// in-flight trial finishes, the journal is flushed, and run() returns
  /// with result.interrupted set. Wire SIGINT/SIGTERM handlers to this.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Circuit breaker: abort (journal intact, result.aborted set) after this
  /// many consecutive infrastructure failures (fork/waitpid errors — not
  /// trial DUEs, which are results).
  std::size_t max_consecutive_failures = 5;
  /// Exponential backoff before retrying a failed trial attempt:
  /// initial * 2^n milliseconds, capped at 10 doublings.
  unsigned retry_backoff_initial_ms = 100;

  // ---- telemetry (both optional, not owned, must outlive run()) ----

  /// NDJSON trial tracer: one "trial" record per attempt, bracketed by a
  /// "campaign" header and an "end" summary. nullptr disables tracing.
  telemetry::TraceWriter* trace = nullptr;
  /// Metrics sink: campaign.* counters/gauges plus the trial-latency
  /// histogram. nullptr disables metric feeding.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Streaming proportion estimator, fed at the deterministic commit point
  /// (replayed trials included, so its state survives resume). nullptr
  /// disables feeding; the --stop-ci-width rule works either way (it reads
  /// the tallies directly).
  telemetry::CampaignEstimator* estimator = nullptr;
  /// Trial latency anatomy profiler, fed at the deterministic commit point
  /// with the per-phase breakdown (fork/setup/inject/run/classify plus the
  /// scheduler's reorder-buffer wait, journal append, and batched fsync
  /// flush). nullptr keeps the commit path clock-free, like the tracer.
  telemetry::TrialProfiler* profiler = nullptr;
};

/// Masked/SDC/DUE counts with convenience rates.
struct OutcomeTally {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;

  [[nodiscard]] std::uint64_t total() const { return masked + sdc + due; }
  [[nodiscard]] double sdc_rate() const { return rate(sdc); }
  [[nodiscard]] double due_rate() const { return rate(due); }
  [[nodiscard]] double masked_rate() const { return rate(masked); }
  void add(Outcome outcome);
  OutcomeTally& operator+=(const OutcomeTally& other);

 private:
  [[nodiscard]] double rate(std::uint64_t n) const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(n) / static_cast<double>(t);
  }
};

struct CampaignResult {
  std::string workload;
  OutcomeTally overall;
  /// Indexed by FaultModel enum value (Fig. 5).
  std::array<OutcomeTally, 4> by_model;
  /// Indexed by time window (Fig. 6).
  std::vector<OutcomeTally> by_window;
  /// Keyed by site category (Sec. 6 criticality).
  std::map<std::string, OutcomeTally> by_category;
  /// Keyed by frame kind name ("global"/"worker").
  std::map<std::string, OutcomeTally> by_frame;
  std::uint64_t not_injected = 0;
  /// DUE breakdown keyed by kind name ("crash", "hang", ...); kinds never
  /// seen are absent. Sums to overall.due.
  std::map<std::string, std::uint64_t> due_kinds;
  double total_seconds = 0.0;
  unsigned time_windows = 1;

  /// Full per-trial log (CAROL-FI stores per-injection logs; analyses that
  /// need joint distributions read this).
  std::vector<TrialResult> trials;

  /// Attempt indices committed (completed + NotInjected attempts); resume
  /// continues issuing indices from here.
  std::uint64_t attempts = 0;
  /// Trials replayed from a journal rather than executed this run.
  std::uint64_t resumed_trials = 0;
  bool interrupted = false;  ///< stop_flag fired before completion
  bool aborted = false;      ///< circuit breaker tripped
  /// stop_ci_width precision target reached before the trial count.
  bool stopped_early = false;
};

/// Folds one completed (injected or NotInjected) trial into the tallies.
/// Used by the live campaign loop, journal replay, and phifi_parse so the
/// three can never disagree on aggregation.
void accumulate_trial(CampaignResult& result, const TrialResult& trial);

/// The seed for attempt `attempt_index` of a campaign: a SplitMix64 whiten
/// of campaign_seed ⊕ f(attempt_index). Counter-indexed (not a sequential
/// draw stream) so N in-flight workers, resumes, and infrastructure retries
/// all agree on every attempt's randomness with no shared draw cursor.
std::uint64_t trial_seed_for(std::uint64_t campaign_seed,
                             std::uint64_t attempt_index);

/// Fingerprint of everything a resume must agree on: workload, seed,
/// policy, fault models, injection window, trial count, time windows, and
/// the sequential-stopping epsilon (stop_ci_width).
std::uint64_t campaign_fingerprint(const CampaignConfig& config,
                                   std::string_view workload,
                                   unsigned time_windows);

/// The sequential stop rule (--stop-ci-width), evaluated only at
/// attempt-order commit boundaries: true once the Wilson 95% CI half-width
/// of the overall SDC proportion is at or under the configured epsilon.
/// Shared by the live scheduler, journal replay, and the fabric shard
/// merge so the three can never disagree on where a campaign ends.
bool campaign_ci_stop_reached(const CampaignConfig& config,
                              const OutcomeTally& overall);

/// Observer invoked after every trial; `output` is non-empty only for
/// completed (Masked/SDC) trials and is valid for the duration of the call.
using TrialObserver =
    std::function<void(const TrialResult&, std::span<const std::byte>)>;

/// Control hooks for run_range(), the fabric worker's lease executor.
struct RangeHooks {
  /// Invoked for every committed attempt, strictly in index order. The
  /// fabric worker appends the record to its shard journal here; run_range
  /// itself never touches config.journal_path.
  std::function<void(const JournalRecord&)> on_commit;
  /// Invoked once per scheduler iteration (poll pace, sub-millisecond to
  /// tens of ms). Return false to cancel the range: in-flight children are
  /// killed uncommitted, already-committed records stand. The fabric
  /// worker pumps its coordinator socket and sends heartbeats from here,
  /// keeping all network I/O off the per-trial hot path.
  std::function<bool()> on_tick;
};

struct RangeResult {
  std::uint64_t committed = 0;  ///< records committed by this call
  std::uint64_t injected = 0;   ///< of which were injected trials
  bool cancelled = false;  ///< on_tick returned false or stop_flag fired
  bool aborted = false;    ///< circuit breaker tripped
};

class Campaign {
 public:
  Campaign(TrialSupervisor& supervisor, CampaignConfig config)
      : supervisor_(&supervisor), config_(std::move(config)) {}

  /// Runs the campaign. The supervisor must already have a golden copy.
  CampaignResult run(const TrialObserver& observer = nullptr);

  /// Executes exactly attempt indices [begin, end) with the same slot
  /// scheduler, in-order commit point, retry/backoff, and circuit breaker
  /// as run() — but no finish line, stop rule, or journal: the caller (a
  /// fabric worker executing a lease) owns durability via hooks.on_commit
  /// and the campaign-level boundary is decided at merge time. Seeds are
  /// counter-indexed, so the records this produces are bit-identical to
  /// the same indices of a --jobs 1 run, whatever process executes them.
  RangeResult run_range(std::uint64_t begin, std::uint64_t end,
                        const RangeHooks& hooks);

 private:
  TrialSupervisor* supervisor_;
  CampaignConfig config_;
};

}  // namespace phifi::fi

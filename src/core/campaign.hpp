// Fault-injection campaign: many supervised trials plus bookkeeping.
//
// The paper injects >=10,000 faults per benchmark, split across the four
// fault models, and reports (Fig. 4-6) outcome fractions overall, per fault
// model (PVF), and per execution-time window, plus per-code-portion
// criticality (Sec. 6). Campaign runs the trials and accumulates exactly
// those tallies; an optional observer sees each SDC trial's raw output for
// deeper analysis (spatial patterns, relative error) without coupling the
// core to the analysis layer.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/supervisor.hpp"

namespace phifi::fi {

struct CampaignConfig {
  /// Number of *injected* trials to run (NotInjected trials are retried and
  /// not counted; a retry cap guards against pathological workloads).
  std::size_t trials = 1000;
  std::uint64_t seed = 0xcab01ef1ULL;
  SelectionPolicy policy = SelectionPolicy::kCarolFi;
  /// Fault models to cycle through, in equal proportion.
  std::vector<FaultModel> models{FaultModel::kSingle, FaultModel::kDouble,
                                 FaultModel::kRandom, FaultModel::kZero};
  double earliest_fraction = 0.01;
  double latest_fraction = 0.99;
  std::size_t max_retry_factor = 3;  ///< retries allowed = factor * trials
};

/// Masked/SDC/DUE counts with convenience rates.
struct OutcomeTally {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;

  [[nodiscard]] std::uint64_t total() const { return masked + sdc + due; }
  [[nodiscard]] double sdc_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(sdc) / total();
  }
  [[nodiscard]] double due_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(due) / total();
  }
  [[nodiscard]] double masked_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(masked) / total();
  }
  void add(Outcome outcome);
  OutcomeTally& operator+=(const OutcomeTally& other);
};

struct CampaignResult {
  std::string workload;
  OutcomeTally overall;
  /// Indexed by FaultModel enum value (Fig. 5).
  std::array<OutcomeTally, 4> by_model;
  /// Indexed by time window (Fig. 6).
  std::vector<OutcomeTally> by_window;
  /// Keyed by site category (Sec. 6 criticality).
  std::map<std::string, OutcomeTally> by_category;
  /// Keyed by frame kind name ("global"/"worker").
  std::map<std::string, OutcomeTally> by_frame;
  std::uint64_t not_injected = 0;
  double total_seconds = 0.0;
  unsigned time_windows = 1;

  /// Full per-trial log (CAROL-FI stores per-injection logs; analyses that
  /// need joint distributions read this).
  std::vector<TrialResult> trials;
};

/// Observer invoked after every trial; `output` is non-empty only for
/// completed (Masked/SDC) trials and is valid for the duration of the call.
using TrialObserver =
    std::function<void(const TrialResult&, std::span<const std::byte>)>;

class Campaign {
 public:
  Campaign(TrialSupervisor& supervisor, CampaignConfig config)
      : supervisor_(&supervisor), config_(std::move(config)) {}

  /// Runs the campaign. The supervisor must already have a golden copy.
  CampaignResult run(const TrialObserver& observer = nullptr);

 private:
  TrialSupervisor* supervisor_;
  CampaignConfig config_;
};

}  // namespace phifi::fi

#include "core/trial_log.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace phifi::fi {

namespace {

constexpr const char* kHeader =
    "index,outcome,due_kind,model,frame,worker,site,category,element,"
    "burst,progress,window,seconds";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

Outcome outcome_from_string(std::string_view text) {
  if (text == "Masked") return Outcome::kMasked;
  if (text == "SDC") return Outcome::kSdc;
  if (text == "DUE") return Outcome::kDue;
  if (text == "NotInjected") return Outcome::kNotInjected;
  throw std::runtime_error("unknown outcome: " + std::string(text));
}

DueKind due_kind_from_string(std::string_view text) {
  if (text == "none") return DueKind::kNone;
  if (text == "crash") return DueKind::kCrash;
  if (text == "abnormal-exit") return DueKind::kAbnormalExit;
  if (text == "hang") return DueKind::kHang;
  if (text == "rlimit") return DueKind::kRlimit;
  if (text == "stall") return DueKind::kStall;
  throw std::runtime_error("unknown due kind: " + std::string(text));
}

FaultModel fault_model_from_string(std::string_view text) {
  for (FaultModel model : kAllFaultModels) {
    if (to_string(model) == text) return model;
  }
  throw std::runtime_error("unknown fault model: " + std::string(text));
}

TrialLogWriter::TrialLogWriter(std::ostream& os) : os_(&os) {
  *os_ << kHeader << '\n';
}

void TrialLogWriter::append(const TrialResult& trial) {
  const InjectionRecord& record = trial.record;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", record.progress_fraction);
  const std::string progress = buffer;
  std::snprintf(buffer, sizeof(buffer), "%.6f", trial.seconds);
  const std::string seconds = buffer;
  *os_ << written_ << ',' << to_string(trial.outcome) << ','
       << to_string(trial.due_kind) << ',' << to_string(record.model) << ','
       << (record.frame == FrameKind::kWorker ? "worker" : "global") << ','
       << record.worker << ',' << record.site_name << ',' << record.category
       << ',' << record.element_index << ',' << record.burst_elements << ','
       << progress << ',' << trial.window << ',' << seconds << '\n';
  ++written_;
}

void TrialLogWriter::append_all(const CampaignResult& result) {
  for (const TrialResult& trial : result.trials) append(trial);
}

std::vector<TrialLogEntry> TrialLogReader::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("trial log: missing or unexpected header");
  }
  std::vector<TrialLogEntry> entries;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_line(line);
    if (fields.size() != 13) {
      throw std::runtime_error("trial log: malformed row: " + line);
    }
    TrialLogEntry entry;
    entry.index = std::stoull(fields[0]);
    entry.outcome = outcome_from_string(fields[1]);
    entry.due_kind = due_kind_from_string(fields[2]);
    entry.model = fault_model_from_string(fields[3]);
    entry.frame =
        fields[4] == "worker" ? FrameKind::kWorker : FrameKind::kGlobal;
    entry.worker = std::stoi(fields[5]);
    entry.site = fields[6];
    entry.category = fields[7];
    entry.element_index = std::stoull(fields[8]);
    entry.burst_elements = static_cast<std::uint32_t>(std::stoul(fields[9]));
    entry.progress_fraction = std::stod(fields[10]);
    entry.window = static_cast<unsigned>(std::stoul(fields[11]));
    entry.seconds = std::stod(fields[12]);
    entries.push_back(std::move(entry));
  }
  return entries;
}

CampaignResult TrialLogReader::aggregate(
    const std::vector<TrialLogEntry>& entries, unsigned time_windows) {
  CampaignResult result;
  result.time_windows = time_windows;
  result.by_window.resize(time_windows);
  for (const TrialLogEntry& entry : entries) {
    if (entry.outcome == Outcome::kNotInjected) {
      ++result.not_injected;
      continue;
    }
    result.overall.add(entry.outcome);
    result.by_model[static_cast<std::size_t>(entry.model)].add(entry.outcome);
    if (entry.window < time_windows) {
      result.by_window[entry.window].add(entry.outcome);
    }
    result.by_category[entry.category].add(entry.outcome);
    result.by_frame[entry.frame == FrameKind::kWorker ? "worker" : "global"]
        .add(entry.outcome);
    result.total_seconds += entry.seconds;
  }
  return result;
}

}  // namespace phifi::fi

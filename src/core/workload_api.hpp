// The contract between the fault-injection framework and a benchmark.
//
// A Workload owns its inputs, outputs and scratch memory; the supervisor
// calls setup() once, register_sites() once, and run() once per trial (in a
// forked child). Outputs are exposed as raw bytes plus a logical shape and
// element type so the analysis layer can diff, classify spatial patterns,
// and compute relative errors without knowing the algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/injection_site.hpp"
#include "core/progress.hpp"
#include "phi/device.hpp"
#include "util/array_view.hpp"

namespace phifi::fi {

/// Element type of a workload's output array, for typed comparison.
enum class ElementType { kF32, kF64, kI32, kI64 };

constexpr std::size_t element_size(ElementType type) {
  switch (type) {
    case ElementType::kF32: return 4;
    case ElementType::kF64: return 8;
    case ElementType::kI32: return 4;
    case ElementType::kI64: return 8;
  }
  return 0;
}

constexpr std::string_view to_string(ElementType type) {
  switch (type) {
    case ElementType::kF32: return "f32";
    case ElementType::kF64: return "f64";
    case ElementType::kI32: return "i32";
    case ElementType::kI64: return "i64";
  }
  return "?";
}

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Allocates state and deterministically generates inputs from the seed.
  virtual void setup(std::uint64_t input_seed) = 0;

  /// Runs the benchmark on the device, ticking `progress` as it goes.
  /// Must be deterministic given setup(): two fault-free runs produce
  /// bit-identical output_bytes().
  ///
  /// Telemetry contract: run() should announce each major execution phase
  /// (prologue, main kernel(s), epilogue) via progress.enter_phase("name")
  /// on the driving thread, before the phase's kernel launches. The trial
  /// supervisor forwards phase transitions through the shared channel and
  /// the campaign tracer records them per trial, which is what lets the
  /// analysis layer attribute an injection to a code portion *and* an
  /// execution phase (Sec. 6 criticality crossed with Fig. 6 timing).
  /// Phases are optional — enter_phase() is a no-op when no hook is armed.
  virtual void run(phi::Device& device, ProgressTracker& progress) = 0;

  /// Registers every corruptible variable. Called after setup(); pointers
  /// must stay valid until the workload is destroyed.
  virtual void register_sites(SiteRegistry& registry) = 0;

  /// Optional fast-path hook (docs/PARALLELISM.md, "trial fast path"):
  /// restores the exact post-setup() state after ONE fault-free run() in
  /// this process, without reallocating — registered site pointers must
  /// stay valid. Returning true lets the supervisor keep a warm workload
  /// image in the campaign parent and fork trial children directly from
  /// it; returning false (the default) makes the fast path spawn a
  /// per-slot template process instead. Only called right after the golden
  /// run; implementations may rebuild inputs from the stored seed as long
  /// as the result is bit-identical to the original setup().
  virtual bool reset() { return false; }

  [[nodiscard]] virtual std::span<const std::byte> output_bytes() const = 0;
  [[nodiscard]] virtual util::Shape output_shape() const = 0;
  [[nodiscard]] virtual ElementType output_type() const = 0;

  /// Number of equal execution-time windows the paper splits this benchmark
  /// into (Fig. 6): CLAMR 9, DGEMM/HotSpot 5, LUD/NW 4.
  [[nodiscard]] virtual unsigned time_windows() const = 0;

  /// Total progress steps run() will tick (the denominator for fraction()).
  [[nodiscard]] virtual std::uint64_t total_steps() const = 0;

  [[nodiscard]] std::size_t output_element_count() const {
    return output_bytes().size() / element_size(output_type());
  }
};

/// Factory used by the supervisor to build a fresh workload in each trial
/// child process. Must be callable repeatedly and deterministic.
using WorkloadFactory = std::unique_ptr<Workload> (*)();

}  // namespace phifi::fi

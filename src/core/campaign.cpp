#include "core/campaign.hpp"

#include <cassert>

#include "util/log.hpp"

namespace phifi::fi {

void OutcomeTally::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kDue: ++due; break;
    case Outcome::kNotInjected: break;
  }
}

OutcomeTally& OutcomeTally::operator+=(const OutcomeTally& other) {
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  return *this;
}

CampaignResult Campaign::run(const TrialObserver& observer) {
  assert(!config_.models.empty());
  CampaignResult result;
  result.workload = supervisor_->workload_name();
  result.time_windows = supervisor_->time_windows();
  result.by_window.resize(result.time_windows);
  result.trials.reserve(config_.trials);

  util::Rng seed_stream(config_.seed);
  const std::size_t retry_budget =
      config_.trials * (1 + config_.max_retry_factor);
  std::size_t attempts = 0;
  std::size_t completed = 0;
  std::size_t model_cursor = 0;

  while (completed < config_.trials && attempts < retry_budget) {
    TrialConfig trial;
    trial.trial_seed = seed_stream.next();
    trial.model = config_.models[model_cursor % config_.models.size()];
    trial.policy = config_.policy;
    trial.earliest_fraction = config_.earliest_fraction;
    trial.latest_fraction = config_.latest_fraction;
    ++attempts;

    const TrialResult trial_result = supervisor_->run_trial(trial);
    result.total_seconds += trial_result.seconds;

    if (trial_result.outcome == Outcome::kNotInjected) {
      ++result.not_injected;
      continue;  // retry with a fresh seed; the model slot is not consumed
    }
    ++completed;
    ++model_cursor;

    result.overall.add(trial_result.outcome);
    result.by_model[static_cast<std::size_t>(trial_result.record.model)].add(
        trial_result.outcome);
    if (trial_result.window < result.by_window.size()) {
      result.by_window[trial_result.window].add(trial_result.outcome);
    }
    if (trial_result.record.injected) {
      result.by_category[trial_result.record.category].add(
          trial_result.outcome);
      result
          .by_frame[trial_result.record.frame == FrameKind::kWorker
                        ? "worker"
                        : "global"]
          .add(trial_result.outcome);
    }
    if (observer) {
      const bool has_output = trial_result.outcome == Outcome::kMasked ||
                              trial_result.outcome == Outcome::kSdc;
      observer(trial_result, has_output ? supervisor_->last_output()
                                        : std::span<const std::byte>{});
    }
    result.trials.push_back(trial_result);

    if (completed % 500 == 0) {
      util::log_info() << result.workload << ": " << completed << "/"
                       << config_.trials << " trials";
    }
  }

  if (completed < config_.trials) {
    util::log_warn() << result.workload << ": campaign stopped after "
                     << attempts << " attempts with only " << completed
                     << " injected trials";
  }
  return result;
}

}  // namespace phifi::fi

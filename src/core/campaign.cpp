#include "core/campaign.hpp"

#include <cassert>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace phifi::fi {

namespace {

/// Flattens one trial into the string-typed trace record (the telemetry
/// layer deliberately knows nothing about core enums).
telemetry::TrialTrace make_trial_trace(const TrialResult& trial,
                                       std::uint64_t attempt, double ts_ms) {
  telemetry::TrialTrace t;
  t.attempt = attempt;
  t.outcome = std::string(to_string(trial.outcome));
  t.due_kind = std::string(to_string(trial.due_kind));
  t.injected = trial.record.injected;
  t.model = std::string(to_string(trial.record.model));
  t.site = trial.record.site_name;
  t.category = trial.record.category;
  t.frame = trial.record.frame == FrameKind::kWorker ? "worker" : "global";
  t.worker = trial.record.worker;
  t.progress_fraction = trial.record.progress_fraction;
  t.window = trial.window;
  t.seconds = trial.seconds;
  t.heartbeats = trial.heartbeats;
  t.escalated_kill = trial.escalated_kill;
  t.ts_ms = ts_ms;
  t.spans.push_back({"fork", 0.0, trial.fork_done_seconds * 1e3});
  t.spans.push_back(
      {"run", trial.fork_done_seconds * 1e3, trial.reaped_seconds * 1e3});
  t.spans.push_back({"classify", trial.reaped_seconds * 1e3,
                     trial.classified_seconds * 1e3});
  for (const PhaseRecord& phase : trial.phases) {
    t.phases.push_back({phase.name, phase.fraction, phase.t_seconds * 1e3});
  }
  return t;
}

/// Feeds one completed attempt into the metrics registry. Replayed
/// (journal-resumed) trials bump the campaign.* counters — the live
/// progress view must reflect total campaign state — but stay out of the
/// latency histogram, which records only this process's observations.
void feed_metrics(telemetry::MetricsRegistry& metrics,
                  const TrialResult& trial, bool replayed) {
  if (trial.outcome == Outcome::kNotInjected) {
    metrics.counter("campaign.not_injected").inc();
    return;
  }
  metrics.counter("campaign.completed").inc();
  switch (trial.outcome) {
    case Outcome::kMasked: metrics.counter("campaign.masked").inc(); break;
    case Outcome::kSdc: metrics.counter("campaign.sdc").inc(); break;
    case Outcome::kDue:
      metrics.counter("campaign.due").inc();
      metrics
          .counter("campaign.due." + std::string(to_string(trial.due_kind)))
          .inc();
      break;
    case Outcome::kNotInjected: break;
  }
  if (trial.escalated_kill) {
    metrics.counter("campaign.escalated_kills").inc();
  }
  if (!replayed) {
    metrics
        .histogram("campaign.trial_latency_ms",
                   telemetry::default_latency_edges_ms())
        .observe(trial.seconds * 1e3);
  }
}

}  // namespace

void OutcomeTally::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kDue: ++due; break;
    case Outcome::kNotInjected: break;
  }
}

OutcomeTally& OutcomeTally::operator+=(const OutcomeTally& other) {
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  return *this;
}

void accumulate_trial(CampaignResult& result, const TrialResult& trial) {
  result.total_seconds += trial.seconds;
  if (trial.outcome == Outcome::kNotInjected) {
    ++result.not_injected;
    return;
  }
  result.overall.add(trial.outcome);
  result.by_model[static_cast<std::size_t>(trial.record.model)].add(
      trial.outcome);
  if (trial.window < result.by_window.size()) {
    result.by_window[trial.window].add(trial.outcome);
  }
  if (trial.record.injected) {
    result.by_category[trial.record.category].add(trial.outcome);
    result
        .by_frame[trial.record.frame == FrameKind::kWorker ? "worker"
                                                           : "global"]
        .add(trial.outcome);
  }
  result.trials.push_back(trial);
}

std::uint64_t campaign_fingerprint(const CampaignConfig& config,
                                   std::string_view workload,
                                   unsigned time_windows) {
  // FNV-1a over every field a resume must agree on.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (char c : workload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.policy));
  mix(config.models.size());
  for (FaultModel model : config.models) {
    mix(static_cast<std::uint64_t>(model));
  }
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &config.earliest_fraction, sizeof(bits));
  mix(bits);
  std::memcpy(&bits, &config.latest_fraction, sizeof(bits));
  mix(bits);
  mix(config.trials);
  mix(time_windows);
  return hash;
}

CampaignResult Campaign::run(const TrialObserver& observer) {
  assert(!config_.models.empty());
  CampaignResult result;
  result.workload = supervisor_->workload_name();
  result.time_windows = supervisor_->time_windows();
  result.by_window.resize(result.time_windows);
  result.trials.reserve(config_.trials);

  const std::uint64_t fingerprint = campaign_fingerprint(
      config_, result.workload, result.time_windows);

  if (config_.metrics != nullptr) {
    config_.metrics->gauge("campaign.trials_target")
        .set(static_cast<double>(config_.trials));
  }
  if (config_.trace != nullptr) {
    telemetry::TraceCampaign header;
    header.workload = result.workload;
    header.trials = config_.trials;
    header.seed = config_.seed;
    header.policy = std::string(to_string(config_.policy));
    for (FaultModel model : config_.models) {
      header.models.emplace_back(to_string(model));
    }
    header.time_windows = result.time_windows;
    header.resumed = config_.resume;
    config_.trace->campaign(header);
  }

  // Durability: replay an existing journal (resume) and/or open a writer.
  std::unique_ptr<CampaignJournalWriter> journal;
  std::size_t completed = 0;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      const JournalContents contents = read_journal(config_.journal_path);
      if (contents.header.fingerprint != fingerprint) {
        throw std::runtime_error(
            "campaign resume rejected: journal '" + config_.journal_path +
            "' was written by a different campaign configuration");
      }
      if (contents.dropped_bytes > 0) {
        util::log_warn() << result.workload << ": journal dropped "
                         << contents.dropped_bytes
                         << " bytes of torn tail on resume";
      }
      for (const JournalRecord& record : contents.records) {
        accumulate_trial(result, record.trial);
        // The resumed trace file already holds these trials; only the
        // metrics (process-local) need the replay.
        if (config_.metrics != nullptr) {
          feed_metrics(*config_.metrics, record.trial, /*replayed=*/true);
        }
        if (record.trial.outcome != Outcome::kNotInjected) ++completed;
        ++result.attempts;
      }
      result.resumed_trials = completed;
      util::log_info() << result.workload << ": resumed " << completed << "/"
                       << config_.trials << " trials from '"
                       << config_.journal_path << "'";
      journal = std::make_unique<CampaignJournalWriter>(
          config_.journal_path, contents.valid_bytes, config_.journal_fsync);
    } else {
      JournalHeader header;
      header.fingerprint = fingerprint;
      header.time_windows = result.time_windows;
      header.workload = result.workload;
      journal = std::make_unique<CampaignJournalWriter>(
          config_.journal_path, header, config_.journal_fsync);
    }
  }

  // Trial seeds are drawn sequentially from the campaign seed, one per
  // attempt; replaying `attempts` draws realigns a resumed stream so the
  // continuation is bit-identical to an uninterrupted campaign.
  util::Rng seed_stream(config_.seed);
  for (std::uint64_t i = 0; i < result.attempts; ++i) seed_stream.next();

  const std::size_t retry_budget =
      config_.trials * (1 + config_.max_retry_factor);
  std::size_t attempts = static_cast<std::size_t>(result.attempts);
  std::size_t consecutive_failures = 0;
  // The seed draw for the current attempt; held across infrastructure
  // retries so a failed attempt never consumes a second draw (which would
  // desynchronize the stream a resume replays).
  bool seed_pending = false;
  std::uint64_t pending_seed = 0;

  while (completed < config_.trials && attempts < retry_budget) {
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }

    if (!seed_pending) {
      pending_seed = seed_stream.next();
      seed_pending = true;
    }
    TrialConfig trial;
    trial.trial_seed = pending_seed;
    trial.model = config_.models[completed % config_.models.size()];
    trial.policy = config_.policy;
    trial.earliest_fraction = config_.earliest_fraction;
    trial.latest_fraction = config_.latest_fraction;

    // Infrastructure failures (fork/waitpid, not trial DUEs) are retried
    // with exponential backoff; K consecutive ones trip the circuit
    // breaker and abort cleanly with the journal intact.
    const double trace_ts_ms =
        config_.trace != nullptr ? config_.trace->now_ms() : 0.0;
    TrialResult trial_result;
    try {
      trial_result = supervisor_->run_trial(trial);
    } catch (const std::exception& error) {
      ++consecutive_failures;
      if (config_.metrics != nullptr) {
        config_.metrics->counter("campaign.infra_failures").inc();
      }
      util::log_warn() << result.workload << ": trial infrastructure failure ("
                       << consecutive_failures << "/"
                       << config_.max_consecutive_failures
                       << "): " << error.what();
      if (consecutive_failures >= config_.max_consecutive_failures) {
        result.aborted = true;
        break;
      }
      const unsigned doublings = static_cast<unsigned>(
          std::min<std::size_t>(consecutive_failures - 1, 10));
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::uint64_t>(config_.retry_backoff_initial_ms)
          << doublings));
      continue;  // same attempt: the held seed draw is reused, not redrawn
    }
    consecutive_failures = 0;
    seed_pending = false;
    ++attempts;

    // Journal first (write-ahead of the in-memory tallies), then tally.
    if (journal != nullptr) {
      JournalRecord record;
      record.attempt_index = attempts - 1;
      record.trial = trial_result;
      journal->append(record);
    }
    if (config_.trace != nullptr) {
      config_.trace->trial(
          make_trial_trace(trial_result, attempts - 1, trace_ts_ms));
    }
    if (config_.metrics != nullptr) {
      feed_metrics(*config_.metrics, trial_result, /*replayed=*/false);
    }
    accumulate_trial(result, trial_result);
    if (trial_result.outcome == Outcome::kNotInjected) {
      continue;  // retry with a fresh seed; the model slot is not consumed
    }
    ++completed;

    if (observer) {
      const bool has_output = trial_result.outcome == Outcome::kMasked ||
                              trial_result.outcome == Outcome::kSdc;
      observer(trial_result, has_output ? supervisor_->last_output()
                                        : std::span<const std::byte>{});
    }

    if (completed % 500 == 0) {
      util::log_info() << result.workload << ": " << completed << "/"
                       << config_.trials << " trials";
    }
  }
  result.attempts = attempts;

  if (journal != nullptr) journal->sync();
  if (config_.trace != nullptr) {
    telemetry::TraceEnd end;
    end.completed = completed;
    end.masked = result.overall.masked;
    end.sdc = result.overall.sdc;
    end.due = result.overall.due;
    end.not_injected = result.not_injected;
    end.interrupted = result.interrupted;
    end.aborted = result.aborted;
    config_.trace->end(end);
    config_.trace->sync();
  }
  if (result.interrupted) {
    util::log_warn() << result.workload << ": campaign interrupted after "
                     << completed << "/" << config_.trials
                     << " trials; journal flushed";
  } else if (result.aborted) {
    util::log_warn() << result.workload << ": campaign aborted after "
                     << config_.max_consecutive_failures
                     << " consecutive infrastructure failures";
  } else if (completed < config_.trials) {
    util::log_warn() << result.workload << ": campaign stopped after "
                     << attempts << " attempts with only " << completed
                     << " injected trials";
  }
  return result;
}

}  // namespace phifi::fi

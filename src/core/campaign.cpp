#include "core/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace phifi::fi {

namespace {

/// Flattens one trial into the string-typed trace record (the telemetry
/// layer deliberately knows nothing about core enums).
telemetry::TrialTrace make_trial_trace(const TrialResult& trial,
                                       std::uint64_t attempt, double ts_ms,
                                       unsigned slot) {
  telemetry::TrialTrace t;
  t.attempt = attempt;
  t.outcome = std::string(to_string(trial.outcome));
  t.due_kind = std::string(to_string(trial.due_kind));
  t.injected = trial.record.injected;
  t.model = std::string(to_string(trial.record.model));
  t.site = trial.record.site_name;
  t.category = trial.record.category;
  t.frame = trial.record.frame == FrameKind::kWorker ? "worker" : "global";
  t.worker = trial.record.worker;
  t.slot = slot;
  t.progress_fraction = trial.record.progress_fraction;
  t.window = trial.window;
  t.seconds = trial.seconds;
  t.heartbeats = trial.heartbeats;
  t.escalated_kill = trial.escalated_kill;
  t.fork_mode = std::string(to_string(trial.fork_mode));
  t.fork_seconds = trial.fork_done_seconds;
  t.setup_skipped = trial.setup_skipped;
  t.ts_ms = ts_ms;
  t.spans.push_back({"fork", 0.0, trial.fork_done_seconds * 1e3});
  t.spans.push_back(
      {"run", trial.fork_done_seconds * 1e3, trial.reaped_seconds * 1e3});
  t.spans.push_back({"classify", trial.reaped_seconds * 1e3,
                     trial.classified_seconds * 1e3});
  for (const PhaseRecord& phase : trial.phases) {
    t.phases.push_back({phase.name, phase.fraction, phase.t_seconds * 1e3});
  }
  return t;
}

/// Feeds one completed attempt into the metrics registry. Replayed
/// (journal-resumed) trials bump the campaign.* counters — the live
/// progress view must reflect total campaign state — but stay out of the
/// latency histogram, which records only this process's observations.
void feed_metrics(telemetry::MetricsRegistry& metrics,
                  const TrialResult& trial, bool replayed) {
  if (trial.outcome == Outcome::kNotInjected) {
    metrics.counter("campaign.not_injected").inc();
    return;
  }
  metrics.counter("campaign.completed").inc();
  switch (trial.outcome) {
    case Outcome::kMasked: metrics.counter("campaign.masked").inc(); break;
    case Outcome::kSdc: metrics.counter("campaign.sdc").inc(); break;
    case Outcome::kDue:
      metrics.counter("campaign.due").inc();
      metrics
          .counter("campaign.due." + std::string(to_string(trial.due_kind)))
          .inc();
      break;
    case Outcome::kNotInjected: break;
  }
  if (trial.escalated_kill) {
    metrics.counter("campaign.escalated_kills").inc();
  }
  if (!replayed) {
    metrics
        .histogram("campaign.trial_latency_ms",
                   telemetry::default_latency_edges_ms())
        .observe(trial.seconds * 1e3);
  }
}

/// Feeds one committed injected trial into the streaming estimator, in the
/// commit point's deterministic attempt order (replayed trials included,
/// so estimator state is identical across resumes and jobs values).
void feed_estimator(telemetry::CampaignEstimator& estimator,
                    const TrialResult& trial) {
  auto outcome = telemetry::EstimatorOutcome::kMasked;
  switch (trial.outcome) {
    case Outcome::kMasked: outcome = telemetry::EstimatorOutcome::kMasked; break;
    case Outcome::kSdc: outcome = telemetry::EstimatorOutcome::kSdc; break;
    case Outcome::kDue: outcome = telemetry::EstimatorOutcome::kDue; break;
    case Outcome::kNotInjected: return;
  }
  estimator.record(outcome, std::string(to_string(trial.record.model)),
                   trial.window, trial.record.category,
                   trial.record.injected);
}

/// A reaped trial waiting for its turn at the commit point. Completions
/// arrive in whatever order the workers finish; they are buffered here and
/// committed (journal, trace, tallies, observer) strictly in attempt-index
/// order so any jobs value yields bit-identical campaign state.
struct PendingTrial {
  TrialResult trial;
  double ts_ms = 0.0;
  unsigned slot = 0;
  /// Output snapshot for the observer, captured at reap time because the
  /// slot's shm channel may be reused before this attempt commits.
  std::vector<std::byte> output;
  /// Reap timestamp, set only when a profiler is attached: the reorder-
  /// buffer wait is commit time minus this.
  std::chrono::steady_clock::time_point reaped_at{};
};

/// Assembles the per-phase latency breakdown of one committed attempt for
/// the profiler. Child wall-clock is the reap interval; the child's own
/// reported setup/inject/classify slices are carved out of it and the rest
/// is the run. Negative residues (clock skew between the child's and the
/// parent's measurements) clamp to zero inside profile_us_from_seconds.
telemetry::TrialProfile make_trial_profile(const TrialResult& trial,
                                           std::uint64_t attempt,
                                           double rob_wait_seconds,
                                           double journal_seconds,
                                           double flush_seconds) {
  using telemetry::ProfilePhase;
  using telemetry::profile_us_from_seconds;
  telemetry::TrialProfile p;
  p.attempt = attempt;
  p.fork_mode = std::string(to_string(trial.fork_mode));
  p.us(ProfilePhase::kFork) =
      profile_us_from_seconds(trial.fork_done_seconds);
  p.us(ProfilePhase::kSetup) = profile_us_from_seconds(trial.setup_seconds);
  p.us(ProfilePhase::kInject) = profile_us_from_seconds(trial.inject_seconds);
  p.us(ProfilePhase::kRun) = profile_us_from_seconds(
      (trial.reaped_seconds - trial.fork_done_seconds) - trial.setup_seconds -
      trial.inject_seconds - trial.classify_child_seconds);
  p.us(ProfilePhase::kClassify) = profile_us_from_seconds(
      (trial.classified_seconds - trial.reaped_seconds) +
      trial.classify_child_seconds);
  p.us(ProfilePhase::kRobWait) = profile_us_from_seconds(rob_wait_seconds);
  p.us(ProfilePhase::kJournal) = profile_us_from_seconds(journal_seconds);
  p.us(ProfilePhase::kFlush) = profile_us_from_seconds(flush_seconds);
  return p;
}

}  // namespace

bool campaign_ci_stop_reached(const CampaignConfig& config,
                              const OutcomeTally& overall) {
  if (config.stop_ci_width <= 0.0) return false;
  const std::uint64_t n = overall.total();
  if (n == 0) return false;
  return util::wilson_interval(overall.sdc, n).half_width() <=
         config.stop_ci_width;
}

void OutcomeTally::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kDue: ++due; break;
    case Outcome::kNotInjected: break;
  }
}

OutcomeTally& OutcomeTally::operator+=(const OutcomeTally& other) {
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  return *this;
}

void accumulate_trial(CampaignResult& result, const TrialResult& trial) {
  result.total_seconds += trial.seconds;
  if (trial.outcome == Outcome::kNotInjected) {
    ++result.not_injected;
    return;
  }
  result.overall.add(trial.outcome);
  if (trial.outcome == Outcome::kDue) {
    ++result.due_kinds[std::string(to_string(trial.due_kind))];
  }
  result.by_model[static_cast<std::size_t>(trial.record.model)].add(
      trial.outcome);
  if (trial.window < result.by_window.size()) {
    result.by_window[trial.window].add(trial.outcome);
  }
  if (trial.record.injected) {
    result.by_category[trial.record.category].add(trial.outcome);
    result
        .by_frame[trial.record.frame == FrameKind::kWorker ? "worker"
                                                           : "global"]
        .add(trial.outcome);
  }
  result.trials.push_back(trial);
}

std::uint64_t trial_seed_for(std::uint64_t campaign_seed,
                             std::uint64_t attempt_index) {
  // SplitMix64 whitening of the (seed, index) pair: adjacent indices give
  // statistically independent trial seeds, and any worker can compute any
  // attempt's seed without a shared draw cursor.
  util::SplitMix64 mix(campaign_seed ^
                       (0x9e3779b97f4a7c15ULL * (attempt_index + 1)));
  return mix.next();
}

std::uint64_t campaign_fingerprint(const CampaignConfig& config,
                                   std::string_view workload,
                                   unsigned time_windows) {
  // FNV-1a over every field a resume must agree on.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  };
  for (char c : workload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.policy));
  mix(config.models.size());
  for (FaultModel model : config.models) {
    mix(static_cast<std::uint64_t>(model));
  }
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &config.earliest_fraction, sizeof(bits));
  mix(bits);
  std::memcpy(&bits, &config.latest_fraction, sizeof(bits));
  mix(bits);
  mix(config.trials);
  mix(time_windows);
  // Sequential stopping is campaign shape: a resume must halt at the same
  // attempt the uninterrupted run would have, so the epsilon (0.0 =
  // disabled) is part of the identity.
  std::memcpy(&bits, &config.stop_ci_width, sizeof(bits));
  mix(bits);
  // Scheme version: v2 = counter-indexed seeds + attempt-index model
  // cycling; v3 = v2 + stop_ci_width in the fingerprint. Journals from
  // older schemes must not resume into this one.
  // config_.jobs is deliberately NOT mixed: any jobs value may resume any
  // journal.
  mix(3);
  return hash;
}

CampaignResult Campaign::run(const TrialObserver& observer) {
  assert(!config_.models.empty());
  using Clock = std::chrono::steady_clock;
  const unsigned jobs = std::max(1u, config_.jobs);
  CampaignResult result;
  result.workload = supervisor_->workload_name();
  result.time_windows = supervisor_->time_windows();
  result.by_window.resize(result.time_windows);
  result.trials.reserve(config_.trials);

  const std::uint64_t fingerprint = campaign_fingerprint(
      config_, result.workload, result.time_windows);

  if (config_.metrics != nullptr) {
    config_.metrics->gauge("campaign.trials_target")
        .set(static_cast<double>(config_.trials));
    config_.metrics->gauge("campaign.workers_active").set(0.0);
  }
  if (config_.trace != nullptr) {
    telemetry::TraceCampaign header;
    header.workload = result.workload;
    header.trials = config_.trials;
    header.seed = config_.seed;
    header.policy = std::string(to_string(config_.policy));
    for (FaultModel model : config_.models) {
      header.models.emplace_back(to_string(model));
    }
    header.time_windows = result.time_windows;
    header.resumed = config_.resume;
    header.jobs = jobs;
    config_.trace->campaign(header);
  }

  // Durability: replay an existing journal (resume) and/or open a writer.
  std::unique_ptr<CampaignJournalWriter> journal;
  std::size_t completed = 0;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      const JournalContents contents = read_journal(config_.journal_path);
      if (contents.header.fingerprint != fingerprint) {
        throw std::runtime_error(
            "campaign resume rejected: journal '" + config_.journal_path +
            "' was written by a different campaign configuration");
      }
      if (contents.dropped_bytes > 0) {
        util::log_warn() << result.workload << ": journal dropped "
                         << contents.dropped_bytes
                         << " bytes of torn tail on resume";
      }
      // Replay in attempt-index order, dropping duplicates: the commit
      // point writes indices contiguously, so after sorting the records
      // must read 0,1,2,... — a repeated index is a duplicate to skip, a
      // gap means everything after it must be re-run.
      std::vector<JournalRecord> records = contents.records;
      std::stable_sort(records.begin(), records.end(),
                       [](const JournalRecord& a, const JournalRecord& b) {
                         return a.attempt_index < b.attempt_index;
                       });
      std::uint64_t expected = 0;
      for (const JournalRecord& record : records) {
        if (record.attempt_index < expected) {
          util::log_warn() << result.workload
                           << ": journal duplicate of attempt "
                           << record.attempt_index << " skipped on resume";
          continue;
        }
        if (record.attempt_index > expected) {
          util::log_warn() << result.workload << ": journal gap at attempt "
                           << expected << "; re-running from there";
          break;
        }
        accumulate_trial(result, record.trial);
        // The resumed trace file already holds these trials; only the
        // metrics and estimator (process-local) need the replay.
        if (config_.metrics != nullptr) {
          feed_metrics(*config_.metrics, record.trial, /*replayed=*/true);
        }
        if (config_.estimator != nullptr) {
          feed_estimator(*config_.estimator, record.trial);
        }
        if (record.trial.outcome != Outcome::kNotInjected) ++completed;
        ++expected;
        // Replay walks the same commit boundaries the original run did, so
        // the stop rule fires at the identical attempt (stop_ci_width is
        // fingerprinted: the journal cannot carry a different epsilon).
        if (campaign_ci_stop_reached(config_, result.overall)) {
          result.stopped_early = true;
          break;
        }
      }
      result.attempts = expected;
      result.resumed_trials = completed;
      util::log_info() << result.workload << ": resumed " << completed << "/"
                       << config_.trials << " trials from '"
                       << config_.journal_path << "'";
      journal = std::make_unique<CampaignJournalWriter>(
          config_.journal_path, contents.valid_bytes, config_.journal_fsync,
          config_.journal_batch);
    } else {
      JournalHeader header;
      header.fingerprint = fingerprint;
      header.time_windows = result.time_windows;
      header.workload = result.workload;
      header.golden_digest = supervisor_->golden_digest();
      header.golden_seconds = supervisor_->golden_seconds();
      header.golden_output_bytes = supervisor_->golden_output_bytes();
      journal = std::make_unique<CampaignJournalWriter>(
          config_.journal_path, header, config_.journal_fsync,
          config_.journal_batch);
    }
  }

  // ---- multi-worker scheduler ----
  //
  // Attempt indices are the campaign's single source of truth: index i's
  // seed is trial_seed_for(seed, i) and its fault model is models[i % M],
  // both independent of execution order. Up to `jobs` attempts run in
  // flight; completions land in `pending` and commit strictly in index
  // order, so --jobs 8, --jobs 1, and any resume agree bit-for-bit.
  // Attempts launched past the finish line (the scheduler cannot know in
  // advance which attempt completes the campaign) are killed uncommitted.
  supervisor_->ensure_slots(jobs);
  const std::uint64_t retry_budget =
      config_.trials * (1 + config_.max_retry_factor);
  std::uint64_t next_index = result.attempts;   // next fresh attempt
  std::uint64_t commit_index = result.attempts; // next index to commit
  std::set<std::uint64_t> retry_queue;  // infra-failed indices, smallest first
  std::map<std::uint64_t, PendingTrial> pending;
  // Per-slot (attempt index, launch timestamp) of the in-flight trial.
  std::vector<std::optional<std::pair<std::uint64_t, double>>> inflight(jobs);
  std::size_t consecutive_failures = 0;
  bool draining = false;  // stop requested: no new launches, commit the rest
  auto backoff_until = Clock::now();

  while (true) {
    // (1) Commit every buffered completion that is next in index order.
    while (completed < config_.trials) {
      const auto it = pending.find(commit_index);
      if (it == pending.end()) break;
      PendingTrial ready = std::move(it->second);
      pending.erase(it);
      // Journal first (write-ahead of the in-memory tallies), then tally.
      double journal_seconds = 0.0;
      double flush_seconds = 0.0;
      if (journal != nullptr) {
        JournalRecord record;
        record.attempt_index = commit_index;
        record.trial = ready.trial;
        if (config_.profiler != nullptr) {
          const auto journal_start = Clock::now();
          journal->append(record);
          flush_seconds = journal->last_fsync_seconds();
          journal_seconds =
              std::chrono::duration<double>(Clock::now() - journal_start)
                  .count() -
              flush_seconds;
        } else {
          journal->append(record);
        }
      }
      if (config_.trace != nullptr) {
        config_.trace->trial(make_trial_trace(ready.trial, commit_index,
                                              ready.ts_ms, ready.slot));
      }
      if (config_.metrics != nullptr) {
        feed_metrics(*config_.metrics, ready.trial, /*replayed=*/false);
      }
      accumulate_trial(result, ready.trial);
      if (config_.estimator != nullptr) {
        feed_estimator(*config_.estimator, ready.trial);
      }
      if (config_.profiler != nullptr) {
        const double rob_wait =
            std::chrono::duration<double>(Clock::now() - ready.reaped_at)
                .count();
        config_.profiler->trial(make_trial_profile(
            ready.trial, commit_index, rob_wait, journal_seconds,
            flush_seconds));
      }
      ++commit_index;
      if (ready.trial.outcome == Outcome::kNotInjected) continue;
      ++completed;
      if (observer) {
        const bool has_output = ready.trial.outcome == Outcome::kMasked ||
                                ready.trial.outcome == Outcome::kSdc;
        observer(ready.trial, has_output ? std::span<const std::byte>(
                                               ready.output)
                                         : std::span<const std::byte>{});
      }
      if (completed % 500 == 0) {
        util::log_info() << result.workload << ": " << completed << "/"
                         << config_.trials << " trials";
      }
      // Sequential stop, checked only here — the deterministic commit
      // boundary — never on raw completion order. Buffered completions
      // past this attempt stay uncommitted (killed below), exactly like
      // finish-line overshoot, so every jobs value stops identically.
      if (campaign_ci_stop_reached(config_, result.overall)) {
        result.stopped_early = true;
        break;
      }
    }
    if (result.stopped_early || completed >= config_.trials) break;

    // (2) Cooperative stop: finish what is in flight, commit it, return.
    if (!draining && config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      draining = true;
    }

    // (3) Launch into free slots: infra-failed retries first (they reuse
    // their original index and therefore their original seed), then fresh
    // indices up to the retry budget.
    if (!draining && !result.aborted && Clock::now() >= backoff_until) {
      while (supervisor_->active_slots() < jobs) {
        const bool from_retry = !retry_queue.empty();
        std::uint64_t index = 0;
        if (from_retry) {
          index = *retry_queue.begin();
        } else if (next_index < retry_budget) {
          index = next_index;
        } else {
          break;  // attempt budget exhausted
        }
        unsigned slot = 0;
        while (slot < jobs && supervisor_->slot_active(slot)) ++slot;
        assert(slot < jobs);

        TrialConfig trial;
        trial.trial_seed = trial_seed_for(config_.seed, index);
        trial.model = config_.models[index % config_.models.size()];
        trial.policy = config_.policy;
        trial.earliest_fraction = config_.earliest_fraction;
        trial.latest_fraction = config_.latest_fraction;

        const double ts_ms =
            config_.trace != nullptr ? config_.trace->now_ms() : 0.0;
        try {
          supervisor_->start_trial(slot, trial);
        } catch (const std::exception& error) {
          // Infrastructure failure (fork, not a trial outcome): back off
          // exponentially and retry the same index; K consecutive ones
          // trip the circuit breaker. One completion anywhere resets the
          // count, so a transient stretch does not accumulate forever —
          // while a genuinely wedged host still trips it even with other
          // slots busy.
          ++consecutive_failures;
          if (config_.metrics != nullptr) {
            config_.metrics->counter("campaign.infra_failures").inc();
          }
          util::log_warn() << result.workload
                           << ": trial infrastructure failure ("
                           << consecutive_failures << "/"
                           << config_.max_consecutive_failures
                           << "): " << error.what();
          retry_queue.insert(index);
          if (!from_retry) ++next_index;
          if (consecutive_failures >= config_.max_consecutive_failures) {
            result.aborted = true;
          } else {
            const unsigned doublings = static_cast<unsigned>(
                std::min<std::size_t>(consecutive_failures - 1, 10));
            backoff_until =
                Clock::now() +
                std::chrono::milliseconds(
                    static_cast<std::uint64_t>(
                        config_.retry_backoff_initial_ms)
                    << doublings);
          }
          break;
        }
        if (from_retry) {
          retry_queue.erase(retry_queue.begin());
        } else {
          ++next_index;
        }
        inflight[slot] = {{index, ts_ms}};
      }
      if (config_.metrics != nullptr) {
        config_.metrics->gauge("campaign.workers_active")
            .set(static_cast<double>(supervisor_->active_slots()));
      }
    }

    // (4) Nothing in flight: either the campaign is winding down (drain,
    // abort, budget exhausted) or every launch is gated on backoff.
    if (supervisor_->active_slots() == 0) {
      if (draining || result.aborted) break;
      if (retry_queue.empty() && next_index >= retry_budget) break;
      const auto now = Clock::now();
      if (now < backoff_until) {
        // Sleep in small steps so a stop request stays responsive.
        std::this_thread::sleep_for(
            std::min(std::chrono::duration_cast<std::chrono::milliseconds>(
                         backoff_until - now),
                     std::chrono::milliseconds(10)));
      }
      continue;
    }

    // (5) Reap: buffer completions for the commit point; any completion
    // proves the fork machinery works again.
    std::vector<SlotCompletion> done = supervisor_->poll_slots();
    if (done.empty()) {
      supervisor_->wait_for_completion();
      continue;
    }
    consecutive_failures = 0;
    for (SlotCompletion& completion : done) {
      assert(inflight[completion.slot].has_value());
      const auto [index, ts_ms] = *inflight[completion.slot];
      inflight[completion.slot].reset();
      PendingTrial entry;
      entry.trial = std::move(completion.result);
      entry.ts_ms = ts_ms;
      entry.slot = completion.slot;
      if (observer && (entry.trial.outcome == Outcome::kMasked ||
                       entry.trial.outcome == Outcome::kSdc)) {
        const auto output = supervisor_->slot_output(completion.slot);
        entry.output.assign(output.begin(), output.end());
      }
      if (config_.profiler != nullptr) entry.reaped_at = Clock::now();
      pending.emplace(index, std::move(entry));
    }
    if (config_.metrics != nullptr) {
      config_.metrics->gauge("campaign.workers_active")
          .set(static_cast<double>(supervisor_->active_slots()));
    }
  }
  result.attempts = commit_index;

  // Cancel speculative attempts past the finish line (and anything still
  // in flight on abort): killed, never journaled, so the commit boundary
  // is identical for every jobs value.
  supervisor_->kill_active_slots();
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("campaign.workers_active").set(0.0);
  }

  if (journal != nullptr) journal->sync();
  if (config_.profiler != nullptr) config_.profiler->sync();
  if (config_.trace != nullptr) {
    telemetry::TraceEnd end;
    end.completed = completed;
    end.masked = result.overall.masked;
    end.sdc = result.overall.sdc;
    end.due = result.overall.due;
    end.not_injected = result.not_injected;
    end.interrupted = result.interrupted;
    end.aborted = result.aborted;
    end.stopped_early = result.stopped_early;
    end.elapsed_ms = config_.trace->now_ms();
    end.due_kinds = result.due_kinds;
    config_.trace->end(end);
    config_.trace->sync();
  }
  if (result.stopped_early) {
    util::log_info() << result.workload << ": precision target reached ("
                     << "SDC CI half-width <= " << config_.stop_ci_width
                     << ") after " << completed << "/" << config_.trials
                     << " trials; stopping early";
  } else if (result.interrupted) {
    util::log_warn() << result.workload << ": campaign interrupted after "
                     << completed << "/" << config_.trials
                     << " trials; journal flushed";
  } else if (result.aborted) {
    util::log_warn() << result.workload << ": campaign aborted after "
                     << config_.max_consecutive_failures
                     << " consecutive infrastructure failures";
  } else if (completed < config_.trials) {
    util::log_warn() << result.workload << ": campaign stopped after "
                     << result.attempts << " attempts with only " << completed
                     << " injected trials";
  }
  return result;
}

RangeResult Campaign::run_range(std::uint64_t begin, std::uint64_t end,
                                const RangeHooks& hooks) {
  assert(!config_.models.empty());
  using Clock = std::chrono::steady_clock;
  const unsigned jobs = std::max(1u, config_.jobs);
  RangeResult result;
  if (begin >= end) return result;

  // Same scheduler shape as run(): counter-indexed seeds, reorder-buffer
  // commit, infra retries with backoff and a circuit breaker — but the
  // finish line is simply `end` and durability belongs to on_commit. No
  // stop rule here: a lease is executed to completion and the campaign
  // boundary (trial count or --stop-ci-width) is re-derived at merge time,
  // where it lands on the identical attempt a --jobs 1 run would.
  supervisor_->ensure_slots(jobs);
  std::uint64_t next_index = begin;
  std::uint64_t commit_index = begin;
  std::set<std::uint64_t> retry_queue;
  std::map<std::uint64_t, PendingTrial> pending;
  std::vector<std::optional<std::pair<std::uint64_t, double>>> inflight(jobs);
  std::size_t consecutive_failures = 0;
  auto backoff_until = Clock::now();

  while (true) {
    // (1) Commit buffered completions that are next in index order.
    while (commit_index < end) {
      const auto it = pending.find(commit_index);
      if (it == pending.end()) break;
      PendingTrial ready = std::move(it->second);
      pending.erase(it);
      // Durability lives behind on_commit here (the fabric worker's shard
      // journal), so its whole duration is the journal phase; the flush
      // split is unavailable through the hook and reads as zero.
      double journal_seconds = 0.0;
      if (hooks.on_commit) {
        JournalRecord record;
        record.attempt_index = commit_index;
        record.trial = ready.trial;
        if (config_.profiler != nullptr) {
          const auto journal_start = Clock::now();
          hooks.on_commit(record);
          journal_seconds =
              std::chrono::duration<double>(Clock::now() - journal_start)
                  .count();
        } else {
          hooks.on_commit(record);
        }
      }
      if (config_.trace != nullptr) {
        config_.trace->trial(make_trial_trace(ready.trial, commit_index,
                                              ready.ts_ms, ready.slot));
      }
      if (config_.metrics != nullptr) {
        feed_metrics(*config_.metrics, ready.trial, /*replayed=*/false);
      }
      if (config_.estimator != nullptr) {
        feed_estimator(*config_.estimator, ready.trial);
      }
      if (config_.profiler != nullptr) {
        const double rob_wait =
            std::chrono::duration<double>(Clock::now() - ready.reaped_at)
                .count();
        config_.profiler->trial(make_trial_profile(
            ready.trial, commit_index, rob_wait, journal_seconds,
            /*flush_seconds=*/0.0));
      }
      ++commit_index;
      ++result.committed;
      if (ready.trial.outcome != Outcome::kNotInjected) ++result.injected;
    }
    if (commit_index >= end) break;

    // (2) Cancellation: a revoked lease or a stop request abandons the
    // range immediately — committed records stand, in-flight children are
    // killed below, and overlap with whoever re-executes the range dedups
    // at merge (counter-indexed seeds make the re-execution identical).
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      break;
    }
    if (hooks.on_tick && !hooks.on_tick()) {
      result.cancelled = true;
      break;
    }

    // (3) Launch into free slots: retries first (same index, same seed),
    // then fresh indices up to the end of the range.
    if (!result.aborted && Clock::now() >= backoff_until) {
      while (supervisor_->active_slots() < jobs) {
        const bool from_retry = !retry_queue.empty();
        std::uint64_t index = 0;
        if (from_retry) {
          index = *retry_queue.begin();
        } else if (next_index < end) {
          index = next_index;
        } else {
          break;  // every index is committed, pending, or in flight
        }
        unsigned slot = 0;
        while (slot < jobs && supervisor_->slot_active(slot)) ++slot;
        assert(slot < jobs);

        TrialConfig trial;
        trial.trial_seed = trial_seed_for(config_.seed, index);
        trial.model = config_.models[index % config_.models.size()];
        trial.policy = config_.policy;
        trial.earliest_fraction = config_.earliest_fraction;
        trial.latest_fraction = config_.latest_fraction;

        const double ts_ms =
            config_.trace != nullptr ? config_.trace->now_ms() : 0.0;
        try {
          supervisor_->start_trial(slot, trial);
        } catch (const std::exception& error) {
          ++consecutive_failures;
          if (config_.metrics != nullptr) {
            config_.metrics->counter("campaign.infra_failures").inc();
          }
          util::log_warn() << "range [" << begin << "," << end
                           << "): trial infrastructure failure ("
                           << consecutive_failures << "/"
                           << config_.max_consecutive_failures
                           << "): " << error.what();
          retry_queue.insert(index);
          if (!from_retry) ++next_index;
          if (consecutive_failures >= config_.max_consecutive_failures) {
            result.aborted = true;
          } else {
            const unsigned doublings = static_cast<unsigned>(
                std::min<std::size_t>(consecutive_failures - 1, 10));
            backoff_until =
                Clock::now() +
                std::chrono::milliseconds(
                    static_cast<std::uint64_t>(
                        config_.retry_backoff_initial_ms)
                    << doublings);
          }
          break;
        }
        if (from_retry) {
          retry_queue.erase(retry_queue.begin());
        } else {
          ++next_index;
        }
        inflight[slot] = {{index, ts_ms}};
      }
      if (config_.metrics != nullptr) {
        config_.metrics->gauge("campaign.workers_active")
            .set(static_cast<double>(supervisor_->active_slots()));
      }
    }

    // (4) Nothing in flight: abort, wait out a retry backoff, or loop back
    // to the commit point (everything left must be buffered in `pending`).
    if (supervisor_->active_slots() == 0) {
      if (result.aborted) break;
      const auto now = Clock::now();
      if (now < backoff_until) {
        std::this_thread::sleep_for(
            std::min(std::chrono::duration_cast<std::chrono::milliseconds>(
                         backoff_until - now),
                     std::chrono::milliseconds(10)));
      }
      continue;
    }

    // (5) Reap: buffer completions for the commit point.
    std::vector<SlotCompletion> done = supervisor_->poll_slots();
    if (done.empty()) {
      supervisor_->wait_for_completion();
      continue;
    }
    consecutive_failures = 0;
    for (SlotCompletion& completion : done) {
      assert(inflight[completion.slot].has_value());
      const auto [index, ts_ms] = *inflight[completion.slot];
      inflight[completion.slot].reset();
      PendingTrial entry;
      entry.trial = std::move(completion.result);
      entry.ts_ms = ts_ms;
      entry.slot = completion.slot;
      if (config_.profiler != nullptr) entry.reaped_at = Clock::now();
      pending.emplace(index, std::move(entry));
    }
  }

  // Kill in-flight attempts past a cancel/abort uncommitted, exactly like
  // run() kills finish-line overshoot.
  supervisor_->kill_active_slots();
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("campaign.workers_active").set(0.0);
  }
  return result;
}

}  // namespace phifi::fi

// Execution-progress tracking, the injection trigger.
//
// CAROL-FI interrupts the program after a random delay: GDB stops the
// world, the Flip-script corrupts one variable, execution resumes. This
// reproduction triggers on *execution progress* instead: the workload ticks
// a step counter as it runs, and the tick that crosses a uniformly sampled
// target fraction fires the armed injection hook synchronously on the
// ticking thread. Same distribution of injection times, exact time-window
// bookkeeping (Fig. 6), and no dependence on thread-scheduling latency —
// which matters both for determinism and because a campaign forks thousands
// of children on a possibly oversubscribed host.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace phifi::fi {

class ProgressTracker {
 public:
  /// Hook invoked once, on the ticking thread, when progress first reaches
  /// the armed fraction. Receives the fraction at the crossing tick.
  using InjectionHook = std::function<void(double)>;

  /// Hook invoked each time progress crosses another 1/divisions of the run
  /// (the supervisor uses it to bump the shared-channel heartbeat). May fire
  /// more than once per division under concurrent ticking; callees must
  /// treat it as a monotone liveness pulse, not an exact counter.
  using PulseHook = std::function<void()>;

  /// Hook invoked when the workload announces a named execution phase via
  /// enter_phase() (the supervisor forwards it to the shared channel, the
  /// tracer records it per trial). Receives the phase name and the
  /// execution-progress fraction at the transition.
  using PhaseHook = std::function<void(std::string_view, double)>;

  void reset(std::uint64_t total_steps) {
    total_.store(total_steps, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    finished_.store(false, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    armed_ = false;
    hook_ = nullptr;
    pulse_divisions_ = 0;
    pulse_done_.store(0, std::memory_order_relaxed);
    pulse_ = nullptr;
    phase_hook_ = nullptr;
  }

  /// Arms the one-shot injection hook. Call before run(), never during.
  void arm(double target_fraction, InjectionHook hook) {
    target_ = target_fraction;
    hook_ = std::move(hook);
    armed_ = true;
  }

  /// Arms the repeating pulse hook: fires whenever progress enters a new
  /// 1/divisions slice of the run. Call before run(); divisions == 0
  /// disables pulsing.
  void set_pulse(unsigned divisions, PulseHook pulse) {
    pulse_divisions_ = divisions;
    pulse_ = std::move(pulse);
    pulse_done_.store(0, std::memory_order_relaxed);
  }

  /// Arms the phase hook. Call before run(); no hook means enter_phase()
  /// is a no-op, so phase annotations cost nothing outside traced trials.
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  /// Called by the workload at the start of each named execution phase
  /// (setup prologue, main kernel, epilogue...). Must be called from run()
  /// on the driving thread, not from inside kernel bodies.
  void enter_phase(std::string_view name) {
    if (phase_hook_) phase_hook_(name, fraction());
  }

  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_acquire);
  }

  /// Called by the workload as it completes steps; safe from any thread.
  void tick(std::uint64_t steps = 1) {
    const std::uint64_t done =
        done_.fetch_add(steps, std::memory_order_relaxed) + steps;
    if (!armed_ && pulse_divisions_ == 0) return;
    const std::uint64_t total = total_.load(std::memory_order_relaxed);
    if (total == 0) return;
    const double fraction =
        static_cast<double>(done) / static_cast<double>(total);
    if (pulse_divisions_ != 0) {
      const std::uint64_t slice =
          static_cast<std::uint64_t>(fraction * pulse_divisions_);
      if (slice > pulse_done_.load(std::memory_order_relaxed)) {
        pulse_done_.store(slice, std::memory_order_relaxed);
        pulse_();
      }
    }
    if (armed_ && fraction >= target_ &&
        !fired_.exchange(true, std::memory_order_acq_rel)) {
      hook_(fraction > 1.0 ? 1.0 : fraction);
    }
  }

  /// Marks the run complete. If the armed hook has not fired (a target of
  /// ~1.0 can land after the last tick), it fires here so every trial
  /// injects — CAROL-FI's equivalent is an interrupt landing between the
  /// final computation and the output check.
  void finish() {
    finished_.store(true, std::memory_order_release);
    if (armed_ && !fired_.exchange(true, std::memory_order_acq_rel)) {
      hook_(1.0);
    }
  }

  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

  [[nodiscard]] double fraction() const {
    const std::uint64_t total = total_.load(std::memory_order_relaxed);
    if (total == 0) return 0.0;
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const double f = static_cast<double>(done) / static_cast<double>(total);
    return f > 1.0 ? 1.0 : f;
  }

 private:
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> finished_{false};
  std::atomic<bool> fired_{false};
  bool armed_ = false;
  double target_ = 1.0;
  InjectionHook hook_;
  unsigned pulse_divisions_ = 0;
  std::atomic<std::uint64_t> pulse_done_{0};
  PulseHook pulse_;
  PhaseHook phase_hook_;
};

}  // namespace phifi::fi

// The four high-level fault models of Sec. 5.2.
//
// CAROL-FI injects at source level, so a single architectural upset can
// manifest as more than a one-bit change by the time it reaches a program
// variable. The paper therefore uses four models:
//   Single — flip one random bit of the selected element;
//   Double — flip two random bits within the same byte of the element
//            (multi-cell upsets cluster physically, Sec. 5.2);
//   Random — overwrite every bit of the element with random bits;
//   Zero   — set every bit of the element to zero.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

#include "util/rng.hpp"

namespace phifi::fi {

enum class FaultModel : int { kSingle = 0, kDouble = 1, kRandom = 2, kZero = 3 };

inline constexpr std::array<FaultModel, 4> kAllFaultModels = {
    FaultModel::kSingle, FaultModel::kDouble, FaultModel::kRandom,
    FaultModel::kZero};

constexpr std::string_view to_string(FaultModel model) {
  switch (model) {
    case FaultModel::kSingle: return "Single";
    case FaultModel::kDouble: return "Double";
    case FaultModel::kRandom: return "Random";
    case FaultModel::kZero: return "Zero";
  }
  return "?";
}

/// How a fault application changed the target element.
struct FaultApplication {
  FaultModel model = FaultModel::kSingle;
  /// Bit indices flipped, relative to the element start (LSB of byte 0 = 0).
  /// Only meaningful for Single (1 entry) and Double (2 entries).
  std::array<std::size_t, 2> flipped_bits = {0, 0};
  std::size_t flipped_count = 0;
  /// True if the write actually changed at least one bit (Zero on an
  /// already-zero element changes nothing and is naturally masked).
  bool changed = false;
};

/// Applies `model` to the element bytes in place, drawing randomness from
/// `rng`. The span is the *element* (4/8 bytes for scalars, or one element
/// of an array variable); callers pick the element.
FaultApplication apply_fault(FaultModel model, std::span<std::byte> element,
                             util::Rng& rng);

}  // namespace phifi::fi

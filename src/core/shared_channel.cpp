#include "core/shared_channel.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace phifi::fi {

SharedChannel::SharedChannel(std::size_t output_capacity) {
  capacity_ = output_capacity;
  map_bytes_ = sizeof(Header) + output_capacity;
  void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::runtime_error("SharedChannel: mmap failed");
  }
  header_ = new (mem) Header{};
  payload_ = static_cast<std::byte*>(mem) + sizeof(Header);
  reset();
}

SharedChannel::~SharedChannel() {
  if (header_ != nullptr) {
    header_->~Header();
    ::munmap(header_, map_bytes_);
  }
}

void SharedChannel::reset() {
  header_->record_ready.store(0, std::memory_order_relaxed);
  header_->output_ready.store(0, std::memory_order_relaxed);
  header_->heartbeat.store(0, std::memory_order_relaxed);
  header_->phase_count.store(0, std::memory_order_relaxed);
  header_->output_size = 0;
  header_->record = InjectionRecord{};
}

void SharedChannel::beat() {
  header_->heartbeat.fetch_add(1, std::memory_order_release);
}

void SharedChannel::store_phase(std::string_view name, double fraction,
                                double t_seconds) {
  const std::uint32_t index =
      header_->phase_count.load(std::memory_order_relaxed);
  if (index >= kMaxPhases) return;  // drop: bounded log, corrupted children
  PhaseRecord& slot = header_->phases[index];
  const std::size_t copy = std::min(name.size(), sizeof(slot.name) - 1);
  std::memcpy(slot.name, name.data(), copy);
  slot.name[copy] = '\0';
  slot.fraction = fraction;
  slot.t_seconds = t_seconds;
  // Publish the slot before the count so the parent never reads a
  // half-written record.
  header_->phase_count.store(index + 1, std::memory_order_release);
}

std::uint64_t SharedChannel::heartbeat() const {
  return header_->heartbeat.load(std::memory_order_acquire);
}

void SharedChannel::store_record(const InjectionRecord& record) {
  header_->record = record;
  header_->record_ready.store(1, std::memory_order_release);
}

void SharedChannel::store_output(std::span<const std::byte> output) {
  assert(output.size() <= capacity_);
  std::memcpy(payload_, output.data(), output.size());
  header_->output_size = output.size();
  header_->output_ready.store(1, std::memory_order_release);
}

bool SharedChannel::output_ready() const {
  return header_->output_ready.load(std::memory_order_acquire) != 0;
}

bool SharedChannel::record_ready() const {
  return header_->record_ready.load(std::memory_order_acquire) != 0;
}

InjectionRecord SharedChannel::record() const { return header_->record; }

std::vector<PhaseRecord> SharedChannel::phases() const {
  const std::uint32_t count =
      std::min<std::uint32_t>(header_->phase_count.load(
                                  std::memory_order_acquire),
                              kMaxPhases);
  std::vector<PhaseRecord> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = header_->phases[i];
  return out;
}

std::span<const std::byte> SharedChannel::output() const {
  return {payload_, header_->output_size};
}

}  // namespace phifi::fi

#include "core/golden_map.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace phifi::fi {

std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

/// Sealed-memfd path: copy through a RW mapping, drop it (F_SEAL_WRITE is
/// refused while any writable mapping exists), seal, re-map PROT_READ.
/// Returns nullptr when memfd_create is unavailable (pre-3.17 kernel or a
/// seccomp filter) so the caller can fall back.
const std::byte* map_sealed(std::span<const std::byte> golden) {
#ifdef MFD_ALLOW_SEALING
  const int fd = ::memfd_create("phifi-golden", MFD_CLOEXEC |
                                                    MFD_ALLOW_SEALING);
  if (fd < 0) return nullptr;
  const auto size = static_cast<off_t>(golden.size());
  if (::ftruncate(fd, size) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* rw = ::mmap(nullptr, golden.size(), PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd, 0);
  if (rw == MAP_FAILED) {
    ::close(fd);
    return nullptr;
  }
  std::memcpy(rw, golden.data(), golden.size());
  ::munmap(rw, golden.size());
  ::fcntl(fd, F_ADD_SEALS,
          F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE | F_SEAL_SEAL);
  void* ro = ::mmap(nullptr, golden.size(), PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the memfd alive
  if (ro == MAP_FAILED) return nullptr;
  return static_cast<const std::byte*>(ro);
#else
  (void)golden;
  return nullptr;
#endif
}

}  // namespace

GoldenMap::~GoldenMap() { reset(); }

void GoldenMap::reset() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::byte*>(base_), size_);
  }
  base_ = nullptr;
  size_ = 0;
  digest_ = 0;
  sealed_ = false;
}

void GoldenMap::publish(std::span<const std::byte> golden) {
  reset();
  if (golden.empty()) {
    throw std::runtime_error("GoldenMap: empty golden output");
  }
  const std::byte* base = map_sealed(golden);
  sealed_ = base != nullptr;
  if (base == nullptr) {
    // Fallback: shared anonymous mapping, then mprotect to read-only. Not
    // kernel-enforced against a child that calls mprotect itself, but a
    // trial child stomping the reference is memory corruption either way.
    void* mem = ::mmap(nullptr, golden.size(), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      throw std::runtime_error("GoldenMap: mmap failed");
    }
    std::memcpy(mem, golden.data(), golden.size());
    ::mprotect(mem, golden.size(), PROT_READ);
    base = static_cast<const std::byte*>(mem);
  }
  base_ = base;
  size_ = golden.size();
  digest_ = fnv1a64(golden);
}

}  // namespace phifi::fi
